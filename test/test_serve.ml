(* The planning daemon, driven three ways: the pure pieces (JSON,
   protocol, cache, admission) directly; the service in-process through
   [handle_line]; and the full socket server end-to-end over a Unix
   socket with real client connections. *)

module Json = Mcss_serve.Json
module Protocol = Mcss_serve.Protocol
module Plan_cache = Mcss_serve.Plan_cache
module Admission = Mcss_serve.Admission
module Service = Mcss_serve.Service
module Server = Mcss_serve.Server
module Client = Mcss_serve.Client
module Wio = Mcss_workload.Wio

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ----- JSON ----- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2,3]";
      {|{"a":1,"b":[true,null],"c":"x"}|};
      {|"escape \" \\ \n \t me"|};
      {|{"nested":{"deep":{"deeper":[{"x":1.5}]}}}|};
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok j -> (
          match Json.parse (Json.to_string j) with
          | Error e -> Alcotest.failf "reparse %S: %s" (Json.to_string j) e
          | Ok j' ->
              check_bool (Printf.sprintf "round-trip %S" s) true (j = j')))
    cases

let test_json_unicode_escape () =
  match Json.parse {|"aé😀b"|} with
  | Ok (Json.String s) ->
      check_string "utf-8 decoding of \\u escapes" "a\xc3\xa9\xf0\x9f\x98\x80b" s
  | Ok _ | Error _ -> Alcotest.fail "expected a string"

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; {|{"a":}|}; "tru"; "1e"; {|{"a":1}extra|}; "'single'" ]

let test_json_accessors () =
  match Json.parse {|{"n":3,"f":1.5,"s":"x","b":true,"l":[1]}|} with
  | Error e -> Alcotest.fail e
  | Ok j ->
      check_bool "int" true (Option.bind (Json.member "n" j) Json.to_int_opt = Some 3);
      check_bool "float" true
        (Option.bind (Json.member "f" j) Json.to_float_opt = Some 1.5);
      check_bool "int as float" true
        (Option.bind (Json.member "n" j) Json.to_float_opt = Some 3.);
      check_bool "string" true
        (Option.bind (Json.member "s" j) Json.to_string_opt = Some "x");
      check_bool "bool" true
        (Option.bind (Json.member "b" j) Json.to_bool_opt = Some true);
      check_bool "absent member" true (Json.member "zz" j = None)

(* ----- protocol ----- *)

let test_protocol_decode_solve () =
  let line =
    {|{"req":"solve","digest":"abc","tau":50,"instance":"m1.small","deadline_ms":250,"id":7}|}
  in
  match Json.parse line with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Protocol.decode j with
      | Error e -> Alcotest.fail e
      | Ok env -> (
          check_bool "id echoed" true (env.Protocol.id = Some (Json.Int 7));
          check_bool "deadline" true (env.Protocol.deadline_ms = Some 250.);
          match env.Protocol.request with
          | Protocol.Solve { digest; params } ->
              check_string "digest" "abc" digest;
              check_bool "tau" true (params.Protocol.tau = 50.);
              check_string "instance" "m1.small" params.Protocol.instance
          | _ -> Alcotest.fail "expected Solve"))

let test_protocol_encode_decode_inverse () =
  let envs =
    [
      { Protocol.id = None; deadline_ms = None; request = Protocol.Health };
      {
        Protocol.id = Some (Json.String "x");
        deadline_ms = Some 100.;
        request =
          Protocol.Whatif
            {
              digest = "d";
              params = Protocol.default_params;
              taus = [ 10.; 100. ];
            };
      };
      {
        Protocol.id = None;
        deadline_ms = None;
        request =
          Protocol.Chaos
            {
              digest = "d";
              params = Protocol.default_params;
              seed = 3;
              epochs = 4;
              zones = 2;
              faults = [ "crash:0@0.5" ];
            };
      };
    ]
  in
  List.iter
    (fun env ->
      match Protocol.decode (Protocol.encode env) with
      | Error e -> Alcotest.fail e
      | Ok env' -> check_bool "encode/decode inverse" true (env = env'))
    envs

let test_protocol_rejects () =
  List.iter
    (fun line ->
      match Json.parse line with
      | Error _ -> ()
      | Ok j -> (
          match Protocol.decode j with
          | Ok _ -> Alcotest.failf "accepted bad request %s" line
          | Error _ -> ()))
    [
      {|{"req":"warp"}|};
      {|{"req":"solve"}|};
      {|{"req":"solve","digest":"d","tau":-1}|};
      {|{"req":"whatif","digest":"d","taus":[]}|};
      {|{"req":"health","deadline_ms":0}|};
      {|[1,2]|};
      {|{"req":"chaos","digest":"d","epochs":0}|};
    ]

(* ----- plan cache ----- *)

let test_cache_lru_eviction () =
  let c = Plan_cache.create ~capacity:2 in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  check_bool "a resident" true (Plan_cache.find c "a" = Some 1);
  (* "b" is now LRU; adding "c" must evict it. *)
  Plan_cache.add c "c" 3;
  check_bool "b evicted" true (Plan_cache.find c "b" = None);
  check_bool "a survives" true (Plan_cache.find c "a" = Some 1);
  check_bool "c resident" true (Plan_cache.find c "c" = Some 3);
  let s = Plan_cache.stats c in
  check_int "hits" 3 s.Plan_cache.hits;
  check_int "misses" 1 s.Plan_cache.misses;
  check_int "evictions" 1 s.Plan_cache.evictions;
  check_int "entries" 2 s.Plan_cache.entries

let test_cache_replace_promotes () =
  let c = Plan_cache.create ~capacity:2 in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Plan_cache.add c "a" 10;
  (* replace, no eviction *)
  check_int "still two entries" 2 (Plan_cache.length c);
  Plan_cache.add c "c" 3;
  (* "b" is LRU after the replacement promoted "a" *)
  check_bool "b evicted" true (Plan_cache.find c "b" = None);
  check_bool "a has new value" true (Plan_cache.find c "a" = Some 10)

let test_cache_rejects_zero_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Plan_cache.create: capacity must be >= 1") (fun () ->
      ignore (Plan_cache.create ~capacity:0 : int Plan_cache.t))

let test_cache_hit_ratio () =
  let c = Plan_cache.create ~capacity:4 in
  check_bool "no lookups yet" true (Plan_cache.hit_ratio (Plan_cache.stats c) = 0.);
  Plan_cache.add c "k" 1;
  ignore (Plan_cache.find c "k");
  ignore (Plan_cache.find c "nope");
  check_bool "one of two" true
    (abs_float (Plan_cache.hit_ratio (Plan_cache.stats c) -. 0.5) < 1e-9)

(* ----- admission ----- *)

let test_admission_gate () =
  let g = Admission.create ~max_in_flight:2 in
  check_bool "slot 1" true (Admission.try_acquire g);
  check_bool "slot 2" true (Admission.try_acquire g);
  check_bool "gate full" false (Admission.try_acquire g);
  check_int "rejection counted" 1 (Admission.rejected g);
  Admission.release g;
  check_bool "slot freed" true (Admission.try_acquire g);
  Admission.release g;
  Admission.release g;
  check_int "drained" 0 (Admission.in_flight g)

let test_admission_with_slot () =
  let g = Admission.create ~max_in_flight:1 in
  let nested = ref `Unset in
  let outer =
    Admission.with_slot g (fun () ->
        nested := (match Admission.with_slot g (fun () -> ()) with
                  | None -> `Refused
                  | Some () -> `Admitted);
        17)
  in
  check_bool "outer admitted" true (outer = Some 17);
  check_bool "nested refused while slot held" true (!nested = `Refused);
  check_int "slot released" 0 (Admission.in_flight g);
  (* Exception safety: the slot must be released on raise. *)
  (try ignore (Admission.with_slot g (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_int "released after raise" 0 (Admission.in_flight g)

let test_deadline () =
  check_bool "no deadline never expires" false
    (Admission.expired (Admission.deadline_of_ms None));
  check_bool "no deadline remaining" true
    (Admission.remaining_ms (Admission.deadline_of_ms None) = infinity);
  let d = Admission.deadline_of_ms (Some 0.000001) in
  (* A microsecond deadline has certainly passed by the next check. *)
  let rec wait n = if n > 0 && not (Admission.expired d) then wait (n - 1) in
  wait 1_000_000;
  check_bool "tiny deadline expires" true (Admission.expired d);
  check_bool "expired remaining <= 0" true (Admission.remaining_ms d <= 0.)

(* ----- service (in-process) ----- *)

let test_workload () =
  Helpers.workload ~rates:[ 20.; 10.; 5. ]
    ~interests:[ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ]

let ok_reply name reply =
  if not (Protocol.response_ok reply) then
    Alcotest.failf "%s: error reply %s" name (Json.to_string reply);
  reply

let str_field reply key =
  match Option.bind (Json.member key reply) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "reply lacks string %S: %s" key (Json.to_string reply)

let bool_field reply key =
  match Option.bind (Json.member key reply) Json.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.failf "reply lacks bool %S: %s" key (Json.to_string reply)

let test_service_solve_cache () =
  let svc = Service.create () in
  let digest = Service.load_workload svc (test_workload ()) in
  check_string "load is content-addressed" digest
    (Service.digest_of_workload (test_workload ()));
  let solve_line =
    Printf.sprintf {|{"req":"solve","digest":"%s","tau":12}|} digest
  in
  let r1 = ok_reply "first solve" (Service.handle_line svc solve_line) in
  check_bool "cold solve not cached" false (bool_field r1 "cached");
  let runs_after_first = Service.solver_runs svc in
  check_int "one solver run" 1 runs_after_first;
  let r2 = ok_reply "second solve" (Service.handle_line svc solve_line) in
  check_bool "identical params served from cache" true (bool_field r2 "cached");
  check_int "no second solver run" runs_after_first (Service.solver_runs svc);
  let stats = Service.cache_stats svc in
  check_int "cache hit counted" 1 stats.Plan_cache.hits;
  (* Different params miss. *)
  let r3 =
    ok_reply "different tau"
      (Service.handle_line svc
         (Printf.sprintf {|{"req":"solve","digest":"%s","tau":13}|} digest))
  in
  check_bool "different tau is a miss" false (bool_field r3 "cached");
  check_int "second solver run" 2 (Service.solver_runs svc)

let test_service_errors () =
  let svc = Service.create () in
  let expect_error name code line =
    let reply = Service.handle_line svc line in
    match Protocol.response_error reply with
    | Some (Some c, _) when c = code -> ()
    | _ -> Alcotest.failf "%s: wanted %s, got %s" name
             (Protocol.error_code_to_string code)
             (Json.to_string reply)
  in
  expect_error "garbage" Protocol.Bad_request "not json at all";
  expect_error "bad verb" Protocol.Bad_request {|{"req":"warp"}|};
  expect_error "unknown digest" Protocol.Unknown_digest
    {|{"req":"solve","digest":"feedfacefeedfacefeedfacefeedface"}|};
  expect_error "unknown instance" Protocol.Bad_request
    (let digest = Service.load_workload svc (test_workload ()) in
     Printf.sprintf {|{"req":"solve","digest":"%s","instance":"z9.mega"}|} digest);
  expect_error "corrupt inline workload" Protocol.Bad_request
    {|{"req":"load","workload":"mcss-workload 9\n"}|}

let test_service_timeout_is_clean () =
  let svc = Service.create () in
  let digest = Service.load_workload svc (test_workload ()) in
  let reply =
    Service.handle_line svc
      (Printf.sprintf {|{"req":"solve","digest":"%s","deadline_ms":1e-6}|} digest)
  in
  (match Protocol.response_error reply with
  | Some (Some Protocol.Timeout, _) -> ()
  | _ -> Alcotest.failf "wanted timeout, got %s" (Json.to_string reply));
  (* The service is still fully usable afterwards. *)
  ignore
    (ok_reply "health after timeout" (Service.handle_line svc {|{"req":"health"}|}))

let test_service_shutdown_drains () =
  let svc = Service.create () in
  check_bool "not draining initially" false (Service.draining svc);
  let reply = ok_reply "shutdown" (Service.handle_line svc {|{"req":"shutdown"}|}) in
  check_bool "reply says draining" true (bool_field reply "draining");
  check_bool "flag set" true (Service.draining svc);
  (match
     Protocol.response_error (Service.handle_line svc {|{"req":"load","workload":"x"}|})
   with
  | Some (Some Protocol.Draining, _) -> ()
  | other ->
      ignore other;
      Alcotest.fail "load after shutdown should be refused as draining")

let test_service_metrics_exposition () =
  let svc = Service.create () in
  ignore (Service.handle_line svc {|{"req":"health"}|});
  let reply = ok_reply "metrics" (Service.handle_line svc {|{"req":"metrics"}|}) in
  let body = str_field reply "body" in
  let contains needle =
    let nl = String.length needle and tl = String.length body in
    let rec go i = i + nl <= tl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "per-endpoint counter present" true
    (contains "mcss_serve_requests_health");
  check_bool "cache gauge present" true (contains "mcss_serve_cache")

(* ----- end-to-end over a Unix socket ----- *)

let with_server f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-serve-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let svc = Service.create () in
  let config =
    { Server.default_config with Server.workers = 2; accept_tick_s = 0.05 }
  in
  let address = Server.Unix_socket path in
  let server = Domain.spawn (fun () -> Server.run ~config svc address) in
  (* Wait for the listener to come up. *)
  let rec wait tries =
    if tries = 0 then Alcotest.fail "server never came up";
    match Client.connect address with
    | Ok c ->
        Client.close c
    | Error _ ->
        Unix.sleepf 0.02;
        wait (tries - 1)
  in
  wait 200;
  Fun.protect
    ~finally:(fun () ->
      (* Always drain, even on test failure, so the domain joins. *)
      (match
         Client.with_connection address (fun c ->
             Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))
       with
      | Ok _ | Error _ -> ());
      Domain.join server;
      (try Unix.unlink path with Unix.Unix_error _ -> ()))
    (fun () -> f address svc)

let wio_text w =
  let path = Filename.temp_file "mcss_serve_wl" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Wio.save w path;
      In_channel.with_open_bin path In_channel.input_all)

let test_e2e_round_trip () =
  with_server (fun address _svc ->
      match
        Client.with_connection address (fun c ->
            let req line =
              match Json.parse line with
              | Error e -> Alcotest.fail e
              | Ok j -> (
                  match Client.request c j with
                  | Ok reply -> reply
                  | Error e -> Alcotest.failf "transport: %s" e)
            in
            let health = ok_reply "health" (req {|{"req":"health"}|}) in
            check_string "serving" "serving" (str_field health "status");
            let load =
              ok_reply "load"
                (req
                   (Json.to_string
                      (Json.Obj
                         [
                           ("req", Json.String "load");
                           ("workload", Json.String (wio_text (test_workload ())));
                         ])))
            in
            let digest = str_field load "digest" in
            check_string "digest matches direct computation"
              (Service.digest_of_workload (test_workload ()))
              digest;
            let solve_line =
              Printf.sprintf {|{"req":"solve","digest":"%s","tau":12}|} digest
            in
            let r1 = ok_reply "solve" (req solve_line) in
            check_bool "cold" false (bool_field r1 "cached");
            let r2 = ok_reply "solve again" (req solve_line) in
            check_bool "hot" true (bool_field r2 "cached");
            (* A deadline-exceeding request errors without killing the
               connection: the same connection keeps working. *)
            let timed_out =
              req
                (Printf.sprintf
                   {|{"req":"solve","digest":"%s","tau":99,"deadline_ms":1e-6}|}
                   digest)
            in
            (match Protocol.response_error timed_out with
            | Some (Some Protocol.Timeout, _) -> ()
            | _ ->
                Alcotest.failf "wanted timeout, got %s" (Json.to_string timed_out));
            let after = ok_reply "health after timeout" (req {|{"req":"health"}|}) in
            check_string "same connection still serving" "serving"
              (str_field after "status");
            Ok ())
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_e2e_concurrent_clients () =
  with_server (fun address svc ->
      let digest = Service.load_workload svc (test_workload ()) in
      let clients = 4 and per_client = 5 in
      let worker i =
        Domain.spawn (fun () ->
            Client.with_connection address (fun c ->
                let failures = ref 0 in
                for k = 1 to per_client do
                  let tau = 10 + (((i + k) mod 3) * 10) in
                  match
                    Client.request c
                      (Json.Obj
                         [
                           ("req", Json.String "solve");
                           ("digest", Json.String digest);
                           ("tau", Json.Int tau);
                         ])
                  with
                  | Ok reply ->
                      if
                        not
                          (Protocol.response_ok reply
                          ||
                          match Protocol.response_error reply with
                          | Some (Some Protocol.Overloaded, _) -> true
                          | _ -> false)
                      then incr failures
                  | Error _ -> incr failures
                done;
                Ok !failures))
      in
      let domains = List.init clients worker in
      let results = List.map Domain.join domains in
      List.iter
        (fun r ->
          match r with
          | Ok failures -> check_int "no hard failures" 0 failures
          | Error e -> Alcotest.fail e)
        results;
      (* Three distinct tau values across 20 requests: at least one
         cache hit is guaranteed. *)
      let stats = Service.cache_stats svc in
      check_bool "steady-state cache hits" true (stats.Plan_cache.hits > 0))

let test_e2e_oversized_request () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-serve-big-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let svc = Service.create () in
  let config =
    {
      Server.default_config with
      Server.workers = 1;
      max_request_bytes = 1024;
      accept_tick_s = 0.05;
    }
  in
  let address = Server.Unix_socket path in
  let server = Domain.spawn (fun () -> Server.run ~config svc address) in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "server never came up";
    match Client.connect address with
    | Ok c -> Client.close c
    | Error _ ->
        Unix.sleepf 0.02;
        wait (tries - 1)
  in
  wait 200;
  Fun.protect
    ~finally:(fun () ->
      (match
         Client.with_connection address (fun c ->
             Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))
       with
      | Ok _ | Error _ -> ());
      Domain.join server;
      (try Unix.unlink path with Unix.Unix_error _ -> ()))
    (fun () ->
      match
        Client.with_connection address (fun c ->
            (* 4 KiB of payload against a 1 KiB line limit. *)
            Client.request c
              (Json.Obj
                 [
                   ("req", Json.String "load");
                   ("workload", Json.String (String.make 4096 'x'));
                 ]))
      with
      | Ok reply -> (
          match Protocol.response_error reply with
          | Some (Some Protocol.Too_large, _) -> ()
          | _ ->
              Alcotest.failf "wanted too_large, got %s" (Json.to_string reply))
      | Error e -> Alcotest.fail e)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escape;
    Alcotest.test_case "json rejects invalid" `Quick test_json_rejects;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "protocol decode solve" `Quick test_protocol_decode_solve;
    Alcotest.test_case "protocol encode/decode inverse" `Quick
      test_protocol_encode_decode_inverse;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache replace promotes" `Quick test_cache_replace_promotes;
    Alcotest.test_case "cache rejects zero capacity" `Quick
      test_cache_rejects_zero_capacity;
    Alcotest.test_case "cache hit ratio" `Quick test_cache_hit_ratio;
    Alcotest.test_case "admission gate" `Quick test_admission_gate;
    Alcotest.test_case "admission with_slot" `Quick test_admission_with_slot;
    Alcotest.test_case "deadlines" `Quick test_deadline;
    Alcotest.test_case "service: solve cache" `Quick test_service_solve_cache;
    Alcotest.test_case "service: error mapping" `Quick test_service_errors;
    Alcotest.test_case "service: clean timeout" `Quick test_service_timeout_is_clean;
    Alcotest.test_case "service: shutdown drains" `Quick
      test_service_shutdown_drains;
    Alcotest.test_case "service: metrics exposition" `Quick
      test_service_metrics_exposition;
    Alcotest.test_case "e2e: unix-socket round trip" `Quick test_e2e_round_trip;
    Alcotest.test_case "e2e: concurrent clients" `Quick test_e2e_concurrent_clients;
    Alcotest.test_case "e2e: oversized request" `Quick test_e2e_oversized_request;
  ]
