#!/bin/sh
# End-to-end crash smoke for the live update endpoint.
#
#   1. Boot `mcss serve --journal`, load a workload, solve once.
#   2. Send a delta batch with `mcss query update` and assert the reply
#      names a new workload digest and a changed plan digest.
#   3. kill -9 the server, restart it over the same journal, and assert
#      the replayed update reproduces the post-update plan bit-for-bit:
#      solving at the evolved digest is a cache hit with the same
#      plan_digest the live update reported.
#
# Usage: update_smoke.sh /path/to/mcss
# Exits non-zero (with a one-line reason on stderr) on the first failure.
set -eu

MCSS="$1"
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mcss-update-XXXXXX")
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "update_smoke: $*" >&2
  exit 1
}

SOCK="$TMP/mcss.sock"
JOURNAL="$TMP/journal"
WL="$TMP/w.wl"
DELTAS="$TMP/tick.deltas"

start_server() {
  "$MCSS" serve -l "unix:$SOCK" --journal "$JOURNAL" --silent "$@" &
  SERVER_PID=$!
  i=0
  until "$MCSS" query -c "unix:$SOCK" health >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server never became healthy"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
}

stop_server_hard() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

json_field() { # json_field KEY <<< reply  (string or hex values)
  grep -o "\"$1\":\"[^\"]*\"" | head -n 1 | cut -d'"' -f4
}

"$MCSS" generate --trace spotify --scale 0.0005 --seed 11 -o "$WL" >/dev/null

# A churn batch valid against that trace: a rate burst, an interest
# flip on subscriber 0 (it follows topic 308), a topic launch, and a
# sign-up that immediately follows the new topic (id 550).
cat > "$DELTAS" <<'EOF'
mcss-deltas 1
rate 120 250
unsubscribe 0 308
subscribe 0 5
new-topic 42
new-subscriber 3 5 120 550
subscribe 1 550
EOF

# ----- phase 1: load and solve the base plan, durably -----
start_server
LOAD=$("$MCSS" query -c "unix:$SOCK" load -w "$WL")
DIGEST=$(echo "$LOAD" | json_field digest)
[ -n "$DIGEST" ] || fail "load returned no digest: $LOAD"

SOLVE1=$("$MCSS" query -c "unix:$SOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "base solve failed"
PLAN1=$(echo "$SOLVE1" | json_field plan_digest)
[ -n "$PLAN1" ] || fail "base solve carried no plan_digest: $SOLVE1"

# ----- phase 2: live update evolves the digest and the plan -----
UPDATE=$("$MCSS" query -c "unix:$SOCK" update --digest "$DIGEST" --tau 50 \
  --deltas "$DELTAS") || fail "update failed"
echo "$UPDATE" | grep -q '"deltas_applied":6' \
  || fail "update did not apply 6 deltas: $UPDATE"
DIGEST2=$(echo "$UPDATE" | json_field digest)
PLAN2=$(echo "$UPDATE" | json_field plan_digest)
[ -n "$DIGEST2" ] || fail "update returned no digest: $UPDATE"
[ "$DIGEST2" != "$DIGEST" ] || fail "update did not evolve the workload digest"
[ "$PLAN2" != "$PLAN1" ] || fail "update did not change the plan digest"
echo "$UPDATE" | grep -q "\"previous_digest\":\"$DIGEST\"" \
  || fail "update lost its lineage: $UPDATE"

# ----- phase 3: kill -9; the replayed journal reproduces the update -----
stop_server_hard
start_server
SOLVE2=$("$MCSS" query -c "unix:$SOCK" solve --digest "$DIGEST2" --tau 50) \
  || fail "post-crash solve at the evolved digest failed"
echo "$SOLVE2" | grep -q '"cached":true' \
  || fail "replayed update was not served from cache: $SOLVE2"
PLAN3=$(echo "$SOLVE2" | json_field plan_digest)
[ "$PLAN2" = "$PLAN3" ] \
  || fail "replay diverged from the live update: $PLAN2 vs $PLAN3"

# The base plan survived too: same digest, same answer.
SOLVE3=$("$MCSS" query -c "unix:$SOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "post-crash solve at the base digest failed"
[ "$(echo "$SOLVE3" | json_field plan_digest)" = "$PLAN1" ] \
  || fail "base plan digest changed across the crash"

"$MCSS" query -c "unix:$SOCK" shutdown >/dev/null 2>&1 || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "update_smoke: OK"
