#!/bin/sh
# Golden test for `mcss journal --verify`, the read-only integrity
# scan.
#
#   1. Boot a journaled server, load a seeded workload, shut down
#      cleanly — a one-record WAL whose contents are fully determined
#      by the seed (a solved plan's record embeds solver timings, so no
#      solve happens here).
#   2. `--verify` the clean journal: stable report, exit 0, and the WAL
#      is byte-identical afterwards (read-only means read-only).
#   3. Flip one payload byte in the first frame and `--verify` again:
#      the CRC failure is reported, the exit code is 1, and the corrupt
#      WAL is *still* untouched — unlike a replay, verify never
#      truncates.
#
# Stdout is diffed against journal_verify.expected, so everything
# printed here must be deterministic (no absolute paths, no timings).
#
# Usage: journal_verify.sh /path/to/mcss
set -eu

MCSS="$1"
# The verify runs below cd into the scratch dir (so the golden output
# carries a relative journal path), which would break a relative binary
# path like dune's %{bin:mcss}.
case "$MCSS" in /*) ;; *) MCSS="$(pwd)/$MCSS" ;; esac
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mcss-jverify-XXXXXX")
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "journal_verify: $*" >&2
  exit 1
}

SOCK="$TMP/mcss.sock"
JOURNAL="$TMP/journal"
WL="$TMP/w.wl"

"$MCSS" generate --trace spotify --scale 0.0005 --seed 11 -o "$WL" >/dev/null

"$MCSS" serve -l "unix:$SOCK" --journal "$JOURNAL" --silent &
SERVER_PID=$!
i=0
until "$MCSS" query -c "unix:$SOCK" health >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "server never became healthy"
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
  sleep 0.1
done

DIGEST=$("$MCSS" query -c "unix:$SOCK" load -w "$WL" \
  | grep -o '"digest":"[^"]*"' | head -n 1 | cut -d'"' -f4)
[ -n "$DIGEST" ] || fail "load returned no digest"
"$MCSS" query -c "unix:$SOCK" shutdown >/dev/null 2>&1 || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# ----- clean journal: exit 0, WAL untouched -----
cp "$JOURNAL/wal.mcssj" "$TMP/wal.before"
echo "--- clean journal ---"
(cd "$TMP" && "$MCSS" journal --dir journal --verify) \
  || fail "clean verify did not exit 0"
cmp -s "$JOURNAL/wal.mcssj" "$TMP/wal.before" \
  || fail "verify modified a clean WAL"

# ----- one flipped payload byte: exit 1, WAL still untouched -----
dd if=/dev/zero of="$JOURNAL/wal.mcssj" bs=1 seek=20 count=1 conv=notrunc \
  2>/dev/null
cp "$JOURNAL/wal.mcssj" "$TMP/wal.corrupt"
echo "--- corrupt journal ---"
rc=0
(cd "$TMP" && "$MCSS" journal --dir journal --verify) || rc=$?
echo "exit=$rc"
[ "$rc" -eq 1 ] || fail "corrupt verify exited $rc, wanted 1"
cmp -s "$JOURNAL/wal.mcssj" "$TMP/wal.corrupt" \
  || fail "verify rewrote the corrupt WAL (must never truncate)"
