#!/bin/sh
# End-to-end smoke for the elastic capacity planner.
#
#   1. Write a 24-slice diurnal scenario file.
#   2. Run `mcss elastic` on a small Spotify trace under the hysteresis
#      policy: it must exit 0 (every intermediate plan verifier-clean)
#      and write a parseable JSON ledger.
#   3. Assert the hysteresis week cost is no worse than the static
#      peak-envelope plan's.
#
# Usage: elastic_smoke.sh /path/to/mcss
# Exits non-zero (with a one-line reason on stderr) on the first failure.
set -eu

MCSS="$1"
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mcss-elastic-XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
  echo "elastic_smoke: $*" >&2
  exit 1
}

SCEN="$TMP/diurnal.scenario"
LEDGER="$TMP/ledger.json"

cat > "$SCEN" <<'EOF'
mcss-scenario 1
slices 24
slice-hours 1
seed 7
coverage 1
diurnal amplitude 0.4 period 24 phase 0
EOF

"$MCSS" elastic --trace spotify --scale 0.001 --seed 11 --tau 100 \
  --scenario "$SCEN" --policy hysteresis --ledger "$LEDGER" \
  > "$TMP/elastic.log" \
  || fail "mcss elastic exited non-zero: $(cat "$TMP/elastic.log")"

grep -q "verifier" "$TMP/elastic.log" \
  || fail "no verifier column in the summary: $(cat "$TMP/elastic.log")"
grep -q "VIOLATIONS" "$TMP/elastic.log" \
  && fail "an intermediate plan failed verification: $(cat "$TMP/elastic.log")"

[ -f "$LEDGER" ] || fail "ledger file was not written"

# The ledger must parse, carry the schema tag, and price the adaptive
# policy at or below the static baseline.
python3 - "$LEDGER" <<'EOF' || fail "ledger check failed"
import json, sys

with open(sys.argv[1]) as f:
    ledger = json.load(f)

assert ledger["schema"] == "mcss-elastic-ledger-1", ledger.get("schema")
policies = {p["policy"]: p for p in ledger["policies"]}
assert "static" in policies and "hysteresis" in policies, sorted(policies)
static = policies["static"]["total_usd"]
hysteresis = policies["hysteresis"]["total_usd"]
assert all(p["clean"] for p in policies.values()), "unclean policy run"
assert hysteresis <= static, f"hysteresis {hysteresis} > static {static}"
print(f"elastic_smoke: hysteresis ${hysteresis:.2f} <= static ${static:.2f}")
EOF

echo "elastic_smoke: OK"
