#!/bin/sh
# End-to-end failover smoke for the replicated planning cluster.
#
#   1. Boot a leader (`--journal --replicate-on`) and a follower
#      (`--journal --follow`), load a workload, solve once, and wait
#      for journal parity (the follower's stats report the same
#      last_index as the leader's).
#   2. kill -9 the leader, promote the follower, and assert the same
#      solve is answered as a cache hit with a bit-identical
#      plan_digest — replication, not re-solving.
#   3. Put `mcss route` in front of the (dead leader, promoted
#      follower) shard and assert the router fails over: the routed
#      solve exits 0 with the same plan_digest while one member is
#      down, and exits 3 with a parseable no_quorum error only once
#      both members are down.
#
# Usage: failover_smoke.sh /path/to/mcss
# Exits non-zero (with a one-line reason on stderr) on the first failure.
set -eu

MCSS="$1"
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mcss-failover-XXXXXX")
LEADER_PID=""
FOLLOWER_PID=""
ROUTER_PID=""

cleanup() {
  [ -n "$LEADER_PID" ] && kill -9 "$LEADER_PID" 2>/dev/null
  [ -n "$FOLLOWER_PID" ] && kill -9 "$FOLLOWER_PID" 2>/dev/null
  [ -n "$ROUTER_PID" ] && kill -9 "$ROUTER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "failover_smoke: $*" >&2
  exit 1
}

LSOCK="$TMP/leader.sock"
FSOCK="$TMP/follower.sock"
RSOCK="$TMP/route.sock"
REP="$TMP/rep.sock"
WL="$TMP/w.wl"

await_healthy() { # await_healthy SOCK PID WHAT
  i=0
  until "$MCSS" query -c "unix:$1" health >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "$3 never became healthy"
    kill -0 "$2" 2>/dev/null || fail "$3 died during startup"
    sleep 0.1
  done
}

json_field() { # json_field KEY <<< reply  (string values)
  grep -o "\"$1\":\"[^\"]*\"" | head -n 1 | cut -d'"' -f4
}

json_int() { # json_int KEY <<< reply
  grep -o "\"$1\":[0-9]*" | head -n 1 | cut -d: -f2
}

"$MCSS" generate --trace spotify --scale 0.0005 --seed 11 -o "$WL" >/dev/null

# ----- phase 1: leader + follower, journal streaming -----
"$MCSS" serve -l "unix:$LSOCK" --journal "$TMP/jl" \
  --replicate-on "unix:$REP" --silent &
LEADER_PID=$!
await_healthy "$LSOCK" "$LEADER_PID" "leader"

"$MCSS" serve -l "unix:$FSOCK" --journal "$TMP/jf" \
  --follow "unix:$REP" --silent &
FOLLOWER_PID=$!
await_healthy "$FSOCK" "$FOLLOWER_PID" "follower"

ROLE=$("$MCSS" query -c "unix:$FSOCK" health | json_field role)
[ "$ROLE" = "follower" ] || fail "follower booted with role '$ROLE'"

LOAD=$("$MCSS" query -c "unix:$LSOCK" load -w "$WL")
DIGEST=$(echo "$LOAD" | json_field digest)
[ -n "$DIGEST" ] || fail "load returned no digest: $LOAD"

SOLVE1=$("$MCSS" query -c "unix:$LSOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "leader solve failed"
echo "$SOLVE1" | grep -q '"cached":false' || fail "leader solve was not cold: $SOLVE1"
PLAN1=$(echo "$SOLVE1" | json_field plan_digest)
[ -n "$PLAN1" ] || fail "leader solve carried no plan_digest: $SOLVE1"

TARGET=$("$MCSS" query -c "unix:$LSOCK" stats | json_int last_index)
[ -n "$TARGET" ] && [ "$TARGET" -ge 2 ] \
  || fail "leader journal index not advanced: $TARGET"
i=0
until [ "$("$MCSS" query -c "unix:$FSOCK" stats | json_int last_index)" = "$TARGET" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "follower never reached journal parity ($TARGET)"
  sleep 0.1
done

# ----- phase 2: kill -9 the leader, promote, same answer -----
kill -9 "$LEADER_PID" 2>/dev/null || true
wait "$LEADER_PID" 2>/dev/null || true
LEADER_PID=""

PROMOTE=$("$MCSS" query -c "unix:$FSOCK" promote) || fail "promote failed"
echo "$PROMOTE" | grep -q '"promoted":true' || fail "not promoted: $PROMOTE"
echo "$PROMOTE" | grep -q '"role":"leader"' || fail "role not leader: $PROMOTE"

SOLVE2=$("$MCSS" query -c "unix:$FSOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "promoted-follower solve failed"
echo "$SOLVE2" | grep -q '"cached":true' \
  || fail "promoted follower re-ran the solver: $SOLVE2"
PLAN2=$(echo "$SOLVE2" | json_field plan_digest)
[ "$PLAN1" = "$PLAN2" ] \
  || fail "plan digest changed across failover: $PLAN1 vs $PLAN2"

# ----- phase 3: the router's failover and no_quorum contract -----
"$MCSS" route -l "unix:$RSOCK" --shard "a=unix:$LSOCK,unix:$FSOCK" --silent &
ROUTER_PID=$!
await_healthy "$RSOCK" "$ROUTER_PID" "router"

# One member down: the routed solve fails over, exits 0, same plan.
SOLVE3=$("$MCSS" query -c "unix:$RSOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "routed solve should fail over to the live member"
PLAN3=$(echo "$SOLVE3" | json_field plan_digest)
[ "$PLAN1" = "$PLAN3" ] \
  || fail "routed solve served a different plan: $PLAN3"

# Both members down: parseable no_quorum, exit 3 — and only now.
kill -9 "$FOLLOWER_PID" 2>/dev/null || true
wait "$FOLLOWER_PID" 2>/dev/null || true
FOLLOWER_PID=""
set +e
NQ=$("$MCSS" query -c "unix:$RSOCK" solve --digest "$DIGEST" --tau 50 2>/dev/null)
RC=$?
set -e
[ "$RC" -eq 3 ] || fail "no_quorum should exit 3, got $RC: $NQ"
echo "$NQ" | grep -q '"no_quorum"' || fail "reply not marked no_quorum: $NQ"

# The router itself stays up and says so.
"$MCSS" query -c "unix:$RSOCK" health >/dev/null \
  || fail "router health failed after shard loss"

"$MCSS" query -c "unix:$RSOCK" shutdown >/dev/null 2>&1 || true
wait "$ROUTER_PID" 2>/dev/null || true
ROUTER_PID=""
echo "failover_smoke: OK"
