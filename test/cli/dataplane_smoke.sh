#!/bin/sh
# End-to-end smoke for the live dataplane.
#
#   1. Generate a trace, solve it to a 3-VM plan.
#   2. Boot `mcss dataplane` (one Unix socket per planned VM) in the
#      background and wait until every broker answers `health`.
#   3. `mcss pump` a fixed event budget through the fleet with
#      zero-tolerance reconciliation: exit 0, reconcile PASS, ledger
#      totals accounted.
#   4. Drain one broker and pump the same budget again: its pairs go
#      undelivered and the pump exits 4 — the parseable
#      reconciliation-deviation code.
#   5. Shut every broker down gracefully; the fleet process exits on
#      its own and unlinks its sockets.
#
# Usage: dataplane_smoke.sh /path/to/mcss
# Exits non-zero (with a one-line reason on stderr) on the first failure.
set -eu

MCSS="$1"
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mcss-dp-XXXXXX")
FLEET_PID=""

cleanup() {
  [ -n "$FLEET_PID" ] && kill -9 "$FLEET_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "dataplane_smoke: $*" >&2
  exit 1
}

WL="$TMP/w.wl"
PLAN="$TMP/plan.json"
DIR="$TMP/fleet"

# ----- phase 1: a plan that needs three brokers -----
"$MCSS" generate --trace spotify --scale 0.0002 --seed 11 -o "$WL" >/dev/null
"$MCSS" solve -w "$WL" --save-plan "$PLAN" >/dev/null

# ----- phase 2: boot the fleet and wait for every broker -----
"$MCSS" dataplane -w "$WL" --plan "$PLAN" --dir "$DIR" \
  > "$TMP/dataplane.log" 2>&1 &
FLEET_PID=$!

i=0
until [ -f "$DIR/fleet.json" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "fleet manifest never appeared"
  kill -0 "$FLEET_PID" 2>/dev/null || fail "fleet died during startup"
  sleep 0.1
done
for vm in 0 1 2; do
  i=0
  until "$MCSS" query -c "unix:$DIR/broker-$vm.sock" health \
      >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "broker $vm never became healthy"
    sleep 0.1
  done
done
grep -q "3 brokers up" "$TMP/dataplane.log" \
  || fail "expected a 3-broker fleet: $(cat "$TMP/dataplane.log")"

# ----- phase 3: fixed event budget, exact reconciliation -----
PUMP1=$("$MCSS" pump -w "$WL" --plan "$PLAN" --dir "$DIR" \
  --duration 0.2 --tolerance 0 --report "$TMP/pump.json") \
  || fail "healthy pump run failed"
echo "$PUMP1" | grep -q "reconcile: PASS" \
  || fail "healthy fleet did not reconcile: $PUMP1"
echo "$PUMP1" | grep -q "0 send failures" \
  || fail "healthy pump run had send failures: $PUMP1"
grep -q '"pass": true' "$TMP/pump.json" \
  || fail "pump report did not record the pass: $(cat "$TMP/pump.json")"

# Ledger totals are served over the control socket and parseable.
LEDGER=$("$MCSS" query -c "unix:$DIR/broker-0.sock" ledger) \
  || fail "ledger query failed"
echo "$LEDGER" | grep -q '"delivered":' \
  || fail "ledger carries no delivered count: $LEDGER"
echo "$LEDGER" | grep -q '"handoffs":' \
  || fail "ledger carries no handoffs count: $LEDGER"

# ----- phase 4: drain a broker; deviation is a parseable exit 4 -----
DRAIN=$("$MCSS" query -c "unix:$DIR/broker-0.sock" drain) \
  || fail "drain failed"
echo "$DRAIN" | grep -q '"draining":true' \
  || fail "drain did not flip the flag: $DRAIN"

set +e
"$MCSS" pump -w "$WL" --plan "$PLAN" --dir "$DIR" \
  --duration 0.2 --tolerance 0 > "$TMP/pump2.log" 2>&1
RC=$?
set -e
[ "$RC" -eq 4 ] \
  || fail "pump against a drained broker exited $RC, want 4: $(cat "$TMP/pump2.log")"
grep -q "reconcile: FAIL" "$TMP/pump2.log" \
  || fail "drained fleet still reconciled: $(cat "$TMP/pump2.log")"

# ----- phase 5: graceful shutdown, sockets unlinked -----
for vm in 0 1 2; do
  "$MCSS" query -c "unix:$DIR/broker-$vm.sock" shutdown >/dev/null \
    || fail "broker $vm refused shutdown"
done
i=0
while kill -0 "$FLEET_PID" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "fleet process survived shutdown"
  sleep 0.1
done
wait "$FLEET_PID" 2>/dev/null || true
FLEET_PID=""
[ ! -e "$DIR/broker-0.sock" ] || fail "broker socket not unlinked"
grep -q "all brokers stopped" "$TMP/dataplane.log" \
  || fail "fleet did not report a clean stop: $(cat "$TMP/dataplane.log")"
echo "dataplane_smoke: OK"
