#!/bin/sh
# End-to-end crash smoke + exit-code contract for the planning daemon.
#
#   1. Boot `mcss serve --journal`, load a workload, solve once.
#   2. kill -9 the server, restart it over the same journal, and assert
#      the same solve is answered as a cache hit with an identical
#      plan_digest — the solver must not run again.
#   3. Restart once more with --start-degraded and assert the exit-code
#      contract: a cache hit exits 0, a miss exits 2 with a degraded
#      reply carrying the stale plan, and chaos against unsolved params
#      exits 2 with a `degraded` error.
#
# Usage: serve_resilience.sh /path/to/mcss
# Exits non-zero (with a one-line reason on stderr) on the first failure.
set -eu

MCSS="$1"
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mcss-resilience-XXXXXX")
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "serve_resilience: $*" >&2
  exit 1
}

SOCK="$TMP/mcss.sock"
JOURNAL="$TMP/journal"
WL="$TMP/w.wl"

start_server() {
  "$MCSS" serve -l "unix:$SOCK" --journal "$JOURNAL" --silent "$@" &
  SERVER_PID=$!
  i=0
  until "$MCSS" query -c "unix:$SOCK" health >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server never became healthy"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
}

stop_server_hard() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

json_field() { # json_field KEY <<< reply  (string or hex values)
  grep -o "\"$1\":\"[^\"]*\"" | head -n 1 | cut -d'"' -f4
}

"$MCSS" generate --trace spotify --scale 0.0005 --seed 11 -o "$WL" >/dev/null

# ----- phase 1: solve once, durably -----
start_server
LOAD=$("$MCSS" query -c "unix:$SOCK" load -w "$WL")
DIGEST=$(echo "$LOAD" | json_field digest)
[ -n "$DIGEST" ] && [ "$DIGEST" != "" ] || fail "load returned no digest: $LOAD"

SOLVE1=$("$MCSS" query -c "unix:$SOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "first solve failed"
echo "$SOLVE1" | grep -q '"cached":false' || fail "first solve was not cold: $SOLVE1"
PLAN1=$(echo "$SOLVE1" | json_field plan_digest)
[ -n "$PLAN1" ] || fail "first solve carried no plan_digest: $SOLVE1"

# ----- phase 2: kill -9, restart, same answer from the journal -----
stop_server_hard
start_server
SOLVE2=$("$MCSS" query -c "unix:$SOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "post-crash solve failed"
echo "$SOLVE2" | grep -q '"cached":true' \
  || fail "post-crash solve was not a cache hit: $SOLVE2"
PLAN2=$(echo "$SOLVE2" | json_field plan_digest)
[ "$PLAN1" = "$PLAN2" ] \
  || fail "plan digest changed across the crash: $PLAN1 vs $PLAN2"

# ----- phase 3: the exit-code contract under an open circuit -----
"$MCSS" query -c "unix:$SOCK" shutdown >/dev/null 2>&1 || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
start_server --start-degraded --breaker-failures 1 --breaker-cooldown-ms 3600000

# A cache hit is a full answer: exit 0, not degraded.
HIT=$("$MCSS" query -c "unix:$SOCK" solve --digest "$DIGEST" --tau 50) \
  || fail "cache hit under open circuit should exit 0"
echo "$HIT" | grep -q '"degraded"' && fail "cache hit must not be degraded: $HIT"

# A miss degrades to the journaled plan: exit 2, reply discloses both.
set +e
MISS=$("$MCSS" query -c "unix:$SOCK" solve --digest "$DIGEST" --tau 60 2>/dev/null)
RC=$?
set -e
[ "$RC" -eq 2 ] || fail "degraded solve should exit 2, got $RC: $MISS"
echo "$MISS" | grep -q '"degraded":true' || fail "reply not marked degraded: $MISS"
echo "$MISS" | grep -q '"requested_tau":60' || fail "requested_tau missing: $MISS"
PLAN3=$(echo "$MISS" | json_field plan_digest)
[ "$PLAN1" = "$PLAN3" ] || fail "degraded reply served a different plan: $PLAN3"

# Chaos cannot drill a plan that was never solved at these params: exit 2.
set +e
"$MCSS" query -c "unix:$SOCK" chaos --digest "$DIGEST" --tau 60 >/dev/null 2>&1
RC=$?
set -e
[ "$RC" -eq 2 ] || fail "chaos under open circuit should exit 2, got $RC"

"$MCSS" query -c "unix:$SOCK" shutdown >/dev/null 2>&1 || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "serve_resilience: OK"
