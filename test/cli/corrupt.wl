mcss-workload 9
