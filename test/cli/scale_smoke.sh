#!/bin/sh
# Scale smoke: a Spotify cold solve at --domains 2 must produce a
# byte-identical plan file to --domains 1 (the domain-parallel Stage-1
# is deterministic), and the plan must pass the full verifier +
# simulated-replay audit. CI runs this at --scale 0.1; the runtest
# rule uses a smaller scale to stay inside the tier-1 budget.
#
# usage: scale_smoke.sh path/to/mcss [scale]
set -eu

MCSS=${1:?usage: scale_smoke.sh path/to/mcss [scale]}
SCALE=${2:-0.1}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/mcss-scale-smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT INT TERM

echo "cold solve at scale $SCALE, domains 1"
"$MCSS" solve --trace spotify --scale "$SCALE" --seed 11 --tau 100 \
  --no-verify --save-plan "$DIR/d1.plan" > "$DIR/d1.out"

echo "cold solve at scale $SCALE, domains 2"
"$MCSS" solve --trace spotify --scale "$SCALE" --seed 11 --tau 100 --domains 2 \
  --no-verify --save-plan "$DIR/d2.plan" > "$DIR/d2.out"

if ! cmp -s "$DIR/d1.plan" "$DIR/d2.plan"; then
  echo "FAIL: --domains 2 plan differs from --domains 1" >&2
  exit 1
fi
echo "plans byte-identical across domain counts"

echo "verifier + replay audit of the parallel plan"
"$MCSS" verify --trace spotify --scale "$SCALE" --seed 11 --tau 100 \
  --plan "$DIR/d2.plan" > "$DIR/verify.out"
grep -q "verifier: CLEAN" "$DIR/verify.out"

echo "scale smoke passed"
