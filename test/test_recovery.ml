(* Tests for outage recovery and heterogeneous right-sizing. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier
module Solver = Mcss_core.Solver
module Right_size = Mcss_core.Right_size
module Instance = Mcss_pricing.Instance
module Billing = Mcss_pricing.Billing
module Reprovision = Mcss_dynamic.Reprovision
module Recovery = Mcss_dynamic.Recovery

let plan_for p = Reprovision.initial p

let valid (plan : Reprovision.plan) =
  Verifier.is_valid
    (Verifier.verify plan.Reprovision.problem plan.Reprovision.selection
       plan.Reprovision.allocation)

let test_replan_after_one_failure () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let plan = plan_for p in
  Helpers.check_int "three VMs initially" 3 (Allocation.num_vms plan.Reprovision.allocation);
  let plan', stats = Recovery.replan plan ~failed:[ 0 ] in
  Helpers.check_int "one lost" 1 stats.Recovery.vms_lost;
  Helpers.check_bool "pairs rehomed" true (stats.Recovery.pairs_rehomed > 0);
  Helpers.check_bool "recovered plan verifies" true (valid plan');
  (* Input untouched. *)
  Helpers.check_int "input intact" 3 (Allocation.num_vms plan.Reprovision.allocation)

let test_replan_all_failed () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let plan = plan_for p in
  let plan', stats = Recovery.replan plan ~failed:[ 0; 1; 2 ] in
  Helpers.check_int "all lost" 3 stats.Recovery.vms_lost;
  Helpers.check_int "all rehomed" 5 stats.Recovery.pairs_rehomed;
  Helpers.check_bool "rebuilt from nothing" true (valid plan')

let test_replan_unknown_ids_ignored () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let plan = plan_for p in
  let plan', stats = Recovery.replan plan ~failed:[ 99; -1 ] in
  Helpers.check_int "nothing lost" 0 stats.Recovery.vms_lost;
  Helpers.check_int "nothing rehomed" 0 stats.Recovery.pairs_rehomed;
  Helpers.check_bool "still valid" true (valid plan')

let test_replan_then_second_failure () =
  (* Stats are per-call: a second failure right after a repair counts
     only its own damage, not the first one's again. *)
  let p = Helpers.fig1_problem ~capacity:50. () in
  let plan = plan_for p in
  let plan1, stats1 = Recovery.replan plan ~failed:[ 0 ] in
  Helpers.check_bool "first repair verifies" true (valid plan1);
  let plan2, stats2 = Recovery.replan plan1 ~failed:[ 0 ] in
  Helpers.check_int "second failure loses one VM" 1 stats2.Recovery.vms_lost;
  Helpers.check_bool "second repair verifies" true (valid plan2);
  let total = stats1.Recovery.pairs_rehomed + stats2.Recovery.pairs_rehomed in
  Helpers.check_bool "no double counting" true
    (total <= 2 * Mcss_workload.Workload.num_pairs p.Problem.workload);
  (* Replaying the same failure on the untouched input is idempotent. *)
  let _, stats1' = Recovery.replan plan ~failed:[ 0 ] in
  Helpers.check_int "replay: same vms lost" stats1.Recovery.vms_lost
    stats1'.Recovery.vms_lost;
  Helpers.check_int "replay: same pairs rehomed" stats1.Recovery.pairs_rehomed
    stats1'.Recovery.pairs_rehomed;
  Helpers.check_int "replay: same vms added" stats1.Recovery.vms_added
    stats1'.Recovery.vms_added

let prop_recovery_always_valid =
  Helpers.qtest ~count:60 "recovery from random failures keeps plans valid"
    Helpers.problem_arbitrary (fun p ->
      let plan = plan_for p in
      let n = Allocation.num_vms plan.Reprovision.allocation in
      if n = 0 then true
      else begin
        (* Kill every third VM. *)
        let failed = List.filter (fun i -> i mod 3 = 0) (List.init n (fun i -> i)) in
        let plan', stats = Recovery.replan plan ~failed in
        valid plan' && stats.Recovery.vms_lost = List.length failed
      end)

(* ----- right-sizing ----- *)

let test_right_size_downsizes_tail () =
  (* Two full VMs and one nearly empty: the tail VM drops to the smallest
     type that fits. Allocation computed against a c3.2xlarge baseline. *)
  let a = Allocation.create ~capacity:1000. in
  let fill vm load topic =
    Allocation.place a vm ~topic ~ev:(load /. 2.) ~subscribers:[| 0 |] ~from:0 ~count:1
  in
  let b0 = Allocation.deploy a and b1 = Allocation.deploy a and b2 = Allocation.deploy a in
  fill b0 1000. 0;
  fill b1 900. 1;
  fill b2 100. 2;
  let r =
    Right_size.solve a ~baseline:Instance.c3_2xlarge ~catalogue:Instance.catalogue
      ~horizon_hours:240. ~term:Billing.On_demand
  in
  Helpers.check_int "three assignments" 3 (List.length r.Right_size.assignments);
  let of_vm id =
    (List.find (fun asg -> asg.Right_size.vm = id) r.Right_size.assignments)
      .Right_size.instance.Instance.name
  in
  Helpers.check_bool "full VM keeps the big type" true (of_vm 0 = "c3.2xlarge");
  (* 100/1000 of a 256-mbps baseline = 25.6 mbps -> c3.large (64) fits. *)
  Alcotest.(check string) "tail VM downsized" "c3.large" (of_vm 2);
  Helpers.check_bool "saves money" true (r.Right_size.mixed_cost < r.Right_size.uniform_cost);
  Helpers.check_bool "saving consistent" true (r.Right_size.saving_pct > 0.)

let test_right_size_never_violates_capacity () =
  let rng = Mcss_prng.Rng.create 99 in
  let p =
    Helpers.random_problem rng ~num_topics:60 ~num_subscribers:150 ~max_rate:30
      ~max_interests:6 ~tau:60. ~capacity:500.
  in
  let r = Solver.solve p in
  let rs =
    Right_size.solve r.Solver.allocation ~baseline:Instance.c3_8xlarge
      ~catalogue:Instance.catalogue ~horizon_hours:240. ~term:Billing.On_demand
  in
  List.iter
    (fun asg ->
      let cap =
        500. *. asg.Right_size.instance.Instance.bandwidth_mbps
        /. Instance.c3_8xlarge.Instance.bandwidth_mbps
      in
      if asg.Right_size.load > cap +. 1e-6 then
        Alcotest.failf "VM %d overloaded: %g > %g" asg.Right_size.vm asg.Right_size.load cap)
    rs.Right_size.assignments;
  Helpers.check_bool "never more expensive" true
    (rs.Right_size.mixed_cost <= rs.Right_size.uniform_cost +. 1e-9)

let test_right_size_rejects_empty_catalogue () =
  let a = Allocation.create ~capacity:100. in
  Alcotest.check_raises "empty" (Invalid_argument "Right_size.solve: empty catalogue")
    (fun () ->
      ignore
        (Right_size.solve a ~baseline:Instance.c3_large ~catalogue:[] ~horizon_hours:1.
           ~term:Billing.On_demand))

let test_right_size_pp () =
  let a = Allocation.create ~capacity:100. in
  let vm = Allocation.deploy a in
  Allocation.place a vm ~topic:0 ~ev:10. ~subscribers:[| 0 |] ~from:0 ~count:1;
  let r =
    Right_size.solve a ~baseline:Instance.c3_large ~catalogue:Instance.catalogue
      ~horizon_hours:240. ~term:Billing.On_demand
  in
  let s = Format.asprintf "%a" Right_size.pp r in
  Helpers.check_bool "mentions mix" true (Helpers.contains ~needle:"c3.large" s)

let suite =
  [
    Alcotest.test_case "replan after one failure" `Quick test_replan_after_one_failure;
    Alcotest.test_case "replan all failed" `Quick test_replan_all_failed;
    Alcotest.test_case "replan unknown ids" `Quick test_replan_unknown_ids_ignored;
    Alcotest.test_case "replan then second failure" `Quick test_replan_then_second_failure;
    prop_recovery_always_valid;
    Alcotest.test_case "right-size downsizes tail" `Quick test_right_size_downsizes_tail;
    Alcotest.test_case "right-size capacity safe" `Quick test_right_size_never_violates_capacity;
    Alcotest.test_case "right-size rejects empty catalogue" `Quick
      test_right_size_rejects_empty_catalogue;
    Alcotest.test_case "right-size pp" `Quick test_right_size_pp;
  ]
