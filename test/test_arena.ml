(* Tests for the flat-array arena: growable int/float buffers,
   generation-stamped sets, the open-addressing int table, pair
   encoding, and CSR construction. *)

module Arena = Mcss_core.Arena

let test_ibuf () =
  let b = Arena.Ibuf.create ~capacity:2 () in
  Helpers.check_int "empty" 0 (Arena.Ibuf.length b);
  for i = 0 to 9 do
    Arena.Ibuf.push b (i * i)
  done;
  Helpers.check_int "length" 10 (Arena.Ibuf.length b);
  Helpers.check_int "get" 49 (Arena.Ibuf.get b 7);
  Arena.Ibuf.set b 7 (-1);
  Helpers.check_int "set" (-1) (Arena.Ibuf.get b 7);
  Helpers.check_bool "sub" true (Arena.Ibuf.sub b ~pos:2 ~len:3 = [| 4; 9; 16 |]);
  Arena.Ibuf.clear b;
  Helpers.check_int "cleared" 0 (Arena.Ibuf.length b);
  Arena.Ibuf.push b 5;
  Helpers.check_bool "reused after clear" true (Arena.Ibuf.to_array b = [| 5 |])

let test_fbuf () =
  let b = Arena.Fbuf.create () in
  Arena.Fbuf.push b 1.5;
  Arena.Fbuf.push b 2.5;
  Arena.Fbuf.add b 0 0.25;
  Helpers.check_float "add" 1.75 (Arena.Fbuf.get b 0);
  Helpers.check_float "sum" 4.25 (Arena.Fbuf.sum b)

let test_stamp_set () =
  let s = Arena.Stamp_set.create 4 in
  Helpers.check_bool "fresh empty" false (Arena.Stamp_set.mem s 3);
  Arena.Stamp_set.add s 3;
  Helpers.check_bool "added" true (Arena.Stamp_set.mem s 3);
  Arena.Stamp_set.clear s;
  Helpers.check_bool "cleared is O(1) and empty" false (Arena.Stamp_set.mem s 3);
  Arena.Stamp_set.ensure s 100;
  Arena.Stamp_set.add s 99;
  Helpers.check_bool "grown" true (Arena.Stamp_set.mem s 99)

let test_int_table () =
  let t = Arena.Int_table.create ~capacity:4 () in
  Helpers.check_int "find absent" Arena.Int_table.absent (Arena.Int_table.find t 42);
  (* Push through several growth rounds. *)
  for k = 0 to 999 do
    Arena.Int_table.set t (k * 7) k
  done;
  Helpers.check_int "length" 1000 (Arena.Int_table.length t);
  Helpers.check_int "find" 500 (Arena.Int_table.find t 3500);
  Arena.Int_table.set t 3500 (-5);
  Helpers.check_int "overwrite" (-5) (Arena.Int_table.find t 3500);
  Arena.Int_table.remove t 3500;
  Helpers.check_int "removed" Arena.Int_table.absent (Arena.Int_table.find t 3500);
  Helpers.check_int "length after remove" 999 (Arena.Int_table.length t);
  (* Delete-heavy churn exercises tombstone rehashing. *)
  for k = 0 to 999 do
    Arena.Int_table.remove t (k * 7);
    Arena.Int_table.set t (k * 7 + 1) k
  done;
  Helpers.check_int "churned length" 1000 (Arena.Int_table.length t);
  Helpers.check_int "churned find" 123 (Arena.Int_table.find t (123 * 7 + 1));
  Arena.Int_table.map_values_inplace (fun v -> v * 2) t;
  Helpers.check_int "mapped" 246 (Arena.Int_table.find t (123 * 7 + 1));
  let n = ref 0 in
  Arena.Int_table.iter (fun _ _ -> incr n) t;
  Helpers.check_int "iter visits live entries" 1000 !n;
  Arena.Int_table.reset t;
  Helpers.check_int "reset" 0 (Arena.Int_table.length t)

let test_encode_pair () =
  List.iter
    (fun (t, v) ->
      let k = Arena.encode_pair ~topic:t ~subscriber:v in
      let t', v' = Arena.decode_pair k in
      Helpers.check_int "topic round-trips" t t';
      Helpers.check_int "subscriber round-trips" v v')
    [ (0, 0); (1, 2); (1_000_000, 4_900_000); ((1 lsl 31) - 1, (1 lsl 31) - 1) ]

let test_csr () =
  let counts = [| 2; 0; 3 |] in
  let csr =
    Arena.Csr.build_rows ~rows:3 ~counts ~fill:(fun ~write ->
        write ~row:2 30; write ~row:0 1; write ~row:2 31; write ~row:0 2;
        write ~row:2 32)
  in
  Helpers.check_int "rows" 3 (Arena.Csr.rows csr);
  Helpers.check_int "row 0 length" 2 (Arena.Csr.row_length csr 0);
  Helpers.check_int "row 1 length" 0 (Arena.Csr.row_length csr 1);
  Helpers.check_bool "row 0 in fill order" true (Arena.Csr.row csr 0 = [| 1; 2 |]);
  Helpers.check_bool "row 2 in fill order" true
    (Arena.Csr.row csr 2 = [| 30; 31; 32 |]);
  let seen = ref [] in
  Arena.Csr.iter_row csr 2 (fun x -> seen := x :: !seen);
  Helpers.check_bool "iter_row" true (List.rev !seen = [ 30; 31; 32 ]);
  (* Underfilling a row is a bug, not a silent empty slot. *)
  match
    Arena.Csr.build_rows ~rows:1 ~counts:[| 2 |] ~fill:(fun ~write ->
        write ~row:0 1)
  with
  | _ -> Alcotest.fail "expected underfill to raise"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "ibuf" `Quick test_ibuf;
    Alcotest.test_case "fbuf" `Quick test_fbuf;
    Alcotest.test_case "stamp set" `Quick test_stamp_set;
    Alcotest.test_case "int table" `Quick test_int_table;
    Alcotest.test_case "encode/decode pair" `Quick test_encode_pair;
    Alcotest.test_case "csr" `Quick test_csr;
  ]
