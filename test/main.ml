let () =
  Alcotest.run "mcss"
    [
      ("prng", Test_prng.suite);
      ("dist", Test_dist.suite);
      ("vec", Test_vec.suite);
      ("workload", Test_workload.suite);
      ("stats", Test_stats.suite);
      ("wio", Test_wio.suite);
      ("pricing", Test_pricing.suite);
      ("problem", Test_problem.suite);
      ("selection", Test_selection.suite);
      ("allocation", Test_allocation.suite);
      ("packing", Test_packing.suite);
      ("lower-bound", Test_lower_bound.suite);
      ("verifier", Test_verifier.suite);
      ("solver", Test_solver.suite);
      ("exact", Test_exact.suite);
      ("sim", Test_sim.suite);
      ("traces", Test_traces.suite);
      ("report", Test_report.suite);
      ("paper-example", Test_paper_example.suite);
      ("dynamic", Test_dynamic.suite);
      ("extensions", Test_extensions.suite);
      ("broker", Test_broker.suite);
      ("budget", Test_budget.suite);
      ("fit", Test_fit.suite);
      ("edge-list", Test_edge_list.suite);
      ("lp-export", Test_lp_export.suite);
      ("churn+billing", Test_churn.suite);
      ("forecast", Test_forecast.suite);
      ("histogram", Test_histogram.suite);
      ("plan-io", Test_plan_io.suite);
      ("recovery", Test_recovery.suite);
      ("resilience", Test_resilience.suite);
      ("boundaries", Test_boundaries.suite);
      ("obs", Test_obs.suite);
    ]
