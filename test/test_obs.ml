(* lib/obs: metric primitives, histogram quantiles against known
   distributions, span nesting and exception safety, sink round-trips,
   and the zero-allocation guarantee on the disabled hot path. *)

module Registry = Mcss_obs.Registry
module Metric = Mcss_obs.Metric
module Span = Mcss_obs.Span
module Sink = Mcss_obs.Sink

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ----- counters and gauges ----- *)

let test_counter () =
  let c = Metric.Counter.make () in
  Alcotest.(check int) "fresh" 0 (Metric.Counter.value c);
  Metric.Counter.inc c;
  Metric.Counter.add c 41;
  Alcotest.(check int) "inc+add" 42 (Metric.Counter.value c)

let test_gauge () =
  let g = Metric.Gauge.make () in
  Metric.Gauge.set g 2.5;
  Metric.Gauge.add g 0.5;
  Alcotest.(check bool) "set+add" true (feq 3.0 (Metric.Gauge.value g))

(* ----- histogram bucket boundaries ----- *)

let test_histogram_boundaries () =
  (* linear 0..1 in 4: bounds 0.25 / 0.5 / 0.75 / 1.0 (upper-inclusive),
     plus the implicit overflow bucket. *)
  let bounds = Metric.Histogram.linear ~lo:0. ~hi:1. ~buckets:4 in
  Alcotest.(check (array (float 1e-9))) "linear bounds"
    [| 0.25; 0.5; 0.75; 1.0 |] bounds;
  let h = Metric.Histogram.make ~buckets:bounds () in
  List.iter (Metric.Histogram.observe h)
    [ 0.25; 0.250001; 0.74; 1.0; 1.5; -3.; nan ];
  (* NaN dropped; -3 lands in the first bucket; 1.5 overflows. *)
  Alcotest.(check int) "count skips NaN" 6 (Metric.Histogram.count h);
  Alcotest.(check (array int)) "bucket assignment"
    [| 2; 1; 1; 1; 1 |] (Metric.Histogram.bucket_counts h);
  Alcotest.(check bool) "min" true (feq (-3.) (Metric.Histogram.min_value h));
  Alcotest.(check bool) "max" true (feq 1.5 (Metric.Histogram.max_value h));
  let e = Metric.Histogram.exponential ~lo:1. ~factor:2. ~buckets:4 in
  Alcotest.(check (array (float 1e-9))) "exponential bounds" [| 1.; 2.; 4.; 8. |] e

let test_histogram_rejects_bad_buckets () =
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.make: no buckets")
    (fun () -> ignore (Metric.Histogram.make ~buckets:[||] ()));
  Alcotest.(check bool) "non-increasing rejected" true
    (match Metric.Histogram.make ~buckets:[| 1.; 1. |] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----- quantiles against known distributions ----- *)

let test_quantile_uniform () =
  (* 0.5, 1.5, ..., 99.5 into unit-wide buckets: one sample per bucket,
     so every quantile is recoverable to within one bucket width. *)
  let h =
    Metric.Histogram.make
      ~buckets:(Metric.Histogram.linear ~lo:0. ~hi:100. ~buckets:100)
      ()
  in
  for i = 0 to 99 do
    Metric.Histogram.observe h (float_of_int i +. 0.5)
  done;
  List.iter
    (fun q ->
      let est = Metric.Histogram.quantile h q in
      let exact = 100. *. q in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within one bucket" (100. *. q))
        true
        (Float.abs (est -. exact) <= 1.0 +. 1e-9))
    [ 0.1; 0.25; 0.5; 0.9; 0.95; 0.99 ];
  (* Extremes clamp to the observed min/max, not to bucket edges. *)
  Alcotest.(check bool) "q=0 is min" true
    (feq 0.5 (Metric.Histogram.quantile h 0.));
  Alcotest.(check bool) "q=1 is max" true
    (feq 99.5 (Metric.Histogram.quantile h 1.))

let test_quantile_point_mass () =
  (* All mass at one value: every quantile must collapse onto it because
     interpolation is clamped to the observed min/max. *)
  let h =
    Metric.Histogram.make
      ~buckets:(Metric.Histogram.linear ~lo:0. ~hi:10. ~buckets:10)
      ()
  in
  for _ = 1 to 1000 do
    Metric.Histogram.observe h 7.3
  done;
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "q=%g on point mass" q)
        true
        (feq 7.3 (Metric.Histogram.quantile h q)))
    [ 0.; 0.5; 0.99; 1. ]

let test_quantile_edge_cases () =
  let h = Metric.Histogram.make () in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Metric.Histogram.quantile h 0.5));
  Alcotest.(check bool) "mean of empty is nan" true
    (Float.is_nan (Metric.Histogram.mean h));
  Metric.Histogram.observe h 1.0;
  Alcotest.(check bool) "q out of range" true
    (match Metric.Histogram.quantile h 1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----- registry semantics ----- *)

let test_registry_idempotent () =
  let r = Registry.create () in
  let c1 = Registry.counter r ~help:"h" "a.count" in
  let c2 = Registry.counter r "a.count" in
  Metric.Counter.inc c1;
  Metric.Counter.inc c2;
  Alcotest.(check int) "same cell" 2 (Metric.Counter.value c1);
  Alcotest.(check int) "one sample" 1 (List.length (Registry.samples r));
  Alcotest.(check bool) "kind clash raises" true
    (match Registry.gauge r "a.count" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_registry_noop () =
  Alcotest.(check bool) "noop disabled" false (Registry.enabled Registry.noop);
  let c = Registry.counter Registry.noop "x" in
  Metric.Counter.inc c;
  Alcotest.(check int) "noop has no samples" 0
    (List.length (Registry.samples Registry.noop));
  Alcotest.(check int) "noop has no spans" 0
    (List.length (Registry.span_roots Registry.noop))

(* ----- spans: nesting, ordering, aggregation, exceptions ----- *)

let test_span_nesting () =
  let r = Registry.create () in
  Span.with_ r ~name:"solve" (fun () ->
      Span.with_ r ~name:"stage1" (fun () -> ());
      for _ = 1 to 3 do
        Span.with_ r ~name:"stage2" (fun () -> ())
      done);
  Span.with_ r ~name:"simulate" (fun () -> ());
  let roots = Span.roots r in
  Alcotest.(check (list string)) "root order" [ "solve"; "simulate" ]
    (List.map (fun n -> n.Span.span_name) roots);
  let solve = List.hd roots in
  Alcotest.(check (list string)) "child first-execution order"
    [ "stage1"; "stage2" ]
    (List.map (fun n -> n.Span.span_name) solve.Span.children);
  let stage2 = Option.get (Span.find roots "stage2") in
  Alcotest.(check int) "repeated spans aggregate" 3 stage2.Span.count;
  Alcotest.(check (list string)) "flatten paths"
    [ "solve"; "solve/stage1"; "solve/stage2"; "simulate" ]
    (List.map fst (Span.flatten roots));
  (* Parent duration covers its children. *)
  let child_ns =
    List.fold_left
      (fun acc n -> Int64.add acc n.Span.total_ns)
      0L solve.Span.children
  in
  Alcotest.(check bool) "parent >= sum of children" true
    (solve.Span.total_ns >= child_ns)

let test_span_exception_safe () =
  let r = Registry.create () in
  (try
     Span.with_ r ~name:"outer" (fun () ->
         Span.with_ r ~name:"boom" (fun () -> failwith "expected"))
   with Failure _ -> ());
  let roots = Span.roots r in
  let boom = Option.get (Span.find roots "boom") in
  Alcotest.(check int) "raising span recorded" 1 boom.Span.count;
  (* The stack unwound: a new span lands at the root, not under "outer". *)
  Span.with_ r ~name:"after" (fun () -> ());
  Alcotest.(check (list string)) "stack unwound" [ "outer"; "after" ]
    (List.map (fun n -> n.Span.span_name) (Span.roots r))

(* ----- sink round-trips ----- *)

(* A deliberately tiny JSON reader: enough to check each JSONL line is
   well-formed and recover flat string/number fields. *)
let parse_json_object line =
  let n = String.length line in
  let fail msg = failwith (Printf.sprintf "%s in %S" msg line) in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else '\000' in
  let advance () = incr pos in
  let expect c = if peek () <> c then fail (Printf.sprintf "expected %c" c) else advance () in
  let skip_ws () = while !pos < n && (peek () = ' ' || peek () = '\t') do advance () done in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              pos := !pos + 4;
              Buffer.add_char buf '?'
          | c -> Buffer.add_char buf c; advance ());
          go ()
      | '\000' -> fail "unterminated string"
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec skip_value () =
    skip_ws ();
    match peek () with
    | '"' -> ignore (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then advance ()
        else
          let rec items () =
            skip_value ();
            skip_ws ();
            if peek () = ',' then (advance (); items ()) else expect ']'
          in
          items ()
    | _ ->
        while
          !pos < n
          &&
          match peek () with
          | ',' | '}' | ']' -> false
          | _ -> true
        do
          advance ()
        done
  in
  let fields = ref [] in
  skip_ws ();
  expect '{';
  let rec members () =
    skip_ws ();
    let key = parse_string () in
    skip_ws ();
    expect ':';
    skip_ws ();
    let start = !pos in
    (match peek () with
    | '"' -> fields := (key, `String (parse_string ())) :: !fields
    | _ ->
        skip_value ();
        fields := (key, `Raw (String.sub line start (!pos - start))) :: !fields);
    skip_ws ();
    if peek () = ',' then (advance (); members ()) else expect '}'
  in
  members ();
  List.rev !fields

let field fields k =
  match List.assoc_opt k fields with
  | Some (`String s) -> s
  | Some (`Raw s) -> s
  | None -> failwith ("missing field " ^ k)

let test_jsonl_roundtrip () =
  let r = Registry.create () in
  Metric.Counter.add (Registry.counter r ~help:"a counter" "events.total") 7;
  Metric.Gauge.set (Registry.gauge r "cost \"quoted\"\n") 12.5;
  let h =
    Registry.histogram r
      ~buckets:(Metric.Histogram.linear ~lo:0. ~hi:1. ~buckets:2)
      "util"
  in
  Metric.Histogram.observe h 0.4;
  Metric.Histogram.observe h 0.9;
  Span.with_ r ~name:"run" (fun () -> Span.with_ r ~name:"inner" (fun () -> ()));
  let lines =
    String.split_on_char '\n' (Sink.jsonl r) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per metric + span" 5 (List.length lines);
  let parsed = List.map parse_json_object lines in
  List.iter
    (fun fields -> Alcotest.(check bool) "has type" true (List.mem_assoc "type" fields))
    parsed;
  let by_name name =
    List.find (fun f -> List.assoc_opt "name" f = Some (`String name)) parsed
  in
  Alcotest.(check string) "counter value survives" "7"
    (field (by_name "events.total") "value");
  Alcotest.(check string) "gauge value survives" "12.5"
    (field (by_name "cost \"quoted\"\n") "value");
  let hist = by_name "util" in
  Alcotest.(check string) "histogram count" "2" (field hist "count");
  let span_lines =
    List.filter (fun f -> List.assoc_opt "type" f = Some (`String "span")) parsed
  in
  Alcotest.(check (list string)) "span paths" [ "run"; "run/inner" ]
    (List.map (fun f -> field f "path") span_lines)

let test_prometheus_shape () =
  let r = Registry.create () in
  Metric.Counter.inc (Registry.counter r ~help:"events" "sim.events");
  let h =
    Registry.histogram r
      ~buckets:(Metric.Histogram.linear ~lo:0. ~hi:1. ~buckets:2)
      "util"
  in
  Metric.Histogram.observe h 0.4;
  Metric.Histogram.observe h 0.9;
  Span.with_ r ~name:"run" (fun () -> ());
  let text = Sink.prometheus r in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (contains needle))
    [
      "# TYPE mcss_sim_events counter";
      "mcss_sim_events 1";
      "# TYPE mcss_util histogram";
      "mcss_util_bucket{le=\"+Inf\"} 2";
      "mcss_util_count 2";
      "mcss_span_seconds{path=\"run\"}";
    ];
  (* Cumulative bucket counts must be nondecreasing and end at count. *)
  let last_bucket = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.length line > 16 && String.sub line 0 16 = "mcss_util_bucket" then begin
           match String.rindex_opt line ' ' with
           | Some i ->
               let v = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
               Alcotest.(check bool) "cumulative nondecreasing" true (v >= !last_bucket);
               last_bucket := v
           | None -> ()
         end);
  Alcotest.(check int) "cumulative ends at count" 2 !last_bucket

(* Exposition-format escaping: a hostile help string or span name must
   come back intact after unescaping, and must never split its line. *)
let prom_unescape ~quote s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char buf '\\'
       | 'n' -> Buffer.add_char buf '\n'
       | '"' when quote -> Buffer.add_char buf '"'
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let test_prometheus_escaping_roundtrip () =
  let hostile = "line one\nline two \\ and \"quotes\"" in
  let r = Registry.create () in
  Metric.Counter.inc (Registry.counter r ~help:hostile "esc.counter");
  Span.with_ r ~name:hostile (fun () -> ());
  let text = Sink.prometheus r in
  let lines = String.split_on_char '\n' text in
  (* No payload may have introduced a raw newline: every line is either
     a comment, empty (trailing), or "name{...} value". *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        Alcotest.(check bool)
          (Printf.sprintf "sample line %S has a value" line)
          true
          (String.contains line ' '))
    lines;
  let help_line =
    List.find
      (fun l ->
        String.length l > 7
        && String.sub l 0 7 = "# HELP "
        &&
        let rec contains i =
          i + 11 <= String.length l
          && (String.sub l i 11 = "esc_counter" || contains (i + 1))
        in
        contains 0)
      lines
  in
  (* "# HELP mcss_esc_counter <escaped help>" *)
  let escaped_help =
    let after_name =
      let i = String.index_from help_line 7 ' ' in
      String.sub help_line (i + 1) (String.length help_line - i - 1)
    in
    after_name
  in
  Alcotest.(check string) "help string survives the round trip" hostile
    (prom_unescape ~quote:false escaped_help);
  let span_line =
    List.find
      (fun l ->
        String.length l > 24 && String.sub l 0 24 = "mcss_span_seconds{path=\"")
      lines
  in
  let escaped_path =
    let start = 24 in
    let close = String.rindex span_line '"' in
    String.sub span_line start (close - start)
  in
  Alcotest.(check string) "span path label survives the round trip" hostile
    (prom_unescape ~quote:true escaped_path)

let test_console_renders () =
  let r = Registry.create () in
  Metric.Counter.inc (Registry.counter r "a");
  Span.with_ r ~name:"root" (fun () -> Span.with_ r ~name:"kid" (fun () -> ()));
  let text = Sink.console r in
  Alcotest.(check bool) "mentions metric" true
    (String.length text > 0
    &&
    let contains needle =
      let nl = String.length needle and tl = String.length text in
      let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
      go 0
    in
    contains "a" && contains "span tree:" && contains "kid");
  Alcotest.(check string) "empty registry has a fallback" "(no metrics recorded)\n"
    (Sink.console (Registry.create ()))

(* ----- the zero-allocation regression gate ----- *)

let test_noop_hot_path_does_not_allocate () =
  let c = Registry.counter Registry.noop "hot" in
  let g = Registry.gauge Registry.noop "hotg" in
  let h = Registry.histogram Registry.noop "hoth" in
  (* Warm up so any one-time allocation is out of the way. *)
  for _ = 1 to 100 do
    Metric.Counter.inc c;
    Metric.Gauge.set g 1.0;
    Metric.Histogram.observe h 0.5
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Metric.Counter.inc c;
    Metric.Counter.add c 2;
    Metric.Gauge.set g 2.0;
    Metric.Histogram.observe h 0.25
  done;
  let allocated = Gc.minor_words () -. before in
  (* 40k metric operations; allow a handful of words for the Gc probe
     itself. A boxing bug would show up as >= 2 words per operation. *)
  Alcotest.(check bool)
    (Printf.sprintf "noop hot path allocated %.0f words" allocated)
    true (allocated < 100.)

let test_noop_span_calls_through () =
  let hits = ref 0 in
  let x = Span.with_ Registry.noop ~name:"s" (fun () -> incr hits; 42) in
  Alcotest.(check int) "value returned" 42 x;
  Alcotest.(check int) "thunk ran once" 1 !hits;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Span.roots Registry.noop))

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram boundaries" `Quick test_histogram_boundaries;
    Alcotest.test_case "histogram rejects bad buckets" `Quick
      test_histogram_rejects_bad_buckets;
    Alcotest.test_case "quantiles: uniform" `Quick test_quantile_uniform;
    Alcotest.test_case "quantiles: point mass" `Quick test_quantile_point_mass;
    Alcotest.test_case "quantiles: edge cases" `Quick test_quantile_edge_cases;
    Alcotest.test_case "registry idempotent" `Quick test_registry_idempotent;
    Alcotest.test_case "registry noop" `Quick test_registry_noop;
    Alcotest.test_case "span nesting and aggregation" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_shape;
    Alcotest.test_case "prometheus escaping round-trip" `Quick
      test_prometheus_escaping_roundtrip;
    Alcotest.test_case "console sink" `Quick test_console_renders;
    Alcotest.test_case "noop hot path zero-alloc" `Quick
      test_noop_hot_path_does_not_allocate;
    Alcotest.test_case "noop span calls through" `Quick test_noop_span_calls_through;
  ]
