(* Tests for Stage 1: the benefit-cost ratio, GSP (optimised vs literal
   reference), RSP, and the per-subscriber optimal DP. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection

let test_benefit_cost_ratio () =
  (* rem <= 0: already satisfied -> no benefit. *)
  Helpers.check_float "satisfied" 0. (Selection.benefit_cost_ratio ~ev:5. ~rem:0.);
  Helpers.check_float "satisfied (negative)" 0. (Selection.benefit_cost_ratio ~ev:5. ~rem:(-3.));
  (* ev >= rem: benefit 1, cost 2 ev. *)
  Helpers.check_float "exceeding" (1. /. 20.) (Selection.benefit_cost_ratio ~ev:10. ~rem:4.);
  (* ev < rem: benefit ev/rem, cost 2 ev -> 1 / (2 rem). *)
  Helpers.check_float "partial" (1. /. 16.) (Selection.benefit_cost_ratio ~ev:2. ~rem:8.)

let test_below_threshold_topics_tie () =
  (* All topics with ev < rem share the ratio 1/(2 rem). *)
  Helpers.check_float "tie"
    (Selection.benefit_cost_ratio ~ev:2. ~rem:8.)
    (Selection.benefit_cost_ratio ~ev:7. ~rem:8.)

let selection_to_lists s =
  Array.to_list (Array.map Array.to_list s.Selection.chosen)

let test_gsp_prefers_cheap_cover () =
  (* tau = 10; topics: 3, 100, 10. Greedy picks the below-threshold topic
     3 first, then must finish with the cheapest exceeding topic, 10 —
     avoiding the expensive 100 that RSP-in-id-order would grab. *)
  let w = Helpers.workload ~rates:[ 3.; 100.; 10. ] ~interests:[ [ 0; 1; 2 ] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:1000. Problem.unit_costs in
  let gsp = Selection.gsp p in
  Alcotest.(check (list (list int))) "gsp picks {0, 2}" [ [ 0; 2 ] ] (selection_to_lists gsp);
  Helpers.check_float "gsp rate" 13. gsp.Selection.selected_rate.(0);
  let rsp = Selection.rsp p in
  Alcotest.(check (list (list int))) "rsp picks {0, 1}" [ [ 0; 1 ] ] (selection_to_lists rsp);
  Helpers.check_float "rsp rate" 103. rsp.Selection.selected_rate.(0)

let test_gsp_single_topic_cover () =
  (* When every topic exceeds tau_v, GSP takes exactly the cheapest one. *)
  let w = Helpers.workload ~rates:[ 50.; 20.; 90. ] ~interests:[ [ 0; 1; 2 ] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:1000. Problem.unit_costs in
  let s = Selection.gsp p in
  Alcotest.(check (list (list int))) "cheapest single" [ [ 1 ] ] (selection_to_lists s)

let test_gsp_takes_everything_when_needed () =
  let w = Helpers.workload ~rates:[ 2.; 3. ] ~interests:[ [ 0; 1 ] ] in
  let p = Problem.create ~workload:w ~tau:100. ~capacity:1000. Problem.unit_costs in
  let s = Selection.gsp p in
  Alcotest.(check (list (list int))) "all pairs" [ [ 0; 1 ] ] (selection_to_lists s);
  Helpers.check_bool "satisfies capped tau_v" true (Selection.satisfies p s)

let test_subscriber_without_interests () =
  let w = Helpers.workload ~rates:[ 2. ] ~interests:[ []; [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:5. ~capacity:100. Problem.unit_costs in
  let s = Selection.gsp p in
  Alcotest.(check (list (list int))) "empty choice" [ []; [ 0 ] ] (selection_to_lists s);
  Helpers.check_bool "still satisfies" true (Selection.satisfies p s)

let test_selection_bookkeeping () =
  let p = Helpers.fig1_problem () in
  let s = Selection.gsp p in
  Helpers.check_int "num_pairs" 5 s.Selection.num_pairs;
  Helpers.check_float "outgoing" 70. s.Selection.outgoing_rate;
  Helpers.check_bool "satisfies" true (Selection.satisfies p s)

let test_pairs_by_topic () =
  let p = Helpers.fig1_problem () in
  let s = Selection.gsp p in
  let groups = Selection.pairs_by_topic p s in
  Alcotest.(check (list (pair int (list int))))
    "regrouped"
    [ (0, [ 0; 1 ]); (1, [ 0; 1; 2 ]) ]
    (Array.to_list (Array.map (fun (t, subs) -> (t, Array.to_list subs)) groups))

let test_rsp_shuffled_satisfies () =
  let rng = Mcss_prng.Rng.create 3 in
  let p = Helpers.fig1_problem () in
  let s = Selection.rsp_shuffled rng p in
  Helpers.check_bool "satisfies" true (Selection.satisfies p s)

let test_optimal_dp_beats_greedy_trap () =
  (* tau = 10 with rates {6, 5, 4, 9}: GSP picks 4 (lowest id among
     below-threshold after ties? ids in rate order here)... the DP must
     find a cover of total exactly 10 = {6, 4}. *)
  let w = Helpers.workload ~rates:[ 6.; 5.; 4.; 9. ] ~interests:[ [ 0; 1; 2; 3 ] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:1000. Problem.unit_costs in
  match Selection.optimal_per_subscriber p with
  | None -> Alcotest.fail "DP refused an integral instance"
  | Some s ->
      Helpers.check_float "optimal rate = 10" 10. s.Selection.selected_rate.(0);
      Helpers.check_bool "satisfies" true (Selection.satisfies p s)

let test_optimal_dp_refuses_fractional () =
  let w = Helpers.workload ~rates:[ 1.5 ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:1. ~capacity:100. Problem.unit_costs in
  Helpers.check_bool "refuses" true (Selection.optimal_per_subscriber p = None)

let test_optimal_dp_respects_budget () =
  let w = Helpers.workload ~rates:[ 10. ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:8. ~capacity:100. Problem.unit_costs in
  Helpers.check_bool "over budget -> None" true
    (Selection.optimal_per_subscriber ~max_budget:5 p = None);
  Helpers.check_bool "within budget -> Some" true
    (Selection.optimal_per_subscriber ~max_budget:10 p <> None)

let same_selection a b =
  a.Selection.chosen = b.Selection.chosen
  && a.Selection.num_pairs = b.Selection.num_pairs

let prop_gsp_parallel_identical =
  Helpers.qtest ~count:80 "gsp_parallel is bit-identical to gsp (1, 2, 4 domains)"
    Helpers.problem_arbitrary (fun p ->
      let seq = Selection.gsp p in
      List.for_all
        (fun domains ->
          let par = Selection.gsp_parallel ~domains p in
          par.Selection.chosen = seq.Selection.chosen
          && par.Selection.selected_rate = seq.Selection.selected_rate
          && par.Selection.num_pairs = seq.Selection.num_pairs
          && par.Selection.outgoing_rate = seq.Selection.outgoing_rate)
        [ 1; 2; 4 ])

let prop_gsp_matches_reference =
  Helpers.qtest ~count:200 "gsp picks exactly the reference's sets"
    Helpers.problem_arbitrary (fun p ->
      same_selection (Selection.gsp p) (Selection.gsp_reference p))

let prop_all_selectors_satisfy =
  Helpers.qtest "gsp, rsp and DP all satisfy every subscriber"
    Helpers.problem_arbitrary (fun p ->
      Selection.satisfies p (Selection.gsp p)
      && Selection.satisfies p (Selection.rsp p)
      &&
      match Selection.optimal_per_subscriber p with
      | Some s -> Selection.satisfies p s
      | None -> true)

let prop_chosen_are_interests =
  Helpers.qtest "chosen topics are a duplicate-free subset of interests"
    Helpers.problem_arbitrary (fun p ->
      let w = p.Problem.workload in
      let s = Selection.gsp p in
      let ok = ref true in
      Array.iteri
        (fun v chosen ->
          let tv = Workload.interests w v in
          Array.iter (fun t -> if not (Array.mem t tv) then ok := false) chosen;
          for i = 1 to Array.length chosen - 1 do
            if chosen.(i) = chosen.(i - 1) then ok := false
          done)
        s.Selection.chosen;
      !ok)

let prop_optimal_no_worse_than_gsp =
  Helpers.qtest "per-subscriber DP never selects more bandwidth than GSP"
    Helpers.problem_arbitrary (fun p ->
      match Selection.optimal_per_subscriber p with
      | None -> QCheck.assume_fail ()
      | Some opt ->
          let gsp = Selection.gsp p in
          opt.Selection.outgoing_rate <= gsp.Selection.outgoing_rate +. 1e-6)

let prop_pairs_by_topic_domains_identical =
  Helpers.qtest ~count:80 "pairs_by_topic is identical at 1, 2, 4 and 7 domains"
    Helpers.problem_arbitrary (fun p ->
      let s = Selection.gsp p in
      let seq = Selection.pairs_by_topic p s in
      List.for_all
        (fun domains -> Selection.pairs_by_topic ~domains p s = seq)
        [ 1; 2; 4; 7 ])

let prop_pairs_by_topic_is_partition =
  Helpers.qtest "pairs_by_topic loses and invents nothing" Helpers.problem_arbitrary
    (fun p ->
      let s = Selection.gsp p in
      let groups = Selection.pairs_by_topic p s in
      let from_groups = Hashtbl.create 64 in
      Array.iter
        (fun (t, subs) ->
          Array.iter (fun v -> Hashtbl.replace from_groups (t, v) ()) subs)
        groups;
      let count = ref 0 in
      let ok = ref true in
      Selection.iter_pairs s (fun t v ->
          incr count;
          if not (Hashtbl.mem from_groups (t, v)) then ok := false);
      !ok && !count = Hashtbl.length from_groups && !count = s.Selection.num_pairs)

let suite =
  [
    Alcotest.test_case "benefit-cost ratio" `Quick test_benefit_cost_ratio;
    Alcotest.test_case "below-threshold topics tie" `Quick test_below_threshold_topics_tie;
    Alcotest.test_case "gsp prefers cheap cover" `Quick test_gsp_prefers_cheap_cover;
    Alcotest.test_case "gsp single-topic cover" `Quick test_gsp_single_topic_cover;
    Alcotest.test_case "gsp takes everything when needed" `Quick
      test_gsp_takes_everything_when_needed;
    Alcotest.test_case "subscriber without interests" `Quick test_subscriber_without_interests;
    Alcotest.test_case "selection bookkeeping (fig 1)" `Quick test_selection_bookkeeping;
    Alcotest.test_case "pairs_by_topic (fig 1)" `Quick test_pairs_by_topic;
    Alcotest.test_case "rsp_shuffled satisfies" `Quick test_rsp_shuffled_satisfies;
    Alcotest.test_case "optimal DP beats greedy trap" `Quick test_optimal_dp_beats_greedy_trap;
    Alcotest.test_case "optimal DP refuses fractional" `Quick test_optimal_dp_refuses_fractional;
    Alcotest.test_case "optimal DP respects budget" `Quick test_optimal_dp_respects_budget;
    prop_gsp_matches_reference;
    prop_gsp_parallel_identical;
    prop_all_selectors_satisfy;
    prop_chosen_are_interests;
    prop_optimal_no_worse_than_gsp;
    prop_pairs_by_topic_is_partition;
    prop_pairs_by_topic_domains_identical;
  ]
