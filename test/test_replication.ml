(* The replicated, sharded planning service: absolute journal indices
   and point-in-time seeks, leader-to-follower journal streaming (tail
   and full-snapshot resync), follower takeover after a leader crash,
   the consistent-hash ring, the fault-tolerant router's failover and
   no_quorum shedding, and the whole replication link driven through the
   byte-mangling Faulty proxy. *)

module Json = Mcss_serve.Json
module Protocol = Mcss_serve.Protocol
module Service = Mcss_serve.Service
module Server = Mcss_serve.Server
module Client = Mcss_serve.Client
module Journal = Mcss_serve.Journal
module Retry = Mcss_serve.Retry
module Faulty = Mcss_serve.Faulty
module Replication = Mcss_serve.Replication
module Ring = Mcss_serve.Ring
module Router = Mcss_serve.Router
module Rng = Mcss_prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_workload () =
  Helpers.workload ~rates:[ 20.; 10.; 5. ]
    ~interests:[ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ]

let ok_reply name reply =
  if not (Protocol.response_ok reply) then
    Alcotest.failf "%s: error reply %s" name (Json.to_string reply);
  reply

let str_field reply key =
  match Option.bind (Json.member key reply) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "reply lacks string %S: %s" key (Json.to_string reply)

let bool_field reply key =
  match Option.bind (Json.member key reply) Json.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.failf "reply lacks bool %S: %s" key (Json.to_string reply)

let expect_code name code reply =
  match Protocol.response_error reply with
  | Some (Some c, _) when c = code -> ()
  | _ ->
      Alcotest.failf "%s: wanted %s, got %s" name
        (Protocol.error_code_to_string code)
        (Json.to_string reply)

(* ----- scratch directories ----- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mcss-repl-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let journaled_config ?(snapshot_every = 256) ?(fsync = true) dir =
  {
    Service.default_config with
    Service.journal =
      Some
        {
          (Journal.default_config ~dir) with
          Journal.snapshot_every = snapshot_every;
          fsync;
        };
  }

let solve_line digest tau =
  Printf.sprintf {|{"req":"solve","digest":"%s","tau":%d}|} digest tau

let wait_until ?(timeout_s = 15.) ~what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* ----- journal: absolute indices, seeks, forensics ----- *)

let test_journal_indices () =
  with_dir (fun dir ->
      let config = { (Journal.default_config ~dir) with Journal.snapshot_every = 0 } in
      let j, _ = Journal.open_ config in
      check_int "fresh base" 0 (Journal.base_index j);
      check_int "fresh last" 0 (Journal.last_index j);
      Journal.append j "a";
      Journal.append j "b";
      Journal.append j "c";
      check_int "last counts appends" 3 (Journal.last_index j);
      Journal.snapshot j [ "S1"; "S2" ];
      check_int "snapshot advances base to the folded point" 3
        (Journal.base_index j);
      check_int "last unchanged by the fold" 3 (Journal.last_index j);
      check_int "WAL reset" 0 (Journal.wal_records j);
      Journal.append j "d";
      check_int "appends continue past the fold" 4 (Journal.last_index j);
      Journal.close j;
      (* Indices are durable: a restart reads base.mcssj back. *)
      let j2, replay = Journal.open_ config in
      check_int "base survives restart" 3 (Journal.base_index j2);
      check_int "last survives restart" 4 (Journal.last_index j2);
      check_bool "snapshot then WAL on replay" true
        (replay.Journal.records = [ (0, "S1"); (0, "S2"); (0, "d") ]);
      Journal.close j2)

let test_journal_read_from () =
  with_dir (fun dir ->
      let config = { (Journal.default_config ~dir) with Journal.snapshot_every = 0 } in
      let j, _ = Journal.open_ config in
      Journal.append j "a";
      Journal.append j "b";
      Journal.append j "c";
      check_bool "full tail from 0" true
        (Journal.read_from j ~index:0
        = Ok [ (1, 0, "a"); (2, 0, "b"); (3, 0, "c") ]);
      check_bool "mid tail" true
        (Journal.read_from j ~index:2 = Ok [ (3, 0, "c") ]);
      check_bool "caught up" true (Journal.read_from j ~index:3 = Ok []);
      check_bool "future index needs resync" true
        (Journal.read_from j ~index:4 = Error `Resync);
      Journal.snapshot j [ "S" ];
      check_bool "pre-base index needs resync" true
        (Journal.read_from j ~index:2 = Error `Resync);
      check_bool "base itself is servable" true
        (Journal.read_from j ~index:3 = Ok []);
      Journal.append j "d";
      check_bool "post-fold append indexed absolutely" true
        (Journal.read_from j ~index:3 = Ok [ (4, 0, "d") ]);
      let seen = ref [] in
      (match
         Journal.iter_from j ~index:3 (fun ~index ~epoch:_ p ->
             seen := (index, p) :: !seen)
       with
      | Ok n -> check_int "iter_from reports count" 1 n
      | Error `Resync -> Alcotest.fail "iter_from should serve the tail");
      check_bool "iter_from visits the tail" true (!seen = [ (4, "d") ]);
      (match Journal.install_snapshot j ~base:(-1) ~epoch:0 [] with
      | () -> Alcotest.fail "negative base must be rejected"
      | exception Invalid_argument _ -> ());
      Journal.close j)

let test_journal_install_snapshot () =
  with_dir (fun dir ->
      let config = { (Journal.default_config ~dir) with Journal.snapshot_every = 0 } in
      let j, _ = Journal.open_ config in
      Journal.append j "local-1";
      Journal.append j "local-2";
      (* A follower resync: whatever was here is replaced wholesale by
         the leader's state, positioned at the leader's index. *)
      Journal.install_snapshot j ~base:7 ~epoch:3 [ "s1"; "s2"; "s3" ];
      check_int "base adopted from the leader" 7 (Journal.base_index j);
      check_int "WAL emptied" 0 (Journal.wal_records j);
      check_int "last = base after install" 7 (Journal.last_index j);
      check_int "epoch adopted from the leader" 3 (Journal.epoch j);
      Journal.append j "tail-8";
      check_int "appends continue at the adopted index" 8 (Journal.last_index j);
      Journal.close j;
      let j2, replay = Journal.open_ config in
      check_bool "installed state replays before the tail" true
        (replay.Journal.records
        = [ (3, "s1"); (3, "s2"); (3, "s3"); (3, "tail-8") ]);
      check_int "adopted base survives restart" 7 (Journal.base_index j2);
      Journal.close j2)

let append_raw path bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let b = Bytes.of_string bytes in
  ignore (Unix.write fd b 0 (Bytes.length b));
  Unix.close fd

let test_dropped_frames_forensics () =
  with_dir (fun dir ->
      let config = Journal.default_config ~dir in
      let j, _ = Journal.open_ config in
      Journal.append j "first";
      Journal.append j "second";
      Journal.append j "third";
      Journal.close j;
      let wal = Filename.concat dir "wal.mcssj" in
      (* Flip a payload byte of "second" (frame 1 is 16+5 bytes, so its
         payload starts at byte 37): recovery stops there, and the
         forensic tail walk counts both whole frames beyond the cut. *)
      let fd = Unix.openfile wal [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd 37 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "X") 0 1);
      Unix.close fd;
      let j2, replay = Journal.open_ config in
      check_bool "only the clean prefix recovered" true
        (replay.Journal.records = [ (0, "first") ]);
      check_int "one corrupt record" 1 replay.Journal.corrupt_records;
      check_int "two frames reported dropped" 2 replay.Journal.dropped_frames;
      Journal.close j2;
      (* A torn tail (header promising more than was written) counts as
         one apparent frame — and the count surfaces in the service's
         replay stats. *)
      let torn = Bytes.create Journal.header_bytes in
      Bytes.set_int32_le torn 0 100l;
      Bytes.set_int32_le torn 4 0l;
      append_raw wal (Bytes.to_string torn ^ "partial");
      let svc = Service.create ~config:(journaled_config dir) () in
      (match Service.replay_stats svc with
      | None -> Alcotest.fail "journaled service must report replay stats"
      | Some r ->
          check_int "torn tail is one dropped frame" 1 r.Service.dropped_frames;
          check_int "torn bytes reported" (Journal.header_bytes + 7)
            r.Service.wal_truncated_bytes);
      Service.close svc)

(* ----- service: replication primitives ----- *)

let test_follower_refuses_updates () =
  with_dir (fun dir ->
      let svc =
        Service.create ~config:(journaled_config dir) ~role:Service.Follower ()
      in
      check_bool "role is follower" true (Service.role svc = Service.Follower);
      let digest = Service.load_workload svc (test_workload ()) in
      expect_code "update on a follower" Protocol.Not_leader
        (Service.handle_line svc
           (Printf.sprintf {|{"req":"update","digest":"%s","deltas":"x"}|} digest));
      (* A follower never journals local operations: the journal is a
         verbatim mirror of the leader's record sequence. *)
      check_bool "local load not journaled" true
        (Service.journal_last_index svc = Some 0);
      let pr = ok_reply "promote" (Service.handle_line svc {|{"req":"promote"}|}) in
      check_bool "promotion reported" true (bool_field pr "promoted");
      check_string "role flipped" "leader" (str_field pr "role");
      let pr2 = ok_reply "re-promote" (Service.handle_line svc {|{"req":"promote"}|}) in
      check_bool "promotion is idempotent" false (bool_field pr2 "promoted");
      Service.close svc)

let test_apply_replicated_gap_detection () =
  with_dir (fun dir ->
      let svc =
        Service.create ~config:(journaled_config dir) ~role:Service.Follower ()
      in
      (match Service.apply_replicated svc ~index:1 ~epoch:0 "not-a-real-op" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "dense successor must apply: %s" m);
      check_bool "record mirrored even when inapplicable" true
        (Service.journal_last_index svc = Some 1);
      (match Service.apply_replicated svc ~index:3 ~epoch:0 "skipping-two" with
      | Ok () -> Alcotest.fail "a gap must be refused"
      | Error m ->
          check_bool "gap named in the error" true
            (Helpers.contains ~needle:"gap" m));
      check_bool "nothing mirrored on refusal" true
        (Service.journal_last_index svc = Some 1);
      Service.close svc)

(* ----- qcheck: any WAL prefix replays to a byte-identical prefix ----- *)

let prefix_arbitrary =
  QCheck.make
    QCheck.Gen.(pair (int_bound 100_000) (int_bound 64))
    ~print:(fun (seed, k) -> Printf.sprintf "seed=%d, prefix=%d" seed k)

let prop_wal_prefix (seed, kraw) =
  with_dir (fun dl ->
      with_dir (fun df ->
          let rng = Rng.create seed in
          let w =
            Helpers.random_workload rng ~num_topics:4 ~num_subscribers:5
              ~max_rate:9 ~max_interests:3
          in
          let leader =
            Service.create ~config:(journaled_config ~fsync:false dl) ()
          in
          let follower =
            Service.create
              ~config:(journaled_config ~fsync:false df)
              ~role:Service.Follower ()
          in
          Fun.protect
            ~finally:(fun () ->
              Service.close leader;
              Service.close follower)
            (fun () ->
              let digest = Service.load_workload leader w in
              for i = 1 to 1 + (seed mod 3) do
                ignore (Service.handle_line leader (solve_line digest (10 + i)))
              done;
              let records =
                match Service.journal_read_from leader ~index:0 with
                | Ok l -> l
                | Error `Resync -> Alcotest.fail "leader tail unreadable"
              in
              let k = kraw mod (List.length records + 1) in
              List.iteri
                (fun i (idx, epoch, p) ->
                  if i < k then
                    match Service.apply_replicated follower ~index:idx ~epoch p with
                    | Ok () -> ()
                    | Error m -> Alcotest.failf "apply record %d: %s" idx m)
                records;
              let mirrored =
                match Service.journal_read_from follower ~index:0 with
                | Ok l -> l
                | Error `Resync -> Alcotest.fail "follower tail unreadable"
              in
              mirrored = List.filteri (fun i _ -> i < k) records)))

(* ----- end to end: stream, crash, takeover ----- *)

let rep_address dir = Server.Unix_socket (Filename.concat dir "rep.sock")

(* Leader service + replication hub + a follower pulling the stream (via
   [via], e.g. a Faulty proxy), torn down in order even on failure. *)
let with_cluster ?snapshot_every ?via dl df f =
  let leader = Service.create ~config:(journaled_config ?snapshot_every dl) () in
  let follower =
    Service.create ~config:(journaled_config df) ~role:Service.Follower ()
  in
  let hub = Replication.start_leader ~service:leader (rep_address dl) in
  let stop = Atomic.make false in
  let dial = match via with Some a -> a | None -> rep_address dl in
  let fdom =
    Domain.spawn (fun () ->
        Replication.follow ~reconnect_ms:5. ~service:follower
          ~stop:(fun () -> Atomic.get stop)
          dial)
  in
  let joined = ref false in
  let join () =
    if not !joined then begin
      joined := true;
      Domain.join fdom
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Replication.stop_leader hub;
      join ();
      Service.close follower;
      Service.close leader)
    (fun () -> f ~leader ~follower ~hub ~join)

let caught_up ~leader ~follower () =
  Service.journal_last_index follower = Service.journal_last_index leader

let test_stream_and_takeover () =
  with_dir (fun dl ->
      with_dir (fun df ->
          with_cluster dl df (fun ~leader ~follower ~hub ~join ->
              let digest = Service.load_workload leader (test_workload ()) in
              let r1 =
                ok_reply "leader solve"
                  (Service.handle_line leader (solve_line digest 12))
              in
              let plan_digest = str_field r1 "plan_digest" in
              wait_until ~what:"follower to catch up"
                (caught_up ~leader ~follower);
              (* The crash: the stream dies abruptly; the leader's
                 service is never closed (kill -9 equivalence). *)
              Replication.stop_leader hub;
              let pr =
                ok_reply "promote" (Service.handle_line follower {|{"req":"promote"}|})
              in
              check_bool "promoted" true (bool_field pr "promoted");
              (* Promotion alone stops the pull loop. *)
              join ();
              let r2 =
                ok_reply "takeover solve"
                  (Service.handle_line follower (solve_line digest 12))
              in
              check_bool "answered as a cache hit" true (bool_field r2 "cached");
              check_string "bit-identical plan digest" plan_digest
                (str_field r2 "plan_digest");
              check_int "the follower's solver never ran" 0
                (Service.solver_runs follower))))

let test_follower_resync_via_snapshot () =
  with_dir (fun dl ->
      with_dir (fun df ->
          (* snapshot_every 2: by the time the follower first dials, the
             leader has folded its WAL, so index 0 is out of the leader's
             span and the handshake must take the full-snapshot path. *)
          let leader = Service.create ~config:(journaled_config ~snapshot_every:2 dl) () in
          let digest = Service.load_workload leader (test_workload ()) in
          let solve tau svc = Service.handle_line svc (solve_line digest tau) in
          let d10 = str_field (ok_reply "solve 10" (solve 10 leader)) "plan_digest" in
          let d11 = str_field (ok_reply "solve 11" (solve 11 leader)) "plan_digest" in
          let hub = Replication.start_leader ~service:leader (rep_address dl) in
          let follower =
            Service.create ~config:(journaled_config df) ~role:Service.Follower ()
          in
          let stop = Atomic.make false in
          let fdom =
            Domain.spawn (fun () ->
                Replication.follow ~reconnect_ms:5. ~service:follower
                  ~stop:(fun () -> Atomic.get stop)
                  (rep_address dl))
          in
          Fun.protect
            ~finally:(fun () ->
              Atomic.set stop true;
              Replication.stop_leader hub;
              Domain.join fdom;
              Service.close follower;
              Service.close leader)
            (fun () ->
              wait_until ~what:"snapshot resync" (caught_up ~leader ~follower);
              (* Live tail continues after the reset. *)
              let d12 = str_field (ok_reply "solve 12" (solve 12 leader)) "plan_digest" in
              wait_until ~what:"live tail after resync"
                (caught_up ~leader ~follower);
              ignore (ok_reply "promote" (Service.handle_line follower {|{"req":"promote"}|}));
              List.iter
                (fun (tau, expect) ->
                  let r = ok_reply "resynced solve" (solve tau follower) in
                  check_bool "cache hit" true (bool_field r "cached");
                  check_string "identical digest" expect (str_field r "plan_digest"))
                [ (10, d10); (11, d11); (12, d12) ];
              check_int "no solver runs on the follower" 0
                (Service.solver_runs follower))))

(* ----- the replication link under byte-level attack ----- *)

let test_replication_through_faults () =
  with_dir (fun dl ->
      with_dir (fun df ->
          (* The first four connections are each sabotaged a different
             way; dials after that are merely slow. A fault can land in
             the handshake or mid-frame depending on the byte budget —
             both must end in "drop, reconnect, resync", never in a
             corrupt follower. *)
          let plan ~conn =
            match conn with
            | 0 -> { Faulty.clean with Faulty.to_client = [ Faulty.Tear_after 25 ] }
            | 1 -> { Faulty.clean with Faulty.to_client = [ Faulty.Reset_after 120 ] }
            | 2 -> { Faulty.clean with Faulty.to_client = [ Faulty.Garbage "\xde\xad\xbe\xef" ] }
            | 3 -> { Faulty.clean with Faulty.to_server = [ Faulty.Tear_after 10 ] }
            | _ ->
                { Faulty.clean with
                  Faulty.to_client = [ Faulty.Trickle { chunk = 64; delay_ms = 0.1 } ]
                }
          in
          let leader = Service.create ~config:(journaled_config dl) () in
          let digest = Service.load_workload leader (test_workload ()) in
          ignore (ok_reply "solve 12" (Service.handle_line leader (solve_line digest 12)));
          let hub = Replication.start_leader ~service:leader (rep_address dl) in
          let proxy = Faulty.start ~plan ~upstream:(rep_address dl) () in
          let follower =
            Service.create ~config:(journaled_config df) ~role:Service.Follower ()
          in
          let stop = Atomic.make false in
          let fdom =
            Domain.spawn (fun () ->
                Replication.follow ~reconnect_ms:5. ~service:follower
                  ~stop:(fun () -> Atomic.get stop)
                  (Faulty.address proxy))
          in
          Fun.protect
            ~finally:(fun () ->
              Atomic.set stop true;
              Faulty.stop proxy;
              Replication.stop_leader hub;
              Domain.join fdom;
              Service.close follower;
              Service.close leader)
            (fun () ->
              wait_until ~what:"convergence through faults"
                (caught_up ~leader ~follower);
              check_bool "the faults actually fired" true
                (Faulty.connections proxy >= 4);
              (* Keep appending over the (still trickling) live link. *)
              let d13 =
                str_field
                  (ok_reply "solve 13" (Service.handle_line leader (solve_line digest 13)))
                  "plan_digest"
              in
              wait_until ~what:"live tail through the proxy"
                (caught_up ~leader ~follower);
              (* The follower's journal is a byte-identical mirror... *)
              let leader_records =
                match Service.journal_read_from leader ~index:0 with
                | Ok l -> l
                | Error `Resync -> Alcotest.fail "leader tail unreadable"
              in
              let follower_records =
                match Service.journal_read_from follower ~index:0 with
                | Ok l -> l
                | Error `Resync -> Alcotest.fail "follower tail unreadable"
              in
              check_bool "journals identical after the ordeal" true
                (leader_records = follower_records);
              (* ...and serves the leader's plans bit-for-bit. *)
              ignore (ok_reply "promote" (Service.handle_line follower {|{"req":"promote"}|}));
              let r = ok_reply "post-fault solve" (Service.handle_line follower (solve_line digest 13)) in
              check_bool "cache hit" true (bool_field r "cached");
              check_string "identical digest" d13 (str_field r "plan_digest"));
          (* And the journal on disk carries no scars: a restart replays
             it clean. *)
          let j, replay = Journal.open_ (Journal.default_config ~dir:df) in
          check_int "no corruption on the follower's disk" 0
            replay.Journal.corrupt_records;
          check_int "no torn tail either" 0 replay.Journal.truncated_bytes;
          Journal.close j))

(* ----- ring ----- *)

let test_ring_basics () =
  let shards = [ "alpha"; "beta"; "gamma" ] in
  let ring = Ring.create shards in
  check_int "points = shards * vnodes" (3 * 64) (Ring.points ring);
  check_bool "shards preserved" true (Ring.shards ring = shards);
  (* Deterministic and order-independent. *)
  let ring2 = Ring.create [ "gamma"; "alpha"; "beta" ] in
  let keys = List.init 500 (fun i -> Printf.sprintf "digest-%d" i) in
  List.iter
    (fun k ->
      let o = Ring.owner ring k in
      check_bool "owner is a shard" true (List.mem o shards);
      check_string "order-independent ownership" o (Ring.owner ring2 k))
    keys;
  (* No shard starves: with 64 vnodes each, every shard owns a
     non-trivial arc. *)
  let counts = Hashtbl.create 3 in
  List.iter
    (fun k ->
      let o = Ring.owner ring k in
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    keys;
  List.iter
    (fun s ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts s) in
      check_bool (Printf.sprintf "shard %s owns a fair share (%d)" s n) true
        (n > 25))
    shards;
  (* A single shard owns everything. *)
  let solo = Ring.create ~vnodes:1 [ "only" ] in
  List.iter (fun k -> check_string "solo owner" "only" (Ring.owner solo k)) keys;
  (* Bad configurations are rejected loudly. *)
  List.iter
    (fun f -> match f () with
      | (_ : Ring.t) -> Alcotest.fail "invalid ring accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Ring.create []);
      (fun () -> Ring.create [ "a"; "a" ]);
      (fun () -> Ring.create ~vnodes:0 [ "a" ]);
    ]

let prop_ring_total_and_stable key =
  let ring = Ring.create [ "s0"; "s1"; "s2"; "s3" ] in
  let o = Ring.owner ring key in
  List.mem o [ "s0"; "s1"; "s2"; "s3" ] && o = Ring.owner ring key

(* ----- router ----- *)

let health_env =
  { Protocol.id = None; deadline_ms = None; request = Protocol.Health }

let solve_env digest tau =
  {
    Protocol.id = None;
    deadline_ms = None;
    request =
      Protocol.Solve
        { digest; params = { Protocol.default_params with Protocol.tau } };
  }

let update_env digest =
  {
    Protocol.id = None;
    deadline_ms = None;
    request =
      Protocol.Update { digest; params = Protocol.default_params; deltas = "x" };
  }

let fast_policy =
  {
    Retry.max_attempts = 2;
    base_ms = 1.;
    cap_ms = 5.;
    attempt_timeout_ms = Some 2000.;
  }

let router_config = { Router.default_config with Router.policy = fast_policy }

let with_server svc f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-repl-srv-%d-%d.sock" (Unix.getpid ())
         (incr dir_counter; !dir_counter))
  in
  let address = Server.Unix_socket path in
  let config =
    { Server.default_config with Server.workers = 2; accept_tick_s = 0.05 }
  in
  let d = Domain.spawn (fun () -> Server.run ~config svc address) in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "server never came up";
    match Client.connect address with
    | Ok c -> Client.close c
    | Error _ ->
        Unix.sleepf 0.02;
        wait (tries - 1)
  in
  wait 200;
  Fun.protect
    ~finally:(fun () ->
      (match
         Client.with_connection address (fun c ->
             Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))
       with
      | Ok _ | Error _ -> ());
      Domain.join d;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f address)

let member name address = { Router.name; address }

let test_router_failover_and_no_quorum () =
  with_dir (fun dir ->
      let svc = Service.create () in
      let digest = Service.load_workload svc (test_workload ()) in
      with_server svc (fun live ->
          let dead = Server.Unix_socket (Filename.concat dir "dead.sock") in
          let dead2 = Server.Unix_socket (Filename.concat dir "dead2.sock") in
          (* Leader down, follower up: idempotent requests fail over. *)
          let r =
            Router.create ~config:router_config
              [ { Router.shard_name = "s0";
                  members = [ member "dead" dead; member "live" live ] } ]
          in
          let reply = Router.handle r (solve_env digest 12.) in
          ignore (ok_reply "solve failed over to the follower" reply);
          check_bool "a real plan came back" true
            (String.length (str_field reply "plan_digest") > 0);
          (* Updates never fail over — history must not fork — but the
             shed names the remedy. *)
          expect_code "update with a dead leader" Protocol.Not_leader
            (Router.handle r (update_env digest));
          (* Health probes re-order candidates without changing the
             answer. *)
          Router.probe_all r;
          let h = ok_reply "router health" (Router.handle r health_env) in
          check_bool "one member seen up" true
            (Json.member "members_up" h |> Fun.flip Option.bind Json.to_int_opt
             = Some 1);
          ignore (ok_reply "solve after probing" (Router.handle r (solve_env digest 12.)));
          (* A whole-dead shard is shed with a parseable verdict, for
             reads and writes alike. *)
          let r2 =
            Router.create ~config:router_config
              [ { Router.shard_name = "s0";
                  members = [ member "d1" dead; member "d2" dead2 ] } ]
          in
          expect_code "solve against a dead shard" Protocol.No_quorum
            (Router.handle r2 (solve_env digest 12.));
          expect_code "update against a dead shard" Protocol.No_quorum
            (Router.handle r2 (update_env digest));
          (* The router itself stays answerable throughout. *)
          ignore (ok_reply "router health with dead shard" (Router.handle r2 health_env))))

let test_router_routes_by_digest () =
  let svc_a = Service.create () in
  let svc_b = Service.create () in
  with_server svc_a (fun addr_a ->
      with_server svc_b (fun addr_b ->
          let r =
            Router.create ~config:router_config
              [
                { Router.shard_name = "sA"; members = [ member "a" addr_a ] };
                { Router.shard_name = "sB"; members = [ member "b" addr_b ] };
              ]
          in
          let w = test_workload () in
          let load =
            {
              Protocol.id = None;
              deadline_ms = None;
              request = Protocol.Load (`Inline (Mcss_workload.Wio.to_string w));
            }
          in
          let reply = ok_reply "load via router" (Router.handle r load) in
          let digest = str_field reply "digest" in
          (* The owner is decided by the same ring the router builds, so
             the load must have landed exactly there... *)
          let ring = Ring.create [ "sA"; "sB" ] in
          let owner = Ring.owner ring digest in
          let owner_svc, other_svc =
            if owner = "sA" then (svc_a, svc_b) else (svc_b, svc_a)
          in
          ignore
            (ok_reply "owner answers directly"
               (Service.handle_line owner_svc (solve_line digest 12)));
          expect_code "the other shard never saw it" Protocol.Unknown_digest
            (Service.handle_line other_svc (solve_line digest 12));
          (* ...and a solve through the router finds it again. *)
          let solved = ok_reply "solve via router" (Router.handle r (solve_env digest 12.)) in
          check_bool "solved by the owning shard" true
            (bool_field solved "cached")))

(* ----- client: pluggable per-attempt routing (regression) ----- *)

let test_client_route_reresolves_target () =
  let svc = Service.create () in
  with_server svc (fun upstream ->
      (* Every connection through the proxy dies mid-reply with a real
         RST. Before ?route, the retry would redial the same dead-end
         address; now attempt 2 re-resolves to the healthy upstream. *)
      let proxy =
        Faulty.start
          ~plan:(fun ~conn:_ ->
            { Faulty.clean with Faulty.to_client = [ Faulty.Reset_after 3 ] })
          ~upstream ()
      in
      Fun.protect
        ~finally:(fun () -> Faulty.stop proxy)
        (fun () ->
          let route ~attempt =
            if attempt = 1 then Faulty.address proxy else upstream
          in
          let o =
            Client.call ~policy:fast_policy ~rng:(Rng.create 5) ~route
              (Faulty.address proxy) health_env
          in
          (match o.Retry.result with
          | Ok reply -> ignore (ok_reply "rerouted call" reply)
          | Error m -> Alcotest.failf "rerouted call failed: %s" m);
          check_int "exactly one retry" 2 o.Retry.attempts;
          check_int "the dead-end address saw only the first attempt" 1
            (Faulty.connections proxy)))

(* ----- client + router: not_leader re-resolution (regression) ----- *)

let valid_update_env digest =
  {
    Protocol.id = None;
    deadline_ms = None;
    request =
      Protocol.Update
        {
          digest;
          params = Protocol.default_params;
          deltas = "mcss-deltas 1\nrate 0 42.0\n";
        };
  }

let test_client_not_leader_retry_reresolves () =
  (* Attempt 1 lands on a follower, which refuses the update with
     [not_leader]. The refusal proves nothing was applied, so the
     client replays the non-idempotent verb against the re-resolved
     leader instead of surfacing the error. *)
  let leader = Service.create () in
  let digest = Service.load_workload leader (test_workload ()) in
  ignore (ok_reply "leader solve" (Service.handle_line leader (solve_line digest 100)));
  let follower = Service.create ~role:Service.Follower () in
  with_server leader (fun leader_addr ->
      with_server follower (fun follower_addr ->
          let route ~attempt =
            if attempt = 1 then follower_addr else leader_addr
          in
          let o =
            Client.call ~policy:fast_policy ~rng:(Rng.create 6) ~route
              follower_addr (valid_update_env digest)
          in
          (match o.Retry.result with
          | Ok reply ->
              let r = ok_reply "update after not_leader reroute" reply in
              check_bool "the evolved digest came back" true
                (String.length (str_field r "digest") > 0)
          | Error m -> Alcotest.failf "rerouted update failed: %s" m);
          check_int "exactly one not_leader retry" 2 o.Retry.attempts;
          (* On the last attempt the refusal is the final answer (exit
             codes depend on the structured reply surviving). *)
          let o2 =
            Client.call
              ~policy:{ fast_policy with Retry.max_attempts = 1 }
              ~rng:(Rng.create 7)
              follower_addr (valid_update_env digest)
          in
          match o2.Retry.result with
          | Ok reply ->
              expect_code "refusal survives as the reply" Protocol.Not_leader
                reply
          | Error m -> Alcotest.failf "wanted a not_leader reply, got: %s" m))

let test_router_reresolves_leader_on_not_leader () =
  (* The router's member order says the follower leads (as after an
     un-observed manual promotion). A forwarded update draws
     [not_leader]; with auto_promote the router re-probes, discovers the
     real leader, reorders, and the retry succeeds — the client never
     sees the refusal. *)
  let leader = Service.create () in
  let digest = Service.load_workload leader (test_workload ()) in
  ignore (ok_reply "leader solve" (Service.handle_line leader (solve_line digest 100)));
  let follower = Service.create ~role:Service.Follower () in
  with_server leader (fun leader_addr ->
      with_server follower (fun follower_addr ->
          let r =
            Router.create
              ~config:{ router_config with Router.auto_promote = true }
              [
                { Router.shard_name = "s0";
                  members =
                    [ member "f" follower_addr; member "l" leader_addr ] };
              ]
          in
          let reply = Router.handle r (valid_update_env digest) in
          ignore (ok_reply "update rerouted to the real leader" reply);
          let reroutes =
            Mcss_obs.Metric.Counter.value
              (Mcss_obs.Registry.counter (Router.obs r)
                 "serve.router.not_leader_reroutes")
          in
          check_bool "the reroute was counted" true (reroutes >= 1);
          (* The discovered order sticks: the next update forwards
             straight to the leader, no refusal. *)
          let before =
            Mcss_obs.Metric.Counter.value
              (Mcss_obs.Registry.counter (Router.obs r)
                 "serve.router.not_leader_reroutes")
          in
          ignore (ok_reply "second update" (Router.handle r (valid_update_env digest)));
          let after =
            Mcss_obs.Metric.Counter.value
              (Mcss_obs.Registry.counter (Router.obs r)
                 "serve.router.not_leader_reroutes")
          in
          check_int "no further reroutes needed" before after))

(* ----- qcheck: fencing epochs ----- *)

(* Two journals that were briefly the same lineage — a leader and a
   follower that mirrored a prefix, then was promoted with a fenced
   epoch while the old leader kept appending — must satisfy, whatever
   the interleaving: epochs never decrease within either journal (also
   across a close/reopen), and any (index, epoch) slot present in both
   carries the identical payload. The divergent slots are exactly the
   ones the fencing epoch distinguishes, which is what lets the
   replication handshake find and truncate them. *)
let prop_epoch_fencing (n1raw, kraw, n2raw) =
  let n1 = 1 + (n1raw mod 8) and n2 = 1 + (n2raw mod 8) in
  with_dir (fun dl ->
      with_dir (fun df ->
          let open_j dir =
            fst
              (Journal.open_
                 { (Journal.default_config ~dir) with Journal.fsync = false })
          in
          let jl = open_j dl in
          for i = 1 to n1 do
            Journal.append jl (Printf.sprintf "a-%d" i)
          done;
          let jf = open_j df in
          let records =
            match Journal.read_from jl ~index:0 with
            | Ok l -> l
            | Error `Resync -> []
          in
          let k = kraw mod (n1 + 1) in
          List.iteri
            (fun i (_, e, p) -> if i < k then Journal.append ~epoch:e jf p)
            records;
          (* Fenced promotion: the new leader's epoch moves past
             anything the old one could have written... *)
          Journal.set_epoch jf (Journal.epoch jl);
          ignore (Journal.bump_epoch jf);
          for i = 1 to n2 do
            Journal.append jf (Printf.sprintf "b-%d" i)
          done;
          (* ...while the fenced leader keeps writing its stale epoch
             (a divergent un-acked tail). *)
          Journal.append jl "stale-tail";
          let all j =
            match Journal.read_from j ~index:0 with
            | Ok l -> l
            | Error `Resync -> []
          in
          let non_decreasing recs =
            let rec go prev = function
              | [] -> true
              | (_, e, _) :: rest -> e >= prev && go e rest
            in
            go 0 recs
          in
          let lrec = all jl and frec = all jf in
          let el = Journal.epoch jl and ef = Journal.epoch jf in
          Journal.close jl;
          Journal.close jf;
          (* Epochs survive a reopen (sidecar + frame scan agree). *)
          let jl2 = open_j dl and jf2 = open_j df in
          let persisted = Journal.epoch jl2 = el && Journal.epoch jf2 = ef in
          Journal.close jl2;
          Journal.close jf2;
          persisted
          && ef > el
          && non_decreasing lrec
          && non_decreasing frec
          && List.for_all
               (fun (i, e, p) ->
                 match
                   List.find_opt (fun (i2, e2, _) -> i2 = i && e2 = e) frec
                 with
                 | Some (_, _, p2) -> p2 = p
                 | None -> true)
               lrec))

let suite =
  [
    Alcotest.test_case "journal: absolute indices survive folds and restarts"
      `Quick test_journal_indices;
    Alcotest.test_case "journal: read_from/iter_from serve the exact tail"
      `Quick test_journal_read_from;
    Alcotest.test_case "journal: install_snapshot adopts the leader's position"
      `Quick test_journal_install_snapshot;
    Alcotest.test_case "journal: dropped-frame forensics in replay stats"
      `Quick test_dropped_frames_forensics;
    Alcotest.test_case "service: followers refuse updates until promoted"
      `Quick test_follower_refuses_updates;
    Alcotest.test_case "service: replication applies densely or not at all"
      `Quick test_apply_replicated_gap_detection;
    Helpers.qtest ~count:12
      "replication: any WAL prefix mirrors byte-identically" prefix_arbitrary
      prop_wal_prefix;
    Alcotest.test_case "e2e: leader crash, follower takeover, identical plan"
      `Quick test_stream_and_takeover;
    Alcotest.test_case "e2e: stale follower resyncs via full snapshot" `Quick
      test_follower_resync_via_snapshot;
    Alcotest.test_case "e2e: torn/reset/garbage replication link never corrupts"
      `Quick test_replication_through_faults;
    Alcotest.test_case "ring: deterministic, total, fair" `Quick test_ring_basics;
    Helpers.qtest ~count:300 "ring: every key has a stable owner"
      QCheck.(string_of_size Gen.(int_bound 64))
      prop_ring_total_and_stable;
    Alcotest.test_case "router: failover and no_quorum shedding" `Quick
      test_router_failover_and_no_quorum;
    Alcotest.test_case "router: digest routing is ring-consistent" `Quick
      test_router_routes_by_digest;
    Alcotest.test_case "client: ?route re-resolves the retry target" `Quick
      test_client_route_reresolves_target;
    Alcotest.test_case "client: not_leader refusal is replayed at the leader"
      `Quick test_client_not_leader_retry_reresolves;
    Alcotest.test_case "router: update re-resolves the leader on not_leader"
      `Quick test_router_reresolves_leader_on_not_leader;
    Helpers.qtest ~count:40
      "journal: epochs never regress; (epoch, index) unique cluster-wide"
      QCheck.(triple (int_bound 1000) (int_bound 64) (int_bound 1000))
      prop_epoch_fencing;
  ]
