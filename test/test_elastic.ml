(* Tests for the elastic capacity planner: seeded rate curves, scenario
   compilation, reservation pricing, autoscaling policies, and the week
   simulator — determinism, positivity, and the slice-by-slice ==
   direct-compile equivalence the whole subsystem rests on. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Verifier = Mcss_core.Verifier
module Allocation = Mcss_core.Allocation
module Engine = Mcss_engine.Engine
module Delta = Mcss_engine.Delta
module Reservation = Mcss_pricing.Reservation
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Rate_curve = Mcss_elastic.Rate_curve
module Scenario = Mcss_elastic.Scenario
module Autoscaler = Mcss_elastic.Autoscaler
module Week_sim = Mcss_elastic.Week_sim

let diurnal ?(amplitude = 0.4) () =
  Rate_curve.Diurnal { amplitude; period_hours = 24.; phase_hours = 0. }

let scenario ?(slices = 12) ?(slice_hours = 2.) ?(seed = 7) ?(coverage = 1.)
    ?(curve = [ diurnal () ]) () =
  { Scenario.slices; slice_hours; seed; coverage; curve }

(* ----- rate curves ----- *)

let test_curve_validate () =
  Rate_curve.validate [ diurnal () ];
  Rate_curve.validate [];
  let bad what c =
    match Rate_curve.validate [ c ] with
    | () -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  bad "amplitude 1"
    (Rate_curve.Diurnal { amplitude = 1.; period_hours = 24.; phase_hours = 0. });
  bad "negative period"
    (Rate_curve.Diurnal { amplitude = 0.2; period_hours = -1.; phase_hours = 0. });
  bad "zero weekend" (Rate_curve.Weekly { weekend_factor = 0. });
  bad "negative count"
    (Rate_curve.Spikes { count = -1; magnitude = 2.; width_hours = 1. })

let test_growth_crossing_zero_rejected () =
  let curve = [ Rate_curve.Growth { per_hour = -0.1 } ] in
  (* Fine over a short horizon, fatal once 1 + per_hour * h crosses 0. *)
  ignore (Rate_curve.realize curve ~seed:1 ~horizon_hours:5.);
  match Rate_curve.realize curve ~seed:1 ~horizon_hours:24. with
  | _ -> Alcotest.fail "expected Invalid_argument past the zero crossing"
  | exception Invalid_argument _ -> ()

let prop_curve_strictly_positive =
  Helpers.qtest ~count:100 "realized curves stay strictly positive"
    QCheck.(triple small_int (float_range 0. 0.99) (float_range 0. 3.))
    (fun (seed, amplitude, magnitude) ->
      let curve =
        [
          Rate_curve.Diurnal
            { amplitude = Float.abs amplitude; period_hours = 24.; phase_hours = 0. };
          Rate_curve.Weekly { weekend_factor = 0.5 };
          Rate_curve.Spikes
            { count = 2; magnitude = 0.1 +. Float.abs magnitude; width_hours = 3. };
        ]
      in
      let r = Rate_curve.realize curve ~seed ~horizon_hours:168. in
      let ok = ref true in
      for h = 0 to 168 do
        if Rate_curve.value r ~hours:(float_of_int h) <= 0. then ok := false
      done;
      !ok)

let prop_diurnal_periodic =
  Helpers.qtest ~count:100 "diurnal component repeats every period"
    QCheck.(pair small_int (float_range 0. 0.9))
    (fun (seed, amplitude) ->
      let period = 24. in
      let r =
        Rate_curve.realize
          [ Rate_curve.Diurnal
              { amplitude; period_hours = period; phase_hours = 0. } ]
          ~seed ~horizon_hours:(3. *. period)
      in
      let ok = ref true in
      for i = 0 to 40 do
        let h = float_of_int i *. 1.7 in
        let a = Rate_curve.value r ~hours:h in
        let b = Rate_curve.value r ~hours:(h +. period) in
        if Float.abs (a -. b) > 1e-9 then ok := false
      done;
      !ok)

let prop_realize_deterministic =
  Helpers.qtest ~count:100 "spike placement is a pure function of the seed"
    QCheck.small_int
    (fun seed ->
      let curve =
        [ Rate_curve.Spikes { count = 3; magnitude = 2.; width_hours = 4. } ]
      in
      let s1 = Rate_curve.spikes (Rate_curve.realize curve ~seed ~horizon_hours:168.) in
      let s2 = Rate_curve.spikes (Rate_curve.realize curve ~seed ~horizon_hours:168.) in
      s1 = s2)

let test_component_round_trip () =
  let components =
    [
      Rate_curve.Diurnal
        { amplitude = 0.37; period_hours = 24.; phase_hours = 1.5 };
      Rate_curve.Weekly { weekend_factor = 0.65 };
      Rate_curve.Spikes { count = 2; magnitude = 2.25; width_hours = 3. };
      Rate_curve.Growth { per_hour = 1e-3 };
    ]
  in
  List.iter
    (fun c ->
      match Rate_curve.(component_of_string (component_to_string c)) with
      | Some c' when c = c' -> ()
      | Some _ -> Alcotest.failf "mangled: %s" (Rate_curve.component_to_string c)
      | None -> Alcotest.failf "unparsed: %s" (Rate_curve.component_to_string c))
    components;
  Helpers.check_bool "junk rejected" true
    (Rate_curve.component_of_string "sawtooth slope 3" = None)

(* ----- scenario files ----- *)

let test_scenario_round_trip () =
  let s =
    scenario ~slices:24 ~slice_hours:1. ~seed:42 ~coverage:0.25
      ~curve:
        [
          diurnal ~amplitude:0.3 ();
          Rate_curve.Weekly { weekend_factor = 0.7 };
          Rate_curve.Spikes { count = 1; magnitude = 1.8; width_hours = 2. };
        ]
      ()
  in
  let s' = Scenario.of_string (Scenario.to_string s) in
  Helpers.check_bool "round-trips exactly" true (s = s')

let test_scenario_parse_errors () =
  let bad what text =
    match Scenario.of_string text with
    | _ -> Alcotest.failf "%s: expected Parse_error" what
    | exception Scenario.Parse_error _ -> ()
  in
  bad "missing magic" "slices 4\nslice-hours 1\n";
  bad "bad magic" "mcss-scenario 9\nslices 4\n";
  bad "junk line" "mcss-scenario 1\nslices 4\nslice-hours 1\nwobble 3\n";
  bad "bad float" "mcss-scenario 1\nslices 4\nslice-hours nope\n";
  (* Well-formed but out of range is Invalid_argument, not Parse_error. *)
  match Scenario.of_string "mcss-scenario 1\nslices 0\nslice-hours 1\nseed 1\n" with
  | _ -> Alcotest.fail "slices 0: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_scenario_comments_ignored () =
  let s =
    Scenario.of_string
      "mcss-scenario 1\n# a comment\n\nslices 4\nslice-hours 2\nseed 3\n"
  in
  Helpers.check_int "slices" 4 s.Scenario.slices;
  Helpers.check_float "default coverage" 1. s.Scenario.coverage;
  Helpers.check_bool "empty curve" true (s.Scenario.curve = [])

let prop_multiplier_deterministic =
  Helpers.qtest ~count:60 "multipliers are a pure function of the scenario"
    QCheck.(pair small_int small_int)
    (fun (seed, k) ->
      let s =
        scenario ~seed
          ~curve:
            [ diurnal (); Rate_curve.Spikes { count = 2; magnitude = 2.; width_hours = 5. } ]
          ()
      in
      let k = k mod s.Scenario.slices in
      Scenario.multiplier s ~slice:k = Scenario.multiplier s ~slice:k)

let test_affected_subset_size () =
  let s = scenario ~coverage:0.3 () in
  let marked = Scenario.affected s ~num_topics:10 in
  let n = Array.fold_left (fun a b -> if b then a + 1 else a) 0 marked in
  Helpers.check_int "ceil (0.3 * 10)" 3 n;
  let s1 = scenario ~coverage:1. () in
  Helpers.check_bool "coverage 1 marks all" true
    (Array.for_all Fun.id (Scenario.affected s1 ~num_topics:10))

(* Folding the compiled batches through Delta.apply must land on
   exactly the workload the last slice's target rates describe. *)
let prop_compile_matches_direct =
  Helpers.qtest ~count:40 "slice-by-slice compile == direct re-rate"
    QCheck.(pair small_int small_int)
    (fun (wseed, sseed) ->
      let rng = Mcss_prng.Rng.create (wseed + 1) in
      let w =
        Helpers.random_workload rng ~num_topics:10 ~num_subscribers:12
          ~max_rate:9 ~max_interests:3
      in
      let s =
        scenario ~slices:6 ~slice_hours:4. ~seed:sseed ~coverage:0.5
          ~curve:
            [ diurnal (); Rate_curve.Spikes { count = 1; magnitude = 2.; width_hours = 8. } ]
          ()
      in
      let batches = Scenario.compile s w in
      let evolved =
        Array.fold_left (fun w b -> Delta.apply w b) w batches
      in
      let direct = Scenario.workload_at s w ~slice:(s.Scenario.slices - 1) in
      Workload.event_rates evolved = Workload.event_rates direct)

(* The same fold kept inside a live engine: every intermediate plan
   must verify clean. *)
let test_engine_replay_clean () =
  let rng = Mcss_prng.Rng.create 5 in
  let w =
    Helpers.random_workload rng ~num_topics:12 ~num_subscribers:20 ~max_rate:9
      ~max_interests:4
  in
  let s = scenario ~slices:8 ~slice_hours:3. ~seed:9 () in
  let p =
    Problem.create ~workload:w ~tau:25. ~capacity:120. Problem.unit_costs
  in
  let eng = Engine.create p in
  Array.iter
    (fun batch ->
      ignore (Engine.apply eng batch);
      let { Engine.problem; selection; allocation } = Engine.plan eng in
      Helpers.check_bool "slice plan clean" true
        (Verifier.is_valid (Verifier.verify problem selection allocation)))
    (Scenario.compile s w)

(* ----- reservation pricing ----- *)

let test_reservation_pricing () =
  let instance = Instance.c3_large in
  let pricing = Reservation.default ~instance () in
  Reservation.validate pricing;
  let r = Reservation.reserved_hourly pricing in
  let od = Reservation.on_demand_hourly pricing in
  Helpers.check_bool "reserved cheaper than on-demand" true (r < od);
  (* Reserved capacity is billed whether used or not; overflow on top. *)
  Helpers.check_float "idle reservation still billed"
    (10. *. r)
    (Reservation.slice_vm_cost pricing ~reserved:10 ~used:4 ~hours:1.);
  Helpers.check_float "overflow at on-demand"
    ((10. *. r) +. (3. *. od))
    (Reservation.slice_vm_cost pricing ~reserved:10 ~used:13 ~hours:1.);
  let regional = Reservation.default ~instance ~deployment:Reservation.Regional () in
  Helpers.check_bool "regional premium" true
    (Reservation.reserved_hourly regional > r);
  Helpers.check_float "scaling cost scales with actions"
    (3. *. pricing.Reservation.scaling_usd_per_action)
    (Reservation.scaling_cost pricing ~actions:3);
  match Reservation.validate { pricing with Reservation.reserved_discount = 1.5 } with
  | () -> Alcotest.fail "discount > 1: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ----- autoscaling policies ----- *)

let obs ?(slice = 0) ?(fleet = 10) ?(min_fleet = 10) ?(utilization = 0.95)
    ?(forecast = [||]) () =
  { Autoscaler.slice; fleet; min_fleet; utilization; forecast }

let test_hysteresis_tracks_up_immediately () =
  let p = Autoscaler.hysteresis () in
  let d0 = p.Autoscaler.decide (obs ~slice:0 ~fleet:10 ()) in
  Helpers.check_int "first slice commits to the fleet" 10 d0.Autoscaler.reserved;
  let d1 = p.Autoscaler.decide (obs ~slice:1 ~fleet:14 ()) in
  Helpers.check_int "up immediately" 14 d1.Autoscaler.reserved

let test_hysteresis_waits_on_the_way_down () =
  let p = Autoscaler.hysteresis () in
  ignore (p.Autoscaler.decide (obs ~slice:0 ~fleet:14 ()));
  let d1 = p.Autoscaler.decide (obs ~slice:1 ~fleet:10 ()) in
  Helpers.check_int "one low slice holds" 14 d1.Autoscaler.reserved;
  let d2 = p.Autoscaler.decide (obs ~slice:2 ~fleet:10 ()) in
  Helpers.check_int "second low slice releases" 10 d2.Autoscaler.reserved

let test_hysteresis_consolidates_with_cooldown () =
  let config =
    { Autoscaler.default_hysteresis with Autoscaler.consolidate_cooldown = 3 }
  in
  let p = Autoscaler.hysteresis ~config () in
  let slack k = obs ~slice:k ~fleet:12 ~min_fleet:8 ~utilization:0.5 () in
  let d0 = p.Autoscaler.decide (slack 0) in
  Helpers.check_bool "slack triggers" true d0.Autoscaler.consolidate;
  let d1 = p.Autoscaler.decide (slack 1) in
  Helpers.check_bool "cooldown holds" false d1.Autoscaler.consolidate;
  let d3 = p.Autoscaler.decide (slack 3) in
  Helpers.check_bool "cooldown expires" true d3.Autoscaler.consolidate;
  let tight =
    p.Autoscaler.decide (obs ~slice:7 ~fleet:8 ~min_fleet:8 ~utilization:0.5 ())
  in
  Helpers.check_bool "no slack, no pass" false tight.Autoscaler.consolidate

let lookahead_pricing = Reservation.default ~instance:Instance.c3_large ()

let test_lookahead_holds_through_short_dip () =
  (* A one-slice dip cheaper to ride out than to re-commit twice: make
     the scaling charge dominate one slice of two idle reserved VMs. *)
  let pricing =
    { lookahead_pricing with Reservation.scaling_usd_per_action = 10. }
  in
  let p = Autoscaler.lookahead ~pricing ~slice_hours:1. () in
  ignore (p.Autoscaler.decide (obs ~slice:0 ~fleet:10 ~forecast:[| 8; 10; 10 |] ()));
  let d = p.Autoscaler.decide (obs ~slice:1 ~fleet:8 ~forecast:[| 10; 10; 10 |] ()) in
  Helpers.check_int "dip not worth two actions" 10 d.Autoscaler.reserved

let test_lookahead_releases_sustained_drop () =
  let p = Autoscaler.lookahead ~pricing:lookahead_pricing ~slice_hours:1. () in
  ignore (p.Autoscaler.decide (obs ~slice:0 ~fleet:10 ~forecast:[| 4; 4; 4 |] ()));
  let d = p.Autoscaler.decide (obs ~slice:1 ~fleet:4 ~forecast:[| 4; 4; 4 |] ()) in
  Helpers.check_int "sustained drop releases" 4 d.Autoscaler.reserved

let test_static_never_moves () =
  let p = Autoscaler.static ~fleet:7 in
  let d = p.Autoscaler.decide (obs ~slice:3 ~fleet:12 ~utilization:0.4 ()) in
  Helpers.check_int "reserved pinned" 7 d.Autoscaler.reserved;
  Helpers.check_bool "never consolidates" false d.Autoscaler.consolidate

(* ----- week simulator ----- *)

let week_fixture () =
  let rng = Mcss_prng.Rng.create 11 in
  let w =
    Helpers.random_workload rng ~num_topics:15 ~num_subscribers:30 ~max_rate:9
      ~max_interests:4
  in
  let model = Cost_model.ec2_2014 ~instance:Instance.c3_large () in
  let s = scenario ~slices:8 ~slice_hours:3. ~seed:13 () in
  (w, model, s)

let test_week_sim_runs_clean () =
  let w, model, s = week_fixture () in
  let result = Week_sim.run ~capacity_events:150. ~workload:w ~tau:25. ~model s in
  let runs = result.Week_sim.static :: result.Week_sim.policies in
  Helpers.check_int "static + two adaptive policies" 3 (List.length runs);
  List.iter
    (fun (r : Week_sim.policy_run) ->
      Helpers.check_bool (r.Week_sim.policy ^ " clean") true r.Week_sim.clean;
      Helpers.check_int
        (r.Week_sim.policy ^ " rows")
        s.Scenario.slices
        (Array.length r.Week_sim.rows);
      let by_rows =
        Array.fold_left
          (fun a (row : Week_sim.slice_row) ->
            a +. row.Week_sim.vm_usd +. row.Week_sim.bandwidth_usd
            +. row.Week_sim.scaling_usd)
          0. r.Week_sim.rows
      in
      Helpers.check_float (r.Week_sim.policy ^ " total = sum of rows")
        by_rows r.Week_sim.total_usd)
    runs;
  Helpers.check_bool "oracle no dearer than static" true
    (result.Week_sim.oracle_usd
    <= result.Week_sim.static.Week_sim.total_usd +. 1e-9)

let test_week_sim_deterministic () =
  let w, model, s = week_fixture () in
  let run () =
    let r = Week_sim.run ~capacity_events:150. ~workload:w ~tau:25. ~model s in
    List.map
      (fun (p : Week_sim.policy_run) -> (p.Week_sim.policy, p.Week_sim.total_usd))
      (r.Week_sim.static :: r.Week_sim.policies)
  in
  Helpers.check_bool "two runs agree" true (run () = run ())

let test_week_sim_ledger_parses () =
  let w, model, s = week_fixture () in
  let result = Week_sim.run ~capacity_events:150. ~workload:w ~tau:25. ~model s in
  let path = Filename.temp_file "mcss_ledger" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Week_sim.write_ledger path result;
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Helpers.check_bool "schema tag" true
        (Helpers.contains ~needle:"mcss-elastic-ledger-1" text);
      Helpers.check_bool "has policies" true (Helpers.contains ~needle:"\"policies\"" text);
      Helpers.check_bool "has oracle" true (Helpers.contains ~needle:"\"oracle\"" text))

(* ----- runtime stats (S2) ----- *)

let test_runtime_stats () =
  let stats = Mcss_obs.Runtime_stats.sample () in
  Helpers.check_bool "peak RSS positive on Linux" true
    (stats.Mcss_obs.Runtime_stats.peak_rss_bytes > 0);
  Helpers.check_bool "major words sane" true
    (stats.Mcss_obs.Runtime_stats.gc_major_words >= 0.);
  let json = Mcss_obs.Runtime_stats.to_json_object stats in
  Helpers.check_bool "json carries the field" true
    (Helpers.contains ~needle:"\"peak_rss_bytes\"" json)

let suite =
  [
    Alcotest.test_case "curve validate" `Quick test_curve_validate;
    Alcotest.test_case "growth crossing zero rejected" `Quick
      test_growth_crossing_zero_rejected;
    prop_curve_strictly_positive;
    prop_diurnal_periodic;
    prop_realize_deterministic;
    Alcotest.test_case "component round-trip" `Quick test_component_round_trip;
    Alcotest.test_case "scenario round-trip" `Quick test_scenario_round_trip;
    Alcotest.test_case "scenario parse errors" `Quick test_scenario_parse_errors;
    Alcotest.test_case "comments ignored" `Quick test_scenario_comments_ignored;
    prop_multiplier_deterministic;
    Alcotest.test_case "affected subset size" `Quick test_affected_subset_size;
    prop_compile_matches_direct;
    Alcotest.test_case "engine replay clean" `Quick test_engine_replay_clean;
    Alcotest.test_case "reservation pricing" `Quick test_reservation_pricing;
    Alcotest.test_case "hysteresis up immediately" `Quick
      test_hysteresis_tracks_up_immediately;
    Alcotest.test_case "hysteresis down cooldown" `Quick
      test_hysteresis_waits_on_the_way_down;
    Alcotest.test_case "hysteresis consolidation cooldown" `Quick
      test_hysteresis_consolidates_with_cooldown;
    Alcotest.test_case "lookahead holds through dip" `Quick
      test_lookahead_holds_through_short_dip;
    Alcotest.test_case "lookahead releases drop" `Quick
      test_lookahead_releases_sustained_drop;
    Alcotest.test_case "static never moves" `Quick test_static_never_moves;
    Alcotest.test_case "week sim runs clean" `Quick test_week_sim_runs_clean;
    Alcotest.test_case "week sim deterministic" `Quick test_week_sim_deterministic;
    Alcotest.test_case "ledger parses" `Quick test_week_sim_ledger_parses;
    Alcotest.test_case "runtime stats" `Quick test_runtime_stats;
  ]
