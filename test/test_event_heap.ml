(* Property tests for the simulator's pending-event queue: against a
   model multiset, pops must come out in non-decreasing key order and
   return exactly the pushed (key, payload) pairs — including under
   duplicate keys and arbitrary push/pop interleavings. *)

module Event_heap = Mcss_sim.Event_heap

(* An operation script: [push (key, payload)] or [pop]. Keys are drawn
   from a small integer range so duplicates are common. *)
let op_gen =
  QCheck.(
    list
      (oneof
         [
           map (fun (k, v) -> `Push (float_of_int (k mod 8), v)) (pair small_int small_int);
           always `Pop;
         ]))

let sorted_multiset pairs = List.sort compare pairs

let prop_interleaved_ops =
  Helpers.qtest ~count:300 "heap = sorted multiset under push/pop interleavings"
    op_gen
    (fun ops ->
      let h = Event_heap.create () in
      (* Model: the multiset of (key, payload) pairs still inside. *)
      let inside = ref [] in
      let popped = ref [] in
      let last_key = ref neg_infinity in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Push (k, v) ->
              Event_heap.push h k v;
              inside := (k, v) :: !inside;
              (* A push may legitimately rewind the floor for later pops. *)
              last_key := neg_infinity
          | `Pop -> (
              match Event_heap.pop h with
              | None -> if !inside <> [] then ok := false
              | Some (k, v) ->
                  if k < !last_key then ok := false;
                  last_key := k;
                  (* The popped key must be minimal among resident keys. *)
                  List.iter (fun (k', _) -> if k' < k then ok := false) !inside;
                  (match
                     List.partition (fun entry -> entry = (k, v)) !inside
                   with
                  | first :: rest_same, others ->
                      ignore first;
                      inside := rest_same @ others
                  | [], _ -> ok := false);
                  popped := (k, v) :: !popped))
        ops;
      (* Drain: what remains must come out sorted and account for every
         remaining model entry. *)
      let rec drain acc =
        match Event_heap.pop h with
        | None -> List.rev acc
        | Some (k, v) -> drain ((k, v) :: acc)
      in
      let drained = drain [] in
      let keys = List.map fst drained in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      !ok && nondecreasing keys
      && Event_heap.is_empty h
      && sorted_multiset drained = sorted_multiset !inside)

let prop_duplicate_keys_preserve_payloads =
  Helpers.qtest ~count:200 "duplicate timestamps lose no payloads"
    QCheck.(pair (int_bound 6) (small_list small_int))
    (fun (key_raw, payloads) ->
      let key = float_of_int key_raw in
      let h = Event_heap.create () in
      List.iter (fun v -> Event_heap.push h key v) payloads;
      let rec drain acc =
        match Event_heap.pop h with
        | None -> List.rev acc
        | Some (k, v) ->
            if k <> key then raise Exit;
            drain (v :: acc)
      in
      let out = drain [] in
      List.sort compare out = List.sort compare payloads)

let test_empty_heap () =
  let h : int Event_heap.t = Event_heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Event_heap.is_empty h);
  Alcotest.(check int) "size 0" 0 (Event_heap.size h);
  Alcotest.(check bool) "pop on empty" true (Event_heap.pop h = None);
  Alcotest.(check bool) "peek on empty" true (Event_heap.peek h = None)

let test_peek_matches_pop () =
  let h = Event_heap.create () in
  List.iter (fun (k, v) -> Event_heap.push h k v) [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check bool) "peek is min" true (Event_heap.peek h = Some (1., "a"));
  Alcotest.(check bool) "pop agrees with peek" true (Event_heap.pop h = Some (1., "a"));
  Alcotest.(check int) "size decremented" 2 (Event_heap.size h)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty_heap;
    Alcotest.test_case "peek matches pop" `Quick test_peek_matches_pop;
    prop_interleaved_ops;
    prop_duplicate_keys_preserve_payloads;
  ]
