(* Tests for the stateful incremental planning engine and the delta
   codec: surgery preserves validity, drift re-solves are bit-for-bit
   the cold answer, and the evolved caches match from-scratch rebuilds. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier
module Plan_io = Mcss_core.Plan_io
module Allocation = Mcss_core.Allocation
module Engine = Mcss_engine.Engine
module Delta = Mcss_engine.Delta
module Delta_io = Mcss_engine.Delta_io
module Churn = Mcss_dynamic.Churn
module Reprovision = Mcss_dynamic.Reprovision

let costs = Problem.linear_costs ~vm_usd:36. ~per_event_usd:0.001

(* Capacity generous enough that a few ticks of 2.5x rate bursts cannot
   make a single pair unplaceable, so the stream stays feasible. *)
let roomy_problem rng =
  let w =
    Helpers.random_workload rng ~num_topics:12 ~num_subscribers:20 ~max_rate:10
      ~max_interests:4
  in
  Problem.create ~workload:w ~tau:25. ~capacity:2000. costs

(* Tight capacity so the solve needs several VMs (for recovery tests). *)
let multi_vm_problem rng =
  let w =
    Helpers.random_workload rng ~num_topics:15 ~num_subscribers:25 ~max_rate:9
      ~max_interests:4
  in
  Problem.create ~workload:w ~tau:20. ~capacity:60. costs

let evolved_problem (p : Problem.t) deltas =
  let w' = Delta.apply p.Problem.workload deltas in
  Problem.create ~workload:w' ~tau:p.Problem.tau ~capacity:p.Problem.capacity
    p.Problem.costs

let check_engine_valid what eng =
  let { Engine.problem = p; selection = s; allocation = a } = Engine.plan eng in
  Helpers.check_bool what true (Verifier.is_valid (Verifier.verify p s a));
  for v = 0 to Workload.num_subscribers p.Problem.workload - 1 do
    if Engine.rem_v eng v > 1e-9 then
      Alcotest.failf "%s: subscriber %d left %g short" what v (Engine.rem_v eng v)
  done;
  for id = 0 to Engine.num_vms eng - 1 do
    if Engine.residual eng id < -1e-9 then
      Alcotest.failf "%s: VM %d over capacity by %g" what id
        (-.Engine.residual eng id)
  done

let test_apply_keeps_plan_valid () =
  let rng = Mcss_prng.Rng.create 42 in
  let p = roomy_problem rng in
  (* Tiny workloads churn a large pair fraction per tick; disable the
     drift fallback so this exercises the surgery path, not the solver. *)
  let eng = Engine.create ~drift_threshold:infinity p in
  check_engine_valid "cold plan valid" eng;
  for i = 1 to 3 do
    let deltas = Churn.tick rng (Churn.scaled 0.2) (Engine.problem eng).Problem.workload in
    let stats = Engine.apply eng deltas in
    Helpers.check_bool "no drift re-solve" false stats.Engine.resolved;
    check_engine_valid (Printf.sprintf "valid after tick %d" i) eng
  done

let test_drift_resolve_is_cold_solve () =
  let rng = Mcss_prng.Rng.create 7 in
  let p = roomy_problem rng in
  let eng = Engine.create ~drift_threshold:0. p in
  let deltas = Churn.tick rng (Churn.scaled 0.2) p.Problem.workload in
  let stats = Engine.apply eng deltas in
  Helpers.check_bool "zero threshold trips" true stats.Engine.resolved;
  let cold = Solver.solve (Engine.problem eng) in
  let plan = Engine.plan eng in
  Helpers.check_bool "selection bit-for-bit" true
    (plan.Engine.selection = cold.Solver.selection);
  Alcotest.(check string)
    "allocation bit-for-bit"
    (Plan_io.to_string cold.Solver.allocation)
    (Plan_io.to_string plan.Engine.allocation)

let test_followers_cache_evolves_exactly () =
  let rng = Mcss_prng.Rng.create 11 in
  let w =
    Helpers.random_workload rng ~num_topics:10 ~num_subscribers:15 ~max_rate:8
      ~max_interests:3
  in
  ignore (Workload.followers w 0);
  let deltas = Churn.tick rng (Churn.scaled 0.3) w in
  let w' = Delta.apply w deltas in
  Helpers.check_bool "cache carried" true (Workload.cached_followers w' <> None);
  (* The evolved index must equal the one a from-scratch workload
     derives from the same interests. *)
  let fresh =
    Workload.create
      ~event_rates:(Array.init (Workload.num_topics w') (Workload.event_rate w'))
      ~interests:
        (Array.init (Workload.num_subscribers w') (fun v ->
             Array.copy (Workload.interests w' v)))
  in
  for t = 0 to Workload.num_topics w' - 1 do
    if Workload.followers w' t <> Workload.followers fresh t then
      Alcotest.failf "followers of topic %d diverged" t
  done

let test_delta_apply_rejects_inconsistency () =
  let w = Helpers.workload ~rates:[ 5.; 3. ] ~interests:[ [ 0 ]; [ 0; 1 ] ] in
  let rejects what deltas =
    match Delta.apply w deltas with
    | _ -> Alcotest.failf "%s: accepted" what
    | exception Invalid_argument _ -> ()
  in
  rejects "double follow" [ Delta.Subscribe { subscriber = 0; topic = 0 } ];
  rejects "unfollow stranger" [ Delta.Unsubscribe { subscriber = 0; topic = 1 } ];
  rejects "topic out of range" [ Delta.Subscribe { subscriber = 0; topic = 7 } ];
  rejects "subscriber out of range" [ Delta.Subscribe { subscriber = 9; topic = 1 } ];
  rejects "non-positive rate" [ Delta.Rate_change { topic = 0; rate = 0. } ];
  rejects "duplicate interests" [ Delta.New_subscriber { interests = [| 1; 1 |] } ];
  (* A consistent batch touching everything still applies. *)
  let w' =
    Delta.apply w
      [
        Delta.New_topic { rate = 4. };
        Delta.Subscribe { subscriber = 0; topic = 2 };
        Delta.Unsubscribe { subscriber = 1; topic = 1 };
        Delta.Rate_change { topic = 0; rate = 6. };
        Delta.New_subscriber { interests = [| 1; 2 |] };
      ]
  in
  Helpers.check_int "topics" 3 (Workload.num_topics w');
  Helpers.check_int "subscribers" 3 (Workload.num_subscribers w');
  Helpers.check_float "rate changed" 6. (Workload.event_rate w' 0);
  Helpers.check_bool "interests sorted" true
    (Workload.interests w' 0 = [| 0; 2 |] && Workload.interests w' 2 = [| 1; 2 |])

let test_fail_rehomes_orphans () =
  let rng = Mcss_prng.Rng.create 23 in
  let p = multi_vm_problem rng in
  let eng = Engine.create p in
  let before = Engine.num_vms eng in
  Helpers.check_bool "needs several VMs" true (before > 1);
  let stats = Engine.fail eng ~failed:[ 0; before ] in
  Helpers.check_int "one real VM lost" 1 stats.Engine.vms_lost;
  Helpers.check_bool "orphans rehomed" true (stats.Engine.pairs_rehomed > 0);
  check_engine_valid "valid after failure" eng

let prop_random_stream_stays_valid =
  Helpers.qtest ~count:40 "any delta stream: valid plan, cost tracks Reprovision"
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, extra_ticks) ->
      let rng = Mcss_prng.Rng.create seed in
      let p = roomy_problem rng in
      try
        (* Drift disabled so both sides do pure surgery, which makes the
           cost comparison exact rather than tolerance-fudged. *)
        let eng = Engine.create ~drift_threshold:infinity p in
        let prev = ref (Reprovision.initial p) in
        for _ = 1 to 1 + extra_ticks do
          let w = (Engine.problem eng).Problem.workload in
          let deltas = Churn.tick rng (Churn.scaled 0.2) w in
          ignore (Engine.apply eng deltas);
          let plan', _ =
            Reprovision.reprovision ~previous:!prev (evolved_problem !prev.Engine.problem deltas)
          in
          prev := plan'
        done;
        let { Engine.problem = p'; selection = s; allocation = a } = Engine.plan eng in
        Verifier.is_valid (Verifier.verify p' s a)
        && Float.abs (Engine.cost eng -. Reprovision.cost !prev)
           <= 1e-6 *. Float.max 1. (Reprovision.cost !prev)
      with Problem.Infeasible _ -> QCheck.assume_fail ())

let prop_drift_resolve_bitexact =
  Helpers.qtest ~count:40 "drift threshold 0: apply answers with the cold solve"
    QCheck.small_int
    (fun seed ->
      let rng = Mcss_prng.Rng.create seed in
      let p = roomy_problem rng in
      try
        let eng = Engine.create ~drift_threshold:0. p in
        let deltas = Churn.tick rng (Churn.scaled 0.1) p.Problem.workload in
        let stats = Engine.apply eng deltas in
        let cold = Solver.solve (Engine.problem eng) in
        let plan = Engine.plan eng in
        stats.Engine.resolved
        && plan.Engine.selection = cold.Solver.selection
        && Plan_io.to_string plan.Engine.allocation
           = Plan_io.to_string cold.Solver.allocation
      with Problem.Infeasible _ -> QCheck.assume_fail ())

let prop_delta_io_roundtrip =
  Helpers.qtest ~count:100 "codec round-trips any generated stream bit-exactly"
    QCheck.small_int
    (fun seed ->
      let rng = Mcss_prng.Rng.create seed in
      let w =
        Helpers.random_workload rng ~num_topics:8 ~num_subscribers:10 ~max_rate:20
          ~max_interests:4
      in
      let deltas =
        Churn.tick rng (Churn.scaled 0.2) w
        (* Awkward rates must survive the text round trip bit-for-bit. *)
        @ [
            Delta.New_topic { rate = 0.1 };
            Delta.New_topic { rate = 1. /. 3. };
            Delta.Rate_change { topic = 0; rate = Float.pi *. 1e7 };
            Delta.New_subscriber { interests = [||] };
          ]
      in
      Delta_io.of_string (Delta_io.to_string deltas) = deltas)

let test_delta_io_rejects_garbage () =
  let rejects what s =
    match Delta_io.of_string s with
    | _ -> Alcotest.failf "%s: accepted" what
    | exception Delta_io.Parse_error _ -> ()
  in
  rejects "missing header" "subscribe 0 1\n";
  rejects "bad version" "mcss-deltas 9\n";
  rejects "unknown verb" "mcss-deltas 1\nfollow 0 1\n";
  rejects "arity" "mcss-deltas 1\nsubscribe 0\n";
  rejects "non-positive rate" "mcss-deltas 1\nrate 0 -3\n";
  rejects "interest count mismatch" "mcss-deltas 1\nnew-subscriber 2 4\n"

let suite =
  [
    Alcotest.test_case "apply keeps plan valid" `Quick test_apply_keeps_plan_valid;
    Alcotest.test_case "drift re-solve is the cold solve" `Quick
      test_drift_resolve_is_cold_solve;
    Alcotest.test_case "followers cache evolves exactly" `Quick
      test_followers_cache_evolves_exactly;
    Alcotest.test_case "delta.apply rejects inconsistency" `Quick
      test_delta_apply_rejects_inconsistency;
    Alcotest.test_case "fail rehomes orphans" `Quick test_fail_rehomes_orphans;
    prop_random_stream_stays_valid;
    prop_drift_resolve_bitexact;
    prop_delta_io_roundtrip;
    Alcotest.test_case "delta codec rejects garbage" `Quick
      test_delta_io_rejects_garbage;
  ]
