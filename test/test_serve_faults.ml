(* The crash-safety and degradation story, attacked from every layer:
   the journal's framing against torn and corrupt tails, the breaker
   state machine on a fake clock, retry backoff bounds, single-flight
   stampede suppression, a kill-9-equivalent service restart, and the
   full client/server stack behind a byte-mangling proxy. *)

module Json = Mcss_serve.Json
module Protocol = Mcss_serve.Protocol
module Admission = Mcss_serve.Admission
module Service = Mcss_serve.Service
module Server = Mcss_serve.Server
module Client = Mcss_serve.Client
module Pool = Mcss_serve.Pool
module Journal = Mcss_serve.Journal
module Breaker = Mcss_serve.Breaker
module Retry = Mcss_serve.Retry
module Single_flight = Mcss_serve.Single_flight
module Faulty = Mcss_serve.Faulty
module Rng = Mcss_prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_workload () =
  Helpers.workload ~rates:[ 20.; 10.; 5. ]
    ~interests:[ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ]

let ok_reply name reply =
  if not (Protocol.response_ok reply) then
    Alcotest.failf "%s: error reply %s" name (Json.to_string reply);
  reply

let str_field reply key =
  match Option.bind (Json.member key reply) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "reply lacks string %S: %s" key (Json.to_string reply)

let bool_field reply key =
  match Option.bind (Json.member key reply) Json.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.failf "reply lacks bool %S: %s" key (Json.to_string reply)

let float_field reply key =
  match Option.bind (Json.member key reply) Json.to_float_opt with
  | Some f -> f
  | None -> Alcotest.failf "reply lacks number %S: %s" key (Json.to_string reply)

let expect_code name code reply =
  match Protocol.response_error reply with
  | Some (Some c, _) when c = code -> ()
  | _ ->
      Alcotest.failf "%s: wanted %s, got %s" name
        (Protocol.error_code_to_string code)
        (Json.to_string reply)

(* ----- scratch directories ----- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mcss-faults-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ----- journal ----- *)

let test_crc32_vector () =
  (* The standard IEEE 802.3 check value. *)
  check_string "crc32(\"123456789\")" "cbf43926"
    (Printf.sprintf "%08lx" (Journal.crc32 "123456789"))

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let config = Journal.default_config ~dir in
      let j, replay = Journal.open_ config in
      check_int "fresh journal is empty" 0 (List.length replay.Journal.records);
      Journal.append j "one";
      Journal.append j "two";
      Journal.append j (String.make 1000 'x');
      check_int "wal counts appends" 3 (Journal.wal_records j);
      Journal.close j;
      (match Journal.append j "after close" with
      | () -> Alcotest.fail "append after close should raise"
      | exception Sys_error _ -> ());
      let j2, replay = Journal.open_ config in
      check_bool "records replayed in order" true
        (replay.Journal.records = [ (0, "one"); (0, "two"); (0, String.make 1000 'x') ]);
      check_int "no torn tail" 0 replay.Journal.truncated_bytes;
      check_int "no corruption" 0 replay.Journal.corrupt_records;
      Journal.close j2)

let append_raw path bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let b = Bytes.of_string bytes in
  ignore (Unix.write fd b 0 (Bytes.length b));
  Unix.close fd

let test_journal_torn_tail () =
  with_dir (fun dir ->
      let config = Journal.default_config ~dir in
      let j, _ = Journal.open_ config in
      Journal.append j "alpha";
      Journal.append j "beta";
      Journal.close j;
      let wal = Filename.concat dir "wal.mcssj" in
      let good_size = (Unix.stat wal).Unix.st_size in
      (* A crash mid-append: a whole header promising 100 bytes but only
         a few payload bytes made it to disk. *)
      let torn = Bytes.create Journal.header_bytes in
      Bytes.set_int32_le torn 0 100l;
      Bytes.set_int32_le torn 4 0l;
      append_raw wal (Bytes.to_string torn ^ "only-this");
      let j2, replay = Journal.open_ config in
      check_bool "good records recovered" true
        (replay.Journal.records = [ (0, "alpha"); (0, "beta") ]);
      check_int "torn bytes reported" (Journal.header_bytes + 9)
        replay.Journal.truncated_bytes;
      check_int "a torn tail is not corruption" 0 replay.Journal.corrupt_records;
      check_int "WAL physically truncated" good_size (Unix.stat wal).Unix.st_size;
      (* And the journal keeps working from the cut. *)
      Journal.append j2 "gamma";
      Journal.close j2;
      let j3, replay = Journal.open_ config in
      check_bool "append after truncation replays" true
        (replay.Journal.records = [ (0, "alpha"); (0, "beta"); (0, "gamma") ]);
      Journal.close j3)

let test_journal_corrupt_record () =
  with_dir (fun dir ->
      let config = Journal.default_config ~dir in
      let j, _ = Journal.open_ config in
      Journal.append j "first";
      Journal.append j "second";
      Journal.close j;
      let wal = Filename.concat dir "wal.mcssj" in
      (* Flip a payload byte of the second record (offset: 16 + 5 for the
         first frame, + 16 header = byte 37 is 's' of "second"). *)
      let fd = Unix.openfile wal [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd 37 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "X") 0 1);
      Unix.close fd;
      let j2, replay = Journal.open_ config in
      check_bool "scan stops before the bad CRC" true
        (replay.Journal.records = [ (0, "first") ]);
      check_int "corruption counted" 1 replay.Journal.corrupt_records;
      check_bool "corrupt tail cut" true (replay.Journal.truncated_bytes > 0);
      Journal.close j2)

let test_journal_snapshot () =
  with_dir (fun dir ->
      let config = { (Journal.default_config ~dir) with Journal.snapshot_every = 3 } in
      let j, _ = Journal.open_ config in
      Journal.append j "a";
      Journal.append j "b";
      check_bool "not due yet" false (Journal.snapshot_due j);
      Journal.append j "c";
      check_bool "due at the threshold" true (Journal.snapshot_due j);
      Journal.snapshot j [ "full"; "state" ];
      check_int "snapshot resets the WAL" 0 (Journal.wal_records j);
      check_int "snapshot counted" 1 (Journal.snapshots_taken j);
      Journal.append j "d";
      Journal.close j;
      let j2, replay = Journal.open_ config in
      check_bool "snapshot then WAL" true
        (replay.Journal.records = [ (0, "full"); (0, "state"); (0, "d") ]);
      check_int "snapshot records" 2 replay.Journal.snapshot_records;
      check_int "wal records" 1 replay.Journal.wal_records;
      Journal.close j2)

(* ----- service durability (kill -9 equivalence) ----- *)

let journaled_config ?(snapshot_every = 256) dir =
  {
    Service.default_config with
    Service.journal =
      Some { (Journal.default_config ~dir) with Journal.snapshot_every };
  }

let test_service_crash_restart () =
  with_dir (fun dir ->
      (* Session one: load and solve, then vanish without close — the
         WAL is fsynced per append, so an abandoned instance is exactly
         what kill -9 leaves behind. *)
      let svc = Service.create ~config:(journaled_config dir) () in
      let digest = Service.load_workload svc (test_workload ()) in
      let solve_line =
        Printf.sprintf {|{"req":"solve","digest":"%s","tau":12}|} digest
      in
      let r1 = ok_reply "first solve" (Service.handle_line svc solve_line) in
      check_bool "cold solve" false (bool_field r1 "cached");
      let plan_digest = str_field r1 "plan_digest" in
      let cost = float_field r1 "cost_usd" in
      (* Session two: a fresh instance over the same directory. *)
      let svc2 = Service.create ~config:(journaled_config dir) () in
      (match Service.replay_stats svc2 with
      | None -> Alcotest.fail "journaled service must report replay stats"
      | Some r ->
          check_int "workload recovered" 1 r.Service.workloads_recovered;
          check_int "plan recovered" 1 r.Service.plans_recovered;
          check_int "nothing skipped" 0 r.Service.records_skipped);
      let r2 = ok_reply "post-restart solve" (Service.handle_line svc2 solve_line) in
      check_bool "served from the recovered cache" true (bool_field r2 "cached");
      check_string "identical plan digest" plan_digest (str_field r2 "plan_digest");
      check_bool "identical cost" true (cost = float_field r2 "cost_usd");
      check_int "the solver never ran" 0 (Service.solver_runs svc2);
      Service.close svc2)

let test_service_snapshot_restart () =
  with_dir (fun dir ->
      let svc = Service.create ~config:(journaled_config ~snapshot_every:2 dir) () in
      let digest = Service.load_workload svc (test_workload ()) in
      let solve tau svc =
        Service.handle_line svc
          (Printf.sprintf {|{"req":"solve","digest":"%s","tau":%d}|} digest tau)
      in
      ignore (ok_reply "solve 10" (solve 10 svc)); (* record 2: snapshot folds *)
      ignore (ok_reply "solve 11" (solve 11 svc)); (* record 1 of the new WAL *)
      Service.close svc;
      let svc2 = Service.create ~config:(journaled_config ~snapshot_every:2 dir) () in
      (match Service.replay_stats svc2 with
      | None -> Alcotest.fail "no replay stats"
      | Some r ->
          check_int "both plans back (snapshot + WAL)" 2 r.Service.plans_recovered;
          check_int "workload back" 1 r.Service.workloads_recovered);
      check_bool "snapshot-era plan is a hit" true
        (bool_field (ok_reply "solve 10 again" (solve 10 svc2)) "cached");
      check_bool "wal-era plan is a hit" true
        (bool_field (ok_reply "solve 11 again" (solve 11 svc2)) "cached");
      check_int "no re-solving after restart" 0 (Service.solver_runs svc2);
      Service.close svc2)

let test_journal_tolerates_garbage_records () =
  with_dir (fun dir ->
      (* A valid frame whose payload is not a service op must be skipped
         on replay, not crash the boot. *)
      let config = Journal.default_config ~dir in
      let j, _ = Journal.open_ config in
      Journal.append j "not json at all";
      Journal.append j {|{"op":"plan","digest":"feedface","plan":"x"}|};
      Journal.close j;
      let svc = Service.create ~config:(journaled_config dir) () in
      match Service.replay_stats svc with
      | None -> Alcotest.fail "no replay stats"
      | Some r ->
          check_int "both records skipped" 2 r.Service.records_skipped;
          check_int "nothing recovered" 0 r.Service.plans_recovered;
          Service.close svc)

(* ----- circuit breaker (fake clock, no sleeping) ----- *)

let test_breaker_fsm () =
  let now = ref 0L in
  let b =
    Breaker.create ~now:(fun () -> !now)
      { Breaker.failure_threshold = 3; cooldown_ms = 100. }
  in
  let admit_and b verdict = check_bool "admit" verdict (Breaker.admit b) in
  check_bool "starts closed" true (Breaker.state b = Breaker.Closed);
  (* Two failures: still closed. *)
  admit_and b true; Breaker.failure b;
  admit_and b true; Breaker.failure b;
  check_bool "under threshold stays closed" true (Breaker.state b = Breaker.Closed);
  check_int "streak counted" 2 (Breaker.consecutive_failures b);
  (* A success resets the streak. *)
  admit_and b true; Breaker.success b;
  check_int "success resets streak" 0 (Breaker.consecutive_failures b);
  (* Three in a row open the circuit. *)
  admit_and b true; Breaker.failure b;
  admit_and b true; Breaker.failure b;
  admit_and b true; Breaker.failure b;
  check_bool "opens at threshold" true (Breaker.state b = Breaker.Open);
  check_int "one open" 1 (Breaker.opens b);
  admit_and b false;
  check_int "rejection counted" 1 (Breaker.rejections b);
  (* Cooldown elapses: exactly one probe gets through. *)
  now := Int64.of_float (150. *. 1e6);
  check_bool "half-open after cooldown" true (Breaker.state b = Breaker.Half_open);
  admit_and b true;
  admit_and b false;
  (* The probe fails: re-open, cooldown restarts. *)
  Breaker.failure b;
  check_bool "failed probe re-opens" true (Breaker.state b = Breaker.Open);
  check_int "second open" 2 (Breaker.opens b);
  admit_and b false;
  (* Next cooldown: the probe succeeds and the circuit closes. *)
  now := Int64.of_float (400. *. 1e6);
  admit_and b true;
  Breaker.success b;
  check_bool "successful probe closes" true (Breaker.state b = Breaker.Closed);
  check_int "close counted" 1 (Breaker.closes b);
  admit_and b true;
  Breaker.success b

(* ----- retry backoff ----- *)

let test_backoff_bounds () =
  let rng = Rng.create 7 in
  let policy =
    { Retry.default_policy with Retry.base_ms = 10.; cap_ms = 50. }
  in
  check_bool "first draw is the base" true
    (Retry.backoff_ms rng policy ~prev_ms:0. = 10.);
  for _ = 1 to 200 do
    let prev = Rng.float rng 100. in
    let ms = Retry.backoff_ms rng policy ~prev_ms:prev in
    if ms < 10. || ms > 50. then
      Alcotest.failf "backoff %g outside [base, cap] for prev %g" ms prev
  done;
  check_bool "huge prev is capped" true
    (Retry.backoff_ms rng policy ~prev_ms:1e9 = 50.)

let test_retry_run () =
  let sleeps = ref [] in
  let sleep ms = sleeps := ms :: !sleeps in
  let policy =
    {
      Retry.max_attempts = 5;
      base_ms = 10.;
      cap_ms = 50.;
      attempt_timeout_ms = None;
    }
  in
  (* Succeeds on the third try. *)
  let o =
    Retry.run ~sleep ~rng:(Rng.create 1) ~policy (fun ~attempt ->
        if attempt < 3 then Retry.Retry "transient" else Retry.Done attempt)
  in
  check_bool "ok" true (o.Retry.result = Ok 3);
  check_int "three attempts" 3 o.Retry.attempts;
  check_int "two sleeps" 2 (List.length !sleeps);
  List.iter
    (fun ms ->
      if ms < 10. || ms > 50. then Alcotest.failf "sleep %g outside bounds" ms)
    !sleeps;
  check_bool "backoff accounted" true
    (o.Retry.total_backoff_ms = List.fold_left ( +. ) 0. !sleeps);
  (* A non-retryable failure stops immediately. *)
  sleeps := [];
  let o =
    Retry.run ~sleep ~rng:(Rng.create 2) ~policy (fun ~attempt:_ ->
        Retry.Give_up "bad request")
  in
  check_bool "gave up" true (o.Retry.result = Error "bad request");
  check_int "one attempt" 1 o.Retry.attempts;
  check_int "no sleeping" 0 (List.length !sleeps);
  (* Exhaustion surfaces the last transient message. *)
  let o =
    Retry.run ~sleep ~rng:(Rng.create 3) ~policy (fun ~attempt:_ ->
        Retry.Retry "still down")
  in
  check_bool "exhausted" true
    (o.Retry.result = Error "still down (gave up after 5 attempts)");
  check_int "budget respected" 5 o.Retry.attempts

(* ----- single flight ----- *)

let test_single_flight_dedup () =
  let sf = Single_flight.create () in
  let arrived = Atomic.make 0 in
  let executions = Atomic.make 0 in
  let racers = 4 in
  let body () =
    Atomic.incr arrived;
    (* The leader holds the key until every racer has called [run], so
       all of them share this one execution. *)
    Single_flight.run sf ~key:"k" (fun () ->
        Atomic.incr executions;
        while Atomic.get arrived < racers do
          Unix.sleepf 0.001
        done;
        42)
  in
  let domains = Array.init racers (fun _ -> Domain.spawn body) in
  let roles = Array.map Domain.join domains in
  check_int "the solver ran once" 1 (Atomic.get executions);
  let leaders =
    Array.fold_left
      (fun n -> function Single_flight.Leader _ -> n + 1 | _ -> n)
      0 roles
  in
  check_int "exactly one leader" 1 leaders;
  Array.iter
    (fun r ->
      match r with
      | Single_flight.Leader v | Single_flight.Follower v ->
          check_int "shared result" 42 v)
    roles;
  check_int "table drained" 0 (Single_flight.in_flight sf);
  (* A later call starts fresh. *)
  (match Single_flight.run sf ~key:"k" (fun () -> 7) with
  | Single_flight.Leader 7 -> ()
  | _ -> Alcotest.fail "post-completion call should lead a fresh run")

exception Boom

let test_single_flight_exception () =
  let sf = Single_flight.create () in
  let arrived = Atomic.make 0 in
  let racers = 3 in
  let body () =
    Atomic.incr arrived;
    match
      Single_flight.run sf ~key:"k" (fun () ->
          while Atomic.get arrived < racers do
            Unix.sleepf 0.001
          done;
          raise Boom)
    with
    | _ -> `No_exception
    | exception Boom -> `Boom
  in
  let outcomes =
    Array.map Domain.join (Array.init racers (fun _ -> Domain.spawn body))
  in
  Array.iter
    (fun o -> check_bool "leader exception reaches everyone" true (o = `Boom))
    outcomes;
  check_int "table drained after failure" 0 (Single_flight.in_flight sf)

(* ----- born-expired deadlines ----- *)

let test_deadline_born_expired () =
  List.iter
    (fun ms ->
      let d = Admission.deadline_of_ms (Some ms) in
      check_bool "expired from birth" true (Admission.expired d);
      check_bool "remaining clamped to zero" true (Admission.remaining_ms d = 0.))
    [ 0.; -1.; -1e9 ];
  (* Through the service: a configured 0 ms default deadline times out
     deterministically, every time, without touching the solver. *)
  let svc =
    Service.create
      ~config:{ Service.default_config with Service.default_deadline_ms = Some 0. }
      ()
  in
  let digest = Service.load_workload svc (test_workload ()) in
  for _ = 1 to 10 do
    expect_code "0ms deadline" Protocol.Timeout
      (Service.handle_line svc
         (Printf.sprintf {|{"req":"solve","digest":"%s","tau":12}|} digest))
  done;
  check_int "the solver never ran" 0 (Service.solver_runs svc)

(* ----- degraded replies under an open circuit ----- *)

let breaker_config = { Breaker.failure_threshold = 1; cooldown_ms = 1e9 }

let test_service_degraded_flow () =
  let svc =
    Service.create
      ~config:{ Service.default_config with Service.breaker = breaker_config }
      ()
  in
  let digest = Service.load_workload svc (test_workload ()) in
  let solve_line tau =
    Printf.sprintf {|{"req":"solve","digest":"%s","tau":%d}|} digest tau
  in
  let r1 = ok_reply "baseline solve" (Service.handle_line svc (solve_line 12)) in
  check_bool "baseline not degraded" false (Protocol.response_degraded r1);
  let plan_digest = str_field r1 "plan_digest" in
  (* Trip the breaker (threshold 1, effectively infinite cooldown). *)
  Breaker.failure (Service.breaker svc);
  check_bool "circuit open" true (Breaker.state (Service.breaker svc) = Breaker.Open);
  (* A cache miss now degrades to the last solved plan for the digest. *)
  let r2 = ok_reply "degraded solve" (Service.handle_line svc (solve_line 999)) in
  check_bool "marked degraded" true (Protocol.response_degraded r2);
  check_bool "serves the fallback's own tau" true (float_field r2 "tau" = 12.);
  check_bool "discloses what was asked" true
    (float_field r2 "requested_tau" = 999.);
  check_string "the fallback plan itself" plan_digest (str_field r2 "plan_digest");
  check_int "solver not touched while open" 1 (Service.solver_runs svc);
  (* Cache hits bypass the breaker entirely. *)
  let r3 = ok_reply "hit while open" (Service.handle_line svc (solve_line 12)) in
  check_bool "hit not degraded" false (Protocol.response_degraded r3);
  check_bool "hit cached" true (bool_field r3 "cached");
  (* A whatif sweep answers every point, flagging the degraded ones. *)
  let r4 =
    ok_reply "whatif under open circuit"
      (Service.handle_line svc
         (Printf.sprintf {|{"req":"whatif","digest":"%s","taus":[12,999]}|} digest))
  in
  (match Option.bind (Json.member "points" r4) Json.to_list_opt with
  | Some [ p1; p2 ] ->
      let degraded p =
        match Option.bind (Json.member "degraded" p) Json.to_bool_opt with
        | Some b -> b
        | None -> false
      in
      check_bool "cached point clean" false (degraded p1);
      check_bool "missed point degraded" true (degraded p2)
  | _ -> Alcotest.failf "whatif shape: %s" (Json.to_string r4));
  (* Chaos refuses a wrong-params plan rather than drilling it. *)
  expect_code "chaos needs the exact plan" Protocol.Degraded
    (Service.handle_line svc
       (Printf.sprintf {|{"req":"chaos","digest":"%s","tau":999}|} digest))

let test_service_degraded_no_fallback () =
  let svc =
    Service.create
      ~config:{ Service.default_config with Service.breaker = breaker_config }
      ()
  in
  let digest = Service.load_workload svc (test_workload ()) in
  Breaker.failure (Service.breaker svc);
  expect_code "nothing to degrade to" Protocol.Degraded
    (Service.handle_line svc
       (Printf.sprintf {|{"req":"solve","digest":"%s","tau":12}|} digest))

let test_degraded_survives_restart () =
  (* The fallback plan can come from a previous process: journal a solve,
     restart, trip the new instance's breaker — the degraded reply must
     serve the journaled plan. *)
  with_dir (fun dir ->
      let config dir =
        { (journaled_config dir) with Service.breaker = breaker_config }
      in
      let svc = Service.create ~config:(config dir) () in
      let digest = Service.load_workload svc (test_workload ()) in
      let r1 =
        ok_reply "solve before crash"
          (Service.handle_line svc
             (Printf.sprintf {|{"req":"solve","digest":"%s","tau":12}|} digest))
      in
      let plan_digest = str_field r1 "plan_digest" in
      (* No close: crash. *)
      let svc2 = Service.create ~config:(config dir) () in
      Breaker.failure (Service.breaker svc2);
      let r2 =
        ok_reply "degraded from journaled plan"
          (Service.handle_line svc2
             (Printf.sprintf {|{"req":"solve","digest":"%s","tau":777}|} digest))
      in
      check_bool "degraded" true (Protocol.response_degraded r2);
      check_string "the pre-crash plan" plan_digest (str_field r2 "plan_digest");
      Service.close svc2)

(* ----- pool backpressure ----- *)

let test_pool_backpressure () =
  let pool = Pool.start ~queue_depth:1 ~workers:1 () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  check_bool "first job accepted" true
    (Pool.submit pool (fun () ->
         Atomic.set started true;
         while not (Atomic.get release) do
           Unix.sleepf 0.001
         done));
  while not (Atomic.get started) do
    Unix.sleepf 0.001
  done;
  check_bool "second job queues" true (Pool.submit pool (fun () -> ()));
  check_bool "third job shed" false (Pool.submit pool (fun () -> ()));
  check_int "queue length" 1 (Pool.queue_length pool);
  check_int "rejection counted" 1 (Pool.rejected pool);
  Atomic.set release true;
  Pool.shutdown pool;
  check_bool "submit after shutdown shed" false (Pool.submit pool (fun () -> ()))

(* ----- wire faults: proxy + resilient client ----- *)

(* A real server on a Unix socket, with a byte-mangling TCP proxy in
   front; [f] gets the proxy address to aim clients at. *)
let with_faulty_server plan f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-faults-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let svc = Service.create () in
  ignore (Service.load_workload svc (test_workload ()));
  let config =
    { Server.default_config with Server.workers = 2; accept_tick_s = 0.05 }
  in
  let upstream = Server.Unix_socket path in
  let server = Domain.spawn (fun () -> Server.run ~config svc upstream) in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "server never came up";
    match Client.connect upstream with
    | Ok c -> Client.close c
    | Error _ ->
        Unix.sleepf 0.02;
        wait (tries - 1)
  in
  wait 200;
  let proxy = Faulty.start ~plan ~upstream () in
  Fun.protect
    ~finally:(fun () ->
      Faulty.stop proxy;
      (match
         Client.with_connection upstream (fun c ->
             Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))
       with
      | Ok _ | Error _ -> ());
      Domain.join server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f proxy svc)

let fast_policy =
  {
    Retry.max_attempts = 4;
    base_ms = 1.;
    cap_ms = 10.;
    attempt_timeout_ms = Some 2000.;
  }

let health_env =
  { Protocol.id = None; deadline_ms = None; request = Protocol.Health }

let test_client_retries_through_reset () =
  (* Connection 0 aborts the reply with a real RST; the retry lands on
     connection 1 and succeeds. *)
  let plan ~conn =
    if conn = 0 then
      { Faulty.clean with Faulty.to_client = [ Faulty.Reset_after 0 ] }
    else Faulty.clean
  in
  with_faulty_server plan (fun proxy _svc ->
      let o =
        Client.call ~policy:fast_policy ~rng:(Rng.create 11)
          (Faulty.address proxy) health_env
      in
      (match o.Retry.result with
      | Ok reply -> ignore (ok_reply "health through reset" reply)
      | Error m -> Alcotest.failf "call failed: %s" m);
      check_int "exactly one retry" 2 o.Retry.attempts;
      check_int "proxy saw both connections" 2 (Faulty.connections proxy))

let test_client_retries_through_garbage () =
  (* Connection 0's reply is prefixed with HTTP junk — unparseable, so
     the client treats it as a transport failure and replays. *)
  let plan ~conn =
    if conn = 0 then
      { Faulty.clean with Faulty.to_client = [ Faulty.Garbage "HTTP/1.1 200 OK\r\n" ] }
    else Faulty.clean
  in
  with_faulty_server plan (fun proxy _svc ->
      let o =
        Client.call ~policy:fast_policy ~rng:(Rng.create 12)
          (Faulty.address proxy) health_env
      in
      (match o.Retry.result with
      | Ok reply -> ignore (ok_reply "health through garbage" reply)
      | Error m -> Alcotest.failf "call failed: %s" m);
      check_int "retried once" 2 o.Retry.attempts)

let test_partial_writes_and_trickle_are_harmless () =
  (* Chopped request bytes and a trickled reply exercise both line
     readers without ever constituting a failure. *)
  let plan ~conn:_ =
    {
      Faulty.to_server = [ Faulty.Chop 3 ];
      to_client = [ Faulty.Trickle { chunk = 7; delay_ms = 0.2 } ];
    }
  in
  with_faulty_server plan (fun proxy _svc ->
      let o =
        Client.call ~policy:fast_policy ~rng:(Rng.create 13)
          (Faulty.address proxy) health_env
      in
      (match o.Retry.result with
      | Ok reply -> ignore (ok_reply "health through chop+trickle" reply)
      | Error m -> Alcotest.failf "call failed: %s" m);
      check_int "no retry needed" 1 o.Retry.attempts)

let test_torn_frame_then_recovery () =
  (* Connection 0 tears the request mid-frame (clean FIN): the server
     must drop the half line without crashing, and the retry succeeds. *)
  let plan ~conn =
    if conn = 0 then
      { Faulty.clean with Faulty.to_server = [ Faulty.Tear_after 5 ] }
    else Faulty.clean
  in
  with_faulty_server plan (fun proxy svc ->
      let o =
        Client.call ~policy:fast_policy ~rng:(Rng.create 14)
          (Faulty.address proxy) health_env
      in
      (match o.Retry.result with
      | Ok reply -> ignore (ok_reply "health through torn frame" reply)
      | Error m -> Alcotest.failf "call failed: %s" m);
      check_int "retried once" 2 o.Retry.attempts;
      (* The server is still fully alive. *)
      ignore (ok_reply "service healthy" (Service.handle_line svc {|{"req":"health"}|})))

let test_blackhole_times_out_then_recovers () =
  (* Connection 0's reply direction is blackholed: the socket stays
     open, bytes vanish, nothing ever comes back — the shape of a
     dropped-packets partition, not a dead process. The client's
     receive timeout must fire (not hang, not crash on the channel's
     [Sys_blocked_io]) and the retry through a clean connection
     succeeds. *)
  let plan ~conn =
    if conn = 0 then
      { Faulty.clean with Faulty.to_client = [ Faulty.Blackhole ] }
    else Faulty.clean
  in
  with_faulty_server plan (fun proxy _svc ->
      let policy = { fast_policy with Retry.attempt_timeout_ms = Some 300. } in
      let o =
        Client.call ~policy ~rng:(Rng.create 15) (Faulty.address proxy)
          health_env
      in
      (match o.Retry.result with
      | Ok reply -> ignore (ok_reply "health through blackhole" reply)
      | Error m -> Alcotest.failf "call failed: %s" m);
      check_int "timed out once, then clean" 2 o.Retry.attempts;
      (* Flip the link to a full partition and sever live connections:
         the next call sees only swallowed bytes and must come back a
         timeout error, not a hang. *)
      Faulty.set_plan proxy (fun ~conn:_ ->
          { Faulty.to_server = [ Faulty.Blackhole ];
            to_client = [ Faulty.Blackhole ] });
      Faulty.sever proxy;
      let o2 =
        Client.call ~policy:{ policy with Retry.max_attempts = 2 }
          ~rng:(Rng.create 16) (Faulty.address proxy) health_env
      in
      (match o2.Retry.result with
      | Ok reply -> Alcotest.failf "partitioned call succeeded: %s" (Json.to_string reply)
      | Error _ -> ());
      (* Heal: new connections forward cleanly again. *)
      Faulty.set_plan proxy (fun ~conn:_ -> Faulty.clean);
      Faulty.sever proxy;
      let o3 =
        Client.call ~policy ~rng:(Rng.create 17) (Faulty.address proxy)
          health_env
      in
      match o3.Retry.result with
      | Ok reply -> ignore (ok_reply "health after heal" reply)
      | Error m -> Alcotest.failf "healed call failed: %s" m)

let test_non_idempotent_requests_not_replayed () =
  (* Force the idempotence gate with a request the codec cannot prove
     safe: every current verb is idempotent, so instead check the gate
     directly and that [call] consults it. *)
  check_bool "all current verbs replayable" true
    (List.for_all Protocol.idempotent
       [ Protocol.Health; Protocol.Stats; Protocol.Metrics; Protocol.Shutdown ])

(* ----- signal storm: EINTR everywhere ----- *)

let test_signal_storm_journal_and_solve () =
  with_dir (fun dir ->
      Faulty.with_signal_storm ~interval_ms:0.2 (fun () ->
          (* Journal under fire: every append write/fsync risks EINTR. *)
          let config = Journal.default_config ~dir in
          let j, _ = Journal.open_ config in
          for i = 1 to 50 do
            Journal.append j (Printf.sprintf "record-%d" i)
          done;
          Journal.close j;
          let j2, replay = Journal.open_ config in
          check_int "all records survive the storm" 50
            (List.length replay.Journal.records);
          check_int "no corruption" 0 replay.Journal.corrupt_records;
          Journal.close j2;
          (* And a full in-process solve still works. *)
          let svc = Service.create () in
          let digest = Service.load_workload svc (test_workload ()) in
          ignore
            (ok_reply "solve during storm"
               (Service.handle_line svc
                  (Printf.sprintf {|{"req":"solve","digest":"%s","tau":12}|} digest)))))

(* ----- qcheck: the strict JSON codec never lies, never raises ----- *)

(* Values whose rendering round-trips exactly: floats are odd/16 (never
   integral, exact in 12 significant digits), ints stay far from the
   1e15 integral-float boundary. *)
let json_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) (int_range (-1_000_000_000) 1_000_000_000);
              map
                (fun i -> Json.Float (float_of_int ((2 * i) + 1) /. 16.))
                (int_range (-100_000) 100_000);
              map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 12));
            ]
        in
        if n <= 0 then scalar
        else
          frequency
            [
              (3, scalar);
              (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
              ( 1,
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_bound 4)
                     (pair (string_size ~gen:printable (int_bound 8)) (self (n / 2))))
              );
            ]))

let json_arb = QCheck.make json_gen ~print:Json.to_string

(* Containers only, for the prefix property: a strict prefix of a
   rendered list/object/string is never valid JSON (a prefix of a bare
   number can be). *)
let json_container_arb =
  QCheck.make
    QCheck.Gen.(map (fun l -> Json.List l) (list_size (int_bound 6) json_gen))
    ~print:Json.to_string

let prop_roundtrip j = Json.parse (Json.to_string j) = Ok j

let prop_never_raises s =
  match Json.parse s with Ok _ | Error _ -> true

let prop_prefix_rejected (j, cut) =
  let s = Json.to_string j in
  let prefix = String.sub s 0 (cut mod String.length s) in
  match Json.parse prefix with Ok _ -> false | Error _ -> true

let prop_trailing_garbage_rejected j =
  match Json.parse (Json.to_string j ^ " x") with
  | Ok _ -> false
  | Error _ -> true

let suite =
  [
    Alcotest.test_case "crc32 check value" `Quick test_crc32_vector;
    Alcotest.test_case "journal: append/replay round-trip" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal: torn tail truncated" `Quick test_journal_torn_tail;
    Alcotest.test_case "journal: corrupt record cuts the scan" `Quick
      test_journal_corrupt_record;
    Alcotest.test_case "journal: snapshot folds the WAL" `Quick test_journal_snapshot;
    Alcotest.test_case "service: kill -9 crash restart" `Quick
      test_service_crash_restart;
    Alcotest.test_case "service: snapshot-era restart" `Quick
      test_service_snapshot_restart;
    Alcotest.test_case "service: garbage journal records skipped" `Quick
      test_journal_tolerates_garbage_records;
    Alcotest.test_case "breaker: full state machine" `Quick test_breaker_fsm;
    Alcotest.test_case "retry: backoff bounds" `Quick test_backoff_bounds;
    Alcotest.test_case "retry: run semantics" `Quick test_retry_run;
    Alcotest.test_case "single-flight: stampede collapses to one solve" `Quick
      test_single_flight_dedup;
    Alcotest.test_case "single-flight: leader exception shared" `Quick
      test_single_flight_exception;
    Alcotest.test_case "deadline: born expired is deterministic" `Quick
      test_deadline_born_expired;
    Alcotest.test_case "degraded: open circuit serves the last plan" `Quick
      test_service_degraded_flow;
    Alcotest.test_case "degraded: no fallback is an error" `Quick
      test_service_degraded_no_fallback;
    Alcotest.test_case "degraded: fallback survives a crash" `Quick
      test_degraded_survives_restart;
    Alcotest.test_case "pool: bounded queue sheds" `Quick test_pool_backpressure;
    Alcotest.test_case "faulty: retry through a reset" `Quick
      test_client_retries_through_reset;
    Alcotest.test_case "faulty: retry through garbage bytes" `Quick
      test_client_retries_through_garbage;
    Alcotest.test_case "faulty: chop and trickle are harmless" `Quick
      test_partial_writes_and_trickle_are_harmless;
    Alcotest.test_case "faulty: torn frame then recovery" `Quick
      test_torn_frame_then_recovery;
    Alcotest.test_case "faulty: blackhole partition times out, heals" `Quick
      test_blackhole_times_out_then_recovers;
    Alcotest.test_case "idempotence gate" `Quick
      test_non_idempotent_requests_not_replayed;
    Alcotest.test_case "signal storm: EINTR absorbed" `Quick
      test_signal_storm_journal_and_solve;
    Helpers.qtest ~count:500 "json: print/parse round-trip" json_arb prop_roundtrip;
    Helpers.qtest ~count:500 "json: parser never raises"
      QCheck.(string_of_size Gen.(int_bound 64))
      prop_never_raises;
    Helpers.qtest ~count:500 "json: truncated input rejected"
      QCheck.(pair json_container_arb (QCheck.make Gen.(int_bound 10_000)))
      prop_prefix_rejected;
    Helpers.qtest ~count:500 "json: trailing garbage rejected" json_arb
      prop_trailing_garbage_rejected;
  ]
