(* Tests for the synthetic trace generators: determinism, dimensions, and
   the distributional features documented in the paper's Appendix D. *)

module Workload = Mcss_workload.Workload
module Stats = Mcss_workload.Stats
module Spotify = Mcss_traces.Spotify
module Twitter = Mcss_traces.Twitter
module Gen = Mcss_traces.Gen

(* Small parameter sets so the suite stays fast. *)
let small_spotify = { (Spotify.scaled 0.002) with Spotify.seed = 1 }
let small_twitter = { (Twitter.scaled 0.0005) with Twitter.seed = 1 }

let test_spotify_dimensions () =
  let w = Spotify.generate small_spotify in
  Helpers.check_int "topics" small_spotify.Spotify.num_topics (Workload.num_topics w);
  Helpers.check_int "subscribers" small_spotify.Spotify.num_subscribers
    (Workload.num_subscribers w)

let test_spotify_deterministic () =
  let a = Spotify.generate small_spotify in
  let b = Spotify.generate small_spotify in
  Helpers.check_bool "same rates" true (Workload.event_rates a = Workload.event_rates b);
  Helpers.check_int "same pairs" (Workload.num_pairs a) (Workload.num_pairs b)

let test_spotify_seed_changes_output () =
  let b = Spotify.generate { small_spotify with Spotify.seed = 2 } in
  let a = Spotify.generate small_spotify in
  Helpers.check_bool "different rates" false
    (Workload.event_rates a = Workload.event_rates b)

let test_spotify_mean_interests () =
  let w = Spotify.generate small_spotify in
  let mean =
    float_of_int (Workload.num_pairs w) /. float_of_int (Workload.num_subscribers w)
  in
  (* Target 2.45 plus the small heavy tail; generous band. *)
  Helpers.check_bool "mean interests plausible" true (mean > 1.8 && mean < 4.0)

let test_spotify_rates_integral_positive () =
  let w = Spotify.generate small_spotify in
  Array.iter
    (fun ev ->
      if ev < 1. || Float.rem ev 1. <> 0. then
        Alcotest.failf "rate %g not a positive integer" ev)
    (Workload.event_rates w)

let test_spotify_scaled_validation () =
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Spotify.scaled: factor must be positive") (fun () ->
      ignore (Spotify.scaled 0.))

let test_twitter_dimensions_and_determinism () =
  let a = Twitter.generate small_twitter in
  let b = Twitter.generate small_twitter in
  Helpers.check_int "topics" small_twitter.Twitter.num_topics (Workload.num_topics a);
  Helpers.check_bool "deterministic" true
    (Workload.event_rates a = Workload.event_rates b && Workload.num_pairs a = Workload.num_pairs b)

let test_twitter_mean_rate_calibrated () =
  let w = Twitter.generate small_twitter in
  let mean = Workload.total_event_rate w /. float_of_int (Workload.num_topics w) in
  (* Rescaled to target_mean_rate = 57, then rounded; allow 15%. *)
  Helpers.check_bool "mean rate near 57" true (Float.abs (mean -. 57.) < 57. *. 0.15)

let test_twitter_glitch_at_20 () =
  let w = Twitter.generate small_twitter in
  let counts = Stats.interest_counts w in
  let n = Array.length counts in
  let at_20 = Array.fold_left (fun acc k -> if k = 20 then acc + 1 else acc) 0 counts in
  let at_19 = Array.fold_left (fun acc k -> if k = 19 then acc + 1 else acc) 0 counts in
  (* The default-follow spike: mass at exactly 20 dwarfs its neighbour. *)
  Helpers.check_bool "spike at 20" true (at_20 > 3 * max 1 at_19);
  Helpers.check_bool "spike is a few percent" true
    (float_of_int at_20 /. float_of_int n > 0.03)

let test_twitter_heavy_tails () =
  let w = Twitter.generate small_twitter in
  let ic = Array.map float_of_int (Stats.interest_counts w) in
  let s = Stats.summarize ic in
  Helpers.check_bool "followings heavy-tailed" true (s.Stats.max > 20. *. s.Stats.p50);
  let rates = Stats.summarize (Workload.event_rates w) in
  Helpers.check_bool "rates heavy-tailed" true (rates.Stats.max > 20. *. rates.Stats.p50);
  Helpers.check_bool "half the users tweet little" true (rates.Stats.p50 < 25.)

let test_twitter_celebrity_dip () =
  (* Fit the below-knee growth, then check topics beyond the knee fall
     well under its extrapolation — Fig. 10's celebrity cloud. *)
  let params = { (Twitter.scaled 0.002) with Twitter.seed = 3 } in
  let w = Twitter.generate params in
  let followers = Stats.follower_counts w in
  let rates = Workload.event_rates w in
  let knee =
    Float.max 10.
      (params.Twitter.celebrity_knee_fraction
      *. float_of_int params.Twitter.num_subscribers)
  in
  let below_sum = ref 0. and below_n = ref 0 in
  let above_sum = ref 0. and above_n = ref 0 in
  Array.iteri
    (fun t f ->
      let f = float_of_int f in
      if f > 0. then begin
        (* Normalise each topic's rate by its audience size. *)
        let per_follower = rates.(t) /. (f ** params.Twitter.rate_follower_exponent) in
        if f <= knee then begin
          below_sum := !below_sum +. per_follower;
          incr below_n
        end
        else begin
          above_sum := !above_sum +. per_follower;
          incr above_n
        end
      end)
    followers;
  if !above_n = 0 then Alcotest.fail "no topics beyond the knee; enlarge the trace";
  let below = !below_sum /. float_of_int !below_n in
  let above = !above_sum /. float_of_int !above_n in
  Helpers.check_bool "beyond-knee topics tweet less per follower" true (above < 0.5 *. below)

let test_popularity_rank_bijection () =
  let rng = Mcss_prng.Rng.create 4 in
  let pop = Gen.popularity rng ~num_topics:100 ~exponent:1.0 in
  let seen = Array.make 101 false in
  for t = 0 to 99 do
    let r = Gen.rank_of_topic pop t in
    if r < 1 || r > 100 then Alcotest.failf "rank %d out of range" r;
    if seen.(r) then Alcotest.failf "rank %d duplicated" r;
    seen.(r) <- true
  done

let test_sample_distinct_interests () =
  let rng = Mcss_prng.Rng.create 5 in
  let pop = Gen.popularity rng ~num_topics:50 ~exponent:1.0 in
  (* Sparse branch. *)
  let s = Gen.sample_distinct_interests rng pop ~count:5 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to Array.length sorted - 1 do
    Helpers.check_bool "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  (* Clamped to the topic count. *)
  Helpers.check_int "clamped" 50 (Array.length (Gen.sample_distinct_interests rng pop ~count:500))

let test_popular_topics_get_more_followers () =
  let w = Spotify.generate { small_spotify with Spotify.num_subscribers = 5000 } in
  let rng = Mcss_prng.Rng.create 0 in
  ignore rng;
  let counts = Stats.follower_counts w in
  let sorted = Array.copy counts in
  Array.sort compare sorted;
  let n = Array.length sorted in
  (* Zipf skew: the busiest topic dominates the median topic. *)
  Helpers.check_bool "skewed followers" true (sorted.(n - 1) >= 5 * max 1 sorted.(n / 2))

let test_round_rate () =
  Helpers.check_float "floors at 1" 1. (Gen.round_rate 0.2);
  Helpers.check_float "rounds" 3. (Gen.round_rate 2.6)

(* ----- streaming generation parity ----- *)

module Stream = Mcss_traces.Stream
module Wio = Mcss_workload.Wio

let same_workload a b = String.equal (Wio.to_string a) (Wio.to_string b)

let test_stream_spotify_matches_generate () =
  Helpers.check_bool "bit-identical workload" true
    (same_workload (Spotify.generate small_spotify)
       (Stream.workload (Stream.Spotify small_spotify)))

let test_stream_twitter_matches_generate () =
  Helpers.check_bool "bit-identical workload" true
    (same_workload (Twitter.generate small_twitter)
       (Stream.workload (Stream.Twitter small_twitter)))

let test_stream_chunk_size_irrelevant () =
  let reference = Stream.workload (Stream.Spotify small_spotify) in
  List.iter
    (fun chunk ->
      Helpers.check_bool
        (Printf.sprintf "chunk %d matches default" chunk)
        true
        (same_workload reference
           (Stream.workload ~chunk (Stream.Spotify small_spotify))))
    [ 1; 7; 1024 ]

let seed_scale_arbitrary =
  QCheck.make
    QCheck.Gen.(pair (int_bound 100_000) (int_range 1 8))
    ~print:(fun (seed, steps) -> Printf.sprintf "seed=%d, steps=%d" seed steps)

(* The satellite's contract: at equal seed and scale, the chunked
   streaming generator reproduces the materialised workload digest for
   both trace families (an odd chunk size exercises partial chunks). *)
let prop_stream_parity =
  Helpers.qtest ~count:15 "streamed = materialised at any seed and scale"
    seed_scale_arbitrary (fun (seed, steps) ->
      let scale = float_of_int steps *. 0.0004 in
      let sp = { (Spotify.scaled scale) with Spotify.seed = seed } in
      let tw = { (Twitter.scaled (scale /. 4.)) with Twitter.seed = seed } in
      same_workload (Spotify.generate sp)
        (Stream.workload ~chunk:997 (Stream.Spotify sp))
      && same_workload (Twitter.generate tw)
           (Stream.workload ~chunk:997 (Stream.Twitter tw)))

let suite =
  [
    Alcotest.test_case "spotify dimensions" `Quick test_spotify_dimensions;
    Alcotest.test_case "spotify deterministic" `Quick test_spotify_deterministic;
    Alcotest.test_case "spotify seed changes output" `Quick test_spotify_seed_changes_output;
    Alcotest.test_case "spotify mean interests" `Quick test_spotify_mean_interests;
    Alcotest.test_case "spotify rates integral" `Quick test_spotify_rates_integral_positive;
    Alcotest.test_case "spotify scaled validation" `Quick test_spotify_scaled_validation;
    Alcotest.test_case "twitter dimensions/determinism" `Quick
      test_twitter_dimensions_and_determinism;
    Alcotest.test_case "twitter mean rate calibrated" `Quick test_twitter_mean_rate_calibrated;
    Alcotest.test_case "twitter glitch at 20" `Quick test_twitter_glitch_at_20;
    Alcotest.test_case "twitter heavy tails" `Quick test_twitter_heavy_tails;
    Alcotest.test_case "twitter celebrity dip" `Slow test_twitter_celebrity_dip;
    Alcotest.test_case "popularity rank bijection" `Quick test_popularity_rank_bijection;
    Alcotest.test_case "sample distinct interests" `Quick test_sample_distinct_interests;
    Alcotest.test_case "popular topics get followers" `Quick
      test_popular_topics_get_more_followers;
    Alcotest.test_case "round_rate" `Quick test_round_rate;
    Alcotest.test_case "stream spotify = generate" `Quick
      test_stream_spotify_matches_generate;
    Alcotest.test_case "stream twitter = generate" `Quick
      test_stream_twitter_matches_generate;
    Alcotest.test_case "stream chunk size irrelevant" `Quick
      test_stream_chunk_size_irrelevant;
    prop_stream_parity;
  ]
