(* Tests for the live dataplane: the wire codec, a broker fleet driven
   over real sockets, rehome set semantics, measured-vs-predicted
   reconciliation on a healthy fleet, the chaos kill / replan / recover
   arc, and the end-to-end scenario — live traffic concurrent with a
   plan change, with zero lost events. *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Simulator = Mcss_sim.Simulator
module Reprovision = Mcss_dynamic.Reprovision
module Recovery = Mcss_dynamic.Recovery
module Json = Mcss_serve.Json
module Wire = Mcss_dataplane.Wire
module Cluster = Mcss_dataplane.Cluster
module Control = Mcss_dataplane.Control
module Subscriber = Mcss_dataplane.Subscriber
module Pump = Mcss_dataplane.Pump

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- scratch directories for broker sockets ----- *)

let temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base (Printf.sprintf "mcss-dp-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let rm_dir d =
  Array.iter (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
    (try Sys.readdir d with _ -> [||]);
  try Unix.rmdir d with _ -> ()

let with_fleet p a f =
  let dir = temp_dir () in
  let cluster = Cluster.boot ~dir ~message_bytes:100 p a in
  Fun.protect
    ~finally:(fun () ->
      Cluster.shutdown cluster;
      rm_dir dir)
    (fun () -> f cluster)

(* A deterministic instance big enough to need several VMs but small
   enough that a pump run is a few hundred events. *)
let fleet_problem () =
  let rng = Mcss_prng.Rng.create 11 in
  let p =
    Helpers.random_problem rng ~num_topics:10 ~num_subscribers:16 ~max_rate:20
      ~max_interests:3 ~tau:30. ~capacity:120.
  in
  let plan = Reprovision.initial p in
  check_bool "fixture spans several VMs" true
    (Allocation.num_vms plan.Reprovision.allocation >= 2);
  (p, plan)

(* ----- wire codec ----- *)

let test_wire_roundtrip () =
  let events =
    [
      { Wire.topic = 3; seq = 0; pub_ns = 123_456_789 };
      { Wire.topic = 0; seq = 1; pub_ns = 42 };
    ]
  in
  (match Json.parse (String.trim (Wire.pub_line events)) with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      check_bool "pub_line parses to pub_request" true (j = Wire.pub_request events);
      match Wire.events_of j with
      | Ok evs -> check_bool "pub round-trip" true (evs = events)
      | Error e -> Alcotest.fail e));
  let d = { Wire.topic = 5; seq = 7; pub_ns = 99; subscribers = [ 1; 4; 9 ] } in
  (match Json.parse (String.trim (Wire.delivery_line d)) with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Wire.delivery_of j with
      | Ok d' -> check_bool "delivery round-trip" true (d = d')
      | Error e -> Alcotest.fail e));
  match Wire.events_of (Json.Obj [ ("e", Json.List [ Json.Int 3 ]) ]) with
  | Ok _ -> Alcotest.fail "accepted a malformed event"
  | Error _ -> ()

(* ----- control verbs against a live broker ----- *)

let test_rehome_set_semantics () =
  let p, plan = fleet_problem () in
  with_fleet p plan.Reprovision.allocation (fun cluster ->
      let addr =
        match Cluster.address cluster 0 with
        | Some a -> a
        | None -> Alcotest.fail "broker 0 missing"
      in
      (match Control.health addr with
      | Ok j ->
          check_bool "role is broker" true
            (Json.member "role" j = Some (Json.String "broker"))
      | Error e -> Alcotest.fail e);
      let field j k =
        Json.member k j |> Fun.flip Option.bind Json.to_int_opt
        |> Option.value ~default:(-1)
      in
      (* A pair the plan cannot have homed here: topic 0, subscriber 999. *)
      let fresh = [ (0, 999) ] in
      (match Control.rehome addr ~add:fresh ~remove:[] with
      | Ok j -> check_int "first add lands" 1 (field j "added")
      | Error e -> Alcotest.fail e);
      (match Control.rehome addr ~add:fresh ~remove:[] with
      | Ok j ->
          check_int "replayed add is a no-op" 1 (field j "already_present");
          check_int "replayed add adds nothing" 0 (field j "added")
      | Error e -> Alcotest.fail e);
      (match Control.rehome addr ~add:[] ~remove:fresh with
      | Ok j -> check_int "remove lands" 1 (field j "removed")
      | Error e -> Alcotest.fail e);
      (match Control.rehome addr ~add:[] ~remove:fresh with
      | Ok j ->
          check_int "replayed remove is a no-op" 1 (field j "absent");
          check_int "replayed remove removes nothing" 0 (field j "removed")
      | Error e -> Alcotest.fail e);
      (* Drain flips the flag and refuses further publications. *)
      (match Control.drain addr with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match Control.health addr with
      | Ok j ->
          check_bool "draining visible in health" true
            (Json.member "draining" j = Some (Json.Bool true))
      | Error e -> Alcotest.fail e);
      match Control.ledger addr with
      | Ok l -> check_bool "ledger reports draining" true l.Mcss_dataplane.Ledger.draining
      | Error e -> Alcotest.fail e)

(* ----- zero-fault reconciliation ----- *)

let test_reconcile_zero_fault () =
  let p, plan = fleet_problem () in
  with_fleet p plan.Reprovision.allocation (fun cluster ->
      let config = { Pump.default_config with tolerance = Some 0. } in
      let r = Pump.run ~config cluster p plan.Reprovision.allocation in
      check_bool "pump quiesced" true r.Pump.quiesced;
      check_int "no send failures" 0 r.Pump.publisher.Mcss_dataplane.Publisher.send_failures;
      check_int "no drops" 0 r.Pump.totals.Mcss_report.Delivery.dropped;
      match r.Pump.reconcile with
      | None -> Alcotest.fail "reconciliation did not run"
      | Some rc ->
          check_bool "healthy fleet matches the simulator exactly" true
            rc.Mcss_dataplane.Reconcile.pass;
          check_bool "deviation is zero" true
            (rc.Mcss_dataplane.Reconcile.max_deviation = 0.);
          check_int "every subscriber accounted for" 0
            (List.length rc.Mcss_dataplane.Reconcile.subscriber_mismatches))

(* ----- chaos kill, drop window, replan, recovery ----- *)

let test_kill_replan_recover () =
  let p, plan = fleet_problem () in
  with_fleet p plan.Reprovision.allocation (fun cluster ->
      let exact = { Pump.default_config with tolerance = Some 0. } in
      let a0 = plan.Reprovision.allocation in
      let before = Pump.run ~config:exact cluster p a0 in
      check_bool "healthy phase reconciles" true
        (match before.Pump.reconcile with
        | Some rc -> rc.Mcss_dataplane.Reconcile.pass
        | None -> false);
      (* Kill a broker that actually carries pairs. *)
      let victim =
        match
          List.find_opt (fun (id, _) -> Cluster.pairs_on cluster id > 0)
            (Cluster.live cluster)
        with
        | Some (id, _) -> id
        | None -> Alcotest.fail "no broker with pairs"
      in
      check_bool "kill lands" true (Cluster.kill cluster victim);
      check_bool "kill is not replayable" false (Cluster.kill cluster victim);
      (* Same schedule against the degraded fleet: a strict drop window. *)
      let outage = Pump.run cluster p a0 in
      check_bool "outage delivers strictly less" true
        (outage.Pump.totals.Mcss_report.Delivery.delivered
        < before.Pump.totals.Mcss_report.Delivery.delivered);
      (* Replan around the failure and converge the fleet onto it. *)
      let plan', rstats = Recovery.replan plan ~failed:[ victim ] in
      check_bool "replan rehomed the orphans" true
        (rstats.Recovery.pairs_rehomed > 0);
      let stats = Cluster.apply_plan cluster plan'.Reprovision.allocation in
      check_bool "apply_plan clean" true (stats.Cluster.errors = []);
      check_bool "orphans re-homed onto the fleet" true
        (stats.Cluster.pairs_added > 0);
      (* Recovered fleet must reconcile exactly against the new plan. *)
      let after = Pump.run ~config:exact cluster p plan'.Reprovision.allocation in
      match after.Pump.reconcile with
      | None -> Alcotest.fail "reconciliation did not run"
      | Some rc ->
          check_bool "recovered fleet reconciles exactly" true
            rc.Mcss_dataplane.Reconcile.pass)

(* ----- the end-to-end scenario ----- *)

(* Rebuild [a] with every pair of [topic] homed on VM [to_vm] instead:
   the same pair set on different homes, i.e. a pure re-home delta. *)
let move_topic p a ~topic ~to_vm =
  let w = p.Problem.workload in
  let b = Allocation.create ~capacity:(Allocation.capacity a) in
  let vms = Allocation.vms a in
  let fresh = Array.map (fun _ -> Allocation.deploy b) vms in
  Array.iteri
    (fun i vm ->
      Allocation.iter_vm_pairs vm (fun t s ->
          let dest = if t = topic then fresh.(to_vm) else fresh.(i) in
          Allocation.place b dest ~topic:t ~ev:(Workload.event_rate w t)
            ~subscribers:[| s |] ~from:0 ~count:1))
    vms;
  b

let test_e2e_concurrent_rehome () =
  let p, plan = fleet_problem () in
  let a0 = plan.Reprovision.allocation in
  let w = p.Problem.workload in
  with_fleet p a0 (fun cluster ->
      let sinks =
        Subscriber.create ~num_subscribers:(Workload.num_subscribers w)
          ~latency_seed:7 ()
      in
      Fun.protect ~finally:(fun () -> Subscriber.close sinks) (fun () ->
          (match Subscriber.attach_cluster sinks cluster with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          (* Move every pair of some topic hosted on VM 0 over to VM 1,
             while the pump is publishing that topic. *)
          let topic =
            match Allocation.topics_on (Allocation.vms a0).(0) with
            | t :: _ -> t
            | [] -> Alcotest.fail "VM 0 hosts no topic"
          in
          let a1 = move_topic p a0 ~topic ~to_vm:1 in
          let duration = 2.0 in
          let config = { Pump.default_config with duration; pace = 0.25 } in
          let pump =
            Domain.spawn (fun () -> Pump.run ~config ~sinks cluster p a0)
          in
          Unix.sleepf 0.12;
          let stats = Cluster.apply_plan cluster a1 in
          check_bool "apply_plan clean" true (stats.Cluster.errors = []);
          check_int "no broker spawned for a pure re-home" 0 stats.Cluster.spawned;
          check_bool "the move added pairs" true (stats.Cluster.pairs_added > 0);
          check_bool "the move removed pairs" true (stats.Cluster.pairs_removed > 0);
          let r = Domain.join pump in
          check_bool "pump quiesced" true r.Pump.quiesced;
          check_int "no send failures" 0
            r.Pump.publisher.Mcss_dataplane.Publisher.send_failures;
          check_int "nothing unrouted" 0
            r.Pump.publisher.Mcss_dataplane.Publisher.unrouted;
          (* Zero loss: every subscriber got exactly what the simulator
             predicts for the plan — duplicates from the union-routing
             window are deduplicated, gaps would show up right here. *)
          let sim =
            Simulator.run p a0 { Simulator.default_config with duration }
          in
          let unique = r.Pump.unique in
          Array.iteri
            (fun v predicted ->
              check_int (Printf.sprintf "subscriber %d complete" v) predicted
                unique.(v))
            sim.Simulator.delivered;
          (* And the fleet has genuinely converged onto the new plan:
             a steady-state run reconciles exactly against it. *)
          let exact = { Pump.default_config with tolerance = Some 0. } in
          let steady = Pump.run ~config:exact cluster p a1 in
          match steady.Pump.reconcile with
          | None -> Alcotest.fail "reconciliation did not run"
          | Some rc ->
              check_bool "fleet converged onto the delta" true
                rc.Mcss_dataplane.Reconcile.pass))

let suite =
  [
    Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "rehome set semantics + drain" `Quick
      test_rehome_set_semantics;
    Alcotest.test_case "zero-fault reconciliation is exact" `Quick
      test_reconcile_zero_fault;
    Alcotest.test_case "kill, drop window, replan, recover" `Quick
      test_kill_replan_recover;
    Alcotest.test_case "e2e: concurrent re-home loses nothing" `Quick
      test_e2e_concurrent_rehome;
  ]
