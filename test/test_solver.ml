(* Tests for the end-to-end solver pipeline and the evaluation ladder. *)

module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Solver = Mcss_core.Solver
module Lower_bound = Mcss_core.Lower_bound

let test_ladder_shape () =
  Helpers.check_int "six configurations" 6 (List.length Solver.ladder);
  Alcotest.(check (list string)) "names in the paper's order"
    [
      "RSP+FFBP";
      "(a) GSP+FFBP";
      "(b) +grouping";
      "(c) +expensive-first";
      "(d) +most-free-VM";
      "(e) +cost-decision";
    ]
    (List.map fst Solver.ladder)

let test_config_of_name () =
  Helpers.check_bool "known" true (Solver.config_of_name "(b) +grouping" <> None);
  Helpers.check_bool "unknown" true (Solver.config_of_name "nope" = None)

let test_default_solves_fig1 () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r = Solver.solve p in
  Helpers.check_int "3 VMs" 3 r.Solver.num_vms;
  Helpers.check_float "bandwidth" 120. r.Solver.bandwidth;
  Helpers.check_float "cost = #VMs under unit costs" 3. r.Solver.cost;
  Helpers.check_bool "stage timings nonnegative" true
    (r.Solver.stage1_seconds >= 0. && r.Solver.stage2_seconds >= 0.)

let test_gsp_reference_config () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let r =
    Solver.solve
      ~config:{ Solver.stage1 = Solver.Gsp_reference; stage2 = Solver.Ffbp } p
  in
  Helpers.check_int "pairs" 5 r.Solver.selection.Selection.num_pairs

let test_cost_accounting_consistent () =
  let p =
    Helpers.fig1_problem ~capacity:50. ()
  in
  let r = Solver.solve p in
  Helpers.check_float "cost = C1 + C2" (Problem.cost p ~vms:r.Solver.num_vms ~bandwidth:r.Solver.bandwidth)
    r.Solver.cost

let test_pp_result () =
  let p = Helpers.fig1_problem ~capacity:50. () in
  let s = Format.asprintf "%a" Solver.pp_result (Solver.solve p) in
  Helpers.check_bool "mentions VMs" true (Helpers.contains ~needle:"3 VMs" s)

let test_infeasible_propagates () =
  let w = Helpers.workload ~rates:[ 100. ] ~interests:[ [ 0 ] ] in
  let p = Problem.create ~workload:w ~tau:10. ~capacity:50. Problem.unit_costs in
  (match Solver.solve p with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Problem.Infeasible _ -> ())

(* GSP dominating RSP is not a per-instance theorem (a subscriber whose
   first interest alone covers tau_v can make RSP luckily cheaper), but on
   aggregate workloads it holds comfortably — pin it on fixed seeds so a
   regression in the heuristic shows up. *)
let test_full_pipeline_beats_naive_on_seeded_instances () =
  List.iter
    (fun seed ->
      let rng = Mcss_prng.Rng.create seed in
      let p =
        Helpers.random_problem rng ~num_topics:150 ~num_subscribers:400 ~max_rate:40
          ~max_interests:10 ~tau:50. ~capacity:400.
      in
      let best = Solver.solve ~config:Solver.default p in
      let naive = Solver.solve ~config:Solver.naive p in
      if best.Solver.cost > naive.Solver.cost then
        Alcotest.failf "seed %d: full pipeline ($%.2f) lost to naive ($%.2f)" seed
          best.Solver.cost naive.Solver.cost;
      if
        (Selection.gsp p).Selection.outgoing_rate
        > (Selection.rsp p).Selection.outgoing_rate
      then Alcotest.failf "seed %d: GSP selected more bandwidth than RSP" seed)
    [ 1; 2; 3; 42; 1337 ]

(* The tentpole determinism contract: the whole pipeline — domain-parallel
   Stage-1 plus parallel group construction feeding CBP — must emit a
   plan whose serialised form is bit-identical to the sequential solve
   at any domain count. *)
let prop_solve_domains_bit_identical =
  Helpers.qtest ~count:60 "solve plan is bit-identical at 1, 2 and 4 domains"
    Helpers.problem_arbitrary (fun p ->
      match Solver.solve p with
      | exception Problem.Infeasible _ -> true
      | seq ->
          let reference = Mcss_core.Plan_io.to_string seq.Solver.allocation in
          List.for_all
            (fun domains ->
              let r = Solver.solve ~domains p in
              String.equal reference
                (Mcss_core.Plan_io.to_string r.Solver.allocation))
            [ 1; 2; 4 ])

let suite =
  [
    Alcotest.test_case "ladder shape" `Quick test_ladder_shape;
    Alcotest.test_case "config_of_name" `Quick test_config_of_name;
    Alcotest.test_case "default solves fig1" `Quick test_default_solves_fig1;
    Alcotest.test_case "gsp_reference config" `Quick test_gsp_reference_config;
    Alcotest.test_case "cost accounting consistent" `Quick test_cost_accounting_consistent;
    Alcotest.test_case "pp_result" `Quick test_pp_result;
    Alcotest.test_case "infeasible propagates" `Quick test_infeasible_propagates;
    Alcotest.test_case "beats naive on seeded instances" `Quick
      test_full_pipeline_beats_naive_on_seeded_instances;
    prop_solve_domains_bit_identical;
  ]
