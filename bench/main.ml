(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (§IV and Appendix D) on the synthetic traces, plus
   Bechamel microbenchmarks of the algorithmic kernels.

   Figure index (see DESIGN.md §4 and EXPERIMENTS.md):
     fig1        worked example of §III-B
     fig2a/fig2b Spotify cost ladder, BC = 64 / 128 mbps
     fig3a/fig3b Twitter cost ladder, BC = 64 / 128 mbps
     fig4/fig5   Stage-1 runtimes (GSP vs RSP), Spotify / Twitter
     fig6/fig7   Stage-2 runtimes (CBP vs FFBP), Spotify / Twitter
     fig8..fig12 Twitter trace analysis (CCDFs, celebrity anomaly)
     summary     §IV-F savings summary
     micro       Bechamel kernel benchmarks

   Absolute capacity: the paper's cost figures imply an effective per-VM
   capacity of ~5e7 events per 10-day horizon for c3.large (total
   bandwidth divided by VM count at high tau); we use that
   utilisation-consistent constant, scaled by the trace scale, so VM
   counts land in the paper's regime. See EXPERIMENTS.md. *)

module Workload = Mcss_workload.Workload
module Stats = Mcss_workload.Stats
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier
module Lower_bound = Mcss_core.Lower_bound
module Simulator = Mcss_sim.Simulator
module Table = Mcss_report.Table
module Series = Mcss_report.Series
module Front = Mcss_front.Front
module Engine = Mcss_engine.Engine
module Clock = Mcss_obs.Clock

let taus = [ 10.; 100.; 1000. ]

(* Monotonic wall-clock timing for every harness measurement (the
   sub-second ones care; the seconds-long ones lose nothing). *)
let timed f =
  let t0 = Clock.now_ns () in
  let x = f () in
  (x, Clock.seconds_since t0)

(* Peak RSS and GC major-heap pressure, sampled when a section writes
   its BENCH_*.json — speed without the memory bill is half a result. *)
let runtime_json () = Mcss_obs.Runtime_stats.(to_json_object (sample ()))

(* Every seeded generator in the harness derives from one --trace-seed,
   so a whole bench run (and both BENCH_*.json files) is reproducible
   from a single number. Offsets keep the streams distinct. *)
type seeds = {
  trace_seed : int;
  spotify : int;
  twitter : int;
  scaling : int;
  skew : int;
  micro : int;
  dynamic : int;
  engine : int;
  fleet : int;
  dataplane : int;
  elastic : int;
  partition : int;
}

let default_trace_seed = 20130109

let derive_seeds trace_seed =
  {
    trace_seed;
    spotify = trace_seed;
    twitter = trace_seed + 1;
    scaling = trace_seed + 2;
    skew = trace_seed + 3;
    micro = trace_seed + 4;
    dynamic = trace_seed + 5;
    engine = trace_seed + 6;
    fleet = trace_seed + 7;
    dataplane = trace_seed + 8;
    elastic = trace_seed + 9;
    partition = trace_seed + 10;
  }

let bc_events = Front.bc_events

type run = {
  config_name : string;
  cost : float;
  vms : int;
  bw_gb : float;
  stage1_s : float;
  stage2_s : float;
}

type tau_results = {
  tau : float;
  runs : run list;  (* ladder order *)
  lb_cost : float;
  lb_vms : int;
  lb_bw_gb : float;
}

let solve_matrix ~w ~scale ~instance =
  let model = Cost_model.ec2_2014 ~instance () in
  let capacity_events = bc_events ~scale instance in
  List.map
    (fun tau ->
      let p = Problem.of_pricing ~capacity_events ~workload:w ~tau model in
      let runs =
        List.map
          (fun (config_name, config) ->
            let r = Solver.solve ~config p in
            let report = Verifier.verify p r.Solver.selection r.Solver.allocation in
            if not (Verifier.is_valid report) then
              failwith
                (Printf.sprintf "%s (tau=%g): allocation failed verification"
                   config_name tau);
            {
              config_name;
              cost = r.Solver.cost;
              vms = r.Solver.num_vms;
              bw_gb = Cost_model.gb_of_events model r.Solver.bandwidth;
              stage1_s = r.Solver.stage1_seconds;
              stage2_s = r.Solver.stage2_seconds;
            })
          Solver.ladder
      in
      let lb = Lower_bound.compute p in
      {
        tau;
        runs;
        lb_cost = lb.Lower_bound.cost;
        lb_vms = lb.Lower_bound.vms;
        lb_bw_gb = Cost_model.gb_of_events model lb.Lower_bound.bandwidth;
      })
    taus

let section_header fig title = Printf.printf "\n=== %s: %s ===\n" fig title

(* One cost-ladder figure (Figs. 2a/2b/3a/3b): cost, #VMs and bandwidth
   per ladder configuration and per tau, plus the lower bound. *)
let print_cost_figure ~fig ~title results =
  section_header fig title;
  let headers =
    ("configuration", Table.Left)
    :: List.concat_map
         (fun { tau; _ } ->
           let t = Printf.sprintf "t=%g" tau in
           [
             (t ^ " cost", Table.Right);
             (t ^ " VMs", Table.Right);
             (t ^ " GB", Table.Right);
           ])
         results
  in
  let table = Table.create headers in
  let config_names = List.map (fun r -> r.config_name) (List.hd results).runs in
  List.iter
    (fun name ->
      let cells =
        List.concat_map
          (fun { runs; _ } ->
            let r = List.find (fun r -> r.config_name = name) runs in
            [
              Table.cell_usd r.cost;
              string_of_int r.vms;
              Table.cell_float ~decimals:1 r.bw_gb;
            ])
          results
      in
      Table.add_row table (name :: cells))
    config_names;
  Table.add_separator table;
  Table.add_row table
    ("lower bound"
    :: List.concat_map
         (fun { lb_cost; lb_vms; lb_bw_gb; _ } ->
           [
             Table.cell_usd lb_cost;
             string_of_int lb_vms;
             Table.cell_float ~decimals:1 lb_bw_gb;
           ])
         results);
  Table.print table;
  (* The headline comparisons, as the paper reports them. *)
  List.iter
    (fun { tau; runs; lb_cost; _ } ->
      let naive = (List.hd runs).cost in
      let best = (List.nth runs (List.length runs - 1)).cost in
      Printf.printf
        "tau=%-6g saving vs naive: %5.1f%%   gap over lower bound: %+.1f%%\n" tau
        (Table.pct_change ~baseline:naive best)
        (if lb_cost > 0. then (best -. lb_cost) /. lb_cost *. 100. else 0.))
    results

(* Stage-1 runtime figure (Figs. 4/5): GSP vs RSP seconds per tau. *)
let print_stage1_runtime_figure ~fig ~title results =
  section_header fig title;
  let table =
    Table.create
      [
        ("tau", Table.Right);
        ("GreedySelectPairs s", Table.Right);
        ("RandomSelectPairs s", Table.Right);
      ]
  in
  List.iter
    (fun { tau; runs; _ } ->
      let find name = List.find (fun r -> r.config_name = name) runs in
      let gsp = (find "(a) GSP+FFBP").stage1_s in
      let rsp = (find "RSP+FFBP").stage1_s in
      Table.add_row table
        [
          Printf.sprintf "%g" tau;
          Table.cell_float ~decimals:3 gsp;
          Table.cell_float ~decimals:3 rsp;
        ])
    results;
  Table.print table

(* Stage-2 runtime figure (Figs. 6/7): CBP (all optimisations) vs FFBP. *)
let print_stage2_runtime_figure ~fig ~title results =
  section_header fig title;
  let table =
    Table.create
      [
        ("tau", Table.Right);
        ("CustomBinPacking s", Table.Right);
        ("FFBinPacking s", Table.Right);
        ("speedup", Table.Right);
      ]
  in
  List.iter
    (fun { tau; runs; _ } ->
      let find name = List.find (fun r -> r.config_name = name) runs in
      let cbp = (find "(e) +cost-decision").stage2_s in
      let ffbp = (find "(a) GSP+FFBP").stage2_s in
      Table.add_row table
        [
          Printf.sprintf "%g" tau;
          Table.cell_float ~decimals:3 cbp;
          Table.cell_float ~decimals:3 ffbp;
          (if cbp > 0. then Printf.sprintf "%.0fx" (ffbp /. cbp) else "-");
        ])
    results;
  Table.print table

(* Fig. 1, the worked example of §III-B, re-run through the real code. *)
let fig1 () =
  section_header "fig1" "worked allocation example (Section III-B)";
  let w =
    Workload.create ~event_rates:[| 20.; 10. |]
      ~interests:[| [| 0; 1 |]; [| 0; 1 |]; [| 1 |] |]
  in
  let p = Problem.create ~workload:w ~tau:30. ~capacity:50. Problem.unit_costs in
  let table =
    Table.create
      [ ("strategy", Table.Left); ("VMs", Table.Right); ("KB/min", Table.Right) ]
  in
  List.iter
    (fun (name, config) ->
      let r = Solver.solve ~config p in
      Table.add_row table
        [
          name;
          string_of_int r.Solver.num_vms;
          Table.cell_float ~decimals:0 r.Solver.bandwidth;
        ])
    Solver.ladder;
  Table.print table;
  print_endline
    "(with BC = 50 KB/min the optimum is forced to 3 VMs / 120 KB/min; the\n\
     paper's 80-vs-50 KB/min contrast relies on its pre-occupied VMs, which\n\
     the trace-scale ladders below reproduce in aggregate)"

(* Figs. 8-12: the Twitter trace analysis. Prints compact summaries and
   saves full data series for plotting. *)
let trace_analysis ~out_dir w =
  let followers = Stats.follower_counts w in
  let followings = Stats.interest_counts w in
  let rates = Workload.event_rates w in

  section_header "fig8" "CCDF of #followers and #followings (Twitter)";
  let ccdf_followers = Stats.ccdf_int followers in
  let ccdf_followings = Stats.ccdf_int followings in
  let sample name ccdf =
    let arr = Array.of_list ccdf in
    let n = Array.length arr in
    Printf.printf "%-12s %d distinct values; " name n;
    List.iter
      (fun q ->
        let i = min (n - 1) (int_of_float (float_of_int (n - 1) *. q)) in
        let x, p = arr.(i) in
        Printf.printf "CCDF(%d)=%.2e  " x p)
      [ 0.; 0.5; 0.9; 1.0 ];
    print_newline ()
  in
  sample "#followers" ccdf_followers;
  sample "#followings" ccdf_followings;
  (match (List.assoc_opt 19 ccdf_followings, List.assoc_opt 20 ccdf_followings) with
  | Some p19, Some p20 ->
      Printf.printf "followings glitch at 20: CCDF drops %.3f -> %.3f across it\n" p19 p20
  | _ -> ());
  let float_ccdf ccdf = List.map (fun (x, p) -> (float_of_int x, p)) ccdf in
  (match Mcss_workload.Fit.powerlaw_exponent_of_ccdf (float_ccdf ccdf_followers) with
  | Some alpha -> Printf.printf "fitted follower-tail exponent: %.2f\n" alpha
  | None -> ());
  Series.save_all ~dir:out_dir
    [
      Series.of_int_pairs ~name:"fig8_ccdf_followers" ccdf_followers;
      Series.of_int_pairs ~name:"fig8_ccdf_followings" ccdf_followings;
    ];
  Mcss_report.Plot.save ~dir:out_dir ~name:"fig8"
    {
      Mcss_report.Plot.title = "CCDF of #followers / #followings";
      xlabel = "count";
      ylabel = "CCDF";
      xaxis = Mcss_report.Plot.Log;
      yaxis = Mcss_report.Plot.Log;
      style = Mcss_report.Plot.Lines;
      series =
        [
          ("#followers", "fig8_ccdf_followers.dat");
          ("#followings", "fig8_ccdf_followings.dat");
        ];
    };

  section_header "fig9" "CCDF of event rate (tweets per 10 days)";
  let s = Stats.summarize rates in
  Printf.printf
    "mean %.1f  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f  (over %d active topics)\n"
    s.Stats.mean s.Stats.p50 s.Stats.p90 s.Stats.p99 s.Stats.max s.Stats.count;
  let below10 =
    Array.fold_left (fun acc r -> if r < 10. then acc + 1 else acc) 0 rates
  in
  Printf.printf "topics below 10 events: %.0f%% (paper: ~50%%)\n"
    (100. *. float_of_int below10 /. float_of_int (Array.length rates));
  Series.save ~dir:out_dir
    (Series.of_pairs ~name:"fig9_ccdf_rate" (Stats.ccdf_float rates));

  section_header "fig10" "mean event rate vs #followers (celebrity anomaly)";
  let by_followers = Stats.mean_rate_by_followers w in
  let buckets =
    [ (1, 10); (11, 100); (101, 1000); (1001, 10000); (10001, max_int) ]
  in
  List.iter
    (fun (lo, hi) ->
      let in_bucket = List.filter (fun (k, _) -> k >= lo && k <= hi) by_followers in
      if in_bucket <> [] then begin
        let mean =
          List.fold_left (fun acc (_, m) -> acc +. m) 0. in_bucket
          /. float_of_int (List.length in_bucket)
        in
        Printf.printf "followers %7d..%-7s mean rate %10.1f\n" lo
          (if hi = max_int then "inf" else string_of_int hi)
          mean
      end)
    buckets;
  Series.save ~dir:out_dir
    (Series.of_int_pairs ~name:"fig10_rate_by_followers" by_followers);

  section_header "fig11" "CCDF of subscription cardinality";
  let sc = Stats.subscription_cardinalities w in
  let nonzero = Array.of_list (List.filter (fun x -> x > 0.) (Array.to_list sc)) in
  if Array.length nonzero > 0 then begin
    let s = Stats.summarize nonzero in
    Printf.printf "SC%% over subscribers: mean %.4f  p50 %.4f  p99 %.4f  max %.4f\n"
      s.Stats.mean s.Stats.p50 s.Stats.p99 s.Stats.max
  end;
  Series.save ~dir:out_dir (Series.of_pairs ~name:"fig11_ccdf_sc" (Stats.ccdf_float sc));

  section_header "fig12" "mean subscription cardinality vs #followings";
  let by_followings = Stats.mean_sc_by_interests w in
  List.iter
    (fun k ->
      match List.assoc_opt k by_followings with
      | Some m -> Printf.printf "followings %5d  mean SC %.5f%%\n" k m
      | None -> ())
    [ 1; 10; 20; 100; 2000 ];
  Series.save ~dir:out_dir
    (Series.of_int_pairs ~name:"fig12_sc_by_followings" by_followings);
  List.iter
    (fun (name, title, ylabel, dat) ->
      Mcss_report.Plot.save ~dir:out_dir ~name
        {
          Mcss_report.Plot.title;
          xlabel = "x";
          ylabel;
          xaxis = Mcss_report.Plot.Log;
          yaxis = Mcss_report.Plot.Log;
          style = Mcss_report.Plot.Points;
          series = [ (title, dat) ];
        })
    [
      ("fig9", "CCDF of event rate", "CCDF", "fig9_ccdf_rate.dat");
      ("fig10", "mean event rate vs #followers", "mean rate", "fig10_rate_by_followers.dat");
      ("fig11", "CCDF of subscription cardinality", "CCDF", "fig11_ccdf_sc.dat");
      ("fig12", "mean SC vs #followings", "mean SC %", "fig12_sc_by_followings.dat");
    ]

(* §IV-F: the summary row the paper closes its evaluation with, plus an
   end-to-end replay through the discrete-event simulator as a sanity
   check on the winning allocation. *)
let summary ~spotify ~twitter ~spotify_scale ~twitter_scale =
  section_header "summary" "total savings (Section IV-F) and simulated replay";
  let line name w scale paper_saving =
    let model = Cost_model.ec2_2014 () in
    let capacity_events = bc_events ~scale Instance.c3_large in
    let best_saving = ref 0. and best_gap = ref infinity in
    List.iter
      (fun tau ->
        let p = Problem.of_pricing ~capacity_events ~workload:w ~tau model in
        let naive = Solver.solve ~config:Solver.naive p in
        let best = Solver.solve ~config:Solver.default p in
        let lb = Lower_bound.compute p in
        let saving = Table.pct_change ~baseline:naive.Solver.cost best.Solver.cost in
        let gap =
          (best.Solver.cost -. lb.Lower_bound.cost) /. lb.Lower_bound.cost *. 100.
        in
        if saving > !best_saving then best_saving := saving;
        if gap < !best_gap then best_gap := gap;
        if tau = 100. then begin
          let res = Simulator.run p best.Solver.allocation Simulator.default_config in
          let ok =
            Simulator.all_ok (Simulator.check p best.Solver.allocation res ~tolerance:0.)
          in
          Printf.printf
            "%s tau=100: simulated %d events through %d VMs; measured = analytical: %b\n"
            name res.Simulator.events_published best.Solver.num_vms ok
        end)
      taus;
    Printf.printf
      "%-8s max saving vs naive %.1f%% (paper: %s); min gap over LB %.1f%% (paper: ~15%%)\n"
      name !best_saving paper_saving !best_gap
  in
  line "spotify" spotify spotify_scale "38%";
  line "twitter" twitter twitter_scale "74%"

(* Bechamel microbenchmarks of the kernels. *)
let micro ~seeds () =
  section_header "micro" "kernel microbenchmarks (Bechamel)";
  let open Bechamel in
  let rng = Mcss_prng.Rng.create (seeds.micro lxor 99) in
  let w =
    Mcss_traces.Spotify.generate
      { (Mcss_traces.Spotify.scaled 0.001) with Mcss_traces.Spotify.seed = seeds.micro }
  in
  let p =
    Problem.create ~workload:w ~tau:100. ~capacity:50_000.
      (Problem.linear_costs ~vm_usd:36. ~per_event_usd:1e-7)
  in
  let selection = Selection.gsp p in
  let zipf = Mcss_prng.Dist.Zipf.create ~n:100_000 ~s:1.0 in
  let tests =
    [
      Test.make ~name:"stage1/gsp" (Staged.stage (fun () -> ignore (Selection.gsp p)));
      Test.make ~name:"stage1/gsp-parallel"
        (Staged.stage (fun () -> ignore (Selection.gsp_parallel p)));
      Test.make ~name:"stage1/rsp" (Staged.stage (fun () -> ignore (Selection.rsp p)));
      Test.make ~name:"stage2/ffbp"
        (Staged.stage (fun () -> ignore (Mcss_core.Ffbp.run p selection)));
      Test.make ~name:"stage2/cbp"
        (Staged.stage (fun () ->
             ignore (Mcss_core.Cbp.run p selection Mcss_core.Cbp.with_cost_decision)));
      Test.make ~name:"lower-bound"
        (Staged.stage (fun () -> ignore (Lower_bound.compute p)));
      Test.make ~name:"zipf-sample"
        (Staged.stage (fun () -> ignore (Mcss_prng.Dist.Zipf.sample zipf rng)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    Analyze.all ols instance raw
  in
  let table = Table.create [ ("kernel", Table.Left); ("time/run", Table.Right) ] in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          let nanos =
            match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
          in
          let cell =
            if Float.is_nan nanos then "n/a"
            else if nanos > 1e9 then Printf.sprintf "%.2f s" (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%.2f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%.2f us" (nanos /. 1e3)
            else Printf.sprintf "%.0f ns" nanos
          in
          Table.add_row table [ name; cell ])
        results)
    tests;
  Table.print table

(* ----- Ablations beyond the paper (DESIGN.md section 4) ----- *)

(* Stage-1 ablation: the paper's two selectors, plus the per-subscriber
   optimal DP it mentions but rejects for speed, plus the cross-subscriber
   global greedy extension. Packed with full CBP so the end-to-end cost
   differences are attributable to selection alone. *)
let ablate_stage1 ~title ~w ~scale =
  section_header "ablate-stage1" title;
  let model = Cost_model.ec2_2014 () in
  let capacity_events = bc_events ~scale Instance.c3_large in
  let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
  let table =
    Table.create
      [
        ("selector", Table.Left);
        ("pairs", Table.Right);
        ("selected rate", Table.Right);
        ("cost after CBP", Table.Right);
        ("time s", Table.Right);
      ]
  in
  let pack s = Mcss_core.Cbp.run p s Mcss_core.Cbp.with_cost_decision in
  let row name selection seconds =
    let a = pack selection in
    let cost =
      Problem.cost p ~vms:(Allocation.num_vms a) ~bandwidth:(Allocation.total_load a)
    in
    Table.add_row table
      [
        name;
        string_of_int selection.Selection.num_pairs;
        Printf.sprintf "%.3e" selection.Selection.outgoing_rate;
        Table.cell_usd cost;
        Table.cell_float ~decimals:3 seconds;
      ]
  in
  let s, t = timed (fun () -> Selection.rsp p) in
  row "RSP (naive)" s t;
  let s, t = timed (fun () -> Selection.gsp p) in
  row "GSP (paper)" s t;
  let s, t = timed (fun () -> Mcss_core.Global_greedy.select p) in
  row "global greedy (ext)" s t;
  (match timed (fun () -> Selection.optimal_per_subscriber p) with
  | Some s, t -> row "per-subscriber DP" s t
  | None, _ -> Table.add_row table [ "per-subscriber DP"; "-"; "-"; "-"; "-" ]);
  Table.print table

(* Stage-2 ablation: the paper's FFBP and CBP bracketed by the textbook
   next-fit and best-fit-decreasing, all on the same GSP selection. *)
let ablate_stage2 ~title ~w ~scale =
  section_header "ablate-stage2" title;
  let model = Cost_model.ec2_2014 () in
  let capacity_events = bc_events ~scale Instance.c3_large in
  let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
  let s = Selection.gsp p in
  let table =
    Table.create
      [
        ("packer", Table.Left);
        ("VMs", Table.Right);
        ("BW GB", Table.Right);
        ("cost", Table.Right);
        ("time s", Table.Right);
      ]
  in
  List.iter
    (fun (name, run) ->
      let a, seconds = timed (fun () -> run p s) in
      let report = Verifier.verify p s a in
      if not (Verifier.is_valid report) then failwith (name ^ ": invalid packing");
      Table.add_row table
        [
          name;
          string_of_int (Allocation.num_vms a);
          Table.cell_float ~decimals:2 (Cost_model.gb_of_events model (Allocation.total_load a));
          Table.cell_usd
            (Problem.cost p ~vms:(Allocation.num_vms a)
               ~bandwidth:(Allocation.total_load a));
          Table.cell_float ~decimals:3 seconds;
        ])
    [
      ("next-fit", Mcss_core.Baselines.next_fit);
      ("first-fit (paper FFBP)", (fun p s -> Mcss_core.Ffbp.run p s));
      ("best-fit decreasing", Mcss_core.Baselines.best_fit_decreasing);
      ("CBP grouping only (b)", fun p s -> Mcss_core.Cbp.run p s Mcss_core.Cbp.grouping_only);
      ("CBP all opts (e)", fun p s -> Mcss_core.Cbp.run p s Mcss_core.Cbp.with_cost_decision);
    ];
  Table.print table

(* Dynamic ablation: a week of churn, incremental planner vs cold
   re-solve — cost gap, pair churn, runtime. *)
let ablate_dynamic ~seeds ~w =
  section_header "ablate-dynamic" "incremental reprovisioning vs cold re-solve";
  let module Delta = Mcss_dynamic.Delta in
  let module Churn = Mcss_dynamic.Churn in
  let module Reprovision = Mcss_dynamic.Reprovision in
  let rng = Mcss_prng.Rng.create seeds.dynamic in
  let problem_for w =
    Problem.of_pricing ~capacity_events:250_000. ~workload:w ~tau:100.
      (Cost_model.ec2_2014 ())
  in
  let churn w = Churn.tick rng (Churn.scaled 1.5) w in
  let w = ref w in
  let plan = ref (Reprovision.initial (problem_for !w)) in
  let incr_time = ref 0. and cold_time = ref 0. in
  let moved = ref 0 and total = ref 0 in
  let incr_cost = ref 0. and cold_cost = ref 0. in
  for _day = 1 to 5 do
    w := Delta.apply !w (churn !w);
    let p = problem_for !w in
    let (plan', stats), s =
      timed (fun () -> Reprovision.reprovision ~previous:!plan p)
    in
    incr_time := !incr_time +. s;
    plan := plan';
    let cold, s = timed (fun () -> Solver.solve p) in
    cold_time := !cold_time +. s;
    moved := !moved + stats.Reprovision.pairs_added + stats.Reprovision.pairs_evicted;
    total := !total + stats.Reprovision.pairs_kept + stats.Reprovision.pairs_added;
    incr_cost := !incr_cost +. Reprovision.cost plan';
    cold_cost := !cold_cost +. cold.Solver.cost
  done;
  Printf.printf
    "5 churn ticks: incremental moved %.2f%% of pairs per tick (a cold\n\
     re-solve migrates nearly all of them); cost ratio incremental/cold = %.3f;\n\
     runtime incremental %.3fs vs cold %.3fs\n"
    (100. *. float_of_int !moved /. float_of_int (max 1 !total))
    (!incr_cost /. !cold_cost) !incr_time !cold_time;
  (* Shrink phase: demand drops (tau 100 -> 30, e.g. the product lowers
     its notification budget). The incremental planner removes the now
     unneeded pairs in place, leaving a fragmented half-empty fleet; the
     bounded-migration consolidation pass then reclaims whole VMs. *)
  let p_small =
    Problem.of_pricing ~capacity_events:250_000. ~workload:!w ~tau:30.
      (Cost_model.ec2_2014 ())
  in
  let shrunk, sstats = Reprovision.reprovision ~previous:!plan p_small in
  let before = Allocation.num_vms shrunk.Reprovision.allocation in
  let plan', cstats = Reprovision.consolidate shrunk in
  Printf.printf
    "demand drop (tau 100 -> 30) strands capacity: %d pairs dropped in place;\n\
     consolidation reclaims %d -> %d VMs by moving %d pairs\n"
    sstats.Reprovision.pairs_removed before
    (Allocation.num_vms plan'.Reprovision.allocation)
    cstats.Reprovision.pairs_evicted

(* Failure ablation: kill a growing share of the fleet mid-horizon and
   measure the satisfaction damage. *)
let ablate_failures ~w ~scale =
  section_header "ablate-failures" "VM outages vs subscriber satisfaction";
  let model = Cost_model.ec2_2014 () in
  let capacity_events = bc_events ~scale Instance.c3_large in
  let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
  let r = Solver.solve p in
  let num_vms = r.Solver.num_vms in
  let subscribers = Workload.num_subscribers w in
  let table =
    Table.create
      [
        ("VMs down", Table.Right);
        ("events lost", Table.Right);
        ("unsatisfied subs", Table.Right);
        ("unsatisfied %", Table.Right);
      ]
  in
  List.iter
    (fun fraction ->
      let down = int_of_float (Float.round (fraction *. float_of_int num_vms)) in
      let outages =
        List.init down (fun i ->
            Simulator.outage ~vm:i ~from_time:0.5 ~until_time:infinity ())
      in
      let config = { Simulator.default_config with Simulator.outages } in
      let res = Simulator.run p r.Solver.allocation config in
      let c = Simulator.check p r.Solver.allocation res ~tolerance:0. in
      let unsat = List.length c.Simulator.unsatisfied in
      Table.add_row table
        [
          Printf.sprintf "%d/%d" down num_vms;
          string_of_int (Array.fold_left ( + ) 0 res.Simulator.lost);
          string_of_int unsat;
          Table.cell_pct (100. *. float_of_int unsat /. float_of_int subscribers);
        ])
    [ 0.0; 0.05; 0.1; 0.25; 0.5 ];
  Table.print table

(* Scaling ablation: the paper's §IV-E claim is that the solution "scales
   well for millions of subscribers and runs fast". Sweep the trace scale
   and watch the runtime growth of each stage — GSP+CBP should grow
   near-linearly in the pair count while FFBP grows superlinearly. *)
let ablate_scaling ~seeds () =
  section_header "ablate-scaling" "runtime vs trace size (Spotify-like, tau=100)";
  let model = Cost_model.ec2_2014 () in
  let table =
    Table.create
      [
        ("scale", Table.Right);
        ("pairs", Table.Right);
        ("VMs", Table.Right);
        ("GSP s", Table.Right);
        ("CBP s", Table.Right);
        ("FFBP s", Table.Right);
      ]
  in
  List.iter
    (fun scale ->
      let w =
        Mcss_traces.Spotify.generate
          { (Mcss_traces.Spotify.scaled scale) with Mcss_traces.Spotify.seed = seeds.scaling }
      in
      let capacity_events = bc_events ~scale Instance.c3_large in
      let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
      let best = Solver.solve ~config:Solver.default p in
      let ffbp =
        Solver.solve ~config:{ Solver.stage1 = Solver.Gsp; stage2 = Solver.Ffbp } p
      in
      Table.add_row table
        [
          Printf.sprintf "%g" scale;
          string_of_int (Workload.num_pairs w);
          string_of_int best.Solver.num_vms;
          Table.cell_float ~decimals:3 best.Solver.stage1_seconds;
          Table.cell_float ~decimals:3 best.Solver.stage2_seconds;
          Table.cell_float ~decimals:3 ffbp.Solver.stage2_seconds;
        ])
    [ 0.005; 0.01; 0.02; 0.04 ];
  Table.print table;
  print_endline
    "(BC co-scales with the trace, so the VM count stays put while GSP and\n\
     CBP runtimes grow ~linearly in the pair count; FFBP grows\n\
     superlinearly — the paper's complexity argument, measured)"
(* Skew ablation: the paper\'s savings are harvested from heavy tails —
   GSP exploits rate dispersion, CBP exploits popularity skew. Flattening
   either distribution in the generator should shrink the savings; this
   section measures by how much. *)
let ablate_skew ~seeds ~scale =
  section_header "ablate-skew"
    "where the savings come from: popularity / rate skew sweep (Spotify-like, tau=100)";
  let model = Cost_model.ec2_2014 () in
  let capacity_events = bc_events ~scale Instance.c3_large in
  let table =
    Table.create
      [
        ("workload shape", Table.Left);
        ("naive cost", Table.Right);
        ("full ladder", Table.Right);
        ("saving", Table.Right);
      ]
  in
  List.iter
    (fun (label, popularity_exponent, rate_sigma) ->
      let params =
        {
          (Mcss_traces.Spotify.scaled scale) with
          Mcss_traces.Spotify.seed = seeds.skew;
          popularity_exponent;
          rate_sigma;
        }
      in
      let w = Mcss_traces.Spotify.generate params in
      let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
      let naive = Solver.solve ~config:Solver.naive p in
      let best = Solver.solve ~config:Solver.default p in
      Table.add_row table
        [
          label;
          Table.cell_usd naive.Solver.cost;
          Table.cell_usd best.Solver.cost;
          Table.cell_pct (Table.pct_change ~baseline:naive.Solver.cost best.Solver.cost);
        ])
    [
      ("heavy tails (paper-like)", 0.85, 1.0);
      ("flat popularity", 0.0, 1.0);
      ("flat rates", 0.85, 0.1);
      ("flat everything", 0.0, 0.1);
    ];
  Table.print table;
  print_endline
    "(uniform rates leave GSP nothing to choose between; the savings that\n\
     remain come from the packing side)"

(* Budget ablation: the dual question of the paper's reference [9] — how
   does subscriber satisfaction grow with a fixed fleet size? *)
let ablate_budget ~w ~scale =
  section_header "ablate-budget" "satisfied subscribers vs fixed VM budget";
  let model = Cost_model.ec2_2014 () in
  let capacity_events = bc_events ~scale Instance.c3_large in
  let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
  let full = Solver.solve p in
  let budgets =
    List.sort_uniq compare
      (List.map
         (fun f -> int_of_float (Float.round (f *. float_of_int full.Solver.num_vms)))
         [ 0.1; 0.25; 0.5; 0.75; 1.0 ])
  in
  let subscribers = Workload.num_subscribers w in
  let table =
    Table.create
      [ ("VM budget", Table.Right); ("satisfied", Table.Right); ("%", Table.Right) ]
  in
  List.iter
    (fun (budget, satisfied) ->
      Table.add_row table
        [
          string_of_int budget;
          string_of_int satisfied;
          Table.cell_pct (100. *. float_of_int satisfied /. float_of_int subscribers);
        ])
    (Mcss_core.Budget.satisfaction_curve p ~budgets);
  Table.print table;
  Printf.printf "(MCSS needs %d VMs to satisfy all %d subscribers)\n" full.Solver.num_vms
    subscribers

(* Broker-fleet latency: run the message-level engine over the MCSS
   allocation at increasing load and watch queueing delay — an observable
   the counting model cannot produce. *)
let latency ~seeds ~w ~scale =
  section_header "latency" "delivery latency through the broker fleet (message-level)";
  let module Fleet = Mcss_broker.Fleet in
  let fleet_config =
    { Fleet.default_config with Fleet.latency_seed = seeds.fleet }
  in
  let model = Cost_model.ec2_2014 () in
  let table =
    Table.create
      [
        ("headroom", Table.Right);
        ("max util", Table.Right);
        ("p50 latency", Table.Right);
        ("p99 latency", Table.Right);
      ]
  in
  (* The allocation is computed once at nominal capacity — CBP fills the
     busiest VMs to ~100% of BC, since that minimises cost. The fleet is
     then run with progressively faster wires (headroom an operator would
     add on top of the optimiser's plan) to expose the latency/cost
     trade-off. *)
  let nominal = bc_events ~scale Instance.c3_large in
  let p = Problem.of_pricing ~capacity_events:nominal ~workload:w ~tau:100. model in
  let r = Solver.solve p in
  List.iter
    (fun headroom ->
      let p' =
        Problem.of_pricing
          ~capacity_events:(nominal *. headroom)
          ~workload:w ~tau:100. model
      in
      let fleet = Fleet.build p' r.Solver.allocation ~message_bytes:200 in
      let report = Fleet.run fleet fleet_config in
      match report.Fleet.latency with
      | None -> ()
      | Some l ->
          (* Horizon units -> seconds at the model's 240 h horizon. *)
          let seconds x = x *. model.Cost_model.horizon_hours *. 3600. in
          Table.add_row table
            [
              Printf.sprintf "%.2fx" headroom;
              Table.cell_pct (100. *. report.Fleet.max_utilization);
              Printf.sprintf "%.2f s" (seconds l.Fleet.p50);
              Printf.sprintf "%.2f s" (seconds l.Fleet.p99);
            ])
    [ 1.0; 1.25; 1.5; 2.0; 4.0 ];
  Table.print table;
  print_endline
    "(MCSS packs the busiest VM to ~100% of BC because that minimises cost;\n\
     queueing theory then predicts the nonlinear latency relief that each\n\
     increment of bandwidth headroom buys)"

(* Resilience scenario: one seeded fault campaign (crash + transient +
   zone-correlated burst + throttle) pushed through three operating
   modes — nobody watching, the orchestrator repairing, and k=2
   zone-diverse replicas riding it out — with the SLA ledger and the
   redundancy premium written to BENCH_resilience.json. *)
let resilience ~seeds ~w ~scale ~out_dir =
  section_header "resilience" "fault campaign: no recovery vs repair vs k=2 replicas";
  let module Failure_model = Mcss_resilience.Failure_model in
  let module Orchestrator = Mcss_resilience.Orchestrator in
  let module Redundancy = Mcss_resilience.Redundancy in
  let module Sla = Mcss_resilience.Sla in
  let module Reprovision = Mcss_dynamic.Reprovision in
  let model = Cost_model.ec2_2014 () in
  let capacity_events = bc_events ~scale Instance.c3_large in
  let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
  let zones = 3 in
  let campaign =
    {
      Failure_model.seed = 11;
      faults =
        [
          Failure_model.Crash { vm = 0; at = 0.6 };
          Failure_model.Transient { vm = 1; from_time = 1.6; until_time = 1.9 };
          Failure_model.Zone_burst { zone = 1; at = 2.4; duration = 0.3 };
          Failure_model.Throttle
            { vm = 2; from_time = 3.1; until_time = 3.4; severity = 0.5 };
        ];
    }
  in
  Printf.printf "campaign (seed %d, %d zones):\n" campaign.Failure_model.seed zones;
  List.iter
    (fun f -> Printf.printf "  %s\n" (Failure_model.fault_to_string f))
    campaign.Failure_model.faults;
  let policy = Orchestrator.default_policy in
  let baseline =
    Orchestrator.run ~policy:{ policy with Orchestrator.recovery = false } ~zones
      ~campaign p
  in
  let supervised = Orchestrator.run ~policy ~zones ~campaign p in
  let selection = Selection.gsp p in
  let redundant, rstats = Redundancy.place ~zones ~k:2 p selection in
  (match Redundancy.check p selection ~k:2 redundant with
  | Ok () -> ()
  | Error m -> failwith ("resilience: redundant placement failed audit: " ^ m));
  let replicated = Orchestrator.evaluate ~policy ~zones ~campaign p redundant in
  let base_cost = rstats.Redundancy.base_cost in
  let overhead cost =
    if base_cost > 0. then (cost -. base_cost) /. base_cost *. 100. else 0.
  in
  let plan_cost (o : Orchestrator.outcome) = Reprovision.cost o.Orchestrator.plan in
  let table =
    Table.create
      [
        ("strategy", Table.Left);
        ("viol-hours", Table.Right);
        ("delivered", Table.Right);
        ("repairs", Table.Right);
        ("VMs", Table.Right);
        ("cost vs k=1", Table.Right);
      ]
  in
  let row name (r : Sla.report) ~repairs ~vms ~overhead_pct =
    Table.add_row table
      [
        name;
        Table.cell_float ~decimals:1 r.Sla.violation_hours;
        Table.cell_pct (100. *. r.Sla.delivered_fraction);
        string_of_int repairs;
        string_of_int vms;
        Printf.sprintf "%+.1f%%" overhead_pct;
      ]
  in
  let vms_of (o : Orchestrator.outcome) =
    Allocation.num_vms o.Orchestrator.plan.Reprovision.allocation
  in
  row "no recovery" baseline.Orchestrator.sla ~repairs:0 ~vms:(vms_of baseline)
    ~overhead_pct:(overhead (plan_cost baseline));
  row "supervised repair" supervised.Orchestrator.sla
    ~repairs:supervised.Orchestrator.repairs ~vms:(vms_of supervised)
    ~overhead_pct:(overhead (plan_cost supervised));
  row "k=2 replicas" replicated ~repairs:0 ~vms:rstats.Redundancy.vms
    ~overhead_pct:rstats.Redundancy.overhead_vs_base_pct;
  Table.print table;
  Printf.printf
    "supervised plan verified: %b (%d replacement VM(s)); k=2: %d/%d pairs\n\
     zone-diverse, +%.1f%% over the lower bound\n"
    (supervised.Orchestrator.verified = Ok ())
    supervised.Orchestrator.vms_added rstats.Redundancy.zone_diverse_pairs
    selection.Selection.num_pairs rstats.Redundancy.overhead_vs_lb_pct;
  (* Machine-readable summary next to the .dat series. *)
  let rec mkdir_p dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let path = Filename.concat out_dir "BENCH_resilience.json" in
  let oc = open_out path in
  let variant name (r : Sla.report) ~repairs ~vms ~overhead_pct =
    Printf.sprintf
      "    { \"name\": %S, \"violation_hours\": %g, \"violation_epochs\": %d,\n\
      \      \"delivered_fraction\": %.6f, \"lost_events\": %d, \"repairs\": %d,\n\
      \      \"mean_epochs_to_recover\": %g, \"downtime_cost_usd\": %g,\n\
      \      \"vms\": %d, \"cost_overhead_vs_base_pct\": %g }"
      name r.Sla.violation_hours r.Sla.violation_epochs r.Sla.delivered_fraction
      r.Sla.lost_events repairs r.Sla.mean_epochs_to_recover r.Sla.downtime_cost
      vms overhead_pct
  in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"resilience\",\n\
    \  \"runtime\": %s,\n\
    \  \"trace_scale\": %g,\n\
    \  \"trace_seed\": %d,\n\
    \  \"tau\": 100,\n\
    \  \"zones\": %d,\n\
    \  \"campaign_seed\": %d,\n\
    \  \"faults\": [%s],\n\
    \  \"variants\": [\n%s\n  ],\n\
    \  \"redundancy\": {\n\
    \    \"k\": %d, \"replicas_placed\": %d, \"zone_diverse_pairs\": %d,\n\
    \    \"selected_pairs\": %d, \"base_vms\": %d, \"vms\": %d,\n\
    \    \"base_cost_usd\": %g, \"cost_usd\": %g, \"lb_cost_usd\": %g,\n\
    \    \"overhead_vs_base_pct\": %g, \"overhead_vs_lb_pct\": %g\n\
    \  }\n\
     }\n"
    (runtime_json ()) scale seeds.trace_seed zones campaign.Failure_model.seed
    (String.concat ", "
       (List.map
          (fun f -> Printf.sprintf "%S" (Failure_model.fault_to_string f))
          campaign.Failure_model.faults))
    (String.concat ",\n"
       [
         variant "no_recovery" baseline.Orchestrator.sla ~repairs:0
           ~vms:(vms_of baseline)
           ~overhead_pct:(overhead (plan_cost baseline));
         variant "supervised" supervised.Orchestrator.sla
           ~repairs:supervised.Orchestrator.repairs ~vms:(vms_of supervised)
           ~overhead_pct:(overhead (plan_cost supervised));
         variant "k2_replicas" replicated ~repairs:0 ~vms:rstats.Redundancy.vms
           ~overhead_pct:rstats.Redundancy.overhead_vs_base_pct;
       ])
    rstats.Redundancy.k rstats.Redundancy.replicas_placed
    rstats.Redundancy.zone_diverse_pairs selection.Selection.num_pairs
    rstats.Redundancy.base_vms rstats.Redundancy.vms rstats.Redundancy.base_cost
    rstats.Redundancy.cost rstats.Redundancy.lb_cost
    rstats.Redundancy.overhead_vs_base_pct rstats.Redundancy.overhead_vs_lb_pct;
  close_out oc;
  Printf.printf "wrote %s\n" path


(* Observability overhead: the acceptance gate for lib/obs. Runs the
   end-to-end pipeline (solve + deterministic simulate) on both traces
   with instrumentation off (Registry.noop) and on (a live registry),
   takes the median of several repetitions, and writes the enabled vs
   disabled comparison to BENCH_obs.json. The no-op path must stay
   within a few percent — instrumentation is compiled in permanently,
   so its disabled cost is the number that matters. *)
let obs_overhead ~seeds ~spotify ~twitter ~spotify_scale ~twitter_scale ~out_dir =
  section_header "obs" "observability overhead: enabled vs disabled (lib/obs)";
  let module Registry = Mcss_obs.Registry in
  let model = Cost_model.ec2_2014 () in
  let reps = 7 in
  let median xs =
    let xs = Array.of_list xs in
    Array.sort compare xs;
    xs.(Array.length xs / 2)
  in
  let pipeline obs p =
    let r = Solver.solve ~obs p in
    ignore (Simulator.run ~obs p r.Solver.allocation Simulator.default_config)
  in
  let time_pipeline obs p = snd (timed (fun () -> pipeline obs p)) in
  let measure name w scale =
    let capacity_events = bc_events ~scale Instance.c3_large in
    let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
    (* Warm up allocators and caches once per variant before timing. *)
    pipeline Registry.noop p;
    let disabled = List.init reps (fun _ -> time_pipeline Registry.noop p) in
    let enabled =
      List.init reps (fun _ -> time_pipeline (Registry.create ()) p)
    in
    let reg = Registry.create () in
    pipeline reg p;
    let metrics = List.length (Registry.samples reg) in
    let spans =
      List.length (Mcss_obs.Span.flatten (Mcss_obs.Span.roots reg))
    in
    let d = median disabled and e = median enabled in
    let overhead_pct = if d > 0. then (e -. d) /. d *. 100. else 0. in
    (name, scale, d, e, overhead_pct, metrics, spans)
  in
  let rows =
    [
      measure "spotify" spotify spotify_scale;
      measure "twitter" twitter twitter_scale;
    ]
  in
  let table =
    Table.create
      [
        ("trace", Table.Left);
        ("disabled s", Table.Right);
        ("enabled s", Table.Right);
        ("overhead", Table.Right);
        ("metrics", Table.Right);
        ("spans", Table.Right);
      ]
  in
  List.iter
    (fun (name, _scale, d, e, pct, metrics, spans) ->
      Table.add_row table
        [
          name;
          Table.cell_float ~decimals:3 d;
          Table.cell_float ~decimals:3 e;
          Printf.sprintf "%+.2f%%" pct;
          string_of_int metrics;
          string_of_int spans;
        ])
    rows;
  Table.print table;
  print_endline
    "(median of 7 solve+simulate pipelines per variant; counters accumulate\n\
     in locals on the hot paths and flush once, so both columns should\n\
     agree to within noise)";
  let rec mkdir_p dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let path = Filename.concat out_dir "BENCH_obs.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"obs_overhead\",\n\
    \  \"runtime\": %s,\n\
    \  \"trace_seed\": %d,\n\
    \  \"tau\": 100,\n\
    \  \"reps\": %d,\n\
    \  \"pipeline\": \"solve+simulate\",\n\
    \  \"traces\": [\n%s\n  ]\n\
     }\n"
    (runtime_json ()) seeds.trace_seed reps
    (String.concat ",\n"
       (List.map
          (fun (name, scale, d, e, pct, metrics, spans) ->
            Printf.sprintf
              "    { \"name\": %S, \"scale\": %g, \"disabled_s\": %.6f,\n\
              \      \"enabled_s\": %.6f, \"overhead_pct\": %.3f,\n\
              \      \"metrics\": %d, \"spans\": %d }"
              name scale d e pct metrics spans)
          rows));
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Planning-service throughput: an in-process [mcss serve] on a Unix
   socket, N concurrent client domains driving a solve+whatif mix over a
   small set of parameter points. After warm-up most requests hit the
   plan cache, so the numbers characterise the service path (protocol,
   cache, admission, socket) rather than the solver. Writes
   BENCH_serve.json: requests/s, p50/p95/p99 latency, steady-state
   cache hit ratio. *)
let serve_bench ~seeds ~spotify ~spotify_scale ~out_dir =
  section_header "serve"
    "planning service: concurrent solve/whatif over a Unix socket";
  let module Service = Mcss_serve.Service in
  let module Server = Mcss_serve.Server in
  let module Client = Mcss_serve.Client in
  let module Json = Mcss_serve.Json in
  let module Protocol = Mcss_serve.Protocol in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-bench-serve-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let svc = Service.create () in
  let digest = Service.load_workload svc spotify in
  let address = Server.Unix_socket path in
  let sconfig =
    { Server.default_config with Server.workers = 8; accept_tick_s = 0.05 }
  in
  let server = Domain.spawn (fun () -> Server.run ~config:sconfig svc address) in
  let rec await tries =
    if tries = 0 then failwith "serve bench: server never came up";
    match Client.connect address with
    | Ok c -> Client.close c
    | Error _ ->
        Unix.sleepf 0.02;
        await (tries - 1)
  in
  await 200;
  (* Eight parameter points; after one cold solve each, everything is a
     cache hit, which is the steady state a plan server lives in. *)
  let taus = [| 25.; 50.; 75.; 100.; 150.; 200.; 400.; 800. |] in
  let capacity = bc_events ~scale:spotify_scale Instance.c3_large in
  let num_clients = 6 and requests_per_client = 50 in
  let solve_request tau =
    Json.Obj
      [
        ("req", Json.String "solve");
        ("digest", Json.String digest);
        ("tau", Json.Float tau);
        ("bc_events", Json.Float capacity);
      ]
  in
  let whatif_request () =
    Json.Obj
      [
        ("req", Json.String "whatif");
        ("digest", Json.String digest);
        ("bc_events", Json.Float capacity);
        ("taus", Json.List (List.map (fun t -> Json.Float t) [ 50.; 100.; 200. ]));
      ]
  in
  (* Warm the cache once so the measured phase is steady-state. *)
  (match
     Client.with_connection address (fun c ->
         Array.iter (fun tau -> ignore (Client.request c (solve_request tau))) taus;
         ignore (Client.request c (whatif_request ()));
         Ok ())
   with
  | Ok () -> ()
  | Error m -> failwith ("serve bench warm-up: " ^ m));
  let warm_stats = Service.cache_stats svc in
  let run_client idx =
    Domain.spawn (fun () ->
        match
          Client.with_connection address (fun c ->
              let latencies = Array.make requests_per_client 0. in
              let errors = ref 0 in
              for k = 0 to requests_per_client - 1 do
                let request =
                  if (idx + k) mod 8 = 7 then whatif_request ()
                  else solve_request taus.((idx + k) mod Array.length taus)
                in
                let t0 = Clock.now_ns () in
                (match Client.request c request with
                | Ok reply ->
                    if not (Protocol.response_ok reply) then incr errors
                | Error _ -> incr errors);
                latencies.(k) <- Clock.seconds_since t0
              done;
              Ok (latencies, !errors))
        with
        | Ok r -> r
        | Error m -> failwith ("serve bench client: " ^ m))
  in
  let t_start = Clock.now_ns () in
  let domains = List.init num_clients run_client in
  let per_client = List.map Domain.join domains in
  let wall_s = Clock.seconds_since t_start in
  (* Drain the server before reading its counters. *)
  (match
     Client.with_connection address (fun c ->
         Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))
   with
  | Ok _ | Error _ -> ());
  Domain.join server;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let latencies =
    Array.concat (List.map (fun (ls, _) -> ls) per_client)
  in
  let errors = List.fold_left (fun acc (_, e) -> acc + e) 0 per_client in
  Array.sort compare latencies;
  let pct p =
    let n = Array.length latencies in
    latencies.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))
  in
  let total_requests = num_clients * requests_per_client in
  let requests_per_s = float_of_int total_requests /. wall_s in
  let final_stats = Service.cache_stats svc in
  (* Steady state: only lookups made during the measured phase. *)
  let steady_hits = final_stats.Mcss_serve.Plan_cache.hits - warm_stats.Mcss_serve.Plan_cache.hits in
  let steady_misses =
    final_stats.Mcss_serve.Plan_cache.misses - warm_stats.Mcss_serve.Plan_cache.misses
  in
  let steady_hit_ratio =
    if steady_hits + steady_misses = 0 then 0.
    else float_of_int steady_hits /. float_of_int (steady_hits + steady_misses)
  in
  let table =
    Table.create
      [
        ("clients", Table.Right);
        ("requests", Table.Right);
        ("errors", Table.Right);
        ("req/s", Table.Right);
        ("p50 ms", Table.Right);
        ("p95 ms", Table.Right);
        ("p99 ms", Table.Right);
        ("hit ratio", Table.Right);
      ]
  in
  Table.add_row table
    [
      string_of_int num_clients;
      string_of_int total_requests;
      string_of_int errors;
      Table.cell_float ~decimals:0 requests_per_s;
      Table.cell_float ~decimals:3 (pct 0.50 *. 1e3);
      Table.cell_float ~decimals:3 (pct 0.95 *. 1e3);
      Table.cell_float ~decimals:3 (pct 0.99 *. 1e3);
      Table.cell_float ~decimals:3 steady_hit_ratio;
    ];
  Table.print table;
  Printf.printf
    "(steady state after a warm-up pass over all %d parameter points;\n\
    \ solver ran %d times in total — everything else came from the cache)\n"
    (Array.length taus + 3)
    (Service.solver_runs svc);
  let rec mkdir_p dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let json_path = Filename.concat out_dir "BENCH_serve.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"serve_throughput\",\n\
    \  \"runtime\": %s,\n\
    \  \"version\": %S,\n\
    \  \"trace_seed\": %d,\n\
    \  \"trace\": \"spotify\",\n\
    \  \"scale\": %g,\n\
    \  \"clients\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"errors\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"requests_per_s\": %.2f,\n\
    \  \"latency_ms\": { \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f },\n\
    \  \"cache\": { \"steady_state_hit_ratio\": %.4f, \"hits\": %d,\n\
    \    \"misses\": %d, \"entries\": %d },\n\
    \  \"solver_runs\": %d\n\
     }\n"
    (runtime_json ())
    (Mcss_serve.Build_info.to_string ())
    seeds.trace_seed spotify_scale num_clients total_requests errors wall_s
    requests_per_s
    (pct 0.50 *. 1e3)
    (pct 0.95 *. 1e3)
    (pct 0.99 *. 1e3)
    steady_hit_ratio steady_hits steady_misses
    final_stats.Mcss_serve.Plan_cache.entries (Service.solver_runs svc);
  close_out oc;
  Printf.printf "wrote %s\n" json_path

(* The resilience of the serving stack itself: (1) crash recovery — how
   fast a kill -9'd journaled daemon is back to answering its solves as
   cache hits; (2) client-visible latency when 10% of connections are
   aborted with real RSTs by a fault-injecting proxy and the retry layer
   has to reconnect-and-replay; (3) a full circuit-breaker open → shed →
   half-open → close cycle with degraded replies counted. Writes
   BENCH_serve_faults.json. *)
let serve_faults_bench ~seeds ~spotify ~spotify_scale ~out_dir =
  section_header "serve-faults"
    "planning service under crash, wire resets, and an open circuit";
  let module Service = Mcss_serve.Service in
  let module Server = Mcss_serve.Server in
  let module Client = Mcss_serve.Client in
  let module Journal = Mcss_serve.Journal in
  let module Breaker = Mcss_serve.Breaker in
  let module Retry = Mcss_serve.Retry in
  let module Faulty = Mcss_serve.Faulty in
  let module Json = Mcss_serve.Json in
  let module Protocol = Mcss_serve.Protocol in
  let capacity = bc_events ~scale:spotify_scale Instance.c3_large in
  let taus = [ 25.; 50.; 100.; 200. ] in
  let solve_line digest tau =
    Json.to_string
      (Json.Obj
         [
           ("req", Json.String "solve");
           ("digest", Json.String digest);
           ("tau", Json.Float tau);
           ("bc_events", Json.Float capacity);
         ])
  in
  let is_cached reply =
    match Option.bind (Json.member "cached" reply) Json.to_bool_opt with
    | Some b -> b
    | None -> false
  in
  (* ----- 1. crash recovery ----- *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-bench-faults-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  rm_rf dir;
  let journaled =
    { Service.default_config with Service.journal = Some (Journal.default_config ~dir) }
  in
  let svc = Service.create ~config:journaled () in
  let digest = Service.load_workload svc spotify in
  let (), cold_solve_s =
    timed (fun () ->
        List.iter
          (fun tau ->
            let reply = Service.handle_line svc (solve_line digest tau) in
            if not (Protocol.response_ok reply) then
              failwith ("serve-faults: cold solve failed: " ^ Json.to_string reply))
          taus)
  in
  (* kill -9 equivalence: abandon the instance without close — every
     append was fsynced, so this is exactly what a crash leaves behind. *)
  let svc2, replay_s = timed (fun () -> Service.create ~config:journaled ()) in
  let recovered_hits, reanswer_s =
    timed (fun () ->
        List.fold_left
          (fun acc tau ->
            let reply = Service.handle_line svc2 (solve_line digest tau) in
            if Protocol.response_ok reply && is_cached reply then acc + 1 else acc)
          0 taus)
  in
  let plans_recovered =
    match Service.replay_stats svc2 with
    | Some r -> r.Service.plans_recovered
    | None -> 0
  in
  let recovery_table =
    Table.create
      [
        ("cold solve s", Table.Right);
        ("replay ms", Table.Right);
        ("re-answer ms", Table.Right);
        ("plans recovered", Table.Right);
        ("served as hits", Table.Right);
        ("solver re-runs", Table.Right);
      ]
  in
  Table.add_row recovery_table
    [
      Table.cell_float ~decimals:3 cold_solve_s;
      Table.cell_float ~decimals:2 (replay_s *. 1e3);
      Table.cell_float ~decimals:2 (reanswer_s *. 1e3);
      string_of_int plans_recovered;
      Printf.sprintf "%d/%d" recovered_hits (List.length taus);
      string_of_int (Service.solver_runs svc2);
    ];
  Table.print recovery_table;
  (* ----- 2. p99 under 10% injected connection resets ----- *)
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-bench-faults-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let upstream = Server.Unix_socket sock in
  let sconfig =
    { Server.default_config with Server.workers = 4; accept_tick_s = 0.05 }
  in
  let server = Domain.spawn (fun () -> Server.run ~config:sconfig svc2 upstream) in
  let rec await tries =
    if tries = 0 then failwith "serve-faults: server never came up";
    match Client.connect upstream with
    | Ok c -> Client.close c
    | Error _ ->
        Unix.sleepf 0.02;
        await (tries - 1)
  in
  await 200;
  let reset_every = 10 in
  let proxy =
    Faulty.start
      ~plan:(fun ~conn ->
        if conn mod reset_every = 0 then
          { Faulty.clean with Faulty.to_client = [ Faulty.Reset_after 0 ] }
        else Faulty.clean)
      ~upstream ()
  in
  let address = Faulty.address proxy in
  let policy =
    {
      Retry.max_attempts = 4;
      base_ms = 2.;
      cap_ms = 50.;
      attempt_timeout_ms = Some 5000.;
    }
  in
  let num_clients = 3 and requests_per_client = 40 in
  let tau_array = Array.of_list taus in
  let run_client idx =
    Domain.spawn (fun () ->
        let rng = Mcss_prng.Rng.create (seeds.trace_seed + 100 + idx) in
        let latencies = Array.make requests_per_client 0. in
        let attempts = ref 0 and errors = ref 0 in
        for k = 0 to requests_per_client - 1 do
          let tau = tau_array.((idx + k) mod Array.length tau_array) in
          let env =
            {
              Protocol.id = None;
              deadline_ms = None;
              request =
                Protocol.Solve
                  {
                    digest;
                    params =
                      {
                        Protocol.default_params with
                        Protocol.tau;
                        bc_events = Some capacity;
                      };
                  };
            }
          in
          let t0 = Clock.now_ns () in
          let o = Client.call ~rng ~policy address env in
          latencies.(k) <- Clock.seconds_since t0;
          attempts := !attempts + o.Retry.attempts;
          match o.Retry.result with
          | Ok reply when Protocol.response_ok reply -> ()
          | Ok _ | Error _ -> incr errors
        done;
        (latencies, !attempts, !errors))
  in
  let per_client = List.map Domain.join (List.init num_clients run_client) in
  let reset_conns = (Faulty.connections proxy + reset_every - 1) / reset_every in
  Faulty.stop proxy;
  (match
     Client.with_connection upstream (fun c ->
         Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))
   with
  | Ok _ | Error _ -> ());
  Domain.join server;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  Service.close svc2;
  let latencies = Array.concat (List.map (fun (ls, _, _) -> ls) per_client) in
  let attempts = List.fold_left (fun a (_, n, _) -> a + n) 0 per_client in
  let errors = List.fold_left (fun a (_, _, e) -> a + e) 0 per_client in
  Array.sort compare latencies;
  let pct p =
    let n = Array.length latencies in
    latencies.(min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let total_requests = num_clients * requests_per_client in
  let reset_table =
    Table.create
      [
        ("requests", Table.Right);
        ("resets", Table.Right);
        ("attempts", Table.Right);
        ("errors", Table.Right);
        ("p50 ms", Table.Right);
        ("p95 ms", Table.Right);
        ("p99 ms", Table.Right);
      ]
  in
  Table.add_row reset_table
    [
      string_of_int total_requests;
      string_of_int reset_conns;
      string_of_int attempts;
      string_of_int errors;
      Table.cell_float ~decimals:3 (pct 0.50 *. 1e3);
      Table.cell_float ~decimals:3 (pct 0.95 *. 1e3);
      Table.cell_float ~decimals:3 (pct 0.99 *. 1e3);
    ];
  Table.print reset_table;
  Printf.printf
    "(every %dth connection is aborted with a real RST; the client's \n\
    \ reconnect-and-replay absorbs them — %d requests, 0 expected errors)\n"
    reset_every total_requests;
  (* ----- 3. breaker open → shed degraded → half-open → close ----- *)
  let breaker_cfg = { Breaker.failure_threshold = 1; cooldown_ms = 100. } in
  let svc3 =
    Service.create ~config:{ Service.default_config with Service.breaker = breaker_cfg } ()
  in
  let digest3 = Service.load_workload svc3 spotify in
  (match Service.handle_line svc3 (solve_line digest3 50.) with
  | reply when Protocol.response_ok reply -> ()
  | reply -> failwith ("serve-faults: baseline solve failed: " ^ Json.to_string reply));
  Breaker.failure (Service.breaker svc3);
  let shed_requests = 20 in
  let degraded_replies = ref 0 in
  for _ = 1 to shed_requests do
    let reply = Service.handle_line svc3 (solve_line digest3 60.) in
    if Protocol.response_degraded reply then incr degraded_replies
  done;
  Unix.sleepf ((breaker_cfg.Breaker.cooldown_ms +. 50.) /. 1000.);
  (* The half-open probe runs the solver for real and closes the circuit. *)
  (match Service.handle_line svc3 (solve_line digest3 60.) with
  | reply when Protocol.response_ok reply && not (Protocol.response_degraded reply) -> ()
  | reply -> failwith ("serve-faults: probe solve failed: " ^ Json.to_string reply));
  let b = Service.breaker svc3 in
  let breaker_table =
    Table.create
      [
        ("shed requests", Table.Right);
        ("degraded replies", Table.Right);
        ("opens", Table.Right);
        ("closes", Table.Right);
        ("rejections", Table.Right);
        ("final state", Table.Right);
      ]
  in
  Table.add_row breaker_table
    [
      string_of_int shed_requests;
      string_of_int !degraded_replies;
      string_of_int (Breaker.opens b);
      string_of_int (Breaker.closes b);
      string_of_int (Breaker.rejections b);
      Breaker.state_to_string (Breaker.state b);
    ];
  Table.print breaker_table;
  let rec mkdir_p d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let json_path = Filename.concat out_dir "BENCH_serve_faults.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"serve_faults\",\n\
    \  \"runtime\": %s,\n\
    \  \"version\": %S,\n\
    \  \"trace_seed\": %d,\n\
    \  \"trace\": \"spotify\",\n\
    \  \"scale\": %g,\n\
    \  \"recovery\": { \"cold_solve_s\": %.6f, \"replay_ms\": %.3f,\n\
    \    \"reanswer_ms\": %.3f, \"plans_recovered\": %d,\n\
    \    \"served_as_hits\": %d, \"solver_reruns\": %d },\n\
    \  \"resets\": { \"requests\": %d, \"injected_resets\": %d,\n\
    \    \"reset_every\": %d, \"attempts\": %d, \"errors\": %d,\n\
    \    \"latency_ms\": { \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f } },\n\
    \  \"breaker\": { \"shed_requests\": %d, \"degraded_replies\": %d,\n\
    \    \"opens\": %d, \"closes\": %d, \"rejections\": %d,\n\
    \    \"final_state\": %S }\n\
     }\n"
    (runtime_json ())
    (Mcss_serve.Build_info.to_string ())
    seeds.trace_seed spotify_scale cold_solve_s (replay_s *. 1e3)
    (reanswer_s *. 1e3) plans_recovered recovered_hits
    (Service.solver_runs svc2) total_requests reset_conns reset_every attempts
    errors
    (pct 0.50 *. 1e3)
    (pct 0.95 *. 1e3)
    (pct 0.99 *. 1e3)
    shed_requests !degraded_replies (Breaker.opens b) (Breaker.closes b)
    (Breaker.rejections b)
    (Breaker.state_to_string (Breaker.state b));
  close_out oc;
  rm_rf dir;
  Printf.printf "wrote %s\n" json_path

(* One shard of the bench cluster: a journaled leader with its
   replication hub, and a journaled follower fed over [bs_dial] (the
   shard-0 link runs through a fault-injecting proxy). *)
type bench_shard = {
  bs_name : string;
  bs_leader : Mcss_serve.Service.t;
  bs_follower : Mcss_serve.Service.t;
  bs_hub : Mcss_serve.Replication.leader;
  bs_proxy : Mcss_serve.Faulty.t option;
  bs_dial : Mcss_serve.Server.address;
  bs_stop : bool Atomic.t;
  bs_follow : unit Domain.t;
  bs_leader_addr : Mcss_serve.Server.address;
  bs_follower_addr : Mcss_serve.Server.address;
  bs_leader_dom : unit Domain.t;
  bs_follower_dom : unit Domain.t;
}

(* The full replicated deployment of DESIGN.md §serve: three shards,
   each a journaled leader streaming its WAL to a journaled follower,
   fronted by the consistent-hash router. Shard 0's replication link
   runs through the fault-injecting proxy with every 10th connection
   reset mid-stream, so the numbers include resync-on-fault overhead.
   Client domains drive solves for digests spread across the ring
   through [Router.handle]; reports aggregate req/s and p50/p99, the
   per-shard request split, and the time a cold follower needs to pull
   the shard-0 journal through the faulty link.
   BENCH_serve_cluster.json: throughput, latency, split, resync. *)
let serve_cluster_bench ~seeds ~spotify ~spotify_scale ~out_dir =
  section_header "serve-cluster"
    "3 shards x 2 replicas behind the router, faulty replication link";
  let module Service = Mcss_serve.Service in
  let module Server = Mcss_serve.Server in
  let module Client = Mcss_serve.Client in
  let module Journal = Mcss_serve.Journal in
  let module Retry = Mcss_serve.Retry in
  let module Faulty = Mcss_serve.Faulty in
  let module Json = Mcss_serve.Json in
  let module Protocol = Mcss_serve.Protocol in
  let module Replication = Mcss_serve.Replication in
  let module Ring = Mcss_serve.Ring in
  let module Router = Mcss_serve.Router in
  let capacity = bc_events ~scale:spotify_scale Instance.c3_large in
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-bench-cluster-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let rec mkdir_p d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  rm_rf base;
  mkdir_p base;
  let shard_names = [ "s0"; "s1"; "s2" ] in
  let ring = Ring.create shard_names in
  (* The ring hashes content digests, so shard coverage is found, not
     assumed: keep generating seeded Spotify variants until every shard
     owns at least one digest and there are six or more in play. *)
  let variants = ref [ (Service.digest_of_workload spotify, spotify) ] in
  let covered name =
    List.exists (fun (d, _) -> Ring.owner ring d = name) !variants
  in
  let next = ref 0 in
  while
    (List.length !variants < 6 || not (List.for_all covered shard_names))
    && !next < 24
  do
    let w =
      Front.generate
        ~seed:(seeds.trace_seed + 7100 + !next)
        `Spotify
        ~scale:(spotify_scale /. 2.)
    in
    incr next;
    let d = Service.digest_of_workload w in
    if not (List.mem_assoc d !variants) then variants := (d, w) :: !variants
  done;
  let digests = List.rev !variants in
  let journaled dir =
    {
      Service.default_config with
      Service.journal =
        Some { (Journal.default_config ~dir) with Journal.fsync = false };
    }
  in
  let sconfig =
    { Server.default_config with Server.workers = 4; accept_tick_s = 0.05 }
  in
  let fault_every = 10 in
  let boot i name =
    let dir sub = Filename.concat base (Filename.concat name sub) in
    let leader = Service.create ~config:(journaled (dir "leader")) () in
    let rep = Server.Unix_socket (Filename.concat base (name ^ "-rep.sock")) in
    let hub = Replication.start_leader ~service:leader rep in
    let proxy =
      if i = 0 then
        Some
          (Faulty.start
             ~plan:(fun ~conn ->
               if conn mod fault_every = 0 then
                 {
                   Faulty.clean with
                   Faulty.to_client = [ Faulty.Reset_after 256 ];
                 }
               else Faulty.clean)
             ~upstream:rep ())
      else None
    in
    let dial = match proxy with Some p -> Faulty.address p | None -> rep in
    let follower =
      Service.create
        ~config:(journaled (dir "follower"))
        ~role:Service.Follower ()
    in
    let stop = Atomic.make false in
    let fdom =
      Domain.spawn (fun () ->
          Replication.follow ~reconnect_ms:20. ~service:follower
            ~stop:(fun () -> Atomic.get stop)
            dial)
    in
    let laddr =
      Server.Unix_socket (Filename.concat base (name ^ "-leader.sock"))
    in
    let faddr =
      Server.Unix_socket (Filename.concat base (name ^ "-follower.sock"))
    in
    let ldom = Domain.spawn (fun () -> Server.run ~config:sconfig leader laddr) in
    let sdom =
      Domain.spawn (fun () -> Server.run ~config:sconfig follower faddr)
    in
    {
      bs_name = name;
      bs_leader = leader;
      bs_follower = follower;
      bs_hub = hub;
      bs_proxy = proxy;
      bs_dial = dial;
      bs_stop = stop;
      bs_follow = fdom;
      bs_leader_addr = laddr;
      bs_follower_addr = faddr;
      bs_leader_dom = ldom;
      bs_follower_dom = sdom;
    }
  in
  let shards = Array.of_list (List.mapi boot shard_names) in
  let await addr =
    let rec go tries =
      if tries = 0 then failwith "serve-cluster: server never came up";
      match Client.connect addr with
      | Ok c -> Client.close c
      | Error _ ->
          Unix.sleepf 0.02;
          go (tries - 1)
    in
    go 200
  in
  Array.iter
    (fun s ->
      await s.bs_leader_addr;
      await s.bs_follower_addr)
    shards;
  let policy =
    {
      Retry.max_attempts = 3;
      base_ms = 2.;
      cap_ms = 50.;
      attempt_timeout_ms = Some 5000.;
    }
  in
  let router =
    Router.create
      ~config:
        {
          Router.default_config with
          Router.policy;
          Router.health_period_s = 0.5;
          Router.log = (fun _ -> ());
        }
      ~seed:(seeds.trace_seed + 7500)
      (List.map
         (fun s ->
           {
             Router.shard_name = s.bs_name;
             Router.members =
               [
                 { Router.name = "leader"; address = s.bs_leader_addr };
                 { Router.name = "follower"; address = s.bs_follower_addr };
               ];
           })
         (Array.to_list shards))
  in
  Router.probe_all router;
  let cluster_taus = [ 50.; 100. ] in
  let env request = { Protocol.id = None; deadline_ms = None; request } in
  let solve_env digest tau =
    env
      (Protocol.Solve
         {
           digest;
           params =
             {
               Protocol.default_params with
               Protocol.tau;
               bc_events = Some capacity;
             };
         })
  in
  let expect_ok what reply =
    if not (Protocol.response_ok reply) then
      failwith
        (Printf.sprintf "serve-cluster: %s failed: %s" what
           (Json.to_string reply))
  in
  (* Load every workload and warm each (digest, tau) pair through the
     router, so the measured run is the steady cache-serving state. *)
  List.iter
    (fun (d, w) ->
      expect_ok ("load " ^ d)
        (Router.handle router
           (env (Protocol.Load (`Inline (Mcss_workload.Wio.to_string w)))));
      List.iter
        (fun tau -> expect_ok ("warm solve " ^ d) (Router.handle router (solve_env d tau)))
        cluster_taus)
    digests;
  (* Steady state includes the followers: wait for journal parity so the
     measured window is not paying first-sync costs (shard 0 pays them
     through the faulty link). *)
  let wait_until ~what ?(timeout_s = 60.) pred =
    let t0 = Clock.now_ns () in
    let rec go () =
      if pred () then ()
      else if Clock.seconds_since t0 > timeout_s then
        failwith ("serve-cluster: timeout waiting for " ^ what)
      else begin
        Unix.sleepf 0.01;
        go ()
      end
    in
    go ()
  in
  let in_sync s =
    Service.journal_last_index s.bs_follower
    = Service.journal_last_index s.bs_leader
  in
  Array.iter
    (fun s -> wait_until ~what:(s.bs_name ^ " follower parity") (fun () -> in_sync s))
    shards;
  let pairs =
    Array.of_list
      (List.concat_map
         (fun (d, _) -> List.map (fun tau -> (d, tau)) cluster_taus)
         digests)
  in
  let shard_index name =
    let rec go i = function
      | [] -> 0
      | n :: rest -> if n = name then i else go (i + 1) rest
    in
    go 0 shard_names
  in
  let num_clients = 6 and requests_per_client = 50 in
  let run_client idx =
    Domain.spawn (fun () ->
        let latencies = Array.make requests_per_client 0. in
        let hits = ref 0 and errors = ref 0 in
        let per_shard = Array.make (List.length shard_names) 0 in
        for k = 0 to requests_per_client - 1 do
          let digest, tau =
            pairs.(((idx * requests_per_client) + k) mod Array.length pairs)
          in
          let owner = shard_index (Ring.owner ring digest) in
          per_shard.(owner) <- per_shard.(owner) + 1;
          let t0 = Clock.now_ns () in
          let reply = Router.handle router (solve_env digest tau) in
          latencies.(k) <- Clock.seconds_since t0;
          if Protocol.response_ok reply then begin
            match Option.bind (Json.member "cached" reply) Json.to_bool_opt with
            | Some true -> incr hits
            | Some false | None -> ()
          end
          else incr errors
        done;
        (latencies, !hits, !errors, per_shard))
  in
  let t_run = Clock.now_ns () in
  let per_client = List.map Domain.join (List.init num_clients run_client) in
  let wall_s = Clock.seconds_since t_run in
  let latencies =
    Array.concat (List.map (fun (ls, _, _, _) -> ls) per_client)
  in
  let hits = List.fold_left (fun a (_, h, _, _) -> a + h) 0 per_client in
  let errors = List.fold_left (fun a (_, _, e, _) -> a + e) 0 per_client in
  let per_shard = Array.make (List.length shard_names) 0 in
  List.iter
    (fun (_, _, _, ps) ->
      Array.iteri (fun i n -> per_shard.(i) <- per_shard.(i) + n) ps)
    per_client;
  Array.sort compare latencies;
  let pct p =
    let n = Array.length latencies in
    latencies.(min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let total_requests = num_clients * requests_per_client in
  let requests_per_s = float_of_int total_requests /. wall_s in
  (* Resync: a cold follower pulls shard 0's whole journal through the
     faulty link (its very first connection is reset mid-stream). *)
  let s0 = shards.(0) in
  let target = Service.journal_last_index s0.bs_leader in
  let resync_records = Option.value target ~default:0 in
  let cold =
    Service.create
      ~config:(journaled (Filename.concat base "resync"))
      ~role:Service.Follower ()
  in
  let rstop = Atomic.make false in
  let t_resync = Clock.now_ns () in
  let rdom =
    Domain.spawn (fun () ->
        Replication.follow ~reconnect_ms:20. ~service:cold
          ~stop:(fun () -> Atomic.get rstop)
          s0.bs_dial)
  in
  wait_until ~what:"cold follower resync" (fun () ->
      Service.journal_last_index cold = target);
  let resync_s = Clock.seconds_since t_resync in
  Atomic.set rstop true;
  Domain.join rdom;
  Service.close cold;
  let faulty_conns =
    match s0.bs_proxy with Some p -> Faulty.connections p | None -> 0
  in
  let injected = (faulty_conns + fault_every - 1) / fault_every in
  (* Tear the cluster down: drain the six servers, stop the follow
     loops, then the hubs and the proxy. *)
  let shutdown addr =
    match
      Client.with_connection addr (fun c ->
          Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))
    with
    | Ok _ | Error _ -> ()
  in
  Array.iter
    (fun s ->
      shutdown s.bs_leader_addr;
      shutdown s.bs_follower_addr)
    shards;
  Array.iter
    (fun s ->
      Domain.join s.bs_leader_dom;
      Domain.join s.bs_follower_dom;
      Atomic.set s.bs_stop true;
      Domain.join s.bs_follow;
      Replication.stop_leader s.bs_hub;
      Option.iter Faulty.stop s.bs_proxy;
      Service.close s.bs_leader;
      Service.close s.bs_follower)
    shards;
  let cluster_table =
    Table.create
      [
        ("digests", Table.Right);
        ("requests", Table.Right);
        ("errors", Table.Right);
        ("cache hits", Table.Right);
        ("req/s", Table.Right);
        ("p50 ms", Table.Right);
        ("p99 ms", Table.Right);
      ]
  in
  Table.add_row cluster_table
    [
      string_of_int (List.length digests);
      string_of_int total_requests;
      string_of_int errors;
      Printf.sprintf "%d/%d" hits total_requests;
      Table.cell_float ~decimals:1 requests_per_s;
      Table.cell_float ~decimals:3 (pct 0.50 *. 1e3);
      Table.cell_float ~decimals:3 (pct 0.99 *. 1e3);
    ];
  Table.print cluster_table;
  let shard_table =
    Table.create
      [
        ("shard", Table.Left);
        ("digests", Table.Right);
        ("requests", Table.Right);
        ("journal records", Table.Right);
        ("replication link", Table.Left);
      ]
  in
  Array.iteri
    (fun i s ->
      Table.add_row shard_table
        [
          s.bs_name;
          string_of_int
            (List.length
               (List.filter (fun (d, _) -> Ring.owner ring d = s.bs_name) digests));
          string_of_int per_shard.(i);
          string_of_int
            (Option.value (Service.journal_last_index s.bs_leader) ~default:0);
          (if s.bs_proxy = None then "clean"
           else Printf.sprintf "1-in-%d reset" fault_every);
        ])
    shards;
  Table.print shard_table;
  Printf.printf
    "cold follower resync through the faulty link: %d records in %.1f ms \
     (%d replication connections, %d reset)\n"
    resync_records (resync_s *. 1e3) faulty_conns injected;
  mkdir_p out_dir;
  let json_path = Filename.concat out_dir "BENCH_serve_cluster.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"serve_cluster\",\n\
    \  \"runtime\": %s,\n\
    \  \"version\": %S,\n\
    \  \"trace_seed\": %d,\n\
    \  \"trace\": \"spotify\",\n\
    \  \"scale\": %g,\n\
    \  \"topology\": { \"shards\": %d, \"replicas_per_shard\": 2,\n\
    \    \"digests\": %d, \"vnodes\": %d },\n\
    \  \"clients\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"errors\": %d,\n\
    \  \"cache_hits\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"requests_per_s\": %.2f,\n\
    \  \"latency_ms\": { \"p50\": %.4f, \"p99\": %.4f },\n\
    \  \"per_shard_requests\": { \"s0\": %d, \"s1\": %d, \"s2\": %d },\n\
    \  \"replication\": { \"fault_every\": %d, \"faulty_link_connections\": %d,\n\
    \    \"injected_resets\": %d, \"resync_records\": %d, \"resync_ms\": %.3f }\n\
     }\n"
    (runtime_json ())
    (Mcss_serve.Build_info.to_string ())
    seeds.trace_seed spotify_scale (List.length shard_names)
    (List.length digests) Router.default_config.Router.vnodes num_clients
    total_requests errors hits wall_s requests_per_s
    (pct 0.50 *. 1e3)
    (pct 0.99 *. 1e3)
    per_shard.(0) per_shard.(1) per_shard.(2) fault_every faulty_conns injected
    resync_records (resync_s *. 1e3);
  close_out oc;
  rm_rf base;
  Printf.printf "wrote %s\n" json_path

(* The incremental engine against cold re-solves: a 1k-delta churn
   stream folded one small batch at a time into a live engine on the
   large Spotify trace, with a cold Solver.solve sampled periodically on
   the same evolved workload. Reports apply-vs-cold p50/p95 latency, the
   pair-churn totals, and the cost gap of the surgically maintained plan
   against the cold answer and the Lower_bound — the numbers behind the
   claim that per-delta planning beats periodic-from-scratch.
   BENCH_engine.json: apply/cold latency, churn, cost gaps. *)
let engine_bench ~seeds ~spotify ~spotify_scale ~out_dir =
  section_header "engine"
    "incremental engine vs cold re-solve (Spotify, tau=100, 1k-delta stream)";
  let module Churn = Mcss_dynamic.Churn in
  let instance = Instance.c3_large in
  let model = Cost_model.ec2_2014 ~instance () in
  let capacity_events = bc_events ~scale:spotify_scale instance in
  let problem_for w = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
  let rng = Mcss_prng.Rng.create seeds.engine in
  let eng, create_s = timed (fun () -> Engine.create (problem_for spotify)) in
  let target_deltas = 1000 and cold_every = 10 in
  (* ~10 deltas per batch: a plausible between-runs accumulation, and
     ~100 latency samples for stable percentiles. *)
  let params = Churn.scaled 0.05 in
  let apply_lat = ref [] and cold_lat = ref [] and gaps = ref [] in
  let deltas_total = ref 0 and batches = ref 0 and resolves = ref 0 in
  let kept = ref 0 and added = ref 0 and removed = ref 0 and evicted = ref 0 in
  let vms_added = ref 0 and vms_removed = ref 0 in
  while !deltas_total < target_deltas do
    let w = (Engine.problem eng).Problem.workload in
    let ds = Churn.tick rng params w in
    let stats, s = timed (fun () -> Engine.apply eng ds) in
    apply_lat := s :: !apply_lat;
    deltas_total := !deltas_total + List.length ds;
    incr batches;
    if stats.Engine.resolved then incr resolves;
    kept := !kept + stats.Engine.pairs_kept;
    added := !added + stats.Engine.pairs_added;
    removed := !removed + stats.Engine.pairs_removed;
    evicted := !evicted + stats.Engine.pairs_evicted;
    vms_added := !vms_added + stats.Engine.vms_added;
    vms_removed := !vms_removed + stats.Engine.vms_removed;
    if !batches mod cold_every = 0 then begin
      let cold, cs = timed (fun () -> Solver.solve (Engine.problem eng)) in
      cold_lat := cs :: !cold_lat;
      gaps :=
        ((Engine.cost eng -. cold.Solver.cost) /. cold.Solver.cost *. 100.)
        :: !gaps
    end
  done;
  (* Final word on the evolved workload: verify the engine's plan, then
     price it against a cold solve and the Theorem-A.1 bound. *)
  let { Engine.problem = p_final; selection; allocation } = Engine.plan eng in
  let report = Verifier.verify p_final selection allocation in
  if not (Verifier.is_valid report) then
    failwith "engine bench: evolved allocation failed verification";
  let cold_final, cold_final_s = timed (fun () -> Solver.solve p_final) in
  cold_lat := cold_final_s :: !cold_lat;
  let lb = Lower_bound.compute p_final in
  let pct latencies p =
    let a = Array.of_list latencies in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let apply_p50 = pct !apply_lat 0.50 and apply_p95 = pct !apply_lat 0.95 in
  let cold_p50 = pct !cold_lat 0.50 and cold_p95 = pct !cold_lat 0.95 in
  let speedup = cold_p50 /. apply_p50 in
  let gap_final =
    (Engine.cost eng -. cold_final.Solver.cost) /. cold_final.Solver.cost *. 100.
  in
  let gap_max = List.fold_left Float.max gap_final !gaps in
  let gap_lb =
    if lb.Lower_bound.cost > 0. then
      (Engine.cost eng -. lb.Lower_bound.cost) /. lb.Lower_bound.cost *. 100.
    else 0.
  in
  let table =
    Table.create
      [
        ("path", Table.Left);
        ("p50 ms", Table.Right);
        ("p95 ms", Table.Right);
        ("runs", Table.Right);
      ]
  in
  Table.add_row table
    [
      "engine apply (incremental)";
      Table.cell_float ~decimals:3 (apply_p50 *. 1e3);
      Table.cell_float ~decimals:3 (apply_p95 *. 1e3);
      string_of_int !batches;
    ];
  Table.add_row table
    [
      "cold Solver.solve";
      Table.cell_float ~decimals:3 (cold_p50 *. 1e3);
      Table.cell_float ~decimals:3 (cold_p95 *. 1e3);
      string_of_int (List.length !cold_lat);
    ];
  Table.print table;
  Printf.printf
    "%d deltas in %d batches: apply median %.1fx faster than cold; %d drift \
     re-solve(s)\n"
    !deltas_total !batches speedup !resolves;
  Printf.printf
    "churn: %d kept, +%d added, -%d removed, %d evicted, +%d/-%d VMs\n" !kept
    !added !removed !evicted !vms_added !vms_removed;
  Printf.printf
    "final cost: engine %s vs cold %s (gap %+.2f%%, worst sampled %+.2f%%); \
     lower bound %s (gap %+.1f%%)\n"
    (Table.cell_usd (Engine.cost eng))
    (Table.cell_usd cold_final.Solver.cost)
    gap_final gap_max
    (Table.cell_usd lb.Lower_bound.cost)
    gap_lb;
  let rec mkdir_p d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let json_path = Filename.concat out_dir "BENCH_engine.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"engine_incremental\",\n\
    \  \"runtime\": %s,\n\
    \  \"version\": %S,\n\
    \  \"trace_seed\": %d,\n\
    \  \"trace\": \"spotify\",\n\
    \  \"scale\": %g,\n\
    \  \"tau\": 100,\n\
    \  \"deltas\": %d,\n\
    \  \"batches\": %d,\n\
    \  \"create_s\": %.6f,\n\
    \  \"apply_latency_ms\": { \"p50\": %.4f, \"p95\": %.4f },\n\
    \  \"cold_solve_latency_ms\": { \"p50\": %.4f, \"p95\": %.4f },\n\
    \  \"speedup_median\": %.2f,\n\
    \  \"churn\": { \"pairs_kept\": %d, \"pairs_added\": %d,\n\
    \    \"pairs_removed\": %d, \"pairs_evicted\": %d,\n\
    \    \"vms_added\": %d, \"vms_removed\": %d, \"drift_resolves\": %d },\n\
    \  \"cost\": { \"engine_usd\": %.2f, \"cold_usd\": %.2f,\n\
    \    \"gap_vs_cold_pct\": %.4f, \"worst_sampled_gap_pct\": %.4f,\n\
    \    \"lower_bound_usd\": %.2f, \"gap_vs_lower_bound_pct\": %.4f }\n\
     }\n"
    (runtime_json ())
    (Mcss_serve.Build_info.to_string ())
    seeds.trace_seed spotify_scale !deltas_total !batches create_s
    (apply_p50 *. 1e3) (apply_p95 *. 1e3) (cold_p50 *. 1e3) (cold_p95 *. 1e3)
    speedup !kept !added !removed !evicted !vms_added !vms_removed !resolves
    (Engine.cost eng) cold_final.Solver.cost gap_final gap_max
    lb.Lower_bound.cost gap_lb;
  close_out oc;
  Printf.printf "wrote %s\n" json_path

(* Live dataplane: boot the plan as a real broker fleet on Unix sockets,
   pump the deterministic schedule through it, and reconcile the
   measured ledgers against the Simulator — then a churn run with a
   mid-flight re-home, a chaos kill, and a recovery replan.
   BENCH_dataplane.json: delivered-events/s, e2e latency percentiles,
   drop window, reconciliation deviation. *)
let dataplane_bench ~seeds ~spotify_scale ~out_dir =
  section_header "dataplane"
    "live broker fleet behind the plan, reconciled against the simulator";
  let module Cluster = Mcss_dataplane.Cluster in
  let module Pump = Mcss_dataplane.Pump in
  let module Subscriber = Mcss_dataplane.Subscriber in
  let module Reconcile = Mcss_dataplane.Reconcile in
  let module Recovery = Mcss_dynamic.Recovery in
  let module Reprovision = Mcss_dynamic.Reprovision in
  let module Allocation = Mcss_core.Allocation in
  (* A live fleet pushes every delivery copy through a socket, so the
     trace is cut well below the solver benchmarks' scale. *)
  let dp_scale = spotify_scale /. 100. in
  let w = Front.generate ~seed:seeds.dataplane `Spotify ~scale:dp_scale in
  let instance = Instance.c3_large in
  let model = Cost_model.ec2_2014 ~instance () in
  (* Trace cutting does not shrink the hottest topic linearly, so floor
     the capacity at a few copies of it to keep the instance feasible. *)
  let capacity_events =
    let hottest = Array.fold_left Float.max 0. (Workload.event_rates w) in
    Float.max (bc_events ~scale:dp_scale instance) (4. *. hottest)
  in
  let p = Problem.of_pricing ~capacity_events ~workload:w ~tau:100. model in
  let r = Solver.solve p in
  let a0 = r.Solver.allocation in
  let message_bytes = 200 in
  let dir =
    let base = Filename.get_temp_dir_name () in
    let rec go i =
      let d = Filename.concat base (Printf.sprintf "mcss-bench-dp-%d" i) in
      match Unix.mkdir d 0o700 with
      | () -> d
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
    in
    go 0
  in
  let rm_dir d =
    Array.iter (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
      (try Sys.readdir d with _ -> [||]);
    try Unix.rmdir d with _ -> ()
  in
  let rec mkdir_p d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let cluster = Cluster.boot ~dir ~message_bytes p a0 in
  Fun.protect
    ~finally:(fun () ->
      Cluster.shutdown cluster;
      rm_dir dir)
    (fun () ->
      let duration = 0.2 in
      Printf.printf
        "fleet: %d brokers, %d pairs, message %d B (spotify @ %g, tau=100)\n"
        (List.length (Cluster.live cluster))
        (Workload.num_pairs w) message_bytes dp_scale;
      (* Steady run: full speed, exact reconciliation. *)
      let steady_config =
        {
          Pump.default_config with
          Pump.duration;
          latency_seed = seeds.dataplane;
          tolerance = Some 0.;
        }
      in
      let steady = Pump.run ~config:steady_config cluster p a0 in
      let steady_rc =
        match steady.Pump.reconcile with
        | Some rc -> rc
        | None -> failwith "dataplane bench: reconciliation did not run"
      in
      let delivered = steady.Pump.totals.Mcss_report.Delivery.delivered in
      let per_s = float_of_int delivered /. steady.Pump.wall_s in
      let lat k =
        match steady.Pump.latency with
        | Some l -> k l *. 1e3
        | None -> 0.
      in
      let module Fleet = Mcss_broker.Fleet in
      let p50 = lat (fun l -> l.Fleet.p50)
      and p95 = lat (fun l -> l.Fleet.p95)
      and p99 = lat (fun l -> l.Fleet.p99) in
      Printf.printf
        "steady: %d events -> %d copies in %.2fs (%.0f deliveries/s); e2e \
         p50 %.2f ms p95 %.2f ms p99 %.2f ms; reconcile %s (max deviation \
         %.4f)\n"
        steady.Pump.publisher.Mcss_dataplane.Publisher.events delivered
        steady.Pump.wall_s per_s p50 p95 p99
        (if steady_rc.Reconcile.pass then "PASS" else "FAIL")
        steady_rc.Reconcile.max_deviation;
      (* Churn run: paced traffic with a live re-home and a chaos kill in
         the middle, then a recovery replan and a post-recovery check. *)
      let vms = Allocation.vms a0 in
      if Array.length vms < 2 then begin
        Printf.printf
          "(single-VM plan: churn run needs two brokers, skipping)\n";
        let json_path = Filename.concat out_dir "BENCH_dataplane.json" in
        let oc = open_out json_path in
        Printf.fprintf oc
          "{\n\
          \  \"scenario\": \"dataplane_live\",\n\
          \  \"runtime\": %s,\n\
          \  \"version\": %S,\n\
          \  \"trace_seed\": %d,\n\
          \  \"trace\": \"spotify\",\n\
          \  \"scale\": %g,\n\
          \  \"message_bytes\": %d,\n\
          \  \"steady\": { \"duration_horizons\": %g, \"events\": %d,\n\
          \    \"copies_delivered\": %d, \"delivered_per_s\": %.0f,\n\
          \    \"latency_ms\": { \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f },\n\
          \    \"dropped\": %d,\n\
          \    \"reconcile\": { \"max_deviation\": %.6f, \"pass\": %b } },\n\
          \  \"churn\": null\n\
           }\n"
          (runtime_json ())
          (Mcss_serve.Build_info.to_string ())
          seeds.trace_seed dp_scale message_bytes duration
          steady.Pump.publisher.Mcss_dataplane.Publisher.events delivered per_s
          p50 p95 p99 steady.Pump.totals.Mcss_report.Delivery.dropped
          steady_rc.Reconcile.max_deviation steady_rc.Reconcile.pass;
        close_out oc;
        Printf.printf "wrote %s\n" json_path
      end
      else begin
        (* The re-home delta: every pair of VM 0's first topic moves to
           VM 1 — same pair set, different homes. *)
        let topic = List.hd (Allocation.topics_on vms.(0)) in
        let a1 =
          let b = Allocation.create ~capacity:(Allocation.capacity a0) in
          let fresh = Array.map (fun _ -> Allocation.deploy b) vms in
          Array.iteri
            (fun i vm ->
              Allocation.iter_vm_pairs vm (fun t s ->
                  let dest = if t = topic then fresh.(1) else fresh.(i) in
                  Allocation.place b dest ~topic:t
                    ~ev:(Workload.event_rate w t) ~subscribers:[| s |] ~from:0
                    ~count:1))
            vms;
          b
        in
        let churn_config =
          {
            Pump.default_config with
            Pump.duration;
            pace = 8.;
            latency_seed = seeds.dataplane + 1;
          }
        in
        let sim_predicted =
          (Mcss_sim.Simulator.run p a0
             { Mcss_sim.Simulator.default_config with duration })
            .Mcss_sim.Simulator.totals
            .Mcss_report.Delivery.delivered
        in
        let pump =
          Domain.spawn (fun () -> Pump.run ~config:churn_config cluster p a0)
        in
        Unix.sleepf 0.3;
        let rehome_stats = Cluster.apply_plan cluster a1 in
        Unix.sleepf 0.5;
        let victim =
          match
            List.find_opt
              (fun (id, _) -> Cluster.pairs_on cluster id > 0)
              (Cluster.live cluster)
          with
          | Some (id, _) -> id
          | None -> failwith "dataplane bench: no broker with pairs"
        in
        ignore (Cluster.kill cluster victim);
        let churn = Domain.join pump in
        let unique_total = Array.fold_left ( + ) 0 churn.Pump.unique in
        let undelivered = max 0 (sim_predicted - unique_total) in
        let dropped = churn.Pump.totals.Mcss_report.Delivery.dropped in
        Printf.printf
          "churn: re-home moved +%d/-%d pairs mid-run; killed broker %d; \
           drop window %d undelivered + %d dropped of %d predicted copies\n"
          rehome_stats.Cluster.pairs_added rehome_stats.Cluster.pairs_removed
          victim undelivered dropped sim_predicted;
        (* Replan around the corpse and converge the fleet onto it. *)
        let victim_plan_vm =
          match
            List.find_opt (fun (_, b) -> b = victim) (Cluster.assignment cluster)
          with
          | Some (pv, _) -> pv
          | None -> victim
        in
        let plan =
          { Reprovision.problem = p; selection = r.Solver.selection;
            allocation = a1 }
        in
        let plan', rstats = Recovery.replan plan ~failed:[ victim_plan_vm ] in
        let recover_stats =
          Cluster.apply_plan cluster plan'.Reprovision.allocation
        in
        let post_config =
          {
            Pump.default_config with
            Pump.duration;
            latency_seed = seeds.dataplane + 2;
            tolerance = Some 0.;
          }
        in
        let post = Pump.run ~config:post_config cluster p plan'.Reprovision.allocation in
        let post_rc =
          match post.Pump.reconcile with
          | Some rc -> rc
          | None -> failwith "dataplane bench: reconciliation did not run"
        in
        Printf.printf
          "recovery: %d pairs re-homed by replan, %d broker(s) spawned; \
           post-recovery reconcile %s (max deviation %.4f)\n"
          rstats.Recovery.pairs_rehomed recover_stats.Cluster.spawned
          (if post_rc.Reconcile.pass then "PASS" else "FAIL")
          post_rc.Reconcile.max_deviation;
        let json_path = Filename.concat out_dir "BENCH_dataplane.json" in
        let oc = open_out json_path in
        Printf.fprintf oc
          "{\n\
          \  \"scenario\": \"dataplane_live\",\n\
          \  \"runtime\": %s,\n\
          \  \"version\": %S,\n\
          \  \"trace_seed\": %d,\n\
          \  \"trace\": \"spotify\",\n\
          \  \"scale\": %g,\n\
          \  \"message_bytes\": %d,\n\
          \  \"fleet\": { \"brokers\": %d, \"pairs\": %d },\n\
          \  \"steady\": { \"duration_horizons\": %g, \"events\": %d,\n\
          \    \"copies_delivered\": %d, \"delivered_per_s\": %.0f,\n\
          \    \"latency_ms\": { \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f },\n\
          \    \"dropped\": %d,\n\
          \    \"reconcile\": { \"max_deviation\": %.6f, \"pass\": %b } },\n\
          \  \"churn\": { \"duration_horizons\": %g, \"pace_s_per_horizon\": %g,\n\
          \    \"rehome\": { \"pairs_added\": %d, \"pairs_removed\": %d },\n\
          \    \"killed_broker\": %d,\n\
          \    \"drop_window\": { \"undelivered_copies\": %d, \"dropped_copies\": %d,\n\
          \      \"predicted_copies\": %d },\n\
          \    \"recovery\": { \"pairs_rehomed\": %d, \"brokers_spawned\": %d },\n\
          \    \"post_recovery_reconcile\": { \"max_deviation\": %.6f, \"pass\": %b } }\n\
           }\n"
          (runtime_json ())
          (Mcss_serve.Build_info.to_string ())
          seeds.trace_seed dp_scale message_bytes
          (Array.length vms) (Workload.num_pairs w) duration
          steady.Pump.publisher.Mcss_dataplane.Publisher.events delivered per_s
          p50 p95 p99 steady.Pump.totals.Mcss_report.Delivery.dropped
          steady_rc.Reconcile.max_deviation steady_rc.Reconcile.pass duration
          churn_config.Pump.pace rehome_stats.Cluster.pairs_added
          rehome_stats.Cluster.pairs_removed victim undelivered dropped
          sim_predicted rstats.Recovery.pairs_rehomed
          recover_stats.Cluster.spawned post_rc.Reconcile.max_deviation
          post_rc.Reconcile.pass;
        close_out oc;
        Printf.printf "wrote %s\n" json_path
      end)

(* Elastic capacity planning: a seeded diurnal day over the Spotify
   trace, replayed through the week simulator under the static
   (peak-envelope) baseline, reactive hysteresis, and finite-horizon
   lookahead — every intermediate plan verifier-clean, costs under
   reservation pricing. BENCH_elastic.json: per-policy week cost,
   savings vs static, oracle gap, scaling actions, replans, p95 slice
   apply latency. *)
let elastic_bench ~seeds ~spotify ~spotify_scale ~out_dir =
  section_header "elastic"
    "autoscaling policies vs the static peak plan (Spotify, diurnal day)";
  let module Rate_curve = Mcss_elastic.Rate_curve in
  let module Scenario = Mcss_elastic.Scenario in
  let module Week_sim = Mcss_elastic.Week_sim in
  let instance = Instance.c3_large in
  let model = Cost_model.ec2_2014 ~instance () in
  let capacity_events = bc_events ~scale:spotify_scale instance in
  let scenario =
    {
      Scenario.slices = 24;
      slice_hours = 1.;
      seed = seeds.elastic;
      coverage = 1.;
      curve =
        [
          Rate_curve.Diurnal
            { amplitude = 0.4; period_hours = 24.; phase_hours = 0. };
        ];
    }
  in
  let result, elapsed =
    timed (fun () ->
        Week_sim.run ~capacity_events ~workload:spotify ~tau:100. ~model
          scenario)
  in
  let runs = result.Week_sim.static :: result.Week_sim.policies in
  let static_usd = result.Week_sim.static.Week_sim.total_usd in
  let table =
    Table.create
      [
        ("policy", Table.Left);
        ("week cost", Table.Right);
        ("vs static", Table.Right);
        ("actions", Table.Right);
        ("replans", Table.Right);
        ("apply p95 ms", Table.Right);
        ("verifier", Table.Left);
      ]
  in
  List.iter
    (fun (r : Week_sim.policy_run) ->
      Table.add_row table
        [
          r.Week_sim.policy;
          Table.cell_usd r.Week_sim.total_usd;
          (if r.Week_sim.policy = "static" then "-"
           else
             Table.cell_pct
               (Table.pct_change ~baseline:static_usd r.Week_sim.total_usd));
          string_of_int r.Week_sim.scaling_actions;
          string_of_int r.Week_sim.reprovisions;
          Table.cell_float ~decimals:3 (r.Week_sim.apply_p95_seconds *. 1e3);
          (if r.Week_sim.clean then "CLEAN" else "VIOLATIONS");
        ])
    runs;
  Table.print table;
  let find name =
    List.find (fun (r : Week_sim.policy_run) -> r.Week_sim.policy = name) runs
  in
  let hysteresis = find "hysteresis" and lookahead = find "lookahead" in
  let all_clean = List.for_all (fun (r : Week_sim.policy_run) -> r.Week_sim.clean) runs in
  let beats (r : Week_sim.policy_run) = r.Week_sim.total_usd < static_usd in
  Printf.printf
    "oracle (knows the whole curve): %s, %s vs static; %d slices in %.1f s\n"
    (Table.cell_usd result.Week_sim.oracle_usd)
    (Table.cell_pct
       (Table.pct_change ~baseline:static_usd result.Week_sim.oracle_usd))
    scenario.Scenario.slices elapsed;
  if not (beats hysteresis && beats lookahead) then
    Printf.printf
      "WARNING: an adaptive policy failed to beat the static plan\n";
  if not all_clean then
    Printf.printf "WARNING: an intermediate plan failed verification\n";
  let rec mkdir_p d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  Week_sim.write_ledger (Filename.concat out_dir "elastic_ledger.json") result;
  let json_path = Filename.concat out_dir "BENCH_elastic.json" in
  let oc = open_out json_path in
  let policy_json (r : Week_sim.policy_run) =
    Printf.sprintf
      "{ \"week_usd\": %.6f, \"vm_usd\": %.6f, \"bandwidth_usd\": %.6f,\n\
      \    \"scaling_usd\": %.6f, \"savings_vs_static_pct\": %.4f,\n\
      \    \"scaling_actions\": %d, \"reprovisions\": %d,\n\
      \    \"apply_p95_s\": %.6f, \"clean\": %b }"
      r.Week_sim.total_usd r.Week_sim.vm_usd r.Week_sim.bandwidth_usd
      r.Week_sim.scaling_usd
      (Table.pct_change ~baseline:static_usd r.Week_sim.total_usd)
      r.Week_sim.scaling_actions r.Week_sim.reprovisions
      r.Week_sim.apply_p95_seconds r.Week_sim.clean
  in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"elastic\",\n\
    \  \"runtime\": %s,\n\
    \  \"version\": %S,\n\
    \  \"trace_seed\": %d,\n\
    \  \"trace\": \"spotify\",\n\
    \  \"scale\": %g,\n\
    \  \"tau\": 100,\n\
    \  \"curve\": \"diurnal amplitude 0.4 period 24h\",\n\
    \  \"slices\": %d,\n\
    \  \"slice_hours\": %g,\n\
    \  \"scenario_seed\": %d,\n\
    \  \"static_fleet\": %d,\n\
    \  \"static\": %s,\n\
    \  \"hysteresis\": %s,\n\
    \  \"lookahead\": %s,\n\
    \  \"oracle\": { \"week_usd\": %.6f, \"savings_vs_static_pct\": %.4f },\n\
    \  \"adaptive_beats_static\": %b,\n\
    \  \"all_plans_clean\": %b,\n\
    \  \"run_s\": %.3f\n\
     }\n"
    (runtime_json ())
    (Mcss_serve.Build_info.to_string ())
    seeds.trace_seed spotify_scale scenario.Scenario.slices
    scenario.Scenario.slice_hours scenario.Scenario.seed
    result.Week_sim.static_fleet
    (policy_json result.Week_sim.static)
    (policy_json hysteresis) (policy_json lookahead)
    result.Week_sim.oracle_usd
    (Table.pct_change ~baseline:static_usd result.Week_sim.oracle_usd)
    (beats hysteresis && beats lookahead)
    all_clean elapsed;
  close_out oc;
  Printf.printf "wrote %s\n" json_path

(* Partition nemesis against the live replicated cluster: epochs,
   quorum acks, and automatic fenced failover under a seeded schedule
   of partitions and a stale-leader revival. The invariant booleans in
   BENCH_partition.json are hard gates: the section exits 1 when any of
   them is false, so a CI run cannot silently ship a failover
   regression. *)
let partition_bench ~seeds ~out_dir =
  let module Nemesis = Mcss_serve.Nemesis in
  Printf.printf "\n=== Partition nemesis: fenced failover under partitions ===\n%!";
  let t0 = Unix.gettimeofday () in
  let r =
    Nemesis.run
      {
        Nemesis.default_config with
        Nemesis.seed = seeds.partition;
        log = (fun s -> Printf.printf "  %s\n%!" s);
      }
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "updates: %d sent, %d acked, %d refused; %d auto promotions, %d fenced \
     demotions, %d divergent tails cut\n"
    r.Nemesis.r_updates_sent r.Nemesis.r_updates_acked r.Nemesis.r_updates_unacked
    r.Nemesis.r_auto_promotions r.Nemesis.r_fenced_demotions
    r.Nemesis.r_divergent_tails;
  Printf.printf "recovery after leader loss: p50 %.0f ms, p95 %.0f ms\n"
    r.Nemesis.r_recovery_p50_ms r.Nemesis.r_recovery_p95_ms;
  Printf.printf
    "invariants: single_writer=%b no_acked_lost=%b journals_converged=%b \
     plans_converged=%b verify_clean=%b\n"
    r.Nemesis.r_single_writer_per_epoch r.Nemesis.r_no_acked_update_lost
    r.Nemesis.r_journals_converged r.Nemesis.r_plan_digests_converged
    r.Nemesis.r_journals_verify_clean;
  let rec mkdir_p d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let json_path = Filename.concat out_dir "BENCH_partition.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"partition\",\n\
    \  \"runtime\": %s,\n\
    \  \"version\": %S,\n\
    \  \"run_s\": %.3f,\n\
    \  \"report\": %s\n\
     }\n"
    (runtime_json ())
    (Mcss_serve.Build_info.to_string ())
    elapsed
    (Mcss_serve.Json.to_string (Nemesis.report_to_json r));
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if not (Nemesis.passed r) then begin
    Printf.printf "FAILED: a failover invariant did not hold\n";
    exit 1
  end

(* Full-scale solves: the flat-array core and domain-parallel Stage-1
   across trace scales and domain counts, up to the published Spotify
   dimensions (scale 1.0: ~1.1 M topics, ~4.9 M subscribers). Traces
   arrive through the streaming generator, solves run at each domain
   count, and the per-scale digest equality is a hard gate: any domain
   count producing a different plan than --domains 1 exits 1.
   BENCH_scale.json: per-(scale, domains) wall time, pairs/sec, plan
   digest, per-phase GC words, and the process-wide peak RSS. *)
let scale_bench ~seeds ~domains:domain_counts ~max_scale ~out_dir =
  section_header "scale"
    "full-scale solves (flat core, domain-parallel Stage-1, Spotify, tau=100)";
  let scales =
    List.filter (fun s -> s <= max_scale +. 1e-12) [ 0.02; 0.1; 0.5; 1.0 ]
  in
  let domain_counts = if domain_counts = [] then [ 1; 2; 4 ] else domain_counts in
  let instance = Instance.c3_large in
  let tau = 100. in
  let table =
    Table.create
      [
        ("scale", Table.Right); ("domains", Table.Right); ("pairs", Table.Right);
        ("gen s", Table.Right); ("solve s", Table.Right);
        ("pairs/s", Table.Right); ("VMs", Table.Right); ("cost", Table.Right);
        ("digest", Table.Left);
      ]
  in
  let mismatches = ref 0 in
  let rows =
    List.concat_map
      (fun scale ->
        let w, gen_s =
          timed (fun () -> Front.generate ~seed:seeds.spotify `Spotify ~scale)
        in
        let _model, p = Front.problem_of ~w ~tau ~instance ~scale ~bc_events:None in
        let pairs = Workload.num_pairs w in
        let reference = ref "" in
        List.map
          (fun domains ->
            Mcss_obs.Gc_phase.reset ();
            let r, solve_s = timed (fun () -> Solver.solve ~domains p) in
            let gc_phases = Mcss_obs.Gc_phase.to_json_object () in
            let digest =
              Digest.to_hex
                (Digest.string (Mcss_core.Plan_io.to_string r.Solver.allocation))
            in
            if !reference = "" then reference := digest;
            let equal = String.equal digest !reference in
            if not equal then incr mismatches;
            let pairs_per_s = float_of_int pairs /. solve_s in
            Table.add_row table
              [
                Printf.sprintf "%g" scale;
                string_of_int domains;
                string_of_int pairs;
                Table.cell_float ~decimals:2 gen_s;
                Table.cell_float ~decimals:2 solve_s;
                Printf.sprintf "%.3e" pairs_per_s;
                string_of_int r.Solver.num_vms;
                Table.cell_usd r.Solver.cost;
                (if equal then String.sub digest 0 12
                 else String.sub digest 0 12 ^ " MISMATCH");
              ];
            Printf.sprintf
              "    {\"scale\": %g, \"domains\": %d, \"pairs\": %d, \
               \"gen_s\": %.3f, \"solve_s\": %.3f, \"pairs_per_s\": %.1f, \
               \"vms\": %d, \"cost_usd\": %.2f, \"plan_digest\": %S, \
               \"digest_matches_domains1\": %b, \"gc_phases\": %s}"
              scale domains pairs gen_s solve_s pairs_per_s r.Solver.num_vms
              r.Solver.cost digest equal gc_phases)
          domain_counts)
      scales
  in
  Table.print table;
  let rec mkdir_p d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p out_dir;
  let json_path = Filename.concat out_dir "BENCH_scale.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"scale\",\n\
    \  \"trace\": \"spotify\",\n\
    \  \"tau\": %g,\n\
    \  \"instance\": %S,\n\
    \  \"trace_seed\": %d,\n\
    \  \"runtime\": %s,\n\
    \  \"digests_converged\": %b,\n\
    \  \"runs\": [\n%s\n  ]\n\
     }\n"
    tau instance.Instance.name seeds.trace_seed (runtime_json ())
    (!mismatches = 0)
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if !mismatches > 0 then begin
    Printf.printf
      "FAILED: %d run(s) diverged from the --domains 1 plan digest\n" !mismatches;
    exit 1
  end

let all_sections =
  [
    "fig1"; "fig2a"; "fig2b"; "fig3a"; "fig3b"; "fig4"; "fig5"; "fig6"; "fig7";
    "fig8-12"; "summary"; "ablate-stage1"; "ablate-stage2"; "ablate-dynamic";
    "ablate-failures"; "ablate-scaling"; "ablate-skew"; "ablate-budget"; "latency";
    "resilience"; "obs"; "serve"; "serve-faults"; "serve-cluster"; "engine";
    "dataplane"; "elastic"; "partition"; "scale"; "micro";
  ]

let run_bench sections spotify_scale twitter_scale trace_seed domains max_scale
    out_dir =
  let enabled s = sections = [] || List.mem s sections in
  let seeds = derive_seeds trace_seed in
  Printf.printf
    "MCSS experiment harness — Spotify scale %g, Twitter scale %g, trace seed %d\n"
    spotify_scale twitter_scale seeds.trace_seed;
  (* [shared_workload] memoises on (trace, scale, seed) through lib/front,
     so every section — and the scale sweep below when its grid touches
     the same tuple — reuses one materialisation instead of regenerating
     the trace per section. *)
  let spotify =
    lazy (Front.shared_workload ~seed:seeds.spotify `Spotify ~scale:spotify_scale)
  in
  let twitter =
    lazy (Front.shared_workload ~seed:seeds.twitter `Twitter ~scale:twitter_scale)
  in
  let matrices = Hashtbl.create 4 in
  let matrix_for trace_name w scale instance =
    let key = (trace_name, instance.Instance.name) in
    match Hashtbl.find_opt matrices key with
    | Some m -> m
    | None ->
        let m = solve_matrix ~w:(Lazy.force w) ~scale ~instance in
        Hashtbl.add matrices key m;
        m
  in
  if enabled "fig1" then fig1 ();
  if enabled "fig2a" then
    print_cost_figure ~fig:"fig2a" ~title:"Spotify, BC=64 mbps (c3.large)"
      (matrix_for "spotify" spotify spotify_scale Instance.c3_large);
  if enabled "fig2b" then
    print_cost_figure ~fig:"fig2b" ~title:"Spotify, BC=128 mbps (c3.xlarge)"
      (matrix_for "spotify" spotify spotify_scale Instance.c3_xlarge);
  if enabled "fig3a" then
    print_cost_figure ~fig:"fig3a" ~title:"Twitter, BC=64 mbps (c3.large)"
      (matrix_for "twitter" twitter twitter_scale Instance.c3_large);
  if enabled "fig3b" then
    print_cost_figure ~fig:"fig3b" ~title:"Twitter, BC=128 mbps (c3.xlarge)"
      (matrix_for "twitter" twitter twitter_scale Instance.c3_xlarge);
  if enabled "fig4" then
    print_stage1_runtime_figure ~fig:"fig4" ~title:"Stage-1 runtime, Spotify"
      (matrix_for "spotify" spotify spotify_scale Instance.c3_large);
  if enabled "fig5" then
    print_stage1_runtime_figure ~fig:"fig5" ~title:"Stage-1 runtime, Twitter"
      (matrix_for "twitter" twitter twitter_scale Instance.c3_large);
  if enabled "fig6" then
    print_stage2_runtime_figure ~fig:"fig6" ~title:"Stage-2 runtime, Spotify (c3.large)"
      (matrix_for "spotify" spotify spotify_scale Instance.c3_large);
  if enabled "fig7" then
    print_stage2_runtime_figure ~fig:"fig7" ~title:"Stage-2 runtime, Twitter (c3.large)"
      (matrix_for "twitter" twitter twitter_scale Instance.c3_large);
  if enabled "fig8-12" then trace_analysis ~out_dir (Lazy.force twitter);
  if enabled "summary" then
    summary ~spotify:(Lazy.force spotify) ~twitter:(Lazy.force twitter) ~spotify_scale
      ~twitter_scale;
  if enabled "ablate-stage1" then begin
    ablate_stage1 ~title:"Stage-1 selector ablation (Spotify, tau=100)"
      ~w:(Lazy.force spotify) ~scale:spotify_scale;
    ablate_stage1 ~title:"Stage-1 selector ablation (Twitter, tau=100)"
      ~w:(Lazy.force twitter) ~scale:twitter_scale
  end;
  if enabled "ablate-stage2" then begin
    ablate_stage2 ~title:"Stage-2 packer ablation (Spotify, tau=100)"
      ~w:(Lazy.force spotify) ~scale:spotify_scale;
    ablate_stage2 ~title:"Stage-2 packer ablation (Twitter, tau=100)"
      ~w:(Lazy.force twitter) ~scale:twitter_scale
  end;
  if enabled "ablate-dynamic" then
    ablate_dynamic ~seeds ~w:(Lazy.force spotify);
  if enabled "ablate-failures" then ablate_failures ~w:(Lazy.force twitter) ~scale:twitter_scale;
  if enabled "ablate-scaling" then ablate_scaling ~seeds ();
  if enabled "ablate-skew" then ablate_skew ~seeds ~scale:spotify_scale;
  if enabled "ablate-budget" then ablate_budget ~w:(Lazy.force spotify) ~scale:spotify_scale;
  if enabled "latency" then latency ~seeds ~w:(Lazy.force spotify) ~scale:spotify_scale;
  if enabled "resilience" then
    resilience ~seeds ~w:(Lazy.force spotify) ~scale:spotify_scale ~out_dir;
  if enabled "obs" then
    obs_overhead ~seeds ~spotify:(Lazy.force spotify) ~twitter:(Lazy.force twitter)
      ~spotify_scale ~twitter_scale ~out_dir;
  if enabled "serve" then
    serve_bench ~seeds ~spotify:(Lazy.force spotify) ~spotify_scale ~out_dir;
  if enabled "serve-faults" then
    serve_faults_bench ~seeds ~spotify:(Lazy.force spotify) ~spotify_scale ~out_dir;
  if enabled "serve-cluster" then
    serve_cluster_bench ~seeds ~spotify:(Lazy.force spotify) ~spotify_scale ~out_dir;
  if enabled "engine" then
    engine_bench ~seeds ~spotify:(Lazy.force spotify) ~spotify_scale ~out_dir;
  if enabled "dataplane" then dataplane_bench ~seeds ~spotify_scale ~out_dir;
  if enabled "elastic" then
    elastic_bench ~seeds ~spotify:(Lazy.force spotify) ~spotify_scale ~out_dir;
  if enabled "partition" then partition_bench ~seeds ~out_dir;
  if enabled "scale" then scale_bench ~seeds ~domains ~max_scale ~out_dir;
  if enabled "micro" then micro ~seeds ();
  Printf.printf "\ndone. figure data series in %s/\n" out_dir

open Cmdliner

let sections_arg =
  let doc =
    Printf.sprintf "Sections to run (repeatable). Available: %s. Default: all."
      (String.concat ", " all_sections)
  in
  Arg.(value & opt_all string [] & info [ "s"; "section" ] ~docv:"SECTION" ~doc)

let spotify_scale_arg =
  let doc = "Spotify trace scale relative to the published 1.1M-topic trace." in
  Arg.(value & opt float 0.02 & info [ "spotify-scale" ] ~docv:"F" ~doc)

let twitter_scale_arg =
  let doc = "Twitter trace scale relative to the published 8M-topic trace." in
  Arg.(value & opt float 0.002 & info [ "twitter-scale" ] ~docv:"F" ~doc)

let trace_seed_arg =
  let doc =
    "Master seed for every synthetic trace and seeded RNG in the harness; \
     per-section seeds derive from it by fixed offsets, so one number \
     reproduces the whole run (including BENCH_*.json)."
  in
  Arg.(value & opt int default_trace_seed & info [ "trace-seed" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Domain count for the $(b,scale) section (repeatable). Default: 1, 2, 4. \
     Every count must reproduce the --domains 1 plan digest bit-for-bit."
  in
  Arg.(value & opt_all int [] & info [ "domains" ] ~docv:"N" ~doc)

let max_scale_arg =
  let doc =
    "Largest Spotify scale the $(b,scale) section sweeps; 1.0 runs the \
     published trace dimensions (~1.1M topics, ~4.9M subscribers)."
  in
  Arg.(value & opt float 0.1 & info [ "max-scale" ] ~docv:"F" ~doc)

let out_dir_arg =
  let doc = "Directory for the figure data series (.dat files)." in
  Arg.(value & opt string "bench_out" & info [ "o"; "out-dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "Regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "mcss-bench" ~doc)
    Term.(
      const run_bench $ sections_arg $ spotify_scale_arg $ twitter_scale_arg
      $ trace_seed_arg $ domains_arg $ max_scale_arg $ out_dir_arg)

let () = exit (Cmd.eval cmd)
