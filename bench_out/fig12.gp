set terminal pngcairo size 800,600
set output "fig12.png"
set title "mean SC vs #followings"
set xlabel "x"
set ylabel "mean SC %"
set logscale x
set logscale y
set key outside
plot "fig12_sc_by_followings.dat" using 1:2 with points title "mean SC vs #followings"
