set terminal pngcairo size 800,600
set output "fig9.png"
set title "CCDF of event rate"
set xlabel "x"
set ylabel "CCDF"
set logscale x
set logscale y
set key outside
plot "fig9_ccdf_rate.dat" using 1:2 with points title "CCDF of event rate"
