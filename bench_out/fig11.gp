set terminal pngcairo size 800,600
set output "fig11.png"
set title "CCDF of subscription cardinality"
set xlabel "x"
set ylabel "CCDF"
set logscale x
set logscale y
set key outside
plot "fig11_ccdf_sc.dat" using 1:2 with points title "CCDF of subscription cardinality"
