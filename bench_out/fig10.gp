set terminal pngcairo size 800,600
set output "fig10.png"
set title "mean event rate vs #followers"
set xlabel "x"
set ylabel "mean rate"
set logscale x
set logscale y
set key outside
plot "fig10_rate_by_followers.dat" using 1:2 with points title "mean event rate vs #followers"
