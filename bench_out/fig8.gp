set terminal pngcairo size 800,600
set output "fig8.png"
set title "CCDF of #followers / #followings"
set xlabel "count"
set ylabel "CCDF"
set logscale x
set logscale y
set key outside
plot "fig8_ccdf_followers.dat" using 1:2 with lines title "#followers", "fig8_ccdf_followings.dat" using 1:2 with lines title "#followings"
