(* The mcss command-line tool: generate traces, solve MCSS instances,
   compute lower bounds, analyse traces, and replay allocations through
   the simulator.

     mcss generate --trace twitter --scale 0.002 -o twitter.wl
     mcss solve -w twitter.wl --tau 100 --ladder
     mcss lower-bound -w twitter.wl --tau 100
     mcss analyze -w twitter.wl -o analysis/
     mcss simulate -w twitter.wl --tau 100 --poisson 7 *)

module Workload = Mcss_workload.Workload
module Stats = Mcss_workload.Stats
module Wio = Mcss_workload.Wio
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier
module Lower_bound = Mcss_core.Lower_bound
module Simulator = Mcss_sim.Simulator
module Table = Mcss_report.Table
module Series = Mcss_report.Series
module Registry = Mcss_obs.Registry
module Span = Mcss_obs.Span
module Sink = Mcss_obs.Sink
module Failure_model = Mcss_resilience.Failure_model
module Orchestrator = Mcss_resilience.Orchestrator
module Redundancy = Mcss_resilience.Redundancy
module Sla = Mcss_resilience.Sla
module Serve_json = Mcss_serve.Json
module Serve_protocol = Mcss_serve.Protocol
module Serve_service = Mcss_serve.Service
module Serve_server = Mcss_serve.Server
module Serve_client = Mcss_serve.Client
module Serve_journal = Mcss_serve.Journal
module Serve_breaker = Mcss_serve.Breaker
module Serve_retry = Mcss_serve.Retry
module Serve_replication = Mcss_serve.Replication
module Serve_router = Mcss_serve.Router
module Serve_nemesis = Mcss_serve.Nemesis
module Build_info = Mcss_serve.Build_info
module Front = Mcss_front.Front
module Engine = Mcss_engine.Engine
module Reservation = Mcss_pricing.Reservation
module Scenario = Mcss_elastic.Scenario
module Autoscaler = Mcss_elastic.Autoscaler
module Week_sim = Mcss_elastic.Week_sim
module Delta_io = Mcss_engine.Delta_io
module Dp_cluster = Mcss_dataplane.Cluster
module Dp_pump = Mcss_dataplane.Pump
module Dp_control = Mcss_dataplane.Control
module Dp_ledger = Mcss_dataplane.Ledger
module Dp_reconcile = Mcss_dataplane.Reconcile

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let setup_logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* ----- shared arguments ----- *)

let workload_file =
  let doc = "Workload file (mcss-workload format, see Wio)." in
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Synthetic trace family: $(b,spotify) or $(b,twitter)." in
  Arg.(value & opt (some (enum [ ("spotify", `Spotify); ("twitter", `Twitter) ])) None
       & info [ "trace" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Trace scale relative to the published full-size trace." in
  Arg.(value & opt float 0.002 & info [ "scale" ] ~docv:"F" ~doc)

let seed_arg =
  let doc = "Generator seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Worker domains for Stage-1 selection and group construction. \
     Deterministic: any value yields a bit-identical plan."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let tau_arg =
  let doc = "Satisfaction threshold: events per horizon per subscriber." in
  Arg.(value & opt float 100. & info [ "tau" ] ~docv:"F" ~doc)

let instance_arg =
  let doc =
    Printf.sprintf "EC2 instance type (%s)."
      (String.concat ", " (List.map (fun i -> i.Instance.name) Instance.catalogue))
  in
  Arg.(value & opt string "c3.large" & info [ "instance" ] ~docv:"NAME" ~doc)

let bc_events_arg =
  let doc =
    "Per-VM capacity in events per horizon. Default: the utilisation-consistent \
     5e7 x scale x (mbps/64) used by the benchmarks."
  in
  Arg.(value & opt (some float) None & info [ "bc-events" ] ~docv:"F" ~doc)

let metrics_out_arg =
  let doc =
    "Record solver/simulator metrics and span timings during the run and \
     write them to $(docv) as JSON lines (see the obs library)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* An enabled registry only when someone will read it; [flush] writes the
   JSONL snapshot (and logs the path) after the command's work is done. *)
let obs_of metrics_out =
  match metrics_out with None -> Registry.noop | Some _ -> Registry.create ()

let flush_metrics obs metrics_out =
  match metrics_out with
  | None -> ()
  | Some path ->
      Sink.write_jsonl obs ~path;
      Printf.printf "metrics written to %s\n" path

let generate_workload trace scale seed = Front.generate ?seed trace ~scale

(* Fail-fast file access, shared by every subcommand: a missing or
   corrupt workload/plan file is one line on stderr and exit 1, never a
   backtrace and never silently different behaviour per subcommand. *)
let die fmt = Printf.ksprintf (fun m -> prerr_endline ("mcss: " ^ m); exit 1) fmt

let require_scale scale =
  match Front.validate_scale scale with Ok s -> s | Error e -> die "%s" e

let require_domains domains =
  match Front.validate_domains domains with Ok d -> d | Error e -> die "%s" e

let load_workload file trace scale seed =
  (match (file, trace) with
  | Some path, _ -> Logs.info (fun m -> m "loading workload from %s" path)
  | None, Some _ ->
      Logs.info (fun m -> m "generating synthetic trace at scale %g" scale)
  | None, None -> ());
  Front.load_workload ~file ~trace ~scale ~seed

let require_workload file trace scale seed =
  match load_workload file trace scale seed with Ok w -> w | Error e -> die "%s" e

let require_plan ~workload path =
  match Front.load_plan ~workload path with Ok plan -> plan | Error e -> die "%s" e

let require_deltas path =
  match Delta_io.load path with
  | ds -> ds
  | exception Sys_error msg -> die "%s" msg
  | exception Delta_io.Parse_error msg -> die "%s: %s" path msg

let resolve_instance = Front.resolve_instance
let problem_of = Front.problem_of

(* ----- generate ----- *)

let generate_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output workload file.")
  in
  let run () trace scale seed out =
    match trace with
    | None -> `Error (false, "--trace is required")
    | Some trace ->
        let scale = require_scale scale in
        let w = generate_workload trace scale seed in
        Wio.save w out;
        Format.printf "wrote %s: %a@." out Workload.pp_summary w;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic Spotify- or Twitter-like trace")
    Term.(ret (const run $ setup_logs_term $ trace_arg $ scale_arg $ seed_arg $ out))

(* ----- solve ----- *)

let solve_cmd =
  let config_arg =
    let doc =
      "Solver configuration by ladder name (default: the full \
       \"(e) +cost-decision\")."
    in
    Arg.(value & opt string "(e) +cost-decision" & info [ "config" ] ~docv:"NAME" ~doc)
  in
  let ladder_arg =
    Arg.(value & flag & info [ "ladder" ] ~doc:"Run the whole optimisation ladder.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip the solution verifier.")
  in
  let save_plan_arg =
    Arg.(value & opt (some string) None & info [ "save-plan" ] ~docv:"FILE"
           ~doc:"Write the last configuration's plan to this file.")
  in
  let detail_arg =
    Arg.(value & flag & info [ "detail" ]
           ~doc:"Print fleet diagnostics (utilisation spread, topic fragmentation).")
  in
  let run () file trace scale seed domains tau instance_name bc_events config_name
      ladder no_verify save_plan detail metrics_out =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let scale = require_scale scale in
    let domains = require_domains domains in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let obs = obs_of metrics_out in
    let model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    Format.printf "%a@." Workload.pp_summary w;
    Format.printf "model: %a; BC = %g events/horizon@." Cost_model.pp model
      p.Problem.capacity;
    (match Problem.infeasible_subscribers p with
    | [] -> ()
    | bad ->
        Logs.warn (fun m ->
            m "%d subscriber(s) cannot be satisfied under this capacity" (List.length bad)));
    let configs = Front.configs ~ladder config_name in
    let table =
      Table.create
        [
          ("configuration", Table.Left);
          ("VMs", Table.Right);
          ("BW GB", Table.Right);
          ("cost", Table.Right);
          ("stage1 s", Table.Right);
          ("stage2 s", Table.Right);
          ("valid", Table.Left);
        ]
    in
    List.iter
      (fun (name, config) ->
        let r = Solver.solve ~obs ~config ~domains p in
        let valid =
          if no_verify then "-"
          else if
            Verifier.is_valid (Verifier.verify p r.Solver.selection r.Solver.allocation)
          then "yes"
          else "NO"
        in
        Table.add_row table
          [
            name;
            string_of_int r.Solver.num_vms;
            Table.cell_float ~decimals:2 (Cost_model.gb_of_events model r.Solver.bandwidth);
            Table.cell_usd r.Solver.cost;
            Table.cell_float ~decimals:3 r.Solver.stage1_seconds;
            Table.cell_float ~decimals:3 r.Solver.stage2_seconds;
            valid;
          ])
      configs;
    Table.print table;
    let lb = Lower_bound.compute p in
    Printf.printf "lower bound: %d VMs, %.2f GB, %s\n" lb.Lower_bound.vms
      (Cost_model.gb_of_events model lb.Lower_bound.bandwidth)
      (Table.cell_usd lb.Lower_bound.cost);
    (match save_plan with
    | None -> ()
    | Some path ->
        let _, config = List.nth configs (List.length configs - 1) in
        let r = Solver.solve ~config ~domains p in
        Mcss_core.Plan_io.save r.Solver.allocation path;
        Printf.printf "plan written to %s\n" path);
    if detail then begin
      let _, config = List.nth configs (List.length configs - 1) in
      let r = Solver.solve ~config ~domains p in
      Format.printf "@[<hov>%a@]@."
        Mcss_core.Solution_stats.pp
        (Mcss_core.Solution_stats.compute p r.Solver.allocation);
      let rs =
        Mcss_core.Right_size.solve r.Solver.allocation ~baseline:model.Cost_model.instance
          ~catalogue:Instance.catalogue ~horizon_hours:model.Cost_model.horizon_hours
          ~term:model.Cost_model.term
      in
      Format.printf "right-sizing %a@." Mcss_core.Right_size.pp rs
    end;
    flush_metrics obs metrics_out;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve an MCSS instance")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ domains_arg $ tau_arg $ instance_arg $ bc_events_arg $ config_arg
        $ ladder_arg $ no_verify_arg $ save_plan_arg $ detail_arg $ metrics_out_arg))

(* ----- lower-bound ----- *)

let lower_bound_cmd =
  let run () file trace scale seed tau instance_name bc_events =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let lb = Lower_bound.compute p in
    Printf.printf "bandwidth >= %.2f GB\nVMs >= %d\ncost >= %s\n"
      (Cost_model.gb_of_events model lb.Lower_bound.bandwidth)
      lb.Lower_bound.vms
      (Table.cell_usd lb.Lower_bound.cost);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Theorem A.1 cost lower bound for an instance")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ tau_arg $ instance_arg $ bc_events_arg))

(* ----- analyze ----- *)

let analyze_cmd =
  let out_dir =
    Arg.(value & opt (some string) None & info [ "o"; "out-dir" ] ~docv:"DIR"
           ~doc:"Also dump CCDF/series data files there.")
  in
  let run () file trace scale seed out_dir =
    let w = require_workload file trace scale seed in
    Format.printf "%a@." Workload.pp_summary w;
    let rates = Stats.summarize (Workload.event_rates w) in
    Printf.printf "event rate:  mean %.1f  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n"
      rates.Stats.mean rates.Stats.p50 rates.Stats.p90 rates.Stats.p99 rates.Stats.max;
    let followers = Array.map float_of_int (Stats.follower_counts w) in
    let f = Stats.summarize followers in
    Printf.printf "#followers:  mean %.1f  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n"
      f.Stats.mean f.Stats.p50 f.Stats.p90 f.Stats.p99 f.Stats.max;
    let interests = Array.map float_of_int (Stats.interest_counts w) in
    let i = Stats.summarize interests in
    Printf.printf "#followings: mean %.1f  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n"
      i.Stats.mean i.Stats.p50 i.Stats.p90 i.Stats.p99 i.Stats.max;
    let sc = Stats.summarize (Stats.subscription_cardinalities w) in
    Printf.printf "SC%%:         mean %.4f  p50 %.4f  p99 %.4f  max %.4f\n" sc.Stats.mean
      sc.Stats.p50 sc.Stats.p99 sc.Stats.max;
    let rate_hist = Mcss_workload.Histogram.log_bins (Workload.event_rates w) in
    Printf.printf "rate distribution (log bins): %s\n"
      (Mcss_workload.Histogram.sparkline rate_hist);
    (match out_dir with
    | None -> ()
    | Some dir ->
        Series.save_all ~dir
          [
            Series.of_int_pairs ~name:"ccdf_followers"
              (Stats.ccdf_int (Stats.follower_counts w));
            Series.of_int_pairs ~name:"ccdf_followings"
              (Stats.ccdf_int (Stats.interest_counts w));
            Series.of_pairs ~name:"ccdf_rate" (Stats.ccdf_float (Workload.event_rates w));
            Series.of_int_pairs ~name:"rate_by_followers" (Stats.mean_rate_by_followers w);
            Series.of_int_pairs ~name:"sc_by_followings" (Stats.mean_sc_by_interests w);
          ];
        Printf.printf "series written to %s/\n" dir);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Trace statistics (the paper's Appendix-D analysis)")
    Term.(
      ret (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
          $ out_dir))

(* ----- simulate ----- *)

let outage_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ vm_s; from_s; until_s ] -> (
        match
          ( int_of_string_opt vm_s,
            float_of_string_opt from_s,
            float_of_string_opt until_s )
        with
        | Some vm, Some from_time, Some until_time
          when vm >= 0 && from_time >= 0. && from_time <= until_time ->
            Ok (Simulator.outage ~vm ~from_time ~until_time ())
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "bad outage %S: VM:FROM:UNTIL needs a nonnegative VM id and \
                    0 <= FROM <= UNTIL (UNTIL may be 'inf')"
                   s)))
    | _ -> Error (`Msg (Printf.sprintf "bad outage %S: expected VM:FROM:UNTIL" s))
  in
  let print ppf (o : Simulator.outage) =
    Format.fprintf ppf "%d:%g:%g" o.Simulator.vm o.Simulator.from_time
      o.Simulator.until_time
  in
  Arg.conv (parse, print)

let simulate_cmd =
  let poisson_arg =
    Arg.(value & opt (some int) None & info [ "poisson" ] ~docv:"SEED"
           ~doc:"Use Poisson arrivals with this seed (default: deterministic).")
  in
  let duration_arg =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"F"
           ~doc:"Window length in horizons.")
  in
  let plan_arg =
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE"
           ~doc:"Replay a saved plan instead of solving.")
  in
  let outages_arg =
    Arg.(value & opt_all outage_conv [] & info [ "outage" ] ~docv:"VM:FROM:UNTIL"
           ~doc:"Take a VM down over a window, in horizons (repeatable; UNTIL may \
                 be 'inf'). With outages the run reports damage instead of \
                 pass/fail.")
  in
  let deltas_arg =
    Arg.(value & opt (some string) None & info [ "deltas" ] ~docv:"FILE"
           ~doc:"Evolve the workload and plan through the incremental engine \
                 with this delta batch (mcss-deltas format) before simulating.")
  in
  let run () file trace scale seed domains tau instance_name bc_events poisson
      duration plan deltas outages metrics_out =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let scale = require_scale scale in
    let domains = require_domains domains in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let obs = obs_of metrics_out in
    let _model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let selection, allocation =
      match plan with
      | Some path ->
          let a, s = require_plan ~workload:w path in
          let report = Verifier.verify p s a in
          Printf.printf "loaded plan: %d VMs (verifier: %s)\n"
            (Allocation.num_vms a)
            (if Verifier.is_valid report then "clean" else "VIOLATIONS");
          (s, a)
      | None ->
          let r = Solver.solve ~obs ~domains p in
          Format.printf "solved: %a@." Solver.pp_result r;
          (r.Solver.selection, r.Solver.allocation)
    in
    let* p, allocation =
      match deltas with
      | None -> Ok (p, allocation)
      | Some path -> (
          let ds = require_deltas path in
          let eng = Engine.of_plan { Engine.problem = p; selection; allocation } in
          match Engine.apply eng ds with
          | stats ->
              Printf.printf
                "deltas applied: %d (%d dirty subscribers, +%d/-%d pairs, %d \
                 evicted%s); fleet now %d VMs\n"
                (List.length ds) stats.Engine.dirty_subscribers
                stats.Engine.pairs_added stats.Engine.pairs_removed
                stats.Engine.pairs_evicted
                (if stats.Engine.resolved then ", full re-solve" else "")
                (Engine.num_vms eng);
              let plan = Engine.plan eng in
              Ok (plan.Engine.problem, plan.Engine.allocation)
          | exception Invalid_argument m -> Error m
          | exception Problem.Infeasible m -> Error ("infeasible: " ^ m))
    in
    let config =
      {
        Simulator.duration;
        buckets = 20;
        arrivals =
          (match poisson with
          | Some s -> Simulator.Poisson s
          | None -> Simulator.Deterministic);
        outages;
      }
    in
    let* res =
      match Simulator.run ~obs p allocation config with
      | r -> Ok r
      | exception Invalid_argument m -> Error m
    in
    Printf.printf "published %d events over %.2f horizon(s)\n" res.Simulator.events_published
      duration;
    let tolerance = match poisson with Some _ -> 0.5 | None -> 0. in
    let c = Simulator.check p allocation res ~tolerance in
    Printf.printf "subscribers under-delivered: %d\n" (List.length c.Simulator.unsatisfied);
    Printf.printf "VMs deviating from plan:     %d\n"
      (List.length c.Simulator.traffic_mismatch);
    let worst = ref 0. in
    Array.iter
      (fun vm ->
        let u =
          Simulator.peak_bucket_rate res ~vm:(Allocation.vm_id vm) /. p.Problem.capacity
        in
        if u > !worst then worst := u)
      (Allocation.vms allocation);
    Printf.printf "worst instantaneous VM utilisation: %.0f%%\n" (100. *. !worst);
    flush_metrics obs metrics_out;
    if outages <> [] then begin
      (* Failure injection is a damage report, not a pass/fail gate. *)
      Printf.printf "events lost to outages: %d\n"
        (Array.fold_left ( + ) 0 res.Simulator.lost);
      `Ok ()
    end
    else if Simulator.all_ok c then `Ok ()
    else `Error (false, "simulation check failed")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Solve, then replay the plan through the simulator")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ domains_arg $ tau_arg $ instance_arg $ bc_events_arg $ poisson_arg
        $ duration_arg $ plan_arg $ deltas_arg $ outages_arg $ metrics_out_arg))

(* ----- update ----- *)

let update_cmd =
  let deltas_arg =
    Arg.(required & opt (some string) None & info [ "deltas" ] ~docv:"FILE"
           ~doc:"Delta batch to apply (mcss-deltas format, see Delta_io).")
  in
  let plan_arg =
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE"
           ~doc:"Evolve a saved plan instead of cold-solving first.")
  in
  let config_arg =
    Arg.(value & opt string "(e) +cost-decision" & info [ "config" ] ~docv:"NAME"
           ~doc:"Solver configuration (used for the cold solve and any \
                 drift-triggered re-solve).")
  in
  let drift_arg =
    Arg.(value & opt float Engine.default_drift_threshold
         & info [ "drift-threshold" ] ~docv:"F"
           ~doc:"Churned-pairs fraction that triggers a full re-solve \
                 ($(b,inf) disables drift re-solves).")
  in
  let save_plan_arg =
    Arg.(value & opt (some string) None & info [ "save-plan" ] ~docv:"FILE"
           ~doc:"Write the evolved plan to this file.")
  in
  let save_workload_arg =
    Arg.(value & opt (some string) None & info [ "save-workload" ] ~docv:"FILE"
           ~doc:"Write the evolved workload to this file.")
  in
  let echo_deltas_arg =
    Arg.(value & flag & info [ "echo-deltas" ]
           ~doc:"Re-render the parsed batch in canonical mcss-deltas form on \
                 stdout before applying it (a codec round-trip check).")
  in
  let run () file trace scale seed tau instance_name bc_events config_name deltas
      plan drift save_plan save_workload echo_deltas =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let _model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let ds = require_deltas deltas in
    if echo_deltas then print_string (Delta_io.to_string ds);
    let config = Front.config_or_default config_name in
    let* eng =
      match plan with
      | Some path ->
          let allocation, selection = require_plan ~workload:w path in
          Ok
            (Engine.of_plan ~config ~drift_threshold:drift
               { Engine.problem = p; selection; allocation })
      | None -> (
          match Engine.create ~config ~drift_threshold:drift p with
          | eng -> Ok eng
          | exception Problem.Infeasible m -> Error ("infeasible: " ^ m))
    in
    Printf.printf "before: %d VMs, cost %s\n" (Engine.num_vms eng)
      (Table.cell_usd (Engine.cost eng));
    let t0 = Mcss_obs.Clock.now_ns () in
    let* stats =
      match Engine.apply eng ds with
      | stats -> Ok stats
      | exception Invalid_argument m -> Error m
      | exception Problem.Infeasible m -> Error ("infeasible: " ^ m)
    in
    Logs.info (fun m ->
        m "applied %d delta(s) in %.3f ms" (List.length ds)
          (1e3 *. Mcss_obs.Clock.seconds_since t0));
    Printf.printf
      "applied %d delta(s): %d dirty subscriber(s), %d pair(s) kept, +%d added, \
       -%d removed, %d evicted, +%d/-%d VM(s)%s\n"
      (List.length ds) stats.Engine.dirty_subscribers stats.Engine.pairs_kept
      stats.Engine.pairs_added stats.Engine.pairs_removed stats.Engine.pairs_evicted
      stats.Engine.vms_added stats.Engine.vms_removed
      (if stats.Engine.resolved then " (drift threshold tripped: full re-solve)"
       else "");
    Printf.printf "after:  %d VMs, cost %s\n" (Engine.num_vms eng)
      (Table.cell_usd (Engine.cost eng));
    let { Engine.problem = p'; selection = s'; allocation = a' } = Engine.plan eng in
    let report = Verifier.verify p' s' a' in
    Printf.printf "verifier: %s\n"
      (if Verifier.is_valid report then "CLEAN" else "VIOLATIONS");
    (match save_plan with
    | None -> ()
    | Some path ->
        Mcss_core.Plan_io.save a' path;
        Printf.printf "plan written to %s\n" path);
    (match save_workload with
    | None -> ()
    | Some path ->
        Wio.save p'.Problem.workload path;
        Printf.printf "workload written to %s\n" path);
    if Verifier.is_valid report then `Ok ()
    else `Error (false, "evolved plan failed verification")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply a delta batch to a plan through the incremental engine \
             (offline; see $(b,mcss query update) for the live daemon)")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ tau_arg $ instance_arg $ bc_events_arg $ config_arg $ deltas_arg
        $ plan_arg $ drift_arg $ save_plan_arg $ save_workload_arg
        $ echo_deltas_arg))

(* ----- budget ----- *)

let budget_cmd =
  let budgets_arg =
    Arg.(value & opt_all int [] & info [ "b"; "budget" ] ~docv:"N"
           ~doc:"Fixed VM budget (repeatable). Default: a sweep up to the MCSS fleet size.")
  in
  let run () file trace scale seed tau instance_name bc_events budgets =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let _model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let full = Solver.solve p in
    let budgets =
      if budgets <> [] then List.sort_uniq compare budgets
      else
        List.sort_uniq compare
          (List.map
             (fun f -> int_of_float (Float.round (f *. float_of_int full.Solver.num_vms)))
             [ 0.1; 0.25; 0.5; 0.75; 1.0 ])
    in
    let subscribers = Workload.num_subscribers w in
    let table =
      Table.create
        [ ("VM budget", Table.Right); ("satisfied", Table.Right); ("%", Table.Right) ]
    in
    List.iter
      (fun (budget, satisfied) ->
        Table.add_row table
          [
            string_of_int budget;
            string_of_int satisfied;
            Table.cell_pct (100. *. float_of_int satisfied /. float_of_int subscribers);
          ])
      (Mcss_core.Budget.satisfaction_curve p ~budgets);
    Table.print table;
    Printf.printf "(MCSS satisfies all %d subscribers with %d VMs)\n" subscribers
      full.Solver.num_vms;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "budget"
       ~doc:"Maximize satisfied subscribers under a fixed VM budget (the dual problem)")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ tau_arg $ instance_arg $ bc_events_arg $ budgets_arg))

(* ----- convert ----- *)

let convert_cmd =
  let edges_arg =
    Arg.(required & opt (some string) None & info [ "edges" ] ~docv:"FILE"
           ~doc:"Edge list: one 'follower followee' pair of user ids per line.")
  in
  let rates_arg =
    Arg.(required & opt (some string) None & info [ "rates" ] ~docv:"FILE"
           ~doc:"Rates: one 'user count' pair per line.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output workload file.")
  in
  let run () edges rates out =
    match Mcss_traces.Edge_list.load ~edges ~rates with
    | w, mapping ->
        Wio.save w out;
        Format.printf "wrote %s: %a@." out Workload.pp_summary w;
        Printf.printf "(%d active topics, %d subscribers mapped from raw user ids)\n"
          (Array.length mapping.Mcss_traces.Edge_list.user_of_topic)
          (Array.length mapping.Mcss_traces.Edge_list.user_of_subscriber);
        `Ok ()
    | exception Wio.Parse_error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a follower-graph edge list plus a rates file into a workload")
    Term.(ret (const run $ setup_logs_term $ edges_arg $ rates_arg $ out_arg))

(* ----- export-lp ----- *)

let export_lp_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output LP file.")
  in
  let max_vms_arg =
    Arg.(value & opt (some int) None & info [ "max-vms" ] ~docv:"N"
           ~doc:"Fleet bound for the model (default: heuristic fleet + 2).")
  in
  let run () file trace scale seed tau instance_name bc_events out max_vms =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let max_vms =
      match max_vms with Some n -> n | None -> (Solver.solve p).Solver.num_vms + 2
    in
    let vm_usd = Mcss_pricing.Cost_model.vm_cost model 1 in
    let per_event_usd = Mcss_pricing.Cost_model.bandwidth_cost model 1. in
    let dims =
      Mcss_exact.Lp_export.save p ~max_vms ~vm_usd ~per_event_usd ~path:out
    in
    Printf.printf "wrote %s: %d VMs bound, %d binaries, %d constraints\n" out
      dims.Mcss_exact.Lp_export.vms dims.Mcss_exact.Lp_export.variables
      dims.Mcss_exact.Lp_export.constraints;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "export-lp"
       ~doc:"Export the instance as a CPLEX-LP mixed-integer program")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ tau_arg $ instance_arg $ bc_events_arg $ out_arg $ max_vms_arg))

(* ----- verify ----- *)

let verify_cmd =
  let plan_arg =
    Arg.(required & opt (some string) None & info [ "plan" ] ~docv:"FILE"
           ~doc:"Plan file to audit.")
  in
  let run () file trace scale seed tau instance_name bc_events plan =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let a, s = require_plan ~workload:w plan in
    let report = Verifier.verify p s a in
    Printf.printf "plan: %d VMs, %.2f GB bandwidth, cost %s\n" report.Verifier.num_vms
      (Cost_model.gb_of_events model report.Verifier.total_bandwidth)
      (Table.cell_usd report.Verifier.cost);
    Format.printf "@[<hov>%a@]@." Mcss_core.Solution_stats.pp
      (Mcss_core.Solution_stats.compute p a);
    (* Deterministic replay as the final word. *)
    let res = Simulator.run p a Simulator.default_config in
    let c = Simulator.check p a res ~tolerance:0. in
    Printf.printf "simulated replay: %d events, measured = analytical: %b\n"
      res.Simulator.events_published (Simulator.all_ok c);
    if Verifier.is_valid report && Simulator.all_ok c then begin
      print_endline "verifier: CLEAN";
      `Ok ()
    end
    else begin
      List.iter
        (fun v -> Format.printf "  %a@." Verifier.pp_violation v)
        report.Verifier.violations;
      `Error (false, "plan failed verification")
    end
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Audit a saved plan against a workload: verifier + replay")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ tau_arg $ instance_arg $ bc_events_arg $ plan_arg))

(* ----- chaos ----- *)

let chaos_cmd =
  let fault_conv =
    let parse s =
      match Failure_model.fault_of_string s with
      | Ok f -> Ok f
      | Error m -> Error (`Msg m)
    in
    Arg.conv (parse, Failure_model.pp_fault)
  in
  let faults_arg =
    Arg.(value & opt_all fault_conv [] & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Inject one fault (repeatable): $(b,crash:VM@AT), \
                 $(b,transient:VM@FROM-UNTIL), $(b,throttle:VM@FROM-UNTIL*SEV), \
                 or $(b,zone:Z@AT+DUR); times in horizons. Without any, a random \
                 campaign is drawn from --campaign-seed.")
  in
  let campaign_seed_arg =
    Arg.(value & opt int 1 & info [ "campaign-seed" ] ~docv:"N"
           ~doc:"Seed for the random campaign (and the backoff jitter).")
  in
  let epochs_arg =
    Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"N"
           ~doc:"Supervision epochs to run.")
  in
  let epoch_duration_arg =
    Arg.(value & opt float 0.5 & info [ "epoch-duration" ] ~docv:"F"
           ~doc:"Simulated horizons per epoch.")
  in
  let zones_arg =
    Arg.(value & opt int 3 & info [ "zones" ] ~docv:"N"
           ~doc:"Failure zones (VM b lives in zone b mod N).")
  in
  let k_arg =
    Arg.(value & opt int 1 & info [ "k"; "replicas" ] ~docv:"K"
           ~doc:"Replicas per pair. K=1 runs the supervised recovery loop; K>1 \
                 drills a passive K-redundant placement instead.")
  in
  let no_recovery_arg =
    Arg.(value & flag & info [ "no-recovery" ]
           ~doc:"Observe only, never repair (the ablation baseline).")
  in
  let max_new_vms_arg =
    Arg.(value & opt (some int) None & info [ "max-new-vms" ] ~docv:"N"
           ~doc:"Replacement-VM budget for repairs (default: unlimited).")
  in
  let penalty_arg =
    Arg.(value & opt float 50. & info [ "penalty" ] ~docv:"USD"
           ~doc:"SLA penalty per subscriber violation-hour.")
  in
  let hysteresis_arg =
    Arg.(value & opt int 1 & info [ "hysteresis" ] ~docv:"N"
           ~doc:"Consecutive dead epochs before a VM is declared failed.")
  in
  let backoff_base_arg =
    Arg.(value & opt int Orchestrator.default_policy.Orchestrator.base_backoff
         & info [ "backoff-base" ] ~docv:"N"
             ~doc:"Epochs of cooldown after the first failed repair (the \
                   exponential backoff doubles from here).")
  in
  let backoff_max_arg =
    Arg.(value & opt int Orchestrator.default_policy.Orchestrator.max_backoff
         & info [ "backoff-max" ] ~docv:"N"
             ~doc:"Cap on the exponential repair cooldown, in epochs.")
  in
  let backoff_jitter_arg =
    Arg.(value & opt int Orchestrator.default_policy.Orchestrator.jitter
         & info [ "backoff-jitter" ] ~docv:"N"
             ~doc:"Max extra cooldown epochs drawn from the seeded RNG; 0 \
                   makes repair timing fully deterministic.")
  in
  let run () file trace scale seed tau instance_name bc_events faults campaign_seed
      epochs epoch_duration zones k no_recovery max_new_vms penalty hysteresis
      backoff_base backoff_max backoff_jitter metrics_out =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let* () = if k >= 1 then Ok () else Error "--replicas must be >= 1" in
    let* () = if zones >= 1 then Ok () else Error "--zones must be >= 1" in
    let* () =
      if backoff_base >= 1 then Ok () else Error "--backoff-base must be >= 1"
    in
    let* () =
      if backoff_max >= backoff_base then Ok ()
      else Error "--backoff-max must be >= --backoff-base"
    in
    let* () =
      if backoff_jitter >= 0 then Ok ()
      else Error "--backoff-jitter must be >= 0"
    in
    let* () =
      if hysteresis >= 1 then Ok () else Error "--hysteresis must be >= 1"
    in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let obs = obs_of metrics_out in
    let _model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let policy =
      {
        Orchestrator.default_policy with
        Orchestrator.epochs;
        epoch_duration;
        hysteresis;
        base_backoff = backoff_base;
        max_backoff = backoff_max;
        jitter = backoff_jitter;
        seed = campaign_seed;
        recovery = not no_recovery;
        max_new_vms = Option.value ~default:max_int max_new_vms;
        penalty_usd_per_violation_hour = penalty;
      }
    in
    let drill () =
      let selection = Mcss_core.Selection.gsp p in
      let fleet =
        Allocation.num_vms (Mcss_core.Cbp.run p selection Mcss_core.Cbp.with_cost_decision)
      in
      let campaign =
        if faults <> [] then { Failure_model.seed = campaign_seed; faults }
        else
          Failure_model.random ~seed:campaign_seed ~num_vms:fleet ~zones
            ~horizon:(float_of_int epochs *. epoch_duration)
            ()
      in
      Printf.printf "fleet: %d VMs over %d zone(s); campaign (seed %d):\n" fleet zones
        campaign.Failure_model.seed;
      List.iter
        (fun f -> Printf.printf "  %s\n" (Failure_model.fault_to_string f))
        campaign.Failure_model.faults;
      if k <= 1 then begin
        let o = Orchestrator.run ~obs ~policy ~zones ~log:print_endline ~campaign p in
        Format.printf "@.%a@." Sla.pp_report o.Orchestrator.sla;
        Printf.printf
          "repairs: %d adopted of %d attempt(s), %d backoff skip(s), %d VM(s) added, \
           %d pair(s) shed\n"
          o.Orchestrator.repairs o.Orchestrator.repair_attempts
          o.Orchestrator.backoff_skips o.Orchestrator.vms_added
          (List.length o.Orchestrator.shed);
        match o.Orchestrator.verified with
        | Ok () ->
            print_endline "final plan: verifier CLEAN";
            `Ok ()
        | Error m ->
            Printf.printf "final plan: NOT verifiable (%s)\n" m;
            `Ok ()
      end
      else begin
        let a, stats = Redundancy.place ~zones ~k p selection in
        match Redundancy.check p selection ~k a with
        | Error m -> `Error (false, m)
        | Ok () ->
            Format.printf "@.%a@." Redundancy.pp_stats stats;
            let sla = Orchestrator.evaluate ~obs ~policy ~zones ~campaign p a in
            Format.printf "%a@." Sla.pp_report sla;
            `Ok ()
      end
    in
    match drill () with
    | r ->
        flush_metrics obs metrics_out;
        r
    | exception Invalid_argument m -> `Error (false, m)
    | exception Problem.Infeasible m -> `Error (false, "infeasible: " ^ m)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a fault-injection campaign: supervised recovery or k-redundant drill")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ tau_arg $ instance_arg $ bc_events_arg $ faults_arg $ campaign_seed_arg
        $ epochs_arg $ epoch_duration_arg $ zones_arg $ k_arg $ no_recovery_arg
        $ max_new_vms_arg $ penalty_arg $ hysteresis_arg $ backoff_base_arg
        $ backoff_max_arg $ backoff_jitter_arg $ metrics_out_arg))

(* ----- elastic ----- *)

let require_scenario path =
  match Scenario.load path with
  | s -> s
  | exception Sys_error msg -> die "%s" msg
  | exception Scenario.Parse_error { line; message } ->
      die "%s:%d: %s" path line message
  | exception Invalid_argument msg -> die "%s: %s" path msg

let elastic_cmd =
  let scenario_arg =
    Arg.(required & opt (some string) None & info [ "scenario" ] ~docv:"FILE"
           ~doc:"Scenario file (mcss-scenario format): time slices and the \
                 rate curve to replay over the workload.")
  in
  let policy_arg =
    Arg.(value & opt (enum [ ("all", `All); ("hysteresis", `Hysteresis);
                             ("lookahead", `Lookahead) ]) `All
         & info [ "policy" ] ~docv:"NAME"
             ~doc:"Adaptive policy to run besides the static baseline: \
                   $(b,hysteresis), $(b,lookahead), or $(b,all).")
  in
  let deployment_arg =
    Arg.(value & opt (enum [ ("zonal", Reservation.Zonal);
                             ("regional", Reservation.Regional) ])
           Reservation.Zonal
         & info [ "deployment" ] ~docv:"KIND"
             ~doc:"Reservation deployment: $(b,zonal) or $(b,regional) \
                   (regional multiplies both tiers by the regional premium).")
  in
  let scaling_usd_arg =
    Arg.(value & opt (some float) None & info [ "scaling-usd" ] ~docv:"USD"
           ~doc:"Flat charge per scaling action (reservation change or \
                 consolidation pass). Default \\$0.10.")
  in
  let lookahead_arg =
    Arg.(value & opt int Autoscaler.default_lookahead.Autoscaler.horizon
         & info [ "lookahead" ] ~docv:"N"
             ~doc:"Forecast window of the lookahead policy, in slices.")
  in
  let down_cooldown_arg =
    Arg.(value & opt int Autoscaler.default_hysteresis.Autoscaler.down_cooldown
         & info [ "down-cooldown" ] ~docv:"N"
             ~doc:"Slices the fleet must sit below the commitment before the \
                   hysteresis policy lowers it.")
  in
  let consolidate_below_arg =
    Arg.(value
         & opt float Autoscaler.default_hysteresis.Autoscaler.consolidate_below
         & info [ "consolidate-below" ] ~docv:"F"
             ~doc:"Utilization threshold that triggers a consolidation pass.")
  in
  let ledger_arg =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Write the full per-slice cost ledger as JSON.")
  in
  let run () file trace scale seed tau instance_name bc_events scenario_path
      policy deployment scaling_usd lookahead down_cooldown consolidate_below
      ledger =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let scenario = require_scenario scenario_path in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let pricing =
      let d = Reservation.default ~instance ~deployment () in
      match scaling_usd with
      | None -> d
      | Some usd -> { d with Reservation.scaling_usd_per_action = usd }
    in
    let slice_hours = scenario.Scenario.slice_hours in
    let hyst_config =
      {
        Autoscaler.default_hysteresis with
        Autoscaler.down_cooldown;
        consolidate_below;
      }
    in
    let look_config =
      {
        Autoscaler.default_lookahead with
        Autoscaler.horizon = lookahead;
        consolidate_below;
      }
    in
    let policies =
      let hyst () = Autoscaler.hysteresis ~config:hyst_config () in
      let look () =
        Autoscaler.lookahead ~config:look_config ~pricing ~slice_hours ()
      in
      match policy with
      | `All -> [ hyst (); look () ]
      | `Hysteresis -> [ hyst () ]
      | `Lookahead -> [ look () ]
    in
    match
      Week_sim.run ~pricing ~capacity_events:p.Problem.capacity ~policies
        ~workload:w ~tau ~model scenario
    with
    | exception Problem.Infeasible m -> `Error (false, "infeasible: " ^ m)
    | exception Invalid_argument m -> `Error (false, m)
    | result ->
        Printf.printf
          "scenario: %d slice(s) x %gh, seed %d, coverage %g; static fleet %d \
           VM(s)\n"
          scenario.Scenario.slices slice_hours scenario.Scenario.seed
          scenario.Scenario.coverage result.Week_sim.static_fleet;
        let runs = result.Week_sim.static :: result.Week_sim.policies in
        let table =
          Table.create
            [
              ("policy", Table.Left); ("week cost", Table.Right);
              ("vm", Table.Right); ("bandwidth", Table.Right);
              ("scaling", Table.Right); ("actions", Table.Right);
              ("replans", Table.Right); ("vs static", Table.Right);
              ("verifier", Table.Left);
            ]
        in
        let static_usd = result.Week_sim.static.Week_sim.total_usd in
        List.iter
          (fun (r : Week_sim.policy_run) ->
            Table.add_row table
              [
                r.Week_sim.policy;
                Table.cell_usd r.Week_sim.total_usd;
                Table.cell_usd r.Week_sim.vm_usd;
                Table.cell_usd r.Week_sim.bandwidth_usd;
                Table.cell_usd r.Week_sim.scaling_usd;
                string_of_int r.Week_sim.scaling_actions;
                string_of_int r.Week_sim.reprovisions;
                (if r.Week_sim.policy = "static" then "-"
                 else
                   Table.cell_pct
                     (Table.pct_change ~baseline:static_usd
                        r.Week_sim.total_usd));
                (if r.Week_sim.clean then "CLEAN" else "VIOLATIONS");
              ])
          runs;
        Table.print table;
        Printf.printf "oracle (knows the whole curve): %s, %s vs static\n"
          (Table.cell_usd result.Week_sim.oracle_usd)
          (Table.cell_pct
             (Table.pct_change ~baseline:static_usd result.Week_sim.oracle_usd));
        (match ledger with
        | None -> ()
        | Some path ->
            Week_sim.write_ledger path result;
            Printf.printf "ledger written to %s\n" path);
        if List.for_all (fun (r : Week_sim.policy_run) -> r.Week_sim.clean) runs
        then `Ok ()
        else `Error (false, "a policy produced a plan that failed verification")
  in
  Cmd.v
    (Cmd.info "elastic"
       ~doc:"Replay a time-varying scenario through the capacity planner: \
             static envelope plan vs autoscaling policies under reservation \
             pricing")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg
        $ seed_arg $ tau_arg $ instance_arg $ bc_events_arg $ scenario_arg
        $ policy_arg $ deployment_arg $ scaling_usd_arg $ lookahead_arg
        $ down_cooldown_arg $ consolidate_below_arg $ ledger_arg))

(* ----- profile ----- *)

let profile_cmd =
  let format_arg =
    let doc = "Output format: $(b,console) (table + span tree), $(b,prometheus), or $(b,jsonl)." in
    Arg.(value
         & opt (enum [ ("console", `Console); ("prometheus", `Prometheus); ("jsonl", `Jsonl) ])
             `Console
         & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let no_simulate_arg =
    Arg.(value & flag & info [ "no-simulate" ]
           ~doc:"Profile the solver only; skip the simulator and broker-fleet replay.")
  in
  let message_bytes_arg =
    Arg.(value & opt int 512 & info [ "message-bytes" ] ~docv:"N"
           ~doc:"Message size for the broker-fleet replay.")
  in
  let run () file trace scale seed tau instance_name bc_events config_name format
      no_simulate message_bytes metrics_out =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let _model, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let config = Front.config_or_default config_name in
    let obs = Registry.create () in
    let* () =
      match
        Span.with_ obs ~name:"profile" (fun () ->
            let r = Solver.solve ~obs ~config p in
            if not no_simulate then begin
              ignore
                (Simulator.run ~obs p r.Solver.allocation Simulator.default_config);
              let fleet =
                Mcss_broker.Fleet.build p r.Solver.allocation ~message_bytes
              in
              ignore (Mcss_broker.Fleet.run ~obs fleet Mcss_broker.Fleet.default_config)
            end)
      with
      | () -> Ok ()
      | exception Problem.Infeasible m -> Error ("infeasible: " ^ m)
      | exception Invalid_argument m -> Error m
    in
    (match format with
    | `Console -> print_string (Sink.console obs)
    | `Prometheus -> print_string (Sink.prometheus obs)
    | `Jsonl -> print_string (Sink.jsonl obs));
    flush_metrics obs metrics_out;
    `Ok ()
  in
  let config_arg =
    Arg.(value & opt string "(e) +cost-decision" & info [ "config" ] ~docv:"NAME"
           ~doc:"Solver configuration by ladder name.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run solver + simulator + broker fleet with instrumentation on and print \
             the metrics and span tree")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg $ seed_arg
        $ tau_arg $ instance_arg $ bc_events_arg $ config_arg $ format_arg
        $ no_simulate_arg $ message_bytes_arg $ metrics_out_arg))

(* ----- serve ----- *)

let serve_cmd =
  let listen_arg =
    Arg.(value & opt string "unix:mcss.sock" & info [ "l"; "listen" ] ~docv:"ADDR"
           ~doc:"Listen address: $(b,unix:PATH), $(b,HOST:PORT), $(b,:PORT) or a \
                 bare port.")
  in
  let cache_size_arg =
    Arg.(value & opt int 128 & info [ "cache-size" ] ~docv:"N"
           ~doc:"Plan-cache capacity in entries (LRU beyond that).")
  in
  let max_in_flight_arg =
    Arg.(value & opt int 4 & info [ "max-in-flight" ] ~docv:"N"
           ~doc:"Concurrent solver runs admitted; further solves are refused \
                 with an $(b,overloaded) error.")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "serve-workers" ] ~docv:"N"
           ~doc:"Connection-worker domains.")
  in
  let max_request_bytes_arg =
    Arg.(value & opt int (8 * 1024 * 1024) & info [ "max-request-bytes" ] ~docv:"N"
           ~doc:"Longest accepted request line; longer ones get a \
                 $(b,too_large) error.")
  in
  let default_deadline_arg =
    Arg.(value & opt (some float) None & info [ "default-deadline-ms" ] ~docv:"MS"
           ~doc:"Deadline applied to requests that do not carry their own.")
  in
  let preload_arg =
    Arg.(value & opt_all string [] & info [ "preload" ] ~docv:"FILE"
           ~doc:"Workload file to register at startup (repeatable); its digest \
                 is printed.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Persist workloads and solved plans to a write-ahead log + \
                 snapshot under $(docv); a restarted (even kill -9'd) server \
                 replays it and answers the same solves as cache hits.")
  in
  let snapshot_every_arg =
    Arg.(value & opt int 256 & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Fold the WAL into a fresh snapshot every $(docv) records \
                 (0 never; needs --journal).")
  in
  let no_fsync_arg =
    Arg.(value & flag & info [ "no-fsync" ]
           ~doc:"Skip the per-append fsync (faster; risks the WAL tail on \
                 power loss, not on process crash).")
  in
  let breaker_failures_arg =
    Arg.(value & opt int Serve_breaker.default_config.Serve_breaker.failure_threshold
         & info [ "breaker-failures" ] ~docv:"N"
           ~doc:"Consecutive solver failures (deadline blowouts or internal \
                 errors) that open the circuit; while open, cache misses are \
                 answered $(b,degraded) from the last solved plan.")
  in
  let breaker_cooldown_arg =
    Arg.(value & opt float Serve_breaker.default_config.Serve_breaker.cooldown_ms
         & info [ "breaker-cooldown-ms" ] ~docv:"MS"
           ~doc:"Open time before a half-open probe solve is let through.")
  in
  let queue_depth_arg =
    Arg.(value & opt (some int) None & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Accepted-but-unclaimed connection bound; beyond it new \
                 connections are shed with an $(b,overloaded) reply (default \
                 4 x workers).")
  in
  let start_degraded_arg =
    Arg.(value & flag & info [ "start-degraded" ]
           ~doc:"Boot with the solver circuit already open (maintenance mode): \
                 cache hits and journaled plans are still served — misses get \
                 $(b,degraded) replies — but the solver does not run until the \
                 breaker cooldown admits a probe. Pair with a large \
                 $(b,--breaker-cooldown-ms) to hold it open.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "silent" ] ~doc:"No lifecycle logging.")
  in
  let chaos_hysteresis_arg =
    Arg.(value & opt int Orchestrator.default_policy.Orchestrator.hysteresis
         & info [ "chaos-hysteresis" ] ~docv:"N"
             ~doc:"For $(b,chaos) requests: consecutive dead epochs before a \
                   VM is declared failed.")
  in
  let chaos_backoff_base_arg =
    Arg.(value & opt int Orchestrator.default_policy.Orchestrator.base_backoff
         & info [ "chaos-backoff-base" ] ~docv:"N"
             ~doc:"For $(b,chaos) requests: epochs of cooldown after the \
                   first failed repair.")
  in
  let chaos_backoff_max_arg =
    Arg.(value & opt int Orchestrator.default_policy.Orchestrator.max_backoff
         & info [ "chaos-backoff-max" ] ~docv:"N"
             ~doc:"For $(b,chaos) requests: cap on the exponential repair \
                   cooldown, in epochs.")
  in
  let chaos_backoff_jitter_arg =
    Arg.(value & opt int Orchestrator.default_policy.Orchestrator.jitter
         & info [ "chaos-backoff-jitter" ] ~docv:"N"
             ~doc:"For $(b,chaos) requests: max extra cooldown epochs drawn \
                   from the seeded RNG.")
  in
  let replicate_on_arg =
    Arg.(value & opt (some string) None & info [ "replicate-on" ] ~docv:"ADDR"
           ~doc:"Also stream the journal to followers on $(docv) (needs \
                 --journal): each follower that connects is resynced and then \
                 fed every subsequent append, so it can take over after this \
                 process dies.")
  in
  let follow_arg =
    Arg.(value & opt (some string) None & info [ "follow" ] ~docv:"ADDR"
           ~doc:"Run as a follower of the leader replicating on $(docv) \
                 (needs --journal): pull its journal stream, mirror it \
                 locally, refuse $(b,update)s with $(b,not_leader), and serve \
                 reads; a $(b,promote) query turns this replica into a leader \
                 in place.")
  in
  let name_arg =
    Arg.(value & opt string Serve_service.default_config.Serve_service.name
         & info [ "name" ] ~docv:"NAME"
           ~doc:"Node name stamped into journaled records as their origin \
                 (the nemesis invariant checker groups writes by origin to \
                 prove no two leaders accepted writes in the same epoch).")
  in
  let quorum_acks_arg =
    Arg.(value & opt int 1 & info [ "quorum-acks" ] ~docv:"N"
           ~doc:"Replicas (counting this leader) that must have fsynced a \
                 non-idempotent record ($(b,update), first-time $(b,load)) \
                 before it is acknowledged; needs $(b,--replicate-on) when \
                 above 1. Idempotent solves never wait — replication stays \
                 asynchronous for them.")
  in
  let quorum_timeout_arg =
    Arg.(value & opt float 2000. & info [ "quorum-timeout-ms" ] ~docv:"MS"
           ~doc:"How long a write waits for its quorum before it is refused \
                 with $(b,no_quorum) (the record stays journaled locally).")
  in
  let run () listen cache_size max_in_flight workers max_request_bytes
      default_deadline preloads journal snapshot_every no_fsync breaker_failures
      breaker_cooldown queue_depth start_degraded chaos_hysteresis
      chaos_backoff_base chaos_backoff_max chaos_backoff_jitter replicate_on
      follow name quorum_acks quorum_timeout quiet =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let* address = Serve_server.address_of_string listen in
    let* () =
      if chaos_hysteresis >= 1 then Ok ()
      else Error "--chaos-hysteresis must be >= 1"
    in
    let* () =
      if chaos_backoff_base >= 1 then Ok ()
      else Error "--chaos-backoff-base must be >= 1"
    in
    let* () =
      if chaos_backoff_max >= chaos_backoff_base then Ok ()
      else Error "--chaos-backoff-max must be >= --chaos-backoff-base"
    in
    let* () =
      if chaos_backoff_jitter >= 0 then Ok ()
      else Error "--chaos-backoff-jitter must be >= 0"
    in
    let* () = if cache_size >= 1 then Ok () else Error "--cache-size must be >= 1" in
    let* () =
      if max_in_flight >= 1 then Ok () else Error "--max-in-flight must be >= 1"
    in
    let* () = if workers >= 1 then Ok () else Error "--serve-workers must be >= 1" in
    let* () =
      if max_request_bytes >= 1024 then Ok ()
      else Error "--max-request-bytes must be >= 1024"
    in
    let* () =
      if snapshot_every >= 0 then Ok () else Error "--snapshot-every must be >= 0"
    in
    let* () =
      if breaker_failures >= 1 then Ok () else Error "--breaker-failures must be >= 1"
    in
    let* () =
      if breaker_cooldown > 0. then Ok ()
      else Error "--breaker-cooldown-ms must be positive"
    in
    let* () =
      match queue_depth with
      | Some d when d < 1 -> Error "--queue-depth must be >= 1"
      | _ -> Ok ()
    in
    let* () =
      if (replicate_on <> None || follow <> None) && journal = None then
        Error "--replicate-on and --follow need --journal DIR"
      else Ok ()
    in
    let* () =
      if quorum_acks < 1 then Error "--quorum-acks must be >= 1"
      else if quorum_acks > 1 && replicate_on = None then
        Error "--quorum-acks above 1 needs --replicate-on (the acks come from \
               followers of the replication stream)"
      else Ok ()
    in
    let* () =
      if quorum_timeout > 0. then Ok ()
      else Error "--quorum-timeout-ms must be positive"
    in
    let* replicate_address =
      match replicate_on with
      | None -> Ok None
      | Some a -> Result.map Option.some (Serve_server.address_of_string a)
    in
    let* leader_address =
      match follow with
      | None -> Ok None
      | Some a -> Result.map Option.some (Serve_server.address_of_string a)
    in
    let config =
      {
        Serve_service.cache_capacity = cache_size;
        name;
        quorum_acks;
        quorum_timeout_ms = quorum_timeout;
        max_in_flight;
        default_deadline_ms = default_deadline;
        journal =
          Option.map
            (fun dir ->
              { Serve_journal.dir; fsync = not no_fsync; snapshot_every })
            journal;
        breaker =
          {
            Serve_breaker.failure_threshold = breaker_failures;
            cooldown_ms = breaker_cooldown;
          };
        chaos_policy =
          {
            Orchestrator.default_policy with
            Orchestrator.hysteresis = chaos_hysteresis;
            base_backoff = chaos_backoff_base;
            max_backoff = chaos_backoff_max;
            jitter = chaos_backoff_jitter;
          };
      }
    in
    let role =
      if leader_address <> None then Serve_service.Follower
      else Serve_service.Leader
    in
    let* service =
      match Serve_service.create ~config ~role () with
      | s -> Ok s
      | exception Unix.Unix_error (e, _, detail) ->
          Error
            (Printf.sprintf "cannot open journal: %s%s" (Unix.error_message e)
               (if detail = "" then "" else " (" ^ detail ^ ")"))
      | exception Sys_error m -> Error ("cannot open journal: " ^ m)
    in
    List.iter
      (fun path ->
        match Wio.load path with
        | w ->
            let digest = Serve_service.load_workload service w in
            if not quiet then Printf.printf "preloaded %s: digest %s\n%!" path digest
        | exception Sys_error m -> die "%s" m
        | exception Wio.Parse_error m -> die "%s: %s" path m)
      preloads;
    let log = if quiet then ignore else fun s -> Printf.printf "%s\n%!" s in
    log
      (Printf.sprintf "mcss-plan-server %s (%s)" (Build_info.to_string ())
         (Serve_service.role_to_string role));
    (match Serve_service.replay_stats service with
    | Some r ->
        log
          (Printf.sprintf
             "mcss serve: journal replayed (%d workloads, %d plans, %d updates, \
              %d skipped, %d bytes torn tail, %d corrupt)"
             r.Serve_service.workloads_recovered r.Serve_service.plans_recovered
             r.Serve_service.updates_replayed r.Serve_service.records_skipped
             r.Serve_service.wal_truncated_bytes r.Serve_service.corrupt_records)
    | None -> ());
    if start_degraded then begin
      let b = Serve_service.breaker service in
      for _ = 1 to breaker_failures do
        Serve_breaker.failure b
      done;
      log "mcss serve: solver circuit opened at boot (--start-degraded)"
    end;
    let sconfig =
      {
        Serve_server.default_config with
        Serve_server.workers;
        queue_depth;
        max_request_bytes;
        log;
      }
    in
    let serve () =
      (* Leader side of replication binds its own listener before the
         request socket; follower side pulls the leader's stream on a
         spare domain until drain (or promotion, handled inside). *)
      let leader_hub =
        Option.map
          (fun rep ->
            log
              (Printf.sprintf "mcss serve: replicating journal on %s"
                 (Serve_server.address_to_string rep));
            let hub = Serve_replication.start_leader ~service rep in
            if quorum_acks > 1 then begin
              log
                (Printf.sprintf
                   "mcss serve: writes wait for %d-of-cluster acks (%.0f ms)"
                   quorum_acks quorum_timeout);
              Serve_service.set_commit_gate service
                (Some
                   (fun ~index ->
                     Serve_replication.commit_gate hub ~quorum:quorum_acks
                       ~timeout_ms:quorum_timeout ~index))
            end;
            hub)
          replicate_address
      in
      let stopped = Atomic.make false in
      let follower =
        Option.map
          (fun leader ->
            log
              (Printf.sprintf "mcss serve: following leader at %s"
                 (Serve_server.address_to_string leader));
            Domain.spawn (fun () ->
                Serve_replication.follow ~service
                  ~stop:(fun () ->
                    Atomic.get stopped || Serve_service.draining service)
                  leader))
          leader_address
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stopped true;
          Option.iter Serve_replication.stop_leader leader_hub;
          Option.iter Domain.join follower)
        (fun () -> Serve_server.run ~config:sconfig service address)
    in
    match
      Fun.protect
        ~finally:(fun () -> Serve_service.close service)
        serve
    with
    | () -> `Ok ()
    | exception Unix.Unix_error (e, _, detail) ->
        `Error
          (false,
           Printf.sprintf "cannot serve on %s: %s%s" listen (Unix.error_message e)
             (if detail = "" then "" else " (" ^ detail ^ ")"))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the planning daemon: resident workloads, a plan cache, and the \
             line-delimited JSON protocol (see $(b,mcss query))")
    Term.(
      ret
        (const run $ setup_logs_term $ listen_arg $ cache_size_arg $ max_in_flight_arg
        $ workers_arg $ max_request_bytes_arg $ default_deadline_arg $ preload_arg
        $ journal_arg $ snapshot_every_arg $ no_fsync_arg $ breaker_failures_arg
        $ breaker_cooldown_arg $ queue_depth_arg $ start_degraded_arg
        $ chaos_hysteresis_arg $ chaos_backoff_base_arg $ chaos_backoff_max_arg
        $ chaos_backoff_jitter_arg $ replicate_on_arg $ follow_arg $ name_arg
        $ quorum_acks_arg $ quorum_timeout_arg $ quiet_arg))

(* ----- route ----- *)

let route_cmd =
  let listen_arg =
    Arg.(value & opt string "unix:mcss-route.sock" & info [ "l"; "listen" ]
           ~docv:"ADDR"
           ~doc:"Listen address: $(b,unix:PATH), $(b,HOST:PORT), $(b,:PORT) or \
                 a bare port.")
  in
  let shard_arg =
    Arg.(non_empty & opt_all string [] & info [ "shard" ] ~docv:"SPEC"
           ~doc:"One shard as $(b,NAME=ADDR)[$(b,,ADDR)...] (repeatable). The \
                 first address is the leader, the rest are followers tried \
                 when it is unreachable.")
  in
  let vnodes_arg =
    Arg.(value & opt int Serve_router.default_config.Serve_router.vnodes
         & info [ "vnodes" ] ~docv:"N"
           ~doc:"Virtual ring points per shard.")
  in
  let health_period_arg =
    Arg.(value & opt float Serve_router.default_config.Serve_router.health_period_s
         & info [ "health-period-s" ] ~docv:"S"
           ~doc:"Member health-probe cadence in seconds.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "silent" ] ~doc:"No lifecycle logging.")
  in
  let auto_promote_arg =
    Arg.(value & flag & info [ "auto-promote" ]
           ~doc:"Drive fenced failover from the health probes: when a shard's \
                 leader is dead past $(b,--promote-after) probes, promote the \
                 most caught-up live follower at a fencing epoch above \
                 anything the shard has reported; a revived stale leader is \
                 demoted on sight. Without this flag the member order is \
                 static and promotion is manual, as before.")
  in
  let promote_after_arg =
    Arg.(value & opt int Serve_router.default_config.Serve_router.promote_after
         & info [ "promote-after" ] ~docv:"N"
           ~doc:"Consecutive failed probes before a leader is declared dead \
                 (needs $(b,--auto-promote)).")
  in
  let run () listen shards vnodes health_period auto_promote promote_after quiet =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let* address = Serve_server.address_of_string listen in
    let* () = if vnodes >= 1 then Ok () else Error "--vnodes must be >= 1" in
    let* () =
      if health_period > 0. then Ok ()
      else Error "--health-period-s must be positive"
    in
    let* () =
      if promote_after >= 1 then Ok () else Error "--promote-after must be >= 1"
    in
    let parse_spec spec =
      match String.index_opt spec '=' with
      | None | Some 0 ->
          Error (Printf.sprintf "--shard %s: expected NAME=ADDR[,ADDR...]" spec)
      | Some i ->
          let name = String.sub spec 0 i in
          let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
          let rec addresses acc = function
            | [] -> Ok (List.rev acc)
            | a :: tl -> (
                match Serve_server.address_of_string a with
                | Ok addr ->
                    addresses ({ Serve_router.name = a; address = addr } :: acc) tl
                | Error m -> Error (Printf.sprintf "--shard %s: %s" spec m))
          in
          let parts =
            List.filter (fun s -> s <> "") (String.split_on_char ',' rest)
          in
          if parts = [] then
            Error (Printf.sprintf "--shard %s: no member addresses" spec)
          else
            Result.map
              (fun members -> { Serve_router.shard_name = name; members })
              (addresses [] parts)
    in
    let rec parse_all acc = function
      | [] -> Ok (List.rev acc)
      | s :: tl -> (
          match parse_spec s with
          | Ok shard -> parse_all (shard :: acc) tl
          | Error _ as e -> e)
    in
    let* shards = parse_all [] shards in
    let log = if quiet then ignore else fun s -> Printf.printf "%s\n%!" s in
    let config =
      {
        Serve_router.default_config with
        Serve_router.vnodes;
        health_period_s = health_period;
        auto_promote;
        promote_after;
        log;
      }
    in
    let* router =
      match Serve_router.create ~config shards with
      | r -> Ok r
      | exception Invalid_argument m -> Error m
    in
    log (Printf.sprintf "mcss-plan-router %s" (Build_info.to_string ()));
    List.iter
      (fun s ->
        log
          (Printf.sprintf "mcss route: shard %s -> %s" s.Serve_router.shard_name
             (String.concat ", "
                (List.map (fun m -> m.Serve_router.name) s.Serve_router.members))))
      shards;
    let server_config = { Serve_server.default_config with Serve_server.log } in
    match Serve_router.run ~server_config router address with
    | () -> `Ok ()
    | exception Unix.Unix_error (e, _, detail) ->
        `Error
          (false,
           Printf.sprintf "cannot route on %s: %s%s" listen (Unix.error_message e)
             (if detail = "" then "" else " (" ^ detail ^ ")"))
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Run the shard router: forward queries to the owning shard's \
             leader by workload digest, fail over to followers, and shed with \
             $(b,no_quorum) when a whole shard is down")
    Term.(
      ret
        (const run $ setup_logs_term $ listen_arg $ shard_arg $ vnodes_arg
        $ health_period_arg $ auto_promote_arg $ promote_after_arg $ quiet_arg))

(* ----- journal ----- *)

let journal_cmd =
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Journal directory (as given to $(b,mcss serve --journal)).")
  in
  let seek_arg =
    Arg.(value & opt (some int) None & info [ "seek" ] ~docv:"N"
           ~doc:"Point-in-time replay: apply only the first $(docv) recovered \
                 records (snapshot records first, then the WAL) instead of \
                 all of them.")
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Read-only integrity scan: check every CRC frame in the \
                 snapshot and WAL, report record counts, the epoch span, and \
                 dropped frames, and exit 1 on any corruption. Unlike a \
                 replay, the journal on disk is untouched — a torn tail is \
                 reported, never truncated.")
  in
  let run_verify dir =
    (* A journal dir is created on demand by a server, but a *scan* of
       a path that does not exist is a typo, not a clean journal. *)
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      `Error (false, Printf.sprintf "cannot verify journal: %s is not a directory" dir)
    else
    match Serve_journal.verify ~dir with
    | exception Unix.Unix_error (e, _, detail) ->
        `Error
          (false,
           Printf.sprintf "cannot verify journal: %s%s" (Unix.error_message e)
             (if detail = "" then "" else " (" ^ detail ^ ")"))
    | exception Sys_error m -> `Error (false, "cannot verify journal: " ^ m)
    | r ->
        let open Serve_journal in
        Printf.printf "journal %s: verify (read-only)\n" dir;
        Printf.printf "  snapshot records: %d (base index %d)\n"
          r.v_snapshot_records r.v_base_index;
        Printf.printf "  wal records: %d (last index %d)\n" r.v_wal_records
          (r.v_base_index + r.v_wal_records);
        Printf.printf "  epoch span: %d..%d (persisted %d)\n" r.v_min_epoch
          r.v_max_epoch r.v_persisted_epoch;
        Printf.printf "  dropped_frames: %d\n" r.v_dropped_frames;
        let corrupt =
          r.v_corrupt_records > 0 || r.v_trailing_bytes > 0
          || r.v_epoch_regressions > 0
        in
        if corrupt then begin
          Printf.printf
            "CORRUPT: %d corrupt records, %d trailing bytes, %d epoch \
             regressions\n"
            r.v_corrupt_records r.v_trailing_bytes r.v_epoch_regressions;
          exit 1
        end
        else begin
          Printf.printf "clean\n";
          `Ok ()
        end
  in
  let run () dir seek verify =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    if verify then run_verify dir
    else
    let* () =
      match seek with
      | Some n when n < 0 -> Error "--seek must be >= 0"
      | _ -> Ok ()
    in
    let config =
      {
        Serve_service.default_config with
        Serve_service.journal =
          Some { Serve_journal.dir; fsync = false; snapshot_every = 0 };
      }
    in
    let* service =
      match Serve_service.create ~config ?replay_to:seek () with
      | s -> Ok s
      | exception Unix.Unix_error (e, _, detail) ->
          Error
            (Printf.sprintf "cannot open journal: %s%s" (Unix.error_message e)
               (if detail = "" then "" else " (" ^ detail ^ ")"))
      | exception Sys_error m -> Error ("cannot open journal: " ^ m)
    in
    Fun.protect
      ~finally:(fun () -> Serve_service.close service)
      (fun () ->
        let last =
          Option.value ~default:0 (Serve_service.journal_last_index service)
        in
        (match Serve_service.replay_stats service with
        | None -> Printf.printf "journal %s: empty (last index 0)\n" dir
        | Some r ->
            let applied =
              r.Serve_service.workloads_recovered + r.Serve_service.plans_recovered
              + r.Serve_service.updates_replayed + r.Serve_service.records_skipped
            in
            Printf.printf "journal %s: last index %d\n" dir last;
            (match seek with
            | Some n ->
                Printf.printf "replayed %d of %d records (--seek %d)\n" applied
                  last n
            | None -> Printf.printf "replayed %d records\n" applied);
            Printf.printf
              "  %d workloads, %d plans, %d updates, %d skipped\n"
              r.Serve_service.workloads_recovered r.Serve_service.plans_recovered
              r.Serve_service.updates_replayed r.Serve_service.records_skipped;
            Printf.printf
              "  torn tail: %d bytes truncated, %d corrupt records, %d \
               dropped frames\n"
              r.Serve_service.wal_truncated_bytes r.Serve_service.corrupt_records
              r.Serve_service.dropped_frames);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:"Inspect a planning-service journal: replay it (optionally only a \
             prefix, with $(b,--seek)) and print what was recovered, or scan \
             it read-only with $(b,--verify)")
    Term.(ret (const run $ setup_logs_term $ dir_arg $ seek_arg $ verify_arg))

(* ----- nemesis ----- *)

let nemesis_cmd =
  let seed_arg =
    Arg.(value & opt int Serve_nemesis.default_config.Serve_nemesis.seed
           & info [ "seed" ] ~docv:"N"
               ~doc:"Nemesis seed: drives victim choice and the phase order. \
                     The whole run is deterministic given the seed.")
  in
  let partitions_arg =
    Arg.(value & opt int Serve_nemesis.default_config.Serve_nemesis.partitions
           & info [ "partitions" ] ~docv:"N"
               ~doc:"Fault phases to inject (>= 3: the first three always \
                     cover leader isolation, an asymmetric link, and a \
                     follower pause).")
  in
  let updates_arg =
    Arg.(value
           & opt int Serve_nemesis.default_config.Serve_nemesis.updates_per_phase
           & info [ "updates-per-phase" ] ~docv:"N"
               ~doc:"Updates the workload generator pushes during and after \
                     each phase.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the full report (counters, recovery percentiles, \
                 invariant booleans) as JSON to $(docv) — the \
                 $(b,BENCH_partition.json) shape.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "silent" ]
           ~doc:"No phase-by-phase narration on stderr.")
  in
  let run () seed partitions updates out quiet =
    if partitions < 3 then `Error (true, "--partitions must be >= 3")
    else if updates < 1 then `Error (true, "--updates-per-phase must be >= 1")
    else begin
      let log = if quiet then ignore else fun s -> Printf.eprintf "%s\n%!" s in
      match
        Serve_nemesis.run
          {
            Serve_nemesis.default_config with
            Serve_nemesis.seed;
            partitions;
            updates_per_phase = updates;
            log;
          }
      with
      | exception Serve_nemesis.Nemesis_timeout what ->
          `Error (false, "nemesis wedged: " ^ what)
      | r ->
          (match out with
          | Some path ->
              let oc = open_out path in
              output_string oc
                (Serve_json.to_string (Serve_nemesis.report_to_json r));
              output_char oc '\n';
              close_out oc
          | None -> ());
          Printf.printf
            "nemesis seed %d: %d partitions, %d/%d updates acked, %d \
             promotions, %d fenced demotions, recovery p50 %.0f ms p95 %.0f \
             ms\n"
            r.Serve_nemesis.r_seed r.Serve_nemesis.r_partitions
            r.Serve_nemesis.r_updates_acked r.Serve_nemesis.r_updates_sent
            r.Serve_nemesis.r_auto_promotions r.Serve_nemesis.r_fenced_demotions
            r.Serve_nemesis.r_recovery_p50_ms r.Serve_nemesis.r_recovery_p95_ms;
          Printf.printf
            "invariants: single_writer=%b no_acked_lost=%b \
             journals_converged=%b plans_converged=%b verify_clean=%b\n"
            r.Serve_nemesis.r_single_writer_per_epoch
            r.Serve_nemesis.r_no_acked_update_lost
            r.Serve_nemesis.r_journals_converged
            r.Serve_nemesis.r_plan_digests_converged
            r.Serve_nemesis.r_journals_verify_clean;
          if Serve_nemesis.passed r then begin
            Printf.printf "PASSED\n";
            `Ok ()
          end
          else begin
            Printf.printf "FAILED\n";
            exit 1
          end
    end
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:"Partition-nemesis the replicated planning cluster: build a live \
             3-replica cluster behind fault-injecting proxies, run a seeded \
             schedule of partitions, heals, and a stale-leader revival while \
             pushing quorum-acked updates, then check the failover \
             invariants (single writer per epoch, no acknowledged update \
             lost, journal and plan convergence). Exits 1 when any invariant \
             fails.")
    Term.(
      ret
        (const run $ setup_logs_term $ seed_arg $ partitions_arg $ updates_arg
        $ out_arg $ quiet_arg))

(* ----- query ----- *)

(* ----- dataplane / pump ----- *)

let plan_arg =
  Arg.(required & opt (some string) None & info [ "plan" ] ~docv:"FILE"
         ~doc:"Solved plan (mcss-plan format, from $(b,mcss solve --save-plan)).")

let dir_arg =
  Arg.(value & opt string "dataplane" & info [ "dir" ] ~docv:"DIR"
         ~doc:"Fleet directory: per-broker Unix sockets and the \
               $(b,fleet.json) manifest live here.")

let message_bytes_arg =
  Arg.(value & opt int 200 & info [ "message-bytes" ] ~docv:"N"
         ~doc:"Bytes per publication; each broker's service capacity is \
               BC x $(docv) bytes per horizon, as in the in-memory fleet.")

let dataplane_cmd =
  let replay_scenario_arg =
    Arg.(value & opt (some string) None & info [ "replay-scenario" ] ~docv:"FILE"
           ~doc:"Replay an elastic scenario over the live fleet: at each slice \
                 boundary the slice's rate deltas go through the incremental \
                 engine and the running brokers are re-homed onto the evolved \
                 plan, then the fleet shuts down. Without this flag the fleet \
                 serves until shut down externally.")
  in
  let slice_pace_arg =
    Arg.(value & opt float 0. & info [ "slice-pace" ] ~docv:"S"
           ~doc:"Wall seconds to hold each scenario slice before moving on \
                 (0 replays as fast as the re-homes complete).")
  in
  let run () file trace scale seed plan dir message_bytes tau instance_name
      bc_events replay_scenario slice_pace =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let* () =
      if slice_pace >= 0. then Ok () else Error "--slice-pace must be >= 0"
    in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let _, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let allocation, selection = require_plan ~workload:w plan in
    let scenario = Option.map require_scenario replay_scenario in
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let cluster = Dp_cluster.boot ~dir ~message_bytes p allocation in
    let manifest = Filename.concat dir "fleet.json" in
    Dp_cluster.save_manifest cluster manifest;
    let live = Dp_cluster.live cluster in
    Printf.printf "dataplane: %d brokers up, manifest %s\n" (List.length live)
      manifest;
    List.iter
      (fun (vm, addr) ->
        Printf.printf "  broker %d: %s (%d pairs)\n" vm
          (Serve_server.address_to_string addr)
          (Dp_cluster.pairs_on cluster vm))
      live;
    match scenario with
    | None ->
        Printf.printf "serving; stop with 'mcss pump --shutdown' or \
                       'mcss query shutdown -c <socket>' per broker\n%!";
        Dp_cluster.join cluster;
        print_endline "dataplane: all brokers stopped";
        `Ok ()
    | Some scenario -> (
        (* Scenario replay: the engine evolves the plan slice by slice
           and the live fleet is reconciled onto each evolved plan —
           the dataplane twin of [mcss elastic]'s simulated week. *)
        let eng =
          Engine.of_plan { Engine.problem = p; selection; allocation }
        in
        let batches = Scenario.compile scenario w in
        let replay () =
          Array.iteri
            (fun k batch ->
              let stats = Engine.apply eng batch in
              let plan = Engine.plan eng in
              let report =
                Verifier.verify plan.Engine.problem plan.Engine.selection
                  plan.Engine.allocation
              in
              let apply = Dp_cluster.apply_plan cluster plan.Engine.allocation in
              Printf.printf
                "slice %d: x%.3f rates, %d VM(s), re-home +%d/-%d pair(s), \
                 %d broker(s) spawned%s, verifier %s\n%!"
                k
                (Scenario.multiplier scenario ~slice:k)
                (Engine.num_vms eng) apply.Dp_cluster.pairs_added
                apply.Dp_cluster.pairs_removed apply.Dp_cluster.spawned
                (if stats.Engine.resolved then " (drift re-solve)" else "")
                (if Verifier.is_valid report then "CLEAN" else "VIOLATIONS");
              List.iter
                (fun e -> Printf.printf "  broker error: %s\n" e)
                apply.Dp_cluster.errors;
              if slice_pace > 0. then Unix.sleepf slice_pace)
            batches;
          Dp_cluster.shutdown cluster;
          print_endline "dataplane: scenario replayed, all brokers stopped"
        in
        match replay () with
        | () -> `Ok ()
        | exception Problem.Infeasible m ->
            Dp_cluster.shutdown cluster;
            `Error (false, "infeasible: " ^ m)
        | exception Invalid_argument m ->
            Dp_cluster.shutdown cluster;
            `Error (false, m))
  in
  Cmd.v
    (Cmd.info "dataplane"
       ~doc:"Boot a live broker fleet (one socket per planned VM) from a \
             solved plan and serve until shut down, or replay an elastic \
             scenario over it")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg
        $ seed_arg $ plan_arg $ dir_arg $ message_bytes_arg $ tau_arg
        $ instance_arg $ bc_events_arg $ replay_scenario_arg $ slice_pace_arg))

let pump_cmd =
  let duration_arg =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"F"
           ~doc:"Horizons of load to pump (deterministic schedule, the same \
                 generator the simulator counts with).")
  in
  let pace_arg =
    Arg.(value & opt float 0. & info [ "pace" ] ~docv:"S"
           ~doc:"Wall seconds per horizon; 0 pumps as fast as acks allow.")
  in
  let batch_arg =
    Arg.(value & opt int 64 & info [ "batch" ] ~docv:"N"
           ~doc:"Events per publish batch (acked synchronously).")
  in
  let tolerance_arg =
    Arg.(value & opt float 0. & info [ "tolerance" ] ~docv:"F"
           ~doc:"Reconciliation tolerance (max relative deviation against the \
                 simulator's predictions). Exit status 4 when exceeded.")
  in
  let no_reconcile_arg =
    Arg.(value & flag & info [ "no-reconcile" ]
           ~doc:"Skip the simulator comparison (e.g. while brokers are being \
                 re-homed or killed by another process).")
  in
  let latency_seed_arg =
    Arg.(value & opt int 1 & info [ "latency-seed" ] ~docv:"N"
           ~doc:"Seed for the end-to-end latency reservoir's eviction draws.")
  in
  let report_arg =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
           ~doc:"Write the run report as JSON.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Gracefully shut the fleet down after the run (drain, flush, \
                 exit).")
  in
  let run () file trace scale seed plan dir duration pace batch tolerance
      no_reconcile latency_seed report_file shutdown tau instance_name bc_events
      =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let w = require_workload file trace scale seed in
    let* instance = resolve_instance instance_name in
    let _, p = problem_of ~w ~tau ~instance ~scale ~bc_events in
    let allocation, _ = require_plan ~workload:w plan in
    let manifest = Filename.concat dir "fleet.json" in
    let cluster =
      try Dp_cluster.attach ~manifest allocation
      with Failure m | Sys_error m -> die "%s" m
    in
    let config =
      {
        Dp_pump.default_config with
        Dp_pump.duration;
        pace;
        batch;
        latency_seed;
        tolerance = (if no_reconcile then None else Some tolerance);
      }
    in
    let r = try Dp_pump.run ~config cluster p allocation with Failure m -> die "%s" m in
    let totals = r.Dp_pump.totals in
    Printf.printf
      "pump: %d events -> %d copies sent, %d received (%d duplicates), %d \
       send failures, %d unrouted, %.2fs%s\n"
      r.Dp_pump.publisher.Mcss_dataplane.Publisher.events
      r.Dp_pump.publisher.Mcss_dataplane.Publisher.copies_sent
      r.Dp_pump.copies_received r.Dp_pump.duplicates
      r.Dp_pump.publisher.Mcss_dataplane.Publisher.send_failures
      r.Dp_pump.publisher.Mcss_dataplane.Publisher.unrouted r.Dp_pump.wall_s
      (if r.Dp_pump.quiesced then "" else " (quiesce timeout)");
    Format.printf "ledger:   %a@." Mcss_report.Delivery.pp totals;
    (match r.Dp_pump.latency with
    | None -> ()
    | Some l ->
        Printf.printf
          "latency:  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms (%d \
           samples)\n"
          (l.Mcss_broker.Fleet.p50 *. 1e3)
          (l.Mcss_broker.Fleet.p95 *. 1e3)
          (l.Mcss_broker.Fleet.p99 *. 1e3)
          (l.Mcss_broker.Fleet.max *. 1e3)
          l.Mcss_broker.Fleet.samples);
    (match r.Dp_pump.reconcile with
    | None -> ()
    | Some rec_ -> Format.printf "%a@." Dp_reconcile.pp rec_);
    (match report_file with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let field (k, v) = Printf.sprintf "\"%s\": %d" k v in
            let latency_json =
              match r.Dp_pump.latency with
              | None -> "null"
              | Some l ->
                  Printf.sprintf
                    "{ \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, \
                     \"max_ms\": %.4f, \"samples\": %d }"
                    (l.Mcss_broker.Fleet.p50 *. 1e3)
                    (l.Mcss_broker.Fleet.p95 *. 1e3)
                    (l.Mcss_broker.Fleet.p99 *. 1e3)
                    (l.Mcss_broker.Fleet.max *. 1e3)
                    l.Mcss_broker.Fleet.samples
            in
            let reconcile_json =
              match r.Dp_pump.reconcile with
              | None -> "null"
              | Some rc ->
                  Printf.sprintf
                    "{ \"pass\": %b, \"max_deviation\": %.6f, \"tolerance\": \
                     %.6f, \"subscriber_mismatches\": %d }"
                    rc.Dp_reconcile.pass rc.Dp_reconcile.max_deviation
                    rc.Dp_reconcile.tolerance
                    (List.length rc.Dp_reconcile.subscriber_mismatches)
            in
            Printf.fprintf oc
              "{ %s,\n  \"duplicates\": %d,\n  \"send_failures\": %d,\n  \
               \"unrouted\": %d,\n  \"quiesced\": %b,\n  \"wall_s\": %.4f,\n  \
               \"latency\": %s,\n  \"reconcile\": %s }\n"
              (String.concat ", " (List.map field (Mcss_report.Delivery.fields totals)))
              r.Dp_pump.duplicates
              r.Dp_pump.publisher.Mcss_dataplane.Publisher.send_failures
              r.Dp_pump.publisher.Mcss_dataplane.Publisher.unrouted
              r.Dp_pump.quiesced r.Dp_pump.wall_s latency_json reconcile_json);
        Printf.printf "report written to %s\n" path);
    if shutdown then begin
      List.iter
        (fun (_, addr) -> ignore (Dp_control.shutdown addr))
        (Dp_cluster.live cluster);
      print_endline "pump: fleet shutdown requested"
    end;
    match r.Dp_pump.reconcile with
    | Some rc when not rc.Dp_reconcile.pass ->
        prerr_endline "mcss pump: reconciliation deviation above tolerance";
        exit 4
    | _ -> `Ok ()
  in
  Cmd.v
    (Cmd.info "pump"
       ~doc:"Pump trace-derived load through a running $(b,mcss dataplane) \
             fleet, collect the delivery ledgers, and reconcile them against \
             the simulator")
    Term.(
      ret
        (const run $ setup_logs_term $ workload_file $ trace_arg $ scale_arg
        $ seed_arg $ plan_arg $ dir_arg $ duration_arg $ pace_arg $ batch_arg
        $ tolerance_arg $ no_reconcile_arg $ latency_seed_arg $ report_arg
        $ shutdown_arg $ tau_arg $ instance_arg $ bc_events_arg))

let query_cmd =
  let connect_arg =
    Arg.(value & opt string "unix:mcss.sock" & info [ "c"; "connect" ] ~docv:"ADDR"
           ~doc:"Server address: $(b,unix:PATH), $(b,HOST:PORT), $(b,:PORT) or a \
                 bare port.")
  in
  let verb_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"VERB"
           ~doc:"One of $(b,health), $(b,load), $(b,solve), $(b,update), \
                 $(b,whatif), $(b,chaos), $(b,stats), $(b,metrics), \
                 $(b,promote), $(b,shutdown), the dataplane control verbs \
                 $(b,drain), $(b,rehome), $(b,ledger) (sent to a broker \
                 socket from $(b,mcss dataplane)), or $(b,raw) (send the \
                 next positional argument verbatim).")
  in
  let add_pair_arg =
    Arg.(value & opt_all (pair ~sep:':' int int) [] & info [ "add" ] ~docv:"T:S"
           ~doc:"(topic, subscriber) pair for $(b,rehome) to add \
                 (repeatable; set semantics, replay-safe).")
  in
  let remove_pair_arg =
    Arg.(value & opt_all (pair ~sep:':' int int) [] & info [ "remove" ] ~docv:"T:S"
           ~doc:"(topic, subscriber) pair for $(b,rehome) to remove \
                 (repeatable).")
  in
  let deltas_arg =
    Arg.(value & opt (some string) None & info [ "deltas" ] ~docv:"FILE"
           ~doc:"Delta batch (mcss-deltas format) for $(b,update); sent inline \
                 and applied to the plan cached under --digest + the solve \
                 parameters.")
  in
  let raw_json_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"JSON"
           ~doc:"Raw request line for $(b,raw).")
  in
  let digest_arg =
    Arg.(value & opt (some string) None & info [ "digest" ] ~docv:"HEX"
           ~doc:"Workload digest returned by $(b,load).")
  in
  let taus_arg =
    Arg.(value & opt_all float [] & info [ "tau" ] ~docv:"F"
           ~doc:"Satisfaction threshold (repeat for a $(b,whatif) sweep).")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request deadline; exceeding it yields a $(b,timeout) error.")
  in
  let config_name_arg =
    Arg.(value & opt string "(e) +cost-decision" & info [ "config" ] ~docv:"NAME"
           ~doc:"Solver configuration (ladder name, or $(b,parallel)).")
  in
  let faults_arg =
    Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Fault spec for $(b,chaos) (repeatable), as in $(b,mcss chaos).")
  in
  let campaign_seed_arg =
    Arg.(value & opt int 1 & info [ "campaign-seed" ] ~docv:"N"
           ~doc:"Random-campaign / jitter seed for $(b,chaos).")
  in
  let epochs_arg =
    Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"N"
           ~doc:"Supervision epochs for $(b,chaos).")
  in
  let zones_arg =
    Arg.(value & opt int 3 & info [ "zones" ] ~docv:"N"
           ~doc:"Failure zones for $(b,chaos).")
  in
  let retries_arg =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Total attempts (including the first). Transport failures and \
                 $(b,overloaded)/$(b,timeout) replies are retried on a fresh \
                 connection with jittered exponential backoff.")
  in
  let retry_base_arg =
    Arg.(value & opt float Serve_retry.default_policy.Serve_retry.base_ms
         & info [ "retry-base-ms" ] ~docv:"MS"
           ~doc:"Backoff lower bound per retry (cap is 2000 ms).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"MS"
           ~doc:"Per-attempt timeout: socket receive timeout and, unless \
                 --deadline-ms is given, the request's deadline.")
  in
  let epoch_arg =
    Arg.(value & opt (some int) None & info [ "epoch" ] ~docv:"E"
           ~doc:"Fencing epoch for $(b,promote)/$(b,demote). A promote \
                 without it bumps the member's own epoch by one; a demote \
                 requires it and is refused unless it is strictly above the \
                 member's epoch (fenced — a stray demote cannot depose a \
                 current leader).")
  in
  let run () connect verb raw_json wfile digest deltas_file taus instance_name
      bc_events config_name deadline faults campaign_seed epochs zones retries
      retry_base timeout add_pairs remove_pairs epoch =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> `Error (false, e) in
    let ( let& ) r f = match r with Ok x -> f x | Error _ as e -> e in
    let* address = Serve_server.address_of_string connect in
    let params tau =
      {
        Serve_protocol.tau;
        instance = instance_name;
        bc_events;
        config = config_name;
      }
    in
    let need_digest () =
      match digest with
      | Some d -> Ok d
      | None -> Error "--digest is required (run 'mcss query load -w FILE' first)"
    in
    let one_tau () = match taus with [] -> 100. | t :: _ -> t in
    let* request =
      match verb with
      | "health" -> Ok (`Envelope Serve_protocol.Health)
      | "stats" -> Ok (`Envelope Serve_protocol.Stats)
      | "metrics" -> Ok (`Envelope Serve_protocol.Metrics)
      | "shutdown" -> Ok (`Envelope Serve_protocol.Shutdown)
      | "promote" -> Ok (`Envelope (Serve_protocol.Promote { epoch }))
      | "demote" -> (
          match epoch with
          | Some e -> Ok (`Envelope (Serve_protocol.Demote { epoch = e }))
          | None ->
              Error
                "demote needs --epoch E (strictly above the member's epoch: \
                 demotion is fenced)")
      | "drain" -> Ok (`Envelope Serve_protocol.Drain)
      | "ledger" -> Ok (`Envelope Serve_protocol.Ledger)
      | "rehome" ->
          if add_pairs = [] && remove_pairs = [] then
            Error "rehome needs --add T:S and/or --remove T:S"
          else
            Ok
              (`Envelope
                (Serve_protocol.Rehome { add = add_pairs; remove = remove_pairs }))
      | "load" -> (
          match wfile with
          | None -> Error "load needs -w FILE (sent inline, content-addressed)"
          | Some path -> (
              match In_channel.with_open_bin path In_channel.input_all with
              | text -> Ok (`Envelope (Serve_protocol.Load (`Inline text)))
              | exception Sys_error m -> die "%s" m))
      | "solve" ->
          let& d = need_digest () in
          Ok (`Envelope (Serve_protocol.Solve { digest = d; params = params (one_tau ()) }))
      | "update" -> (
          let& d = need_digest () in
          match deltas_file with
          | None -> Error "update needs --deltas FILE (mcss-deltas format)"
          | Some path -> (
              match In_channel.with_open_bin path In_channel.input_all with
              | text ->
                  Ok
                    (`Envelope
                      (Serve_protocol.Update
                         { digest = d; params = params (one_tau ()); deltas = text }))
              | exception Sys_error m -> die "%s" m))
      | "whatif" ->
          let& d = need_digest () in
          let taus = if taus = [] then [ 10.; 100.; 1000. ] else taus in
          Ok (`Envelope (Serve_protocol.Whatif { digest = d; params = params 100.; taus }))
      | "chaos" ->
          let& d = need_digest () in
          Ok
            (`Envelope
              (Serve_protocol.Chaos
                 {
                   digest = d;
                   params = params (one_tau ());
                   seed = campaign_seed;
                   epochs;
                   zones;
                   faults;
                 }))
      | "raw" -> (
          match raw_json with
          | Some line -> Ok (`Raw line)
          | None -> Error "raw needs a JSON argument")
      | other -> Error (Printf.sprintf "unknown query verb %S" other)
    in
    let* () = if retries >= 1 then Ok () else Error "--retries must be >= 1" in
    let policy =
      {
        Serve_retry.default_policy with
        Serve_retry.max_attempts = retries;
        base_ms = retry_base;
        attempt_timeout_ms = timeout;
      }
    in
    let result =
      match request with
      | `Raw line -> (
          (* Raw lines bypass the protocol codec, so they also bypass
             the retry layer (we cannot tell if they are idempotent). *)
          match Serve_json.parse line with
          | Error m -> Error ("request is not valid JSON: " ^ m)
          | Ok j ->
              Serve_client.with_connection address (fun c ->
                  Serve_client.request c j))
      | `Envelope req ->
          let outcome =
            Serve_client.call ~policy address
              { Serve_protocol.id = None; deadline_ms = deadline; request = req }
          in
          if outcome.Serve_retry.attempts > 1 then
            prerr_endline
              (Printf.sprintf "mcss query: %d attempts, %.0f ms backing off"
                 outcome.Serve_retry.attempts
                 outcome.Serve_retry.total_backoff_ms);
          outcome.Serve_retry.result
    in
    (* Exit status: 0 on a full answer, 2 when the service degraded or
       shed the request (retry later; see the protocol docs), 3 when a
       whole shard was unreachable behind the router (no_quorum — page
       someone), 1 on hard errors — so scripts can tell them apart. *)
    match result with
    | Error m -> die "%s" m
    | Ok reply ->
        if Serve_protocol.response_ok reply then begin
          (match
             (verb, Serve_json.member "body" reply
                    |> Fun.flip Option.bind Serve_json.to_string_opt)
           with
          | "metrics", Some body -> print_string body
          | _ -> print_endline (Serve_json.to_string reply));
          if Serve_protocol.response_degraded reply then begin
            prerr_endline "mcss query: degraded reply (stale plan served)";
            exit 2
          end;
          `Ok ()
        end
        else begin
          let code =
            match Serve_protocol.response_error reply with
            | Some (code, message) ->
                prerr_endline
                  (Printf.sprintf "mcss query: %s: %s"
                     (match code with
                     | Some c -> Serve_protocol.error_code_to_string c
                     | None -> "error")
                     message);
                code
            | None ->
                prerr_endline "mcss query: request failed";
                None
          in
          print_endline (Serve_json.to_string reply);
          match code with
          | Some Serve_protocol.Degraded | Some Serve_protocol.Overloaded -> exit 2
          | Some Serve_protocol.No_quorum -> exit 3
          | _ -> exit 1
        end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request to a running $(b,mcss serve) and print the reply")
    Term.(
      ret
        (const run $ setup_logs_term $ connect_arg $ verb_arg $ raw_json_arg
        $ workload_file $ digest_arg $ deltas_arg $ taus_arg $ instance_arg
        $ bc_events_arg $ config_name_arg $ deadline_arg $ faults_arg
        $ campaign_seed_arg $ epochs_arg $ zones_arg $ retries_arg
        $ retry_base_arg $ timeout_arg $ add_pair_arg $ remove_pair_arg
        $ epoch_arg))

(* ----- version ----- *)

let version_cmd =
  let run () =
    print_endline ("mcss " ^ Build_info.to_string ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:"Print the package version (and git describe when available)")
    Term.(ret (const run $ const ()))

let main_cmd =
  let doc = "cost-effective resource allocation for pub/sub on cloud (ICDCS'14)" in
  Cmd.group
    (Cmd.info "mcss" ~version:Mcss_serve.Build_info.version ~doc)
    [
      generate_cmd; solve_cmd; lower_bound_cmd; analyze_cmd; simulate_cmd; update_cmd;
      budget_cmd; convert_cmd; export_lp_cmd; verify_cmd; chaos_cmd; elastic_cmd;
      profile_cmd; serve_cmd; route_cmd; journal_cmd; nemesis_cmd; query_cmd;
      dataplane_cmd;
      pump_cmd; version_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
