(* A day in the life of the pub/sub fleet: the full operational loop the
   library supports, end to end —

     boot  -> solve + verify + audit
     09:00 -> churn arrives, incremental reprovision
     12:00 -> two VMs die, measure the damage, recover
     15:00 -> demand drops, consolidate the fragmented fleet
     18:00 -> audit again and replay through the simulator

   Every step re-verifies; the program aborts loudly if any invariant is
   violated.

   Run with: dune exec examples/operations_day.exe *)

module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver
module Verifier = Mcss_core.Verifier
module Stats = Mcss_core.Solution_stats
module Simulator = Mcss_sim.Simulator
module Delta = Mcss_dynamic.Delta
module Churn = Mcss_dynamic.Churn
module Reprovision = Mcss_dynamic.Reprovision
module Recovery = Mcss_dynamic.Recovery
module Spotify = Mcss_traces.Spotify

let capacity_events = 250_000.

let problem_for ?(tau = 100.) w =
  Problem.of_pricing ~capacity_events ~workload:w ~tau
    (Mcss_pricing.Cost_model.ec2_2014 ())

let audit label (plan : Reprovision.plan) =
  ignore
    (Verifier.check_exn plan.Reprovision.problem plan.Reprovision.selection
       plan.Reprovision.allocation);
  Format.printf "%-28s %a@." label Stats.pp
    (Stats.compute plan.Reprovision.problem plan.Reprovision.allocation);
  Printf.printf "%-28s cost %s\n\n" "" (Mcss_report.Table.cell_usd (Reprovision.cost plan))

let () =
  let rng = Mcss_prng.Rng.create 404 in
  let w = ref (Spotify.generate { (Spotify.scaled 0.004) with Spotify.seed = 8 }) in
  Format.printf "boot: %a@.@." Workload.pp_summary !w;

  (* Boot: cold solve. *)
  let plan = ref (Reprovision.initial (problem_for !w)) in
  audit "[boot] solved + verified" !plan;

  (* 09:00 — churn. *)
  let deltas = Churn.tick rng (Churn.scaled 1.5) !w in
  w := Delta.apply !w deltas;
  let plan09, stats = Reprovision.reprovision ~previous:!plan (problem_for !w) in
  plan := plan09;
  Printf.printf
    "[09:00] absorbed %d deltas: kept %d pairs, added %d, removed %d, evicted %d\n"
    (List.length deltas) stats.Reprovision.pairs_kept stats.Reprovision.pairs_added
    stats.Reprovision.pairs_removed stats.Reprovision.pairs_evicted;
  audit "[09:00] reprovisioned" !plan;

  (* 12:00 — two VMs die. First measure what the outage costs while it
     lasts, then re-home the orphaned pairs. *)
  let failed = [ 0; 1 ] in
  let outage_config =
    {
      Simulator.default_config with
      Simulator.outages =
        List.map
          (fun vm -> Simulator.outage ~vm ~from_time:0.5 ~until_time:infinity ())
          failed;
    }
  in
  let res = Simulator.run (problem_for !w) !plan.Reprovision.allocation outage_config in
  let hurt =
    Simulator.check (problem_for !w) !plan.Reprovision.allocation res ~tolerance:0.
  in
  Printf.printf
    "[12:00] VMs %s down: %d events lost, %d subscribers under threshold\n"
    (String.concat "," (List.map string_of_int failed))
    (Array.fold_left ( + ) 0 res.Simulator.lost)
    (List.length hurt.Simulator.unsatisfied);
  let recovered, rstats = Recovery.replan !plan ~failed in
  plan := recovered;
  Printf.printf "[12:00] recovery re-homed %d pairs onto %d fresh VMs\n"
    rstats.Recovery.pairs_rehomed rstats.Recovery.vms_added;
  audit "[12:00] recovered" !plan;

  (* 15:00 — the product lowers the notification budget; demand drops and
     the fleet fragments. Consolidate. *)
  let p_small = problem_for ~tau:30. !w in
  let shrunk, sstats = Reprovision.reprovision ~previous:!plan p_small in
  Printf.printf "[15:00] demand drop dropped %d pairs in place\n"
    sstats.Reprovision.pairs_removed;
  let before = Allocation.num_vms shrunk.Reprovision.allocation in
  let consolidated, cstats = Reprovision.consolidate shrunk in
  plan := consolidated;
  Printf.printf "[15:00] consolidation: %d -> %d VMs (moved %d pairs)\n" before
    (Allocation.num_vms consolidated.Reprovision.allocation)
    cstats.Reprovision.pairs_evicted;
  audit "[15:00] consolidated" !plan;

  (* 18:00 — final replay: the plan must deliver exactly what it claims. *)
  let final_p = !plan.Reprovision.problem in
  let res = Simulator.run final_p !plan.Reprovision.allocation Simulator.default_config in
  let check = Simulator.check final_p !plan.Reprovision.allocation res ~tolerance:0. in
  Printf.printf "[18:00] replay: %d events, measured = analytical: %b\n"
    res.Simulator.events_published
    (Simulator.all_ok check);
  if not (Simulator.all_ok check) then failwith "operations day ended with a violation";
  print_endline "\nall checkpoints verified."
