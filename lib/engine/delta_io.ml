exception Parse_error of string

let emit add deltas =
  add "mcss-deltas 1\n";
  List.iter
    (fun d ->
      add
        (match d with
        | Delta.Subscribe { subscriber; topic } ->
            Printf.sprintf "subscribe %d %d\n" subscriber topic
        | Delta.Unsubscribe { subscriber; topic } ->
            Printf.sprintf "unsubscribe %d %d\n" subscriber topic
        | Delta.Rate_change { topic; rate } -> Printf.sprintf "rate %d %.17g\n" topic rate
        | Delta.New_topic { rate } -> Printf.sprintf "new-topic %.17g\n" rate
        | Delta.New_subscriber { interests } ->
            let buf = Buffer.create 32 in
            Buffer.add_string buf (Printf.sprintf "new-subscriber %d" (Array.length interests));
            Array.iter (fun t -> Buffer.add_string buf (Printf.sprintf " %d" t)) interests;
            Buffer.add_char buf '\n';
            Buffer.contents buf))
    deltas

let output oc deltas = emit (output_string oc) deltas

let to_string deltas =
  let buf = Buffer.create 1024 in
  emit (Buffer.add_string buf) deltas;
  Buffer.contents buf

let save deltas path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc deltas)

(* Same reader shape as {!Mcss_workload.Wio}: raw lines come from a
   closure so channels and in-memory strings share the parser. *)
type reader = { next_raw : unit -> string option; mutable line_num : int }

let fail r msg = raise (Parse_error (Printf.sprintf "line %d: %s" r.line_num msg))

let rec next_line r =
  match r.next_raw () with
  | None -> None
  | Some line ->
      r.line_num <- r.line_num + 1;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then next_line r else Some line

let int_field r what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail r (Printf.sprintf "bad %s %S" what s)

let rate_field r s =
  match float_of_string_opt s with
  | Some rate when rate > 0. -> rate
  | Some _ -> fail r (Printf.sprintf "rate %S is not positive" s)
  | None -> fail r (Printf.sprintf "bad rate %S" s)

let parse_line r line =
  let fields = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  match fields with
  | [ "subscribe"; v; t ] ->
      Delta.Subscribe
        { subscriber = int_field r "subscriber id" v; topic = int_field r "topic id" t }
  | [ "unsubscribe"; v; t ] ->
      Delta.Unsubscribe
        { subscriber = int_field r "subscriber id" v; topic = int_field r "topic id" t }
  | [ "rate"; t; rate ] ->
      Delta.Rate_change { topic = int_field r "topic id" t; rate = rate_field r rate }
  | [ "new-topic"; rate ] -> Delta.New_topic { rate = rate_field r rate }
  | "new-subscriber" :: k :: topics ->
      let k = int_field r "interest count" k in
      if List.length topics <> k then
        fail r
          (Printf.sprintf "interest count %d does not match %d topics" k
             (List.length topics));
      Delta.New_subscriber
        { interests = Array.of_list (List.map (int_field r "topic id") topics) }
  | verb :: _ -> fail r (Printf.sprintf "unknown delta %S" verb)
  | [] -> assert false (* blank lines are skipped by [next_line] *)

let parse r =
  (match next_line r with
  | Some "mcss-deltas 1" -> ()
  | Some line -> fail r (Printf.sprintf "expected %S, got %S" "mcss-deltas 1" line)
  | None -> fail r "empty input, expected \"mcss-deltas 1\"");
  let rec loop acc =
    match next_line r with
    | None -> List.rev acc
    | Some line -> loop (parse_line r line :: acc)
  in
  loop []

let lines_of_string s =
  let pos = ref 0 in
  let n = String.length s in
  fun () ->
    if !pos >= n then None
    else
      let stop =
        match String.index_from_opt s !pos '\n' with Some i -> i | None -> n
      in
      let line = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some line

let input ic = parse { next_raw = (fun () -> In_channel.input_line ic); line_num = 0 }
let of_string s = parse { next_raw = lines_of_string s; line_num = 0 }

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input ic)
