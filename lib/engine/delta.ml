module Workload = Mcss_workload.Workload

type t =
  | Subscribe of { subscriber : int; topic : int }
  | Unsubscribe of { subscriber : int; topic : int }
  | Rate_change of { topic : int; rate : float }
  | New_topic of { rate : float }
  | New_subscriber of { interests : int array }

let pp ppf = function
  | Subscribe { subscriber; topic } -> Format.fprintf ppf "subscribe(%d, %d)" subscriber topic
  | Unsubscribe { subscriber; topic } ->
      Format.fprintf ppf "unsubscribe(%d, %d)" subscriber topic
  | Rate_change { topic; rate } -> Format.fprintf ppf "rate(%d <- %g)" topic rate
  | New_topic { rate } -> Format.fprintf ppf "new-topic(%g)" rate
  | New_subscriber { interests } ->
      Format.fprintf ppf "new-subscriber(%d interests)" (Array.length interests)

let apply w deltas =
  let num_topics = ref (Workload.num_topics w) in
  let rates = Hashtbl.create 16 in
  (* Interest sets as hashtables for O(1) membership updates — but only
     for the subscribers a delta actually touches. Everyone else shares
     their (already sorted and validated) interest array with [w], so a
     small batch costs O(touched pairs + topics + subscribers) instead
     of rebuilding every set in the workload. *)
  let base_subs = Workload.num_subscribers w in
  let touched : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let extra_interests : (int, unit) Hashtbl.t Mcss_core.Vec.t = Mcss_core.Vec.create () in
  let num_subscribers () = base_subs + Mcss_core.Vec.length extra_interests in
  let interest_set v =
    if v >= base_subs then Mcss_core.Vec.get extra_interests (v - base_subs)
    else
      match Hashtbl.find_opt touched v with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 8 in
          Array.iter (fun t -> Hashtbl.replace h t ()) (Workload.interests w v);
          Hashtbl.replace touched v h;
          h
  in
  let check_topic t what =
    if t < 0 || t >= !num_topics then
      invalid_arg (Printf.sprintf "Delta.apply: %s references topic %d out of %d" what t !num_topics)
  in
  let check_subscriber v what =
    if v < 0 || v >= num_subscribers () then
      invalid_arg
        (Printf.sprintf "Delta.apply: %s references subscriber %d out of %d" what v
           (num_subscribers ()))
  in
  List.iter
    (fun delta ->
      match delta with
      | Subscribe { subscriber; topic } ->
          check_subscriber subscriber "subscribe";
          check_topic topic "subscribe";
          let set = interest_set subscriber in
          if Hashtbl.mem set topic then
            invalid_arg
              (Printf.sprintf "Delta.apply: subscriber %d already follows topic %d"
                 subscriber topic);
          Hashtbl.replace set topic ()
      | Unsubscribe { subscriber; topic } ->
          check_subscriber subscriber "unsubscribe";
          check_topic topic "unsubscribe";
          let set = interest_set subscriber in
          if not (Hashtbl.mem set topic) then
            invalid_arg
              (Printf.sprintf "Delta.apply: subscriber %d does not follow topic %d"
                 subscriber topic);
          Hashtbl.remove set topic
      | Rate_change { topic; rate } ->
          check_topic topic "rate-change";
          if not (rate > 0.) then invalid_arg "Delta.apply: rate must be positive";
          Hashtbl.replace rates topic rate
      | New_topic { rate } ->
          if not (rate > 0.) then invalid_arg "Delta.apply: rate must be positive";
          Hashtbl.replace rates !num_topics rate;
          incr num_topics
      | New_subscriber { interests = wanted } ->
          let h = Hashtbl.create 8 in
          Array.iter
            (fun t ->
              check_topic t "new-subscriber";
              if Hashtbl.mem h t then
                invalid_arg "Delta.apply: new subscriber lists a topic twice";
              Hashtbl.replace h t ())
            wanted;
          Mcss_core.Vec.push extra_interests h)
    deltas;
  let event_rates =
    Array.init !num_topics (fun t ->
        match Hashtbl.find_opt rates t with
        | Some r -> r
        | None -> Workload.event_rate w t)
  in
  let sorted_of_set set =
    let a = Array.make (Hashtbl.length set) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun t () ->
        a.(!i) <- t;
        incr i)
      set;
    Array.sort compare a;
    a
  in
  let all_interests =
    Array.init (num_subscribers ()) (fun v ->
        if v >= base_subs then sorted_of_set (Mcss_core.Vec.get extra_interests (v - base_subs))
        else
          match Hashtbl.find_opt touched v with
          | Some set -> sorted_of_set set
          | None -> Workload.interests w v)
  in
  (* Evolve the followers index instead of letting the new workload
     recompute it from scratch: per-topic follower sets only change for
     topics a touched or new subscriber (un)follows, so everything else
     shares its array with the old cache. Without this, every consumer
     that needs followers (e.g. the engine's dirty-set computation)
     pays an O(pairs) rebuild per delta batch. *)
  let followers =
    match Workload.cached_followers w with
    | None -> None
    | Some old_fol ->
        let base_topics = Array.length old_fol in
        let added : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
        let removed : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
        let additions_of t =
          match Hashtbl.find_opt added t with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.replace added t r;
              r
        in
        let removals_of t =
          match Hashtbl.find_opt removed t with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 4 in
              Hashtbl.replace removed t h;
              h
        in
        Hashtbl.iter
          (fun v set ->
            let old = Workload.interests w v in
            let old_set = Hashtbl.create (Array.length old + 1) in
            Array.iter (fun t -> Hashtbl.replace old_set t ()) old;
            Array.iter
              (fun t ->
                if not (Hashtbl.mem set t) then Hashtbl.replace (removals_of t) v ())
              old;
            Hashtbl.iter
              (fun t () ->
                if not (Hashtbl.mem old_set t) then
                  let r = additions_of t in
                  r := v :: !r)
              set)
          touched;
        for i = 0 to Mcss_core.Vec.length extra_interests - 1 do
          let v = base_subs + i in
          Hashtbl.iter
            (fun t () ->
              let r = additions_of t in
              r := v :: !r)
            (Mcss_core.Vec.get extra_interests i)
        done;
        let rebuild t =
          let olds = if t < base_topics then old_fol.(t) else [||] in
          let keep =
            match Hashtbl.find_opt removed t with
            | None -> olds
            | Some dead ->
                Array.of_seq
                  (Seq.filter (fun v -> not (Hashtbl.mem dead v)) (Array.to_seq olds))
          in
          match Hashtbl.find_opt added t with
          | None | Some { contents = [] } -> keep
          | Some { contents = adds } ->
              let out = Array.append keep (Array.of_list adds) in
              Array.sort compare out;
              out
        in
        Some
          (Array.init !num_topics (fun t ->
               if t >= base_topics || Hashtbl.mem added t || Hashtbl.mem removed t then
                 rebuild t
               else old_fol.(t)))
  in
  (* Every mutation above was range/duplicate/positivity-checked as it
     was applied, untouched arrays come from a validated workload, and
     [sorted_of_set] restores the sortedness invariant — so the unsafe
     constructor's contract holds. *)
  Workload.unsafe_create ?followers ~event_rates ~interests:all_interests ()
