(** The stateful incremental planning engine — one re-solve core behind
    [solve], [Reprovision], [Recovery.replan], and the planning service's
    live [update] endpoint.

    The paper closes (§IV-F) by arguing the allocator is fast enough to
    "run periodically to adapt to the changes in the event rates, new
    subscriptions, unsubscriptions, etc.". This module makes that loop
    incremental instead of periodic-from-scratch: an engine owns a
    problem, its Stage-1 selection, and its Stage-2 allocation (with the
    per-VM residual capacities and per-subscriber remaining thresholds
    implied by them, see {!residual} and {!rem_v}), and {!apply} folds a
    batch of {!Delta} events into all three in time proportional to the
    {e change}, not the workload:

    + only {e dirty} subscribers — those whose interest set changed or
      who follow a topic whose rate changed — re-run Stage-1 selection
      ({!Mcss_core.Selection.reselect}). GSP is per-subscriber
      deterministic, so every clean subscriber provably keeps its exact
      old selection;
    + surviving pairs stay on the VM they already occupy;
    + VMs pushed over capacity by rate increases evict pairs of their
      highest-rate topic until they fit again;
    + deselected pairs are dropped, newly selected and evicted pairs are
      placed with the CustomBinPacking insertion rule (grouped per
      topic, most-free VM first, fresh VMs on overflow);
    + VMs left empty are dropped.

    {b Drift.} Local surgery can wander away from what a cold solve
    would build. The engine counts churned pairs since the last full
    solve and, once they exceed [drift_threshold] × current pairs, runs
    {!Mcss_core.Solver.solve} (same config) instead — so a
    drift-triggered re-solve is bit-for-bit the cold answer, and the
    counter resets.

    Engines are single-owner mutable state and not thread-safe; the
    planning service serialises access per engine. *)

type plan = {
  problem : Mcss_core.Problem.t;
  selection : Mcss_core.Selection.t;
  allocation : Mcss_core.Allocation.t;
}
(** A deployment plan snapshot — re-exported as
    [Mcss_dynamic.Reprovision.plan], which is an equality. *)

type change_stats = {
  pairs_kept : int;  (** Survived in place. *)
  pairs_added : int;  (** Newly selected, placed fresh. *)
  pairs_removed : int;  (** Deselected, dropped from their VM. *)
  pairs_evicted : int;  (** Still selected but moved off an overloaded VM. *)
  vms_added : int;
  vms_removed : int;
  dirty_subscribers : int;  (** How many subscribers re-ran Stage 1. *)
  resolved : bool;
      (** The drift threshold tripped and this change was answered by a
          full cold re-solve; the pair counters then describe the
          wholesale replacement (everything removed, everything added),
          not in-place surgery. *)
}

type recovery_stats = { vms_lost : int; pairs_rehomed : int; vms_added : int }
(** Re-exported as [Mcss_dynamic.Recovery.stats]. *)

type t

val create :
  ?config:Mcss_core.Solver.config ->
  ?drift_threshold:float ->
  ?domains:int ->
  Mcss_core.Problem.t ->
  t
(** Cold GSP+CBP solve ([config] defaults to {!Mcss_core.Solver.default},
    also used for drift re-solves). [drift_threshold] (default [0.5])
    is the churned-pairs fraction that triggers a full re-solve;
    [infinity] disables drift re-solves (what the [Reprovision] wrapper
    uses to keep its never-resolves contract). [domains] (default 1) is
    passed to every {!Mcss_core.Solver.solve} the engine runs — cold and
    drift-triggered alike — and never changes the plans produced (the
    parallel solve is bit-identical). Raises
    {!Mcss_core.Problem.Infeasible} like the solver. *)

val of_plan :
  ?config:Mcss_core.Solver.config ->
  ?drift_threshold:float ->
  ?domains:int ->
  plan ->
  t
(** Adopt an existing plan (e.g. reloaded through
    {!Mcss_core.Plan_io}). The allocation is cloned, so the engine never
    mutates the caller's plan. *)

val apply : t -> Delta.t list -> change_stats
(** Fold a delta batch into the engine. Raises [Invalid_argument] on
    inconsistent deltas (see {!Delta.apply}) before touching any state,
    and {!Mcss_core.Problem.Infeasible} if a selected pair no longer fits
    any VM — after which the engine must be discarded (its state may be
    half-updated). Deterministic: the same engine state and delta list
    always produce the same plan, which is what lets the planning
    service replay journaled updates after a crash. *)

val retarget : t -> ?dirty:bool array -> Mcss_core.Problem.t -> change_stats
(** The re-solve core under {!apply}, exposed for the [Reprovision]
    wrapper: adapt the engine to an explicit new problem (same
    append-only id space). [dirty] marks the subscribers whose Stage-1
    inputs may have changed and {b must} be a superset of them (length
    [num_subscribers], new subscribers marked); it defaults to
    all-dirty, which is always safe. *)

val fail : t -> failed:int list -> recovery_stats
(** Treat the listed VM ids as permanently dead: survivors keep their
    placements (renumbered densely), orphaned pairs are re-placed with
    the insertion rule. Unknown ids are ignored; failing every VM
    rebuilds from scratch. The core under [Recovery.replan]. *)

val plan : t -> plan
(** The engine's current plan. The allocation is the engine's live one —
    treat it as read-only while the engine stays in use. *)

val problem : t -> Mcss_core.Problem.t
val num_vms : t -> int

val cost : t -> float
(** [C1(num_vms) + C2(total bandwidth)] of the current plan. *)

val residual : t -> int -> float
(** Free capacity ([BC - bw_b]) of the VM with the given id. Raises
    [Invalid_argument] on an unknown id. *)

val rem_v : t -> int -> float
(** The subscriber's remaining satisfaction gap
    [max 0 (τ_v - selected rate)] — [0.] for every subscriber of a valid
    plan. *)

val churned_pairs : t -> int
(** Pairs added + removed since the last cold solve — the drift
    counter. *)

val iter_homes : t -> (topic:int -> subscriber:int -> vm:int -> unit) -> unit
(** Iterate the current (topic, subscriber) → hosting-VM map, in no
    particular order. This is the live re-home hook: a dataplane diffing
    two snapshots of it (before/after {!apply} or {!fail}) gets exactly
    the pair moves it must replay onto running brokers. A pair hosted on
    several VMs reports one home (the engine places each pair once). *)

val default_drift_threshold : float
