(** Workload change events for dynamic re-provisioning — the paper closes
    by noting the allocator is fast enough to "run periodically to adapt
    to the changes in the event rates, new subscriptions,
    unsubscriptions, etc." (§IV-F); this module is the vocabulary of
    those changes.

    Topic and subscriber ids are stable and append-only: a new topic gets
    id [num_topics], a new subscriber id [num_subscribers]. *)

type t =
  | Subscribe of { subscriber : int; topic : int }
  | Unsubscribe of { subscriber : int; topic : int }
  | Rate_change of { topic : int; rate : float }  (** New absolute rate. *)
  | New_topic of { rate : float }
  | New_subscriber of { interests : int array }

val apply : Mcss_workload.Workload.t -> t list -> Mcss_workload.Workload.t
(** Apply the deltas in order and build the resulting workload. Raises
    [Invalid_argument] on inconsistent deltas: subscribing to an already
    held topic, unsubscribing from an unheld one, referencing ids out of
    range (including ids introduced earlier in the same batch — those are
    valid), or a non-positive rate. *)

val pp : Format.formatter -> t -> unit
