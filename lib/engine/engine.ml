module Workload = Mcss_workload.Workload
module Arena = Mcss_core.Arena
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Solver = Mcss_core.Solver

type plan = {
  problem : Problem.t;
  selection : Selection.t;
  allocation : Allocation.t;
}

type change_stats = {
  pairs_kept : int;
  pairs_added : int;
  pairs_removed : int;
  pairs_evicted : int;
  vms_added : int;
  vms_removed : int;
  dirty_subscribers : int;
  resolved : bool;
}

type recovery_stats = { vms_lost : int; pairs_rehomed : int; vms_added : int }

type t = {
  mutable problem : Problem.t;
  mutable selection : Selection.t;
  mutable allocation : Allocation.t;
  (* encode_pair (topic, subscriber) -> hosting VM id; the incremental
     analogue of [Allocation.find_pair_vm]'s fleet scan, on a flat
     open-addressing table (no tuple key allocated per lookup). Kept in
     sync by every mutation below. *)
  homes : Arena.Int_table.t;
  config : Solver.config;
  domains : int;
  drift_threshold : float;
  mutable churned_pairs : int;
}

let default_drift_threshold = 0.5

let home_key ~topic ~subscriber = Arena.encode_pair ~topic ~subscriber

let rebuild_homes homes a =
  Arena.Int_table.reset homes;
  Allocation.iter_vms a (fun vm ->
      let id = Allocation.vm_id vm in
      Allocation.iter_vm_pairs vm (fun topic v ->
          Arena.Int_table.set homes (home_key ~topic ~subscriber:v) id))

(* Rebuild an identical fleet so adopting an external plan never lets the
   engine mutate its caller's allocation. *)
let clone_allocation ~capacity w a =
  let fresh = Allocation.create ~capacity in
  Array.iter
    (fun vm ->
      let copy = Allocation.deploy fresh in
      List.iter
        (fun topic ->
          let subs = Array.of_list (Allocation.subscribers_of_topic_on vm topic) in
          Allocation.place fresh copy ~topic ~ev:(Workload.event_rate w topic)
            ~subscribers:subs ~from:0 ~count:(Array.length subs))
        (Allocation.topics_on vm))
    (Allocation.vms a);
  fresh

let of_parts ~config ~drift_threshold ~domains ~clone (plan : plan) =
  let allocation =
    if clone then
      clone_allocation ~capacity:plan.problem.Problem.capacity
        plan.problem.Problem.workload plan.allocation
    else plan.allocation
  in
  let homes =
    Arena.Int_table.create ~capacity:(2 * plan.selection.Selection.num_pairs + 16) ()
  in
  rebuild_homes homes allocation;
  {
    problem = plan.problem;
    selection = plan.selection;
    allocation;
    homes;
    config;
    domains;
    drift_threshold;
    churned_pairs = 0;
  }

let of_plan ?(config = Solver.default) ?(drift_threshold = default_drift_threshold)
    ?(domains = 1) plan =
  of_parts ~config ~drift_threshold ~domains ~clone:true plan

let create ?(config = Solver.default) ?(drift_threshold = default_drift_threshold)
    ?(domains = 1) p =
  let r = Solver.solve ~config ~domains p in
  of_parts ~config ~drift_threshold ~domains ~clone:false
    { problem = p; selection = r.Solver.selection; allocation = r.Solver.allocation }

let plan t = { problem = t.problem; selection = t.selection; allocation = t.allocation }
let problem t = t.problem
let num_vms t = Allocation.num_vms t.allocation

let cost t =
  Problem.cost t.problem ~vms:(Allocation.num_vms t.allocation)
    ~bandwidth:(Allocation.total_load t.allocation)

let residual t id =
  if id < 0 || id >= Allocation.num_vms t.allocation then
    invalid_arg (Printf.sprintf "Engine.residual: no VM %d" id);
  Allocation.free_of t.allocation id

let rem_v t v =
  Float.max 0. (Problem.tau_v t.problem v -. t.selection.Selection.selected_rate.(v))

let churned_pairs t = t.churned_pairs

let iter_homes t f =
  Arena.Int_table.iter
    (fun key id ->
      let topic, v = Arena.decode_pair key in
      f ~topic ~subscriber:v ~vm:id)
    t.homes

(* The CBP insertion rule shared by reprovisioning, recovery, and delta
   application: pending pairs grouped per topic, most-free VM that can
   take a pair, fresh VMs on overflow. Returns how many VMs it deployed. *)
let place_pending (p : Problem.t) a homes pending =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  let deployed = ref 0 in
  Hashtbl.iter
    (fun topic subs ->
      let ev = Workload.event_rate w topic in
      let subs = Array.of_list subs in
      let n = Array.length subs in
      let from = ref 0 in
      while !from < n do
        (* Most-free VM that can take a pair, lowest id on ties — an id
           scan over the flat residual arrays. *)
        let best = ref (-1) in
        for id = 0 to Allocation.num_vms a - 1 do
          if Allocation.max_pairs_that_fit a (Allocation.vm_at a id) ~topic ~ev ~eps > 0
             && (!best < 0 || Allocation.free_of a !best < Allocation.free_of a id)
          then best := id
        done;
        let vm =
          if !best >= 0 then Allocation.vm_at a !best
          else
              let vm = Allocation.deploy a in
              incr deployed;
              if Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps = 0 then
                raise
                  (Problem.Infeasible
                     (Printf.sprintf
                        "topic %d: a single pair needs %g bandwidth but BC is %g" topic
                        (2. *. ev) p.Problem.capacity));
              vm
        in
        let k = min (Allocation.max_pairs_that_fit a vm ~topic ~ev ~eps) (n - !from) in
        Allocation.place a vm ~topic ~ev ~subscribers:subs ~from:!from ~count:k;
        let id = Allocation.vm_id vm in
        for i = !from to !from + k - 1 do
          Arena.Int_table.set homes (home_key ~topic ~subscriber:subs.(i)) id
        done;
        from := !from + k
      done)
    pending;
  !deployed

let resolve t (p' : Problem.t) ~dirty_subscribers ~old_pairs ~old_vms =
  let r = Solver.solve ~config:t.config ~domains:t.domains p' in
  t.problem <- p';
  t.selection <- r.Solver.selection;
  t.allocation <- r.Solver.allocation;
  rebuild_homes t.homes t.allocation;
  t.churned_pairs <- 0;
  {
    pairs_kept = 0;
    pairs_added = r.Solver.selection.Selection.num_pairs;
    pairs_removed = old_pairs;
    pairs_evicted = 0;
    vms_added = r.Solver.num_vms;
    vms_removed = old_vms;
    dirty_subscribers;
    resolved = true;
  }

let retarget t ?dirty (p' : Problem.t) =
  let w' = p'.Problem.workload in
  let old_w = t.problem.Problem.workload in
  let n = Workload.num_subscribers w' in
  let dirty = match dirty with Some d -> d | None -> Array.make n true in
  let old_selection = t.selection in
  let old_n = Array.length old_selection.Selection.chosen in
  let old_pairs = old_selection.Selection.num_pairs in
  let old_vms = Allocation.num_vms t.allocation in
  let dirty_subscribers =
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty
  in
  let selection = Selection.reselect p' ~previous:old_selection ~dirty in
  (* Diff the selections over the dirty subscribers only: clean ones
     share their arrays with [old_selection] by construction. *)
  let removals = ref [] in
  let additions = ref [] in
  for v = n - 1 downto 0 do
    if dirty.(v) then begin
      let oldc = if v < old_n then old_selection.Selection.chosen.(v) else [||] in
      let newc = selection.Selection.chosen.(v) in
      let ko = Array.length oldc and kn = Array.length newc in
      let i = ref 0 and j = ref 0 in
      while !i < ko || !j < kn do
        if !i < ko && (!j >= kn || oldc.(!i) < newc.(!j)) then begin
          removals := (oldc.(!i), v) :: !removals;
          incr i
        end
        else if !j < kn && (!i >= ko || newc.(!j) < oldc.(!i)) then begin
          additions := (newc.(!j), v) :: !additions;
          incr j
        end
        else begin
          incr i;
          incr j
        end
      done
    end
  done;
  let pairs_removed = List.length !removals in
  let pairs_added = List.length !additions in
  t.churned_pairs <- t.churned_pairs + pairs_removed + pairs_added;
  let budget =
    t.drift_threshold *. float_of_int (max 1 selection.Selection.num_pairs)
  in
  if float_of_int t.churned_pairs > budget then
    resolve t p' ~dirty_subscribers ~old_pairs ~old_vms
  else begin
    let old_capacity = t.problem.Problem.capacity in
    t.problem <- p';
    t.selection <- selection;
    (* A changed BC invalidates the fleet's fixed per-VM capacity:
       re-register every placement against the new one (loads still under
       the old rates; they are re-priced below). *)
    if p'.Problem.capacity <> old_capacity then begin
      t.allocation <-
        clone_allocation ~capacity:p'.Problem.capacity old_w t.allocation;
      rebuild_homes t.homes t.allocation
    end;
    let a = t.allocation in
    (* Drop deselected pairs first, under the old rate bookkeeping (a
       removed pair may reference a topic the new workload no longer
       has, and VM loads still carry the old rates at this point). *)
    List.iter
      (fun (topic, v) ->
        let key = home_key ~topic ~subscriber:v in
        let id = Arena.Int_table.find t.homes key in
        if id >= 0 then begin
          ignore
            (Allocation.remove a (Allocation.vm_at a id) ~topic
               ~ev:(Workload.event_rate old_w topic) ~subscriber:v);
          Arena.Int_table.remove t.homes key
        end
        (* not placed: tolerated, as Reprovision always did *))
      !removals;
    (* Re-price the fleet if any surviving topic's rate moved. *)
    let old_rates = Workload.event_rates old_w in
    let new_rates = Workload.event_rates w' in
    let rates_changed = ref (Array.length new_rates < Array.length old_rates) in
    for i = 0 to min (Array.length old_rates) (Array.length new_rates) - 1 do
      if old_rates.(i) <> new_rates.(i) then rates_changed := true
    done;
    if !rates_changed then Allocation.rebuild_loads a ~event_rates:new_rates;
    (* Evict from VMs pushed over capacity: keep taking a pair of the
       highest-rate topic on the VM until it fits again (its incoming
       stream disappears with the last pair, so this converges). *)
    let pending : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let pend topic v =
      Hashtbl.replace pending topic
        (v :: Option.value ~default:[] (Hashtbl.find_opt pending topic))
    in
    let eps = Problem.epsilon p' in
    let pairs_evicted = ref 0 in
    Array.iter
      (fun vm ->
        while Allocation.load vm > p'.Problem.capacity +. eps do
          let worst = ref None in
          List.iter
            (fun topic ->
              let ev = Workload.event_rate w' topic in
              match !worst with
              | Some (_, ev') when ev' >= ev -> ()
              | _ -> worst := Some (topic, ev))
            (Allocation.topics_on vm);
          match !worst with
          | None -> failwith "Engine: over-capacity VM with no topics"
          | Some (topic, ev) -> (
              match Allocation.subscribers_of_topic_on vm topic with
              | [] -> failwith "Engine: topic listed but empty"
              | v :: _ ->
                  ignore (Allocation.remove a vm ~topic ~ev ~subscriber:v);
                  Arena.Int_table.remove t.homes (home_key ~topic ~subscriber:v);
                  pend topic v;
                  incr pairs_evicted)
        done)
      (Allocation.vms a);
    List.iter (fun (topic, v) -> pend topic v) !additions;
    let deployed = place_pending p' a t.homes pending in
    if Array.exists (fun vm -> Allocation.num_pairs_on vm = 0) (Allocation.vms a)
    then begin
      let compacted, mapping = Allocation.compact a in
      t.allocation <- compacted;
      (* Every surviving home points at a VM with pairs, so its mapping
         entry is a valid new id. *)
      Arena.Int_table.map_values_inplace (fun id -> mapping.(id)) t.homes
    end;
    let after = Allocation.num_vms t.allocation in
    {
      pairs_kept = old_pairs - pairs_removed;
      pairs_added;
      pairs_removed;
      pairs_evicted = !pairs_evicted;
      vms_added = deployed;
      vms_removed = old_vms + deployed - after;
      dirty_subscribers;
      resolved = false;
    }
  end

(* Which subscribers could Stage 1 answer differently for? Exactly those
   whose inputs to [Selection.gsp_subscriber] changed: their interest
   set, or the rate of a topic they follow. Everyone else provably keeps
   their old selection, which is what makes [reselect] exact. *)
let compute_dirty t deltas w' =
  let old_w = t.problem.Problem.workload in
  let old_n = Workload.num_subscribers old_w in
  let old_topics = Workload.num_topics old_w in
  let n = Workload.num_subscribers w' in
  let dirty = Array.make n false in
  for v = old_n to n - 1 do
    dirty.(v) <- true
  done;
  List.iter
    (fun d ->
      match d with
      | Delta.Subscribe { subscriber; _ } | Delta.Unsubscribe { subscriber; _ } ->
          dirty.(subscriber) <- true
      | Delta.Rate_change { topic; rate } ->
          (* A topic born earlier in this same batch has only followers
             that subscribed in the batch — already dirty. *)
          if topic < old_topics && Workload.event_rate old_w topic <> rate then
            Array.iter (fun v -> dirty.(v) <- true) (Workload.followers old_w topic)
      | Delta.New_topic _ | Delta.New_subscriber _ -> ())
    deltas;
  dirty

let apply t deltas =
  Mcss_obs.Gc_phase.measure "engine.apply" @@ fun () ->
  let w = t.problem.Problem.workload in
  (* [compute_dirty] needs the old workload's followers anyway; forcing
     them before the delta lets [Delta.apply] evolve the cache into the
     new workload instead of every batch rebuilding it from scratch. *)
  if Workload.num_topics w > 0 then ignore (Workload.followers w 0);
  let w' = Delta.apply w deltas in
  let p' =
    Problem.create ~workload:w' ~tau:t.problem.Problem.tau
      ~capacity:t.problem.Problem.capacity t.problem.Problem.costs
  in
  let dirty = compute_dirty t deltas w' in
  retarget t ~dirty p'

let fail t ~failed =
  let p = t.problem in
  let w = p.Problem.workload in
  let old_vms = Allocation.vms t.allocation in
  let dead = Hashtbl.create 8 in
  List.iter
    (fun id -> if id >= 0 && id < Array.length old_vms then Hashtbl.replace dead id ())
    failed;
  (* Survivors keep their placements; the dead VMs' pairs go to the
     pending pool. *)
  let a = Allocation.create ~capacity:p.Problem.capacity in
  let pending : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let pairs_rehomed = ref 0 in
  let survivors = ref 0 in
  Array.iter
    (fun vm ->
      let id = Allocation.vm_id vm in
      if Hashtbl.mem dead id then
        Allocation.iter_vm_pairs vm (fun topic v ->
            incr pairs_rehomed;
            Hashtbl.replace pending topic
              (v :: Option.value ~default:[] (Hashtbl.find_opt pending topic)))
      else begin
        incr survivors;
        let copy = Allocation.deploy a in
        List.iter
          (fun topic ->
            let subs = Array.of_list (Allocation.subscribers_of_topic_on vm topic) in
            Allocation.place a copy ~topic ~ev:(Workload.event_rate w topic)
              ~subscribers:subs ~from:0 ~count:(Array.length subs))
          (Allocation.topics_on vm)
      end)
    old_vms;
  let before_placement = Allocation.num_vms a in
  t.allocation <- a;
  rebuild_homes t.homes a;
  ignore (place_pending p a t.homes pending);
  {
    vms_lost = Array.length old_vms - !survivors;
    pairs_rehomed = !pairs_rehomed;
    vms_added = Allocation.num_vms a - before_placement;
  }
