(** Text serialisation for delta streams, in the same line-oriented style
    as {!Mcss_workload.Wio} — so recorded churn can be replayed by
    [mcss update], [mcss simulate --deltas], and the bench, and the
    planning service can journal a batch of deltas as one WAL op.

    Format (['#'] comments and blank lines allowed):
    {v
    mcss-deltas 1
    subscribe <subscriber> <topic>
    unsubscribe <subscriber> <topic>
    rate <topic> <new-rate>
    new-topic <rate>
    new-subscriber <k> <topic_1> ... <topic_k>
    v}

    Rates are printed with [%.17g], so a round trip through text is
    bit-exact. Validity against a particular workload (ids in range,
    no double subscribes, ...) is {e not} checked here — that is
    {!Delta.apply}'s job; the codec only rejects syntax (and
    non-positive rates, which no workload could accept). *)

exception Parse_error of string
(** Carries a [line N: ...] message. *)

val to_string : Delta.t list -> string
val of_string : string -> Delta.t list

val save : Delta.t list -> string -> unit
val load : string -> Delta.t list
(** [load]/[save] raise [Sys_error] on I/O failure, {!Parse_error} on
    malformed input. *)

val output : out_channel -> Delta.t list -> unit
val input : in_channel -> Delta.t list
