type 'a cell = {
  m : Mutex.t;
  cv : Condition.t;
  mutable outcome : ('a, exn) result option;  (* [None] while running *)
}

type 'a t = { lock : Mutex.t; table : (string, 'a cell) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 16 }

type 'a role = Leader of 'a | Follower of 'a

let run t ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some cell ->
      Mutex.unlock t.lock;
      Mutex.lock cell.m;
      let rec wait () =
        match cell.outcome with
        | Some r -> r
        | None ->
            Condition.wait cell.cv cell.m;
            wait ()
      in
      let r = wait () in
      Mutex.unlock cell.m;
      (match r with Ok v -> Follower v | Error e -> raise e)
  | None ->
      let cell = { m = Mutex.create (); cv = Condition.create (); outcome = None } in
      Hashtbl.replace t.table key cell;
      Mutex.unlock t.lock;
      let outcome = try Ok (f ()) with e -> Error e in
      (* Unpublish before waking the followers, so a request arriving
         after completion starts fresh rather than adopting a result its
         cache lookup already missed. *)
      Mutex.lock t.lock;
      Hashtbl.remove t.table key;
      Mutex.unlock t.lock;
      Mutex.lock cell.m;
      cell.outcome <- Some outcome;
      Condition.broadcast cell.cv;
      Mutex.unlock cell.m;
      (match outcome with Ok v -> Leader v | Error e -> raise e)

let in_flight t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n
