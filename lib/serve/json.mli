(** A minimal JSON value type with a strict parser and printer — just
    enough for the planning daemon's line-delimited protocol, so the
    serving stack stays zero-dependency.

    The parser accepts RFC 8259 JSON with two deliberate relaxations:
    numbers are read with [float_of_string] (so [1e999] parses to
    [infinity] rather than erroring), and top-level values other than
    objects/arrays are allowed. The printer always emits valid JSON on
    one line (non-finite floats become [null]), so a printed value can
    be framed by a single ['\n']. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** Fields in insertion order; duplicates kept. *)

val parse : string -> (t, string) result
(** Parse one JSON value; [Error] carries a message with the byte
    offset. Trailing whitespace is allowed, trailing garbage is not. *)

val to_string : t -> string
(** One-line rendering; strings are escaped per RFC 8259. *)

(** {2 Accessors}

    All return [None] on a type or shape mismatch instead of raising, so
    request decoding can fold them with [Option.bind]. *)

val member : string -> t -> t option
(** First field with that name, when the value is an object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
(** Accepts [Int] and integral [Float]s. *)

val to_float_opt : t -> float option
(** Accepts [Float] and [Int]. *)

val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
