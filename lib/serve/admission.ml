module Clock = Mcss_obs.Clock

type t = {
  max : int;
  mutable busy : int;
  mutable rejected : int;
  lock : Mutex.t;
}

let create ~max_in_flight =
  if max_in_flight < 1 then invalid_arg "Admission.create: max_in_flight must be >= 1";
  { max = max_in_flight; busy = 0; rejected = 0; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_acquire t =
  locked t (fun () ->
      if t.busy < t.max then begin
        t.busy <- t.busy + 1;
        true
      end
      else begin
        t.rejected <- t.rejected + 1;
        false
      end)

let release t = locked t (fun () -> t.busy <- max 0 (t.busy - 1))

let with_slot t f =
  if try_acquire t then
    Some (Fun.protect ~finally:(fun () -> release t) f)
  else None

let in_flight t = locked t (fun () -> t.busy)
let max_in_flight t = t.max
let rejected t = locked t (fun () -> t.rejected)

(* ----- deadlines ----- *)

(* A non-positive budget is [Expired] from birth rather than "now plus
   zero": checking it never races the monotonic clock, so a 0 ms
   deadline deterministically times out. *)
type deadline = Never | At of int64 (* absolute monotonic ns *) | Expired

let deadline_of_ms = function
  | None -> Never
  | Some ms when ms <= 0. -> Expired
  | Some ms -> At (Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)))

let remaining_ms = function
  | Never -> infinity
  | Expired -> 0.
  | At at -> Int64.to_float (Int64.sub at (Clock.now_ns ())) /. 1e6

let expired = function
  | Never -> false
  | Expired -> true
  | At _ as d -> remaining_ms d <= 0.
