module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Allocation = Mcss_core.Allocation
module Plan_io = Mcss_core.Plan_io
module Engine = Mcss_engine.Engine
module Delta_io = Mcss_engine.Delta_io
module Failure_model = Mcss_resilience.Failure_model
module Orchestrator = Mcss_resilience.Orchestrator
module Sla = Mcss_resilience.Sla
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Gauge = Mcss_obs.Metric.Gauge
module Histogram = Mcss_obs.Metric.Histogram
module Clock = Mcss_obs.Clock
module Sink = Mcss_obs.Sink

type config = {
  cache_capacity : int;
  max_in_flight : int;
  default_deadline_ms : float option;
  journal : Journal.config option;
  breaker : Breaker.config;
  chaos_policy : Orchestrator.policy;
  name : string;
  quorum_acks : int;
  quorum_timeout_ms : float;
}

let default_config =
  {
    cache_capacity = 128;
    max_in_flight = 4;
    default_deadline_ms = None;
    journal = None;
    breaker = Breaker.default_config;
    chaos_policy = Orchestrator.default_policy;
    name = "node";
    quorum_acks = 1;
    quorum_timeout_ms = 2000.;
  }

(* A cached plan: the full solver result (so chaos drills can replay the
   allocation) plus the money view, which depends only on the params the
   plan is keyed under, plus the canonical plan text the journal stores
   and the digest clients use to compare plans across restarts. *)
type plan = {
  result : Solver.result;
  bandwidth_gb : float;
  solve_seconds : float;
  text : string;
  plan_digest : string;
}

(* A cache entry remembers what it was solved for, so a snapshot can
   re-journal it and a degraded reply can disclose the served params. *)
type entry = { digest : string; params : Protocol.solve_params; plan : plan }

type replay_stats = {
  workloads_recovered : int;
  plans_recovered : int;
  updates_replayed : int;
  records_skipped : int;
  wal_truncated_bytes : int;
  corrupt_records : int;
  dropped_frames : int;
}

(* A leader journals its own ops and (via [journal_hook]) feeds them to
   the replication hub; a follower's journal is a verbatim mirror of the
   leader's record sequence, so local ops must never append to it — only
   {!apply_replicated} writes it. *)
type role = Leader | Follower

type journal_event = Appended of { index : int; epoch : int; payload : string }

(* Leader outcome shared with single-flight followers. A late solve
   ([M_late]) is a timeout for the leader but the plan was cached, so
   followers treat it as a hit. *)
type miss_outcome =
  | M_plan of entry
  | M_late of entry * string
  | M_shed
  | M_err of solve_error

and solve_error = E of Protocol.error_code * string

type t = {
  config : config;
  obs : Registry.t;
  cache : entry Plan_cache.t;
  gate : Admission.t;
  breaker : Breaker.t;
  sf : miss_outcome Single_flight.t;
  workloads : (string, Workload.t) Hashtbl.t;
  fallback : (string, entry) Hashtbl.t;
      (** Last solved plan per workload digest — what degraded replies
          serve. Never evicted (entries are small: text + result). *)
  lock : Mutex.t;  (** Guards [workloads], [fallback], [obs] updates, and the mutable fields. *)
  journal : Journal.t option;
  journal_lock : Mutex.t;
      (** Serialises appends and snapshots. Lock order: [journal_lock]
          then [lock]; never the reverse. *)
  update_lock : Mutex.t;
      (** Serialises [update] requests end to end (engine rebuild, delta
          application, publication, journaling) so concurrent updates
          against the same digest cannot interleave their WAL ops.
          Taken before [journal_lock] and [lock], never inside them. *)
  started_ns : int64;
  mutable draining : bool;
  mutable requests : int;
  mutable solver_run_count : int;
  mutable degraded_served : int;
  mutable replay : replay_stats option;
  mutable role : role;
  mutable volatile_epoch : int;
      (** Fencing epoch when the service has no journal to persist it
          in; shadowed by the journal's epoch otherwise. *)
  mutable journal_hook : (journal_event -> unit) option;
      (** Called under [journal_lock] right after a leader-side append,
          with the record's absolute index and frame epoch. The
          replication hub hangs its fan-out here; it must not block. *)
  mutable commit_gate : (index:int -> (unit, string) result) option;
      (** Blocks until the record at [index] is fsynced on a quorum (the
          replication hub installs this). Consulted outside
          [journal_lock], only when [quorum_acks > 1]. *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let obs t = t.obs
let draining t = locked t (fun () -> t.draining)
let cache_stats t = Plan_cache.stats t.cache
let solver_runs t = locked t (fun () -> t.solver_run_count)
let breaker t = t.breaker
let replay_stats t = locked t (fun () -> t.replay)
let role t = locked t (fun () -> t.role)
let role_to_string = function Leader -> "leader" | Follower -> "follower"
let set_journal_hook t hook = locked t (fun () -> t.journal_hook <- hook)
let set_commit_gate t gate = locked t (fun () -> t.commit_gate <- gate)

let epoch t =
  match t.journal with
  | Some j -> Journal.epoch j
  | None -> locked t (fun () -> t.volatile_epoch)

(* Raise (never lower) this node's fencing epoch. *)
let adopt_epoch t e =
  match t.journal with
  | Some j -> Journal.set_epoch j e
  | None -> locked t (fun () -> if e > t.volatile_epoch then t.volatile_epoch <- e)

(* ----- content digests ----- *)

(* The digest is over a canonical rendering of the workload's semantic
   content (rates at full float precision, interests sorted as Workload
   stores them), so it is independent of Wio formatting details like
   comments or float spelling in the source file. *)
let digest_of_workload w =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "mcss-workload-digest 1\n";
  Buffer.add_string buf (string_of_int (Workload.num_topics w));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (Workload.num_subscribers w));
  Buffer.add_char buf '\n';
  Array.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "%.17g" r);
      Buffer.add_char buf '\n')
    (Workload.event_rates w);
  for v = 0 to Workload.num_subscribers w - 1 do
    Array.iter
      (fun topic ->
        Buffer.add_string buf (string_of_int topic);
        Buffer.add_char buf ' ')
      (Workload.interests w v);
    Buffer.add_char buf '\n'
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let find_workload t digest = locked t (fun () -> Hashtbl.find_opt t.workloads digest)

let cache_key digest (params : Protocol.solve_params) =
  Printf.sprintf "%s|tau=%.17g|instance=%s|bc=%s|config=%s" digest
    params.Protocol.tau params.Protocol.instance
    (match params.Protocol.bc_events with
    | None -> "default"
    | Some x -> Printf.sprintf "%.17g" x)
    params.Protocol.config

(* ----- problems ----- *)

(* "parallel" opts a request into the multi-domain Stage-1; everything
   else resolves through the solver's own ladder so server and CLI name
   configurations identically. *)
let resolve_config name =
  if name = "parallel" then
    Some { Solver.default with Solver.stage1 = Solver.Gsp_parallel }
  else Solver.config_of_name name

let problem_for w (params : Protocol.solve_params) =
  match Instance.find params.Protocol.instance with
  | None ->
      Error
        (E (Protocol.Bad_request,
            Printf.sprintf "unknown instance type %S" params.Protocol.instance))
  | Some instance -> (
      let model = Cost_model.ec2_2014 ~instance () in
      match
        Problem.of_pricing ?capacity_events:params.Protocol.bc_events ~workload:w
          ~tau:params.Protocol.tau model
      with
      | p -> Ok (model, p)
      | exception Invalid_argument m -> Error (E (Protocol.Bad_request, m)))

(* ----- journal ops -----

   One JSON object per record. Floats that must round-trip exactly
   (params feed {!cache_key}, which renders them at [%.17g]) are stored
   as [%.17g] strings, not JSON numbers — the wire printer rounds
   numbers to 12 significant digits. *)

let f17 x = Json.String (Printf.sprintf "%.17g" x)

let f17_get j key =
  match Json.member key j with
  | Some (Json.String s) -> float_of_string_opt s
  | Some v -> Json.to_float_opt v
  | None -> None

(* Every op records which node accepted it. Replay ignores the field;
   replication preserves it verbatim, so after a partition heals the
   nemesis can group journaled writes by (frame epoch, origin) and
   assert no epoch ever saw two writers. *)
let load_op ~origin digest w =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "load");
         ("origin", Json.String origin);
         ("digest", Json.String digest);
         ("wio", Json.String (Wio.to_string w));
       ])

let plan_op ~origin (e : entry) =
  let p = e.params in
  Json.to_string
    (Json.Obj
       ([
          ("op", Json.String "plan");
          ("origin", Json.String origin);
          ("digest", Json.String e.digest);
          ("tau", f17 p.Protocol.tau);
          ("instance", Json.String p.Protocol.instance);
          ("config", Json.String p.Protocol.config);
        ]
       @ (match p.Protocol.bc_events with
         | None -> []
         | Some x -> [ ("bc", f17 x) ])
       @ [
           ("plan", Json.String e.plan.text);
           ("bandwidth", f17 e.plan.result.Solver.bandwidth);
           ("bandwidth_gb", f17 e.plan.bandwidth_gb);
           ("cost", f17 e.plan.result.Solver.cost);
           ("stage1_s", f17 e.plan.result.Solver.stage1_seconds);
           ("stage2_s", f17 e.plan.result.Solver.stage2_seconds);
           ("solve_s", f17 e.plan.solve_seconds);
         ]))

(* An update is journaled as its cause (the delta batch), not its effect:
   the engine is deterministic, so replay re-applies the deltas to the
   base plan and must land on the recorded [new_digest] — a cheap
   end-to-end check that recovery reproduced the live run bit for bit.
   Snapshots fold the evolved workload and plan into ordinary load/plan
   records, so update ops only ever live in the WAL tail. *)
let update_op ~origin ~digest ~(params : Protocol.solve_params) ~deltas
    ~new_digest =
  Json.to_string
    (Json.Obj
       ([
          ("op", Json.String "update");
          ("origin", Json.String origin);
          ("digest", Json.String digest);
          ("tau", f17 params.Protocol.tau);
          ("instance", Json.String params.Protocol.instance);
          ("config", Json.String params.Protocol.config);
        ]
       @ (match params.Protocol.bc_events with
         | None -> []
         | Some x -> [ ("bc", f17 x) ])
       @ [
           ("deltas", Json.String deltas);
           ("new_digest", Json.String new_digest);
         ]))

(* ----- the incremental engine behind [update] ----- *)

(* The plan entry an update starts from: the live cache, or the
   never-evicted fallback when it was solved under the same params. *)
let base_entry t ~key ~digest =
  match Plan_cache.find t.cache key with
  | Some e -> Some e
  | None -> (
      match locked t (fun () -> Hashtbl.find_opt t.fallback digest) with
      | Some e when cache_key e.digest e.params = key -> Some e
      | _ -> None)

(* Both the live path and journal replay rebuild the engine from the
   entry's canonical plan text, so they start from bit-identical state —
   that, plus the engine's determinism, is what makes the recorded
   [new_digest] reproducible after a crash. *)
let engine_of_entry ~w (e : entry) =
  match problem_for w e.params with
  | Error err -> Error err
  | Ok (model, p) ->
      let config =
        Option.value ~default:Solver.default
          (resolve_config e.params.Protocol.config)
      in
      let allocation, selection = Plan_io.of_string ~workload:w e.plan.text in
      Ok (model, Engine.of_plan ~config { Engine.problem = p; selection; allocation })

(* Snapshot the engine as a cache entry — through the canonical text, so
   the cached allocation is detached from the live engine and identical
   to what a restart would parse back. *)
let entry_of_engine ~model ~(params : Protocol.solve_params) ~solve_seconds eng =
  let p = Engine.problem eng in
  let w = p.Problem.workload in
  let text = Plan_io.to_string (Engine.plan eng).Engine.allocation in
  let allocation, selection = Plan_io.of_string ~workload:w text in
  let num_vms = Allocation.num_vms allocation in
  let bandwidth = Allocation.total_load allocation in
  let result =
    {
      Solver.selection;
      allocation;
      num_vms;
      bandwidth;
      cost = Problem.cost p ~vms:num_vms ~bandwidth;
      stage1_seconds = 0.;
      stage2_seconds = 0.;
    }
  in
  let plan =
    {
      result;
      bandwidth_gb = Cost_model.gb_of_events model bandwidth;
      solve_seconds;
      text;
      plan_digest = Digest.to_hex (Digest.string text);
    }
  in
  { digest = digest_of_workload w; params; plan }

(* Re-run a journaled update. [None] when the record no longer replays
   (base plan missing, deltas malformed, infeasible, ...). *)
let replayed_update t ~w ~digest ~(params : Protocol.solve_params) ~deltas =
  match base_entry t ~key:(cache_key digest params) ~digest with
  | None -> None
  | Some e -> (
      match
        let ds = Delta_io.of_string deltas in
        match engine_of_entry ~w e with
        | Error _ -> None
        | Ok (model, eng) ->
            ignore (Engine.apply eng ds);
            Some
              ( entry_of_engine ~model ~params ~solve_seconds:0. eng,
                (Engine.problem eng).Problem.workload )
      with
      | r -> r
      | exception _ -> None)

(* Rebuild service state from one journal record. Registers directly
   (no re-journaling). Raises nothing: any malformed or orphaned record
   is skipped and counted. Each registry touch takes [t.lock] on its
   own, so the same code serves startup replay and live application of
   a leader's replication stream on a follower. *)
let apply_record t line ~workloads ~plans ~updates ~skipped =
  let skip () = incr skipped in
  match Json.parse line with
  | Error _ -> skip ()
  | Ok j -> (
      let str key = Json.member key j |> Fun.flip Option.bind Json.to_string_opt in
      match str "op" with
      | Some "load" -> (
          match str "wio" with
          | None -> skip ()
          | Some text -> (
              match Wio.of_string text with
              | w ->
                  let digest = digest_of_workload w in
                  (* Trust-but-verify: a record whose payload no longer
                     hashes to its digest would orphan every plan keyed
                     under it — drop it rather than serve mislabeled
                     state. *)
                  if str "digest" = Some digest then begin
                    locked t (fun () -> Hashtbl.replace t.workloads digest w);
                    incr workloads
                  end
                  else skip ()
              | exception Wio.Parse_error _ -> skip ()))
      | Some "plan" -> (
          match (str "digest", str "plan") with
          | Some digest, Some text -> (
              match locked t (fun () -> Hashtbl.find_opt t.workloads digest) with
              | None -> skip () (* plan for a workload we never recovered *)
              | Some w -> (
                  let params =
                    match
                      ( f17_get j "tau",
                        str "instance",
                        str "config" )
                    with
                    | Some tau, Some instance, Some config ->
                        Some
                          {
                            Protocol.tau;
                            instance;
                            config;
                            bc_events = f17_get j "bc";
                          }
                    | _ -> None
                  in
                  match params with
                  | None -> skip ()
                  | Some params -> (
                      match Plan_io.of_string ~workload:w text with
                      | allocation, selection -> (
                          match
                            ( f17_get j "bandwidth",
                              f17_get j "bandwidth_gb",
                              f17_get j "cost" )
                          with
                          | Some bandwidth, Some bandwidth_gb, Some cost ->
                              let result =
                                {
                                  Solver.selection;
                                  allocation;
                                  num_vms = Allocation.num_vms allocation;
                                  bandwidth;
                                  cost;
                                  stage1_seconds =
                                    Option.value ~default:0. (f17_get j "stage1_s");
                                  stage2_seconds =
                                    Option.value ~default:0. (f17_get j "stage2_s");
                                }
                              in
                              let plan =
                                {
                                  result;
                                  bandwidth_gb;
                                  solve_seconds =
                                    Option.value ~default:0. (f17_get j "solve_s");
                                  text;
                                  plan_digest = Digest.to_hex (Digest.string text);
                                }
                              in
                              let e = { digest; params; plan } in
                              Plan_cache.add t.cache (cache_key digest params) e;
                              locked t (fun () ->
                                  Hashtbl.replace t.fallback digest e);
                              incr plans
                          | _ -> skip ())
                      | exception Plan_io.Parse_error _ -> skip ())))
          | _ -> skip ())
      | Some "update" -> (
          match (str "digest", str "deltas", str "new_digest") with
          | Some digest, Some deltas, Some new_digest -> (
              let params =
                match (f17_get j "tau", str "instance", str "config") with
                | Some tau, Some instance, Some config ->
                    Some
                      {
                        Protocol.tau;
                        instance;
                        config;
                        bc_events = f17_get j "bc";
                      }
                | _ -> None
              in
              match
                (locked t (fun () -> Hashtbl.find_opt t.workloads digest), params)
              with
              | Some w, Some params -> (
                  match replayed_update t ~w ~digest ~params ~deltas with
                  | Some (e, w') when e.digest = new_digest ->
                      (* The evolved workload was also journaled as a
                         load op, but re-registering it here keeps the
                         record self-sufficient. *)
                      locked t (fun () -> Hashtbl.replace t.workloads e.digest w');
                      Plan_cache.add t.cache (cache_key e.digest e.params) e;
                      locked t (fun () -> Hashtbl.replace t.fallback e.digest e);
                      incr updates
                  | Some _ ->
                      (* Replay landed on a different digest than the
                         live run recorded: the record cannot be trusted
                         (corruption or a non-deterministic engine) —
                         drop it rather than serve mislabeled state. *)
                      skip ()
                  | None -> skip ())
              | _ -> skip ())
          | _ -> skip ())
      | _ -> skip ())

(* Everything needed to rebuild the registry and cache from scratch:
   loads first (plan replay looks its workload up), then plans with the
   cache's LRU entries last so replaying reproduces the recency order.
   Fallback-only plans (evicted from the cache but still served by
   degraded replies) go before the cache so they cannot evict live
   entries on replay. *)
let full_state t =
  let origin = t.config.name in
  let cached = List.map snd (Plan_cache.to_list t.cache) in
  let loads, fallback_only =
    locked t (fun () ->
        let seen = Hashtbl.create 64 in
        List.iter
          (fun e -> Hashtbl.replace seen (cache_key e.digest e.params) ())
          cached;
        ( Hashtbl.fold (fun d w acc -> load_op ~origin d w :: acc) t.workloads [],
          Hashtbl.fold
            (fun _ e acc ->
              if Hashtbl.mem seen (cache_key e.digest e.params) then acc
              else e :: acc)
            t.fallback [] ))
  in
  loads @ List.map (plan_op ~origin) (fallback_only @ cached)

(* Append one op; when the WAL has grown past the configured threshold,
   fold it into a fresh snapshot while still holding [journal_lock] so
   concurrent appends cannot interleave with the truncation. Returns the
   record's absolute index so callers can gate the reply on a quorum
   ack. On a follower this is a no-op: its journal mirrors the leader's
   record sequence and only {!apply_replicated} may write it. *)
let journal_append t op =
  match t.journal with
  | None -> None
  | Some j when role t = Leader ->
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () ->
          Journal.append j op;
          let index = Journal.last_index j in
          let epoch = Journal.last_epoch j in
          (match locked t (fun () -> t.journal_hook) with
          | None -> ()
          | Some hook -> hook (Appended { index; epoch; payload = op }));
          if Journal.snapshot_due j then Journal.snapshot j (full_state t);
          Some index)
  | Some _ -> None

(* Wait (outside every lock) for [index] to be fsynced by a quorum. With
   no gate installed or [quorum_acks <= 1] replication stays async. *)
let await_commit t = function
  | None -> Ok ()
  | Some index -> (
      if t.config.quorum_acks <= 1 then Ok ()
      else
        match locked t (fun () -> t.commit_gate) with
        | None -> Ok ()
        | Some gate -> (
            match gate ~index with
            | Ok () -> Ok ()
            | Error m ->
                Counter.inc
                  (Registry.counter t.obs
                     ~help:"Writes refused for lack of a replication quorum"
                     "serve.replication.no_quorum");
                Error m))

let register_workload t w =
  let digest = digest_of_workload w in
  let fresh =
    locked t (fun () ->
        let fresh = not (Hashtbl.mem t.workloads digest) in
        Hashtbl.replace t.workloads digest w;
        fresh)
  in
  (* Re-loading known content is a no-op on disk too. *)
  let index =
    if fresh then journal_append t (load_op ~origin:t.config.name digest w)
    else None
  in
  (digest, index)

let load_workload t w = fst (register_workload t w)

(* ----- replication support ----- *)

let journal_last_index t =
  match t.journal with None -> None | Some j -> Some (Journal.last_index j)

let journal_read_from t ~index =
  match t.journal with
  | None -> Error `Resync
  | Some j -> Journal.read_from j ~index

(* A consistent (base index, full state) pair for shipping to a
   follower that is too far behind for an incremental tail. Holding
   [journal_lock] pins the index while the state is rendered; a plan
   published but not yet journaled may slip into the state and also
   arrive later as a streamed record — replay is replace-semantics, so
   the duplicate is harmless. *)
let sync_state t =
  match t.journal with
  | None -> invalid_arg "Service.sync_state: service has no journal"
  | Some j ->
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () -> (Journal.last_index j, Journal.epoch j, full_state t))

let journal_epoch_at t ~index =
  match t.journal with None -> None | Some j -> Journal.epoch_at j ~index

let journal_last_epoch t =
  match t.journal with None -> None | Some j -> Some (Journal.last_epoch j)

(* Apply one record of the leader's stream on a follower: run it through
   the same replay path a restart uses, then mirror it into the local
   journal (folding into a snapshot when due, exactly like a leader).
   The index must be the successor of the follower's [last_index] —
   a gap or a rewind means this stream no longer matches the local
   journal and the caller must resync. Records that no longer replay
   (orphaned plans, malformed ops) are still mirrored: the journal
   tracks the leader's history, not local applicability. *)
let apply_replicated t ~index ~epoch payload =
  match t.journal with
  | None -> Error "service has no journal to replicate into"
  | Some j when role t = Leader ->
      (* A leader mirroring someone else's stream is exactly the
         split-brain this PR exists to prevent; the follow loop stops on
         promotion, so hitting this means a race it must lose. *)
      ignore j;
      Error "refusing replicated record: this node is a leader"
  | Some j ->
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () ->
          let expected = Journal.last_index j + 1 in
          if index <> expected then
            Error
              (Printf.sprintf
                 "replication gap: record %d arrived but journal is at %d" index
                 (expected - 1))
          else begin
            let workloads = ref 0
            and plans = ref 0
            and updates = ref 0
            and skipped = ref 0 in
            apply_record t payload ~workloads ~plans ~updates ~skipped;
            Journal.append ~epoch j payload;
            Counter.inc
              (Registry.counter t.obs ~help:"Leader records applied via replication"
                 "serve.replication.applied");
            if !skipped > 0 then
              Counter.inc
                (Registry.counter t.obs
                   ~help:"Replicated records mirrored but not applicable locally"
                   "serve.replication.skipped");
            if Journal.snapshot_due j then Journal.snapshot j (full_state t);
            Ok ()
          end)

(* Full resync: replace journal and in-memory state with a leader
   snapshot. After the call [journal_last_index t = Some base] and the
   service answers exactly as a fresh process that replayed the
   leader's journal would. *)
let reset_to_snapshot t ~base ~epoch payloads =
  match t.journal with
  | None -> Error "service has no journal to replicate into"
  | Some j when role t = Leader ->
      ignore j;
      Error "refusing snapshot reset: this node is a leader"
  | Some j ->
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () ->
          (* Any local records past the incoming base are a divergent
             un-acked tail (written under a now-fenced epoch); the
             install discards them — count what was thrown away. *)
          let divergent = Journal.last_index j - base in
          if divergent > 0 then
            Counter.add
              (Registry.counter t.obs
                 ~help:"Divergent un-acked records truncated on resync"
                 "serve.replication.truncated_records")
              divergent;
          Journal.install_snapshot j ~base ~epoch payloads;
          Plan_cache.clear t.cache;
          locked t (fun () ->
              Hashtbl.reset t.workloads;
              Hashtbl.reset t.fallback);
          let workloads = ref 0
          and plans = ref 0
          and updates = ref 0
          and skipped = ref 0 in
          List.iter
            (fun line -> apply_record t line ~workloads ~plans ~updates ~skipped)
            payloads;
          Counter.inc
            (Registry.counter t.obs ~help:"Full snapshot resyncs installed"
               "serve.replication.resyncs");
          Ok ())

(* Promotion always lands on an epoch strictly above everything this
   node has seen; the router passes the cluster-wide maximum plus one so
   it also fences every leader the router knows about. An already-
   leading node does not re-bump (a replayed promote must not burn
   epochs) but still adopts [epoch] when it is ahead. *)
let promote ?epoch t =
  let requested = Option.value ~default:0 epoch in
  let was = locked t (fun () ->
      let was = t.role in
      t.role <- Leader;
      was)
  in
  (match t.journal with
  | Some j ->
      if was = Follower then
        Journal.set_epoch j (max (Journal.epoch j + 1) requested)
      else Journal.set_epoch j requested
  | None ->
      locked t (fun () ->
          t.volatile_epoch <-
            (if was = Follower then max (t.volatile_epoch + 1) requested
             else max t.volatile_epoch requested)));
  if was = Follower then
    Counter.inc
      (Registry.counter t.obs ~help:"Follower-to-leader promotions"
         "serve.replication.promotions");
  was = Follower

(* Fenced step-down: only an epoch strictly ahead of ours may demote us.
   Returns whether the node was leading. *)
let demote t ~epoch:e =
  if e <= epoch t then
    Error
      (Printf.sprintf "demote fenced: epoch %d is not ahead of local epoch %d" e
         (epoch t))
  else begin
    adopt_epoch t e;
    let was = locked t (fun () ->
        let was = t.role in
        t.role <- Follower;
        was)
    in
    if was = Leader then
      Counter.inc
        (Registry.counter t.obs ~help:"Leader-to-follower fenced demotions"
           "serve.replication.demotions");
    Ok (was = Leader)
  end

let create ?obs ?(config = default_config) ?(role = Leader) ?replay_to () =
  let obs = match obs with Some r -> r | None -> Registry.create () in
  let journal, journal_replay =
    match config.journal with
    | None -> (None, None)
    | Some jc ->
        let j, replay = Journal.open_ ~obs jc in
        (Some j, Some replay)
  in
  let t =
    {
      config;
      obs;
      cache = Plan_cache.create ~capacity:config.cache_capacity;
      gate = Admission.create ~max_in_flight:config.max_in_flight;
      breaker = Breaker.create config.breaker;
      sf = Single_flight.create ();
      workloads = Hashtbl.create 8;
      fallback = Hashtbl.create 8;
      lock = Mutex.create ();
      journal;
      journal_lock = Mutex.create ();
      update_lock = Mutex.create ();
      started_ns = Clock.now_ns ();
      draining = false;
      requests = 0;
      solver_run_count = 0;
      degraded_served = 0;
      replay = None;
      role;
      volatile_epoch = 0;
      journal_hook = None;
      commit_gate = None;
    }
  in
  (match journal_replay with
  | None -> ()
  | Some r ->
      let workloads = ref 0 and plans = ref 0 and updates = ref 0 and skipped = ref 0 in
      let records =
        (* Point-in-time replay: stop after the first [replay_to]
           recovered records (snapshot records come first, then WAL). *)
        match replay_to with
        | None -> r.Journal.records
        | Some n ->
            List.filteri (fun i _ -> i < n) r.Journal.records
      in
      List.iter
        (fun (_epoch, line) ->
          apply_record t line ~workloads ~plans ~updates ~skipped)
        records;
      t.replay <-
        Some
          {
            workloads_recovered = !workloads;
            plans_recovered = !plans;
            updates_replayed = !updates;
            records_skipped = !skipped;
            wal_truncated_bytes = r.Journal.truncated_bytes;
            corrupt_records = r.Journal.corrupt_records;
            dropped_frames = r.Journal.dropped_frames;
          });
  t

let close t =
  match t.journal with
  | None -> ()
  | Some j ->
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () -> Journal.close j)

(* ----- metrics plumbing (all under the service lock) ----- *)

let record_request t ~endpoint ~ok ~seconds =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      Counter.inc
        (Registry.counter t.obs
           ~help:"Requests handled, by endpoint"
           (Printf.sprintf "serve.requests.%s" endpoint));
      if not ok then
        Counter.inc
          (Registry.counter t.obs ~help:"Error replies, by endpoint"
             (Printf.sprintf "serve.errors.%s" endpoint));
      Histogram.observe
        (Registry.histogram t.obs
           ~help:"Request latency by endpoint (seconds)"
           (Printf.sprintf "serve.latency_seconds.%s" endpoint))
        seconds)

let record_solver_run t ~seconds ~(r : Solver.result) =
  locked t (fun () ->
      t.solver_run_count <- t.solver_run_count + 1;
      Counter.inc
        (Registry.counter t.obs ~help:"Solver executions (cache misses)"
           "serve.solver.runs");
      Histogram.observe
        (Registry.histogram t.obs ~help:"End-to-end solver time (seconds)"
           "serve.solver.seconds")
        seconds;
      Histogram.observe
        (Registry.histogram t.obs ~help:"Stage-1 time of served solves (seconds)"
           "serve.solver.stage1_seconds")
        r.Solver.stage1_seconds;
      Histogram.observe
        (Registry.histogram t.obs ~help:"Stage-2 time of served solves (seconds)"
           "serve.solver.stage2_seconds")
        r.Solver.stage2_seconds)

let record_update t ~seconds ~resolved =
  locked t (fun () ->
      Counter.inc
        (Registry.counter t.obs ~help:"Incremental updates applied"
           "serve.updates.applied");
      if resolved then
        Counter.inc
          (Registry.counter t.obs
             ~help:"Updates answered by a drift-triggered full re-solve"
             "serve.updates.resolved");
      Histogram.observe
        (Registry.histogram t.obs
           ~help:"Engine delta-application time (seconds)"
           "serve.update.apply_seconds")
        seconds)

let record_degraded t ~served =
  locked t (fun () ->
      if served then begin
        t.degraded_served <- t.degraded_served + 1;
        Counter.inc
          (Registry.counter t.obs
             ~help:"Stale plans served while the solver circuit was open"
             "serve.degraded.served")
      end
      else
        Counter.inc
          (Registry.counter t.obs
             ~help:"Sheds with no previously solved plan to degrade to"
             "serve.degraded.no_fallback"))

let breaker_state_value = function
  | Breaker.Closed -> 0.
  | Breaker.Half_open -> 1.
  | Breaker.Open -> 2.

let refresh_gauges t =
  let cs = Plan_cache.stats t.cache in
  let breaker_state = Breaker.state t.breaker in
  locked t (fun () ->
      let set name help v = Gauge.set (Registry.gauge t.obs ~help name) v in
      set "serve.cache.hits" "Plan-cache hits since start" (float_of_int cs.Plan_cache.hits);
      set "serve.cache.misses" "Plan-cache misses since start"
        (float_of_int cs.Plan_cache.misses);
      set "serve.cache.evictions" "Plan-cache evictions since start"
        (float_of_int cs.Plan_cache.evictions);
      set "serve.cache.entries" "Plans currently cached"
        (float_of_int cs.Plan_cache.entries);
      set "serve.cache.hit_ratio" "hits / (hits + misses)" (Plan_cache.hit_ratio cs);
      set "serve.inflight_solves" "Solver runs currently in flight"
        (float_of_int (Admission.in_flight t.gate));
      set "serve.overload_rejections" "Requests shed by the admission gate"
        (float_of_int (Admission.rejected t.gate));
      set "serve.workloads_resident" "Workloads registered"
        (float_of_int (Hashtbl.length t.workloads));
      set "serve.breaker.state" "Solver circuit: 0 closed, 1 half-open, 2 open"
        (breaker_state_value breaker_state);
      set "serve.breaker.opens" "Times the solver circuit opened"
        (float_of_int (Breaker.opens t.breaker));
      set "serve.breaker.closes" "Times the solver circuit closed"
        (float_of_int (Breaker.closes t.breaker));
      set "serve.breaker.rejections" "Solve attempts refused by the open circuit"
        (float_of_int (Breaker.rejections t.breaker));
      match t.journal with
      | None -> ()
      | Some j ->
          set "serve.journal.wal_records" "Records in the write-ahead log"
            (float_of_int (Journal.wal_records j));
          set "serve.journal.snapshots" "Snapshots taken since start"
            (float_of_int (Journal.snapshots_taken j)))

(* ----- solving ----- *)

(* Publish a freshly solved plan: plan cache, degraded-reply fallback,
   and the journal (in that order — a plan visible to clients before it
   is durable only costs a re-solve after a crash, never a wrong answer). *)
let publish t ~key (e : entry) =
  Plan_cache.add t.cache key e;
  locked t (fun () -> Hashtbl.replace t.fallback e.digest e);
  (* Solves are idempotent (deterministic + content-addressed), so their
     plan records replicate asynchronously even under quorum acks. *)
  ignore (journal_append t (plan_op ~origin:t.config.name e))

(* The cache-miss path, run by exactly one single-flight leader per key.
   The admission gate is taken before the breaker is consulted: a
   half-open probe, once admitted, must actually run the solver so its
   success/failure verdict is meaningful. *)
let miss t ~key ~digest ~w ~(params : Protocol.solve_params) ~deadline =
  match resolve_config params.Protocol.config with
  | None ->
      M_err
        (E (Protocol.Bad_request,
            Printf.sprintf "unknown solver config %S" params.Protocol.config))
  | Some config -> (
      match problem_for w params with
      | Error e -> M_err e
      | Ok (model, p) ->
          if Admission.expired deadline then
            M_err (E (Protocol.Timeout, "deadline exceeded before solve started"))
          else
            let run () =
              if not (Breaker.admit t.breaker) then M_shed
              else
                let t0 = Clock.now_ns () in
                match Solver.solve ~config p with
                | r ->
                    let seconds = Clock.seconds_since t0 in
                    let text = Plan_io.to_string r.Solver.allocation in
                    let plan =
                      {
                        result = r;
                        bandwidth_gb =
                          Cost_model.gb_of_events model r.Solver.bandwidth;
                        solve_seconds = seconds;
                        text;
                        plan_digest = Digest.to_hex (Digest.string text);
                      }
                    in
                    let e = { digest; params; plan } in
                    record_solver_run t ~seconds ~r;
                    publish t ~key e;
                    if Admission.expired deadline then begin
                      (* The solver blew the budget: that is the failure
                         mode the breaker exists for. *)
                      Breaker.failure t.breaker;
                      M_late
                        ( e,
                          Printf.sprintf
                            "solve finished after the deadline (%.0f ms late); \
                             plan cached for a retry"
                            (-.Admission.remaining_ms deadline) )
                    end
                    else begin
                      Breaker.success t.breaker;
                      M_plan e
                    end
                | exception Problem.Infeasible m ->
                    (* The solver did its job; the instance has no
                       feasible plan. Not a breaker failure. *)
                    Breaker.success t.breaker;
                    M_err (E (Protocol.Infeasible, m))
                | exception Invalid_argument m ->
                    Breaker.success t.breaker;
                    M_err (E (Protocol.Bad_request, m))
                | exception exn ->
                    Breaker.failure t.breaker;
                    M_err (E (Protocol.Internal, Printexc.to_string exn))
            in
            (match Admission.with_slot t.gate run with
            | Some m -> m
            | None ->
                M_err
                  (E (Protocol.Overloaded,
                      Printf.sprintf "solver gate full (%d in flight)"
                        (Admission.max_in_flight t.gate)))))

type obtained =
  | Served of plan * bool  (* plan, cached *)
  | Degr of entry * string  (* fallback served under an open circuit *)
  | Failed of solve_error

(* Turn a shed into a degraded answer when any plan for this digest was
   ever solved (this run or a journaled predecessor). *)
let shed t ~digest =
  let fb = locked t (fun () -> Hashtbl.find_opt t.fallback digest) in
  match fb with
  | Some e ->
      record_degraded t ~served:true;
      Degr (e, "solver circuit open; serving last solved plan")
  | None ->
      record_degraded t ~served:false;
      Failed
        (E (Protocol.Degraded,
            "solver circuit open and no previously solved plan for this digest"))

(* Obtain a plan for (digest, params): from the cache, or by running the
   solver — once per key across concurrent requests (single-flight) —
   under the admission gate and the circuit breaker. *)
let obtain_plan t ~digest ~w ~(params : Protocol.solve_params) ~deadline =
  let key = cache_key digest params in
  match Plan_cache.find t.cache key with
  | Some e -> Served (e.plan, true)
  | None -> (
      match
        Single_flight.run t.sf ~key (fun () ->
            miss t ~key ~digest ~w ~params ~deadline)
      with
      | Single_flight.Leader (M_plan e) -> Served (e.plan, false)
      | Single_flight.Leader (M_late (_, msg)) ->
          Failed (E (Protocol.Timeout, msg))
      | Single_flight.Leader M_shed -> shed t ~digest
      | Single_flight.Leader (M_err e) -> Failed e
      | Single_flight.Follower (M_plan e) | Single_flight.Follower (M_late (e, _))
        ->
          (* The leader solved it while we waited: a shared hit. *)
          Served (e.plan, true)
      | Single_flight.Follower M_shed -> shed t ~digest
      | Single_flight.Follower (M_err err) -> (
          (* The leader may still have cached a plan (e.g. it raced an
             eviction); prefer the cache over inheriting its error. *)
          match Plan_cache.find t.cache key with
          | Some e -> Served (e.plan, true)
          | None -> Failed err))

let plan_fields digest (params : Protocol.solve_params) plan ~cached =
  let r = plan.result in
  [
    ("digest", Json.String digest);
    ("cached", Json.Bool cached);
    ("tau", Json.Float params.Protocol.tau);
    ("instance", Json.String params.Protocol.instance);
    ("config", Json.String params.Protocol.config);
    ("vms", Json.Int r.Solver.num_vms);
    ("bandwidth_events", Json.Float r.Solver.bandwidth);
    ("bandwidth_gb", Json.Float plan.bandwidth_gb);
    ("cost_usd", Json.Float r.Solver.cost);
    ("plan_digest", Json.String plan.plan_digest);
    ("stage1_s", Json.Float r.Solver.stage1_seconds);
    ("stage2_s", Json.Float r.Solver.stage2_seconds);
    ("solve_s", Json.Float (if cached then 0. else plan.solve_seconds));
  ]

(* A degraded reply carries the served plan's own params in the usual
   fields (the client must know what it actually got) and discloses what
   was asked for in [requested_tau]. *)
let degraded_fields (requested : Protocol.solve_params) (e : entry) ~reason =
  plan_fields e.digest e.params e.plan ~cached:true
  @ [
      ("degraded", Json.Bool true);
      ("degraded_reason", Json.String reason);
      ("requested_tau", Json.Float requested.Protocol.tau);
    ]

(* ----- endpoints ----- *)

let uptime_s t = Clock.seconds_since t.started_ns

let handle_health t ~id =
  let status = if draining t then "draining" else "serving" in
  Protocol.ok_response ~id
    [
      ("status", Json.String status);
      ("service", Json.String "mcss-plan-server");
      ("role", Json.String (role_to_string (role t)));
      ("epoch", Json.Int (epoch t));
      ("last_index", Json.Int (Option.value ~default:0 (journal_last_index t)));
      ("version", Json.String (Build_info.to_string ()));
      ("pid", Json.Int (Unix.getpid ()));
      ("uptime_s", Json.Float (uptime_s t));
    ]

let handle_load t ~id source =
  if draining t then
    Protocol.error_response ~id ~code:Protocol.Draining
      ~message:"server is draining; no new workloads" ()
  else
    let parse_result =
      match source with
      | `Path path -> (
          match Wio.load path with
          | w -> Ok w
          | exception Sys_error m -> Error m
          | exception Wio.Parse_error m -> Error (path ^ ": " ^ m))
      | `Inline text -> (
          match Wio.of_string text with
          | w -> Ok w
          | exception Wio.Parse_error m -> Error m)
    in
    match parse_result with
    | Error m -> Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
    | Ok w -> (
        let digest, index = register_workload t w in
        match await_commit t index with
        | Error m ->
            Protocol.error_response ~id ~code:Protocol.No_quorum
              ~message:
                ("workload journaled locally but not quorum-replicated: " ^ m)
              ()
        | Ok () ->
            Protocol.ok_response ~id
              [
                ("digest", Json.String digest);
                ("topics", Json.Int (Workload.num_topics w));
                ("subscribers", Json.Int (Workload.num_subscribers w));
                ("pairs", Json.Int (Workload.num_pairs w));
                ("total_event_rate", Json.Float (Workload.total_event_rate w));
              ])

let with_workload t ~id digest f =
  match find_workload t digest with
  | None ->
      Protocol.error_response ~id ~code:Protocol.Unknown_digest
        ~message:(Printf.sprintf "no workload loaded under digest %s" digest)
        ()
  | Some w -> f w

let reply_of_error ~id (E (code, message)) =
  Protocol.error_response ~id ~code ~message ()

let handle_solve t ~id ~deadline ~digest ~params =
  with_workload t ~id digest (fun w ->
      match obtain_plan t ~digest ~w ~params ~deadline with
      | Served (plan, cached) ->
          Protocol.ok_response ~id (plan_fields digest params plan ~cached)
      | Degr (e, reason) ->
          Protocol.ok_response ~id (degraded_fields params e ~reason)
      | Failed e -> reply_of_error ~id e)

(* The live [update] path. The base plan comes from the cache (or the
   fallback, or — on a miss — a breaker/admission-gated cold solve via
   {!obtain_plan}, exactly like [solve]); the engine then folds the
   deltas in incrementally, the evolved workload is registered under its
   own content digest, the evolved plan is published under that digest,
   and the delta batch is journaled as one WAL op. Serialised end to end
   by [update_lock]: updates are rare control-plane traffic, and the
   ordering of their WAL ops must match the order their effects were
   published in. *)
let run_update t ~id ~deadline ~digest ~(params : Protocol.solve_params) ~w
    ~deltas ~ds =
  let key = cache_key digest params in
  let base =
    match base_entry t ~key ~digest with
    | Some e -> Ok e
    | None -> (
        match obtain_plan t ~digest ~w ~params ~deadline with
        | Served (plan, _cached) -> Ok { digest; params; plan }
        | Degr _ ->
            (* Applying deltas to some other params' plan would evolve a
               plan nobody asked about — same stance as [chaos]. *)
            Error
              (E (Protocol.Degraded,
                  "solver circuit open; update needs a plan solved at the \
                   requested parameters"))
        | Failed e -> Error e)
  in
  match base with
  | Error e -> reply_of_error ~id e
  | Ok e -> (
      if Admission.expired deadline then
        Protocol.error_response ~id ~code:Protocol.Timeout
          ~message:"deadline exceeded before the update was applied" ()
      else
        match engine_of_entry ~w e with
        | Error err -> reply_of_error ~id err
        | Ok (model, eng) -> (
            let t0 = Clock.now_ns () in
            match Engine.apply eng ds with
            | stats -> (
                let apply_s = Clock.seconds_since t0 in
                let w' = (Engine.problem eng).Problem.workload in
                let new_digest, _load_index = register_workload t w' in
                let e' =
                  entry_of_engine ~model ~params ~solve_seconds:apply_s eng
                in
                Plan_cache.add t.cache (cache_key new_digest params) e';
                locked t (fun () -> Hashtbl.replace t.fallback new_digest e');
                let index =
                  journal_append t
                    (update_op ~origin:t.config.name ~digest ~params ~deltas
                       ~new_digest)
                in
                record_update t ~seconds:apply_s ~resolved:stats.Engine.resolved;
                (* Acks are cumulative by index, so waiting on the update
                   record also covers the load record just before it. *)
                match await_commit t index with
                | Error m ->
                    Protocol.error_response ~id ~code:Protocol.No_quorum
                      ~message:
                        ("update applied and journaled locally but not \
                          quorum-replicated; it may be truncated if this \
                          leader is fenced: " ^ m)
                      ()
                | Ok () ->
                Protocol.ok_response ~id
                  (plan_fields new_digest params e'.plan ~cached:false
                  @ [
                      ("previous_digest", Json.String digest);
                      ("deltas_applied", Json.Int (List.length ds));
                      ("apply_s", Json.Float apply_s);
                      ("resolved", Json.Bool stats.Engine.resolved);
                      ("dirty_subscribers", Json.Int stats.Engine.dirty_subscribers);
                      ("pairs_kept", Json.Int stats.Engine.pairs_kept);
                      ("pairs_added", Json.Int stats.Engine.pairs_added);
                      ("pairs_removed", Json.Int stats.Engine.pairs_removed);
                      ("pairs_evicted", Json.Int stats.Engine.pairs_evicted);
                      ("vms_added", Json.Int stats.Engine.vms_added);
                      ("vms_removed", Json.Int stats.Engine.vms_removed);
                    ]))
            | exception Invalid_argument m ->
                Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
            | exception Problem.Infeasible m ->
                Protocol.error_response ~id ~code:Protocol.Infeasible ~message:m ()))

let handle_update t ~id ~deadline ~digest ~params ~deltas =
  if role t = Follower then
    (* A follower's state is a mirror of the leader's journal; a local
       update would fork it. The router sends updates leader-only. *)
    Protocol.error_response ~id ~code:Protocol.Not_leader
      ~message:"this replica is a follower; send updates to the shard leader" ()
  else if draining t then
    Protocol.error_response ~id ~code:Protocol.Draining
      ~message:"server is draining; no new updates" ()
  else
    with_workload t ~id digest (fun w ->
        match Delta_io.of_string deltas with
        | exception Delta_io.Parse_error m ->
            Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
        | [] ->
            Protocol.error_response ~id ~code:Protocol.Bad_request
              ~message:"empty delta batch" ()
        | ds ->
            Mutex.lock t.update_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock t.update_lock)
              (fun () -> run_update t ~id ~deadline ~digest ~params ~w ~deltas ~ds))

let handle_whatif t ~id ~deadline ~digest ~params ~taus =
  with_workload t ~id digest (fun w ->
      let rec sweep acc = function
        | [] -> Ok (List.rev acc)
        | tau :: rest ->
            if Admission.expired deadline then
              Error
                (E (Protocol.Timeout,
                    Printf.sprintf
                      "deadline exceeded after %d of %d points (finished points \
                       are cached)"
                      (List.length acc)
                      (List.length acc + 1 + List.length rest)))
            else
              let params = { params with Protocol.tau } in
              (match obtain_plan t ~digest ~w ~params ~deadline with
              | Served (plan, cached) ->
                  sweep (Json.Obj (plan_fields digest params plan ~cached) :: acc) rest
              | Degr (e, reason) ->
                  (* A sweep under an open circuit still answers: this
                     point is marked degraded, the rest keep going. *)
                  sweep (Json.Obj (degraded_fields params e ~reason) :: acc) rest
              | Failed e -> Error e)
      in
      match sweep [] taus with
      | Ok points ->
          Protocol.ok_response ~id
            [ ("digest", Json.String digest); ("points", Json.List points) ]
      | Error e -> reply_of_error ~id e)

let handle_chaos t ~id ~deadline ~digest ~params ~seed ~epochs ~zones ~faults =
  with_workload t ~id digest (fun w ->
      match obtain_plan t ~digest ~w ~params ~deadline with
      | Failed e -> reply_of_error ~id e
      | Degr _ ->
          (* A drill against some other plan would answer a question
             nobody asked; chaos needs the plan for these exact params. *)
          Protocol.error_response ~id ~code:Protocol.Degraded
            ~message:
              "solver circuit open; chaos drills need a plan solved at the \
               requested parameters"
            ()
      | Served (plan, cached) -> (
          let fleet = plan.result.Solver.num_vms in
          let campaign_result =
            if faults = [] then
              Ok (Failure_model.random ~seed ~num_vms:fleet ~zones ())
            else
              let rec conv acc = function
                | [] -> Ok { Failure_model.seed; faults = List.rev acc }
                | s :: rest -> (
                    match Failure_model.fault_of_string s with
                    | Ok f -> conv (f :: acc) rest
                    | Error m -> Error m)
              in
              conv [] faults
          in
          match campaign_result with
          | Error m ->
              Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
          | Ok campaign -> (
              match problem_for w params with
              | Error e -> reply_of_error ~id e
              | Ok (_model, p) -> (
                  let policy =
                    {
                      t.config.chaos_policy with
                      Orchestrator.epochs;
                      seed;
                    }
                  in
                  (* Passive drill against the cached allocation: other
                     connections keep being served by the other workers
                     while this one spins the simulator. *)
                  match
                    Orchestrator.evaluate ~policy ~zones ~campaign p
                      plan.result.Solver.allocation
                  with
                  | sla ->
                      Protocol.ok_response ~id
                        [
                          ("digest", Json.String digest);
                          ("plan_cached", Json.Bool cached);
                          ("fleet_vms", Json.Int fleet);
                          ("zones", Json.Int zones);
                          ("epochs", Json.Int epochs);
                          ("campaign_seed", Json.Int campaign.Failure_model.seed);
                          ("faults",
                           Json.List
                             (List.map
                                (fun f -> Json.String (Failure_model.fault_to_string f))
                                campaign.Failure_model.faults));
                          ("delivered_fraction",
                           Json.Float sla.Sla.delivered_fraction);
                          ("violation_hours", Json.Float sla.Sla.violation_hours);
                          ("violation_epochs", Json.Int sla.Sla.violation_epochs);
                          ("lost_events", Json.Int sla.Sla.lost_events);
                          ("worst_epoch_violations",
                           Json.Int sla.Sla.worst_epoch_violations);
                        ]
                  | exception Invalid_argument m ->
                      Protocol.error_response ~id ~code:Protocol.Bad_request
                        ~message:m ()))))

let handle_stats t ~id =
  let cs = Plan_cache.stats t.cache in
  let breaker_state = Breaker.state t.breaker in
  let requests, solver_run_count, workloads, degraded_served, replay =
    locked t (fun () ->
        ( t.requests,
          t.solver_run_count,
          Hashtbl.length t.workloads,
          t.degraded_served,
          t.replay ))
  in
  Protocol.ok_response ~id
    ([
       ("uptime_s", Json.Float (uptime_s t));
       ("draining", Json.Bool (draining t));
       ("role", Json.String (role_to_string (role t)));
       ("requests", Json.Int requests);
       ("workloads_resident", Json.Int workloads);
       ("solver_runs", Json.Int solver_run_count);
       ("degraded_served", Json.Int degraded_served);
       ("inflight_solves", Json.Int (Admission.in_flight t.gate));
       ("max_inflight_solves", Json.Int (Admission.max_in_flight t.gate));
       ("overload_rejections", Json.Int (Admission.rejected t.gate));
       ( "cache",
         Json.Obj
           [
             ("capacity", Json.Int (Plan_cache.capacity t.cache));
             ("entries", Json.Int cs.Plan_cache.entries);
             ("hits", Json.Int cs.Plan_cache.hits);
             ("misses", Json.Int cs.Plan_cache.misses);
             ("evictions", Json.Int cs.Plan_cache.evictions);
             ("hit_ratio", Json.Float (Plan_cache.hit_ratio cs));
           ] );
       ( "breaker",
         Json.Obj
           [
             ("state", Json.String (Breaker.state_to_string breaker_state));
             ("opens", Json.Int (Breaker.opens t.breaker));
             ("closes", Json.Int (Breaker.closes t.breaker));
             ("rejections", Json.Int (Breaker.rejections t.breaker));
             ("consecutive_failures",
              Json.Int (Breaker.consecutive_failures t.breaker));
           ] );
     ]
    @ (match t.journal with
      | None -> []
      | Some j ->
          [
            ( "journal",
              Json.Obj
                [
                  ("wal_records", Json.Int (Journal.wal_records j));
                  ("snapshots", Json.Int (Journal.snapshots_taken j));
                  ("base_index", Json.Int (Journal.base_index j));
                  ("last_index", Json.Int (Journal.last_index j));
                  ("epoch", Json.Int (Journal.epoch j));
                  ("last_epoch", Json.Int (Journal.last_epoch j));
                ] );
          ])
    @
    match replay with
    | None -> []
    | Some r ->
        [
          ( "replay",
            Json.Obj
              [
                ("workloads_recovered", Json.Int r.workloads_recovered);
                ("plans_recovered", Json.Int r.plans_recovered);
                ("updates_replayed", Json.Int r.updates_replayed);
                ("records_skipped", Json.Int r.records_skipped);
                ("wal_truncated_bytes", Json.Int r.wal_truncated_bytes);
                ("corrupt_records", Json.Int r.corrupt_records);
                ("dropped_frames", Json.Int r.dropped_frames);
              ] );
        ])

let handle_metrics t ~id =
  refresh_gauges t;
  let body = locked t (fun () -> Sink.prometheus t.obs) in
  Protocol.ok_response ~id
    [
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String body);
    ]

let handle_promote t ~id ~epoch:e =
  let promoted = promote ?epoch:e t in
  Protocol.ok_response ~id
    [
      ("role", Json.String "leader");
      ("promoted", Json.Bool promoted);
      ("epoch", Json.Int (epoch t));
    ]

let handle_demote t ~id ~epoch:e =
  match demote t ~epoch:e with
  | Error m -> Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
  | Ok demoted ->
      Protocol.ok_response ~id
        [
          ("role", Json.String "follower");
          ("demoted", Json.Bool demoted);
          ("epoch", Json.Int (epoch t));
        ]

let handle_shutdown t ~id =
  let served = locked t (fun () -> t.draining <- true; t.requests) in
  Protocol.ok_response ~id
    [ ("draining", Json.Bool true); ("requests_served", Json.Int served) ]

(* ----- dispatch ----- *)

let endpoint_name = function
  | Protocol.Health -> "health"
  | Protocol.Load _ -> "load"
  | Protocol.Solve _ -> "solve"
  | Protocol.Update _ -> "update"
  | Protocol.Whatif _ -> "whatif"
  | Protocol.Chaos _ -> "chaos"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"
  | Protocol.Promote _ -> "promote"
  | Protocol.Demote _ -> "demote"
  | Protocol.Shutdown -> "shutdown"
  | Protocol.Drain -> "drain"
  | Protocol.Rehome _ -> "rehome"
  | Protocol.Ledger -> "ledger"

let handle t (env : Protocol.envelope) =
  let id = env.Protocol.id in
  let endpoint = endpoint_name env.Protocol.request in
  let deadline =
    Admission.deadline_of_ms
      (match env.Protocol.deadline_ms with
      | Some _ as d -> d
      | None -> t.config.default_deadline_ms)
  in
  let t0 = Clock.now_ns () in
  let dispatch () =
    match env.Protocol.request with
    | Protocol.Health -> handle_health t ~id
    | Protocol.Load source -> handle_load t ~id source
    | Protocol.Solve { digest; params } -> handle_solve t ~id ~deadline ~digest ~params
    | Protocol.Update { digest; params; deltas } ->
        handle_update t ~id ~deadline ~digest ~params ~deltas
    | Protocol.Whatif { digest; params; taus } ->
        handle_whatif t ~id ~deadline ~digest ~params ~taus
    | Protocol.Chaos { digest; params; seed; epochs; zones; faults } ->
        handle_chaos t ~id ~deadline ~digest ~params ~seed ~epochs ~zones ~faults
    | Protocol.Stats -> handle_stats t ~id
    | Protocol.Metrics -> handle_metrics t ~id
    | Protocol.Promote { epoch } -> handle_promote t ~id ~epoch
    | Protocol.Demote { epoch } -> handle_demote t ~id ~epoch
    | Protocol.Shutdown -> handle_shutdown t ~id
    | Protocol.Drain | Protocol.Rehome _ | Protocol.Ledger ->
        Protocol.error_response ~id ~code:Protocol.Bad_request
          ~message:
            (Printf.sprintf
               "%S is a dataplane control verb: send it to a broker socket \
                (mcss dataplane), not a planning server"
               endpoint)
          ()
  in
  let reply =
    match dispatch () with
    | r -> r
    | exception exn ->
        Protocol.error_response ~id ~code:Protocol.Internal
          ~message:(Printexc.to_string exn) ()
  in
  record_request t ~endpoint ~ok:(Protocol.response_ok reply)
    ~seconds:(Clock.seconds_since t0);
  reply

let handle_line t line =
  match Json.parse line with
  | Error m -> Protocol.error_response ~code:Protocol.Bad_request ~message:m ()
  | Ok j -> (
      match Protocol.decode j with
      | Error m ->
          Protocol.error_response ~id:(Json.member "id" j)
            ~code:Protocol.Bad_request ~message:m ()
      | Ok env -> handle t env)
