module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio
module Instance = Mcss_pricing.Instance
module Cost_model = Mcss_pricing.Cost_model
module Problem = Mcss_core.Problem
module Solver = Mcss_core.Solver
module Failure_model = Mcss_resilience.Failure_model
module Orchestrator = Mcss_resilience.Orchestrator
module Sla = Mcss_resilience.Sla
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Gauge = Mcss_obs.Metric.Gauge
module Histogram = Mcss_obs.Metric.Histogram
module Clock = Mcss_obs.Clock
module Sink = Mcss_obs.Sink

type config = {
  cache_capacity : int;
  max_in_flight : int;
  default_deadline_ms : float option;
}

let default_config =
  { cache_capacity = 128; max_in_flight = 4; default_deadline_ms = None }

(* A cached plan: the full solver result (so chaos drills can replay the
   allocation) plus the money view, which depends only on the params the
   plan is keyed under. *)
type plan = { result : Solver.result; bandwidth_gb : float; solve_seconds : float }

type t = {
  config : config;
  obs : Registry.t;
  cache : plan Plan_cache.t;
  gate : Admission.t;
  workloads : (string, Workload.t) Hashtbl.t;
  lock : Mutex.t;  (** Guards [workloads], [obs] updates, and the mutable fields. *)
  started_ns : int64;
  mutable draining : bool;
  mutable requests : int;
  mutable solver_run_count : int;
}

let create ?obs ?(config = default_config) () =
  let obs = match obs with Some r -> r | None -> Registry.create () in
  {
    config;
    obs;
    cache = Plan_cache.create ~capacity:config.cache_capacity;
    gate = Admission.create ~max_in_flight:config.max_in_flight;
    workloads = Hashtbl.create 8;
    lock = Mutex.create ();
    started_ns = Clock.now_ns ();
    draining = false;
    requests = 0;
    solver_run_count = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let obs t = t.obs
let draining t = locked t (fun () -> t.draining)
let cache_stats t = Plan_cache.stats t.cache
let solver_runs t = locked t (fun () -> t.solver_run_count)

(* ----- content digests ----- *)

(* The digest is over a canonical rendering of the workload's semantic
   content (rates at full float precision, interests sorted as Workload
   stores them), so it is independent of Wio formatting details like
   comments or float spelling in the source file. *)
let digest_of_workload w =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "mcss-workload-digest 1\n";
  Buffer.add_string buf (string_of_int (Workload.num_topics w));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (Workload.num_subscribers w));
  Buffer.add_char buf '\n';
  Array.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "%.17g" r);
      Buffer.add_char buf '\n')
    (Workload.event_rates w);
  for v = 0 to Workload.num_subscribers w - 1 do
    Array.iter
      (fun topic ->
        Buffer.add_string buf (string_of_int topic);
        Buffer.add_char buf ' ')
      (Workload.interests w v);
    Buffer.add_char buf '\n'
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let load_workload t w =
  let digest = digest_of_workload w in
  locked t (fun () -> Hashtbl.replace t.workloads digest w);
  digest

let find_workload t digest = locked t (fun () -> Hashtbl.find_opt t.workloads digest)

(* ----- metrics plumbing (all under the service lock) ----- *)

let record_request t ~endpoint ~ok ~seconds =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      Counter.inc
        (Registry.counter t.obs
           ~help:"Requests handled, by endpoint"
           (Printf.sprintf "serve.requests.%s" endpoint));
      if not ok then
        Counter.inc
          (Registry.counter t.obs ~help:"Error replies, by endpoint"
             (Printf.sprintf "serve.errors.%s" endpoint));
      Histogram.observe
        (Registry.histogram t.obs
           ~help:"Request latency by endpoint (seconds)"
           (Printf.sprintf "serve.latency_seconds.%s" endpoint))
        seconds)

let record_solver_run t ~seconds ~(r : Solver.result) =
  locked t (fun () ->
      t.solver_run_count <- t.solver_run_count + 1;
      Counter.inc
        (Registry.counter t.obs ~help:"Solver executions (cache misses)"
           "serve.solver.runs");
      Histogram.observe
        (Registry.histogram t.obs ~help:"End-to-end solver time (seconds)"
           "serve.solver.seconds")
        seconds;
      Histogram.observe
        (Registry.histogram t.obs ~help:"Stage-1 time of served solves (seconds)"
           "serve.solver.stage1_seconds")
        r.Solver.stage1_seconds;
      Histogram.observe
        (Registry.histogram t.obs ~help:"Stage-2 time of served solves (seconds)"
           "serve.solver.stage2_seconds")
        r.Solver.stage2_seconds)

let refresh_gauges t =
  let cs = Plan_cache.stats t.cache in
  locked t (fun () ->
      let set name help v = Gauge.set (Registry.gauge t.obs ~help name) v in
      set "serve.cache.hits" "Plan-cache hits since start" (float_of_int cs.Plan_cache.hits);
      set "serve.cache.misses" "Plan-cache misses since start"
        (float_of_int cs.Plan_cache.misses);
      set "serve.cache.evictions" "Plan-cache evictions since start"
        (float_of_int cs.Plan_cache.evictions);
      set "serve.cache.entries" "Plans currently cached"
        (float_of_int cs.Plan_cache.entries);
      set "serve.cache.hit_ratio" "hits / (hits + misses)" (Plan_cache.hit_ratio cs);
      set "serve.inflight_solves" "Solver runs currently in flight"
        (float_of_int (Admission.in_flight t.gate));
      set "serve.overload_rejections" "Requests shed by the admission gate"
        (float_of_int (Admission.rejected t.gate));
      set "serve.workloads_resident" "Workloads registered"
        (float_of_int (Hashtbl.length t.workloads)))

(* ----- solving ----- *)

(* "parallel" opts a request into the multi-domain Stage-1; everything
   else resolves through the solver's own ladder so server and CLI name
   configurations identically. *)
let resolve_config name =
  if name = "parallel" then
    Some { Solver.default with Solver.stage1 = Solver.Gsp_parallel }
  else Solver.config_of_name name

type solve_error =
  | E of Protocol.error_code * string

let problem_for w (params : Protocol.solve_params) =
  match Instance.find params.Protocol.instance with
  | None ->
      Error
        (E (Protocol.Bad_request,
            Printf.sprintf "unknown instance type %S" params.Protocol.instance))
  | Some instance -> (
      let model = Cost_model.ec2_2014 ~instance () in
      match
        Problem.of_pricing ?capacity_events:params.Protocol.bc_events ~workload:w
          ~tau:params.Protocol.tau model
      with
      | p -> Ok (model, p)
      | exception Invalid_argument m -> Error (E (Protocol.Bad_request, m)))

let cache_key digest (params : Protocol.solve_params) =
  Printf.sprintf "%s|tau=%.17g|instance=%s|bc=%s|config=%s" digest
    params.Protocol.tau params.Protocol.instance
    (match params.Protocol.bc_events with
    | None -> "default"
    | Some x -> Printf.sprintf "%.17g" x)
    params.Protocol.config

(* Obtain a plan for (digest, params): from the cache, or by running the
   solver under the admission gate. [deadline] is re-checked after
   waiting turns (admission) and the solver run itself. *)
let obtain_plan t ~digest ~w ~(params : Protocol.solve_params) ~deadline =
  let key = cache_key digest params in
  match Plan_cache.find t.cache key with
  | Some plan -> Ok (plan, true)
  | None -> (
      match resolve_config params.Protocol.config with
      | None ->
          Error
            (E (Protocol.Bad_request,
                Printf.sprintf "unknown solver config %S" params.Protocol.config))
      | Some config -> (
          match problem_for w params with
          | Error _ as e -> e
          | Ok (model, p) ->
              if Admission.expired deadline then
                Error (E (Protocol.Timeout, "deadline exceeded before solve started"))
              else
                let run () =
                  let t0 = Clock.now_ns () in
                  match Solver.solve ~config p with
                  | r ->
                      let seconds = Clock.seconds_since t0 in
                      let plan =
                        {
                          result = r;
                          bandwidth_gb = Cost_model.gb_of_events model r.Solver.bandwidth;
                          solve_seconds = seconds;
                        }
                      in
                      record_solver_run t ~seconds ~r;
                      Plan_cache.add t.cache key plan;
                      if Admission.expired deadline then
                        Error
                          (E (Protocol.Timeout,
                              Printf.sprintf
                                "solve finished after the deadline (%.0f ms late); \
                                 plan cached for a retry"
                                (-.Admission.remaining_ms deadline)))
                      else Ok (plan, false)
                  | exception Problem.Infeasible m ->
                      Error (E (Protocol.Infeasible, m))
                  | exception Invalid_argument m ->
                      Error (E (Protocol.Bad_request, m))
                in
                (match Admission.with_slot t.gate run with
                | Some r -> r
                | None ->
                    Error
                      (E (Protocol.Overloaded,
                          Printf.sprintf "solver gate full (%d in flight)"
                            (Admission.max_in_flight t.gate))))))

let plan_fields digest (params : Protocol.solve_params) plan ~cached =
  let r = plan.result in
  [
    ("digest", Json.String digest);
    ("cached", Json.Bool cached);
    ("tau", Json.Float params.Protocol.tau);
    ("instance", Json.String params.Protocol.instance);
    ("config", Json.String params.Protocol.config);
    ("vms", Json.Int r.Solver.num_vms);
    ("bandwidth_events", Json.Float r.Solver.bandwidth);
    ("bandwidth_gb", Json.Float plan.bandwidth_gb);
    ("cost_usd", Json.Float r.Solver.cost);
    ("stage1_s", Json.Float r.Solver.stage1_seconds);
    ("stage2_s", Json.Float r.Solver.stage2_seconds);
    ("solve_s", Json.Float (if cached then 0. else plan.solve_seconds));
  ]

(* ----- endpoints ----- *)

let uptime_s t = Clock.seconds_since t.started_ns

let handle_health t ~id =
  let status = if draining t then "draining" else "serving" in
  Protocol.ok_response ~id
    [
      ("status", Json.String status);
      ("service", Json.String "mcss-plan-server");
      ("version", Json.String (Build_info.to_string ()));
      ("pid", Json.Int (Unix.getpid ()));
      ("uptime_s", Json.Float (uptime_s t));
    ]

let handle_load t ~id source =
  if draining t then
    Protocol.error_response ~id ~code:Protocol.Draining
      ~message:"server is draining; no new workloads" ()
  else
    let parse_result =
      match source with
      | `Path path -> (
          match Wio.load path with
          | w -> Ok w
          | exception Sys_error m -> Error m
          | exception Wio.Parse_error m -> Error (path ^ ": " ^ m))
      | `Inline text -> (
          (* Wio parses channels; stage the payload through a temp file. *)
          let tmp = Filename.temp_file "mcss-serve" ".wl" in
          Fun.protect
            ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
            (fun () ->
              let oc = open_out tmp in
              output_string oc text;
              close_out oc;
              match Wio.load tmp with
              | w -> Ok w
              | exception Wio.Parse_error m -> Error m
              | exception Sys_error m -> Error m))
    in
    match parse_result with
    | Error m -> Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
    | Ok w ->
        let digest = load_workload t w in
        Protocol.ok_response ~id
          [
            ("digest", Json.String digest);
            ("topics", Json.Int (Workload.num_topics w));
            ("subscribers", Json.Int (Workload.num_subscribers w));
            ("pairs", Json.Int (Workload.num_pairs w));
            ("total_event_rate", Json.Float (Workload.total_event_rate w));
          ]

let with_workload t ~id digest f =
  match find_workload t digest with
  | None ->
      Protocol.error_response ~id ~code:Protocol.Unknown_digest
        ~message:(Printf.sprintf "no workload loaded under digest %s" digest)
        ()
  | Some w -> f w

let reply_of_error ~id (E (code, message)) =
  Protocol.error_response ~id ~code ~message ()

let handle_solve t ~id ~deadline ~digest ~params =
  with_workload t ~id digest (fun w ->
      match obtain_plan t ~digest ~w ~params ~deadline with
      | Ok (plan, cached) ->
          Protocol.ok_response ~id (plan_fields digest params plan ~cached)
      | Error e -> reply_of_error ~id e)

let handle_whatif t ~id ~deadline ~digest ~params ~taus =
  with_workload t ~id digest (fun w ->
      let rec sweep acc = function
        | [] -> Ok (List.rev acc)
        | tau :: rest ->
            if Admission.expired deadline then
              Error
                (E (Protocol.Timeout,
                    Printf.sprintf
                      "deadline exceeded after %d of %d points (finished points \
                       are cached)"
                      (List.length acc)
                      (List.length acc + 1 + List.length rest)))
            else
              let params = { params with Protocol.tau } in
              (match obtain_plan t ~digest ~w ~params ~deadline with
              | Ok (plan, cached) ->
                  sweep (Json.Obj (plan_fields digest params plan ~cached) :: acc) rest
              | Error _ as e -> e)
      in
      match sweep [] taus with
      | Ok points ->
          Protocol.ok_response ~id
            [ ("digest", Json.String digest); ("points", Json.List points) ]
      | Error e -> reply_of_error ~id e)

let handle_chaos t ~id ~deadline ~digest ~params ~seed ~epochs ~zones ~faults =
  with_workload t ~id digest (fun w ->
      match obtain_plan t ~digest ~w ~params ~deadline with
      | Error e -> reply_of_error ~id e
      | Ok (plan, cached) -> (
          let fleet = plan.result.Solver.num_vms in
          let campaign_result =
            if faults = [] then
              Ok (Failure_model.random ~seed ~num_vms:fleet ~zones ())
            else
              let rec conv acc = function
                | [] -> Ok { Failure_model.seed; faults = List.rev acc }
                | s :: rest -> (
                    match Failure_model.fault_of_string s with
                    | Ok f -> conv (f :: acc) rest
                    | Error m -> Error m)
              in
              conv [] faults
          in
          match campaign_result with
          | Error m ->
              Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
          | Ok campaign -> (
              match problem_for w params with
              | Error e -> reply_of_error ~id e
              | Ok (_model, p) -> (
                  let policy =
                    {
                      Orchestrator.default_policy with
                      Orchestrator.epochs;
                      seed;
                    }
                  in
                  (* Passive drill against the cached allocation: other
                     connections keep being served by the other workers
                     while this one spins the simulator. *)
                  match
                    Orchestrator.evaluate ~policy ~zones ~campaign p
                      plan.result.Solver.allocation
                  with
                  | sla ->
                      Protocol.ok_response ~id
                        [
                          ("digest", Json.String digest);
                          ("plan_cached", Json.Bool cached);
                          ("fleet_vms", Json.Int fleet);
                          ("zones", Json.Int zones);
                          ("epochs", Json.Int epochs);
                          ("campaign_seed", Json.Int campaign.Failure_model.seed);
                          ("faults",
                           Json.List
                             (List.map
                                (fun f -> Json.String (Failure_model.fault_to_string f))
                                campaign.Failure_model.faults));
                          ("delivered_fraction",
                           Json.Float sla.Sla.delivered_fraction);
                          ("violation_hours", Json.Float sla.Sla.violation_hours);
                          ("violation_epochs", Json.Int sla.Sla.violation_epochs);
                          ("lost_events", Json.Int sla.Sla.lost_events);
                          ("worst_epoch_violations",
                           Json.Int sla.Sla.worst_epoch_violations);
                        ]
                  | exception Invalid_argument m ->
                      Protocol.error_response ~id ~code:Protocol.Bad_request
                        ~message:m ()))))

let handle_stats t ~id =
  let cs = Plan_cache.stats t.cache in
  let requests, solver_run_count, workloads =
    locked t (fun () -> (t.requests, t.solver_run_count, Hashtbl.length t.workloads))
  in
  Protocol.ok_response ~id
    [
      ("uptime_s", Json.Float (uptime_s t));
      ("draining", Json.Bool (draining t));
      ("requests", Json.Int requests);
      ("workloads_resident", Json.Int workloads);
      ("solver_runs", Json.Int solver_run_count);
      ("inflight_solves", Json.Int (Admission.in_flight t.gate));
      ("max_inflight_solves", Json.Int (Admission.max_in_flight t.gate));
      ("overload_rejections", Json.Int (Admission.rejected t.gate));
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int (Plan_cache.capacity t.cache));
            ("entries", Json.Int cs.Plan_cache.entries);
            ("hits", Json.Int cs.Plan_cache.hits);
            ("misses", Json.Int cs.Plan_cache.misses);
            ("evictions", Json.Int cs.Plan_cache.evictions);
            ("hit_ratio", Json.Float (Plan_cache.hit_ratio cs));
          ] );
    ]

let handle_metrics t ~id =
  refresh_gauges t;
  let body = locked t (fun () -> Sink.prometheus t.obs) in
  Protocol.ok_response ~id
    [
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String body);
    ]

let handle_shutdown t ~id =
  let served = locked t (fun () -> t.draining <- true; t.requests) in
  Protocol.ok_response ~id
    [ ("draining", Json.Bool true); ("requests_served", Json.Int served) ]

(* ----- dispatch ----- *)

let endpoint_name = function
  | Protocol.Health -> "health"
  | Protocol.Load _ -> "load"
  | Protocol.Solve _ -> "solve"
  | Protocol.Whatif _ -> "whatif"
  | Protocol.Chaos _ -> "chaos"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"
  | Protocol.Shutdown -> "shutdown"

let handle t (env : Protocol.envelope) =
  let id = env.Protocol.id in
  let endpoint = endpoint_name env.Protocol.request in
  let deadline =
    Admission.deadline_of_ms
      (match env.Protocol.deadline_ms with
      | Some _ as d -> d
      | None -> t.config.default_deadline_ms)
  in
  let t0 = Clock.now_ns () in
  let dispatch () =
    match env.Protocol.request with
    | Protocol.Health -> handle_health t ~id
    | Protocol.Load source -> handle_load t ~id source
    | Protocol.Solve { digest; params } -> handle_solve t ~id ~deadline ~digest ~params
    | Protocol.Whatif { digest; params; taus } ->
        handle_whatif t ~id ~deadline ~digest ~params ~taus
    | Protocol.Chaos { digest; params; seed; epochs; zones; faults } ->
        handle_chaos t ~id ~deadline ~digest ~params ~seed ~epochs ~zones ~faults
    | Protocol.Stats -> handle_stats t ~id
    | Protocol.Metrics -> handle_metrics t ~id
    | Protocol.Shutdown -> handle_shutdown t ~id
  in
  let reply =
    match dispatch () with
    | r -> r
    | exception exn ->
        Protocol.error_response ~id ~code:Protocol.Internal
          ~message:(Printexc.to_string exn) ()
  in
  record_request t ~endpoint ~ok:(Protocol.response_ok reply)
    ~seconds:(Clock.seconds_since t0);
  reply

let handle_line t line =
  match Json.parse line with
  | Error m -> Protocol.error_response ~code:Protocol.Bad_request ~message:m ()
  | Ok j -> (
      match Protocol.decode j with
      | Error m ->
          Protocol.error_response ~id:(Json.member "id" j)
            ~code:Protocol.Bad_request ~message:m ()
      | Ok env -> handle t env)
