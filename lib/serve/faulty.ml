type fault =
  | Delay_ms of float
  | Chop of int
  | Trickle of { chunk : int; delay_ms : float }
  | Garbage of string
  | Tear_after of int
  | Reset_after of int
  | Blackhole

type script = { to_server : fault list; to_client : fault list }

let clean = { to_server = []; to_client = [] }

(* A fault list folded into one pump configuration; later entries win
   where they overlap (e.g. [Chop] then [Trickle]). *)
type mode = {
  delay_ms : float;
  garbage : string;
  chunk : int option;
  inter_delay_ms : float;
  cutoff : (int * [ `Fin | `Rst ]) option;
  blackhole : bool;
}

let mode_of_faults faults =
  List.fold_left
    (fun m -> function
      | Delay_ms d -> { m with delay_ms = m.delay_ms +. d }
      | Chop n -> { m with chunk = Some (max 1 n); inter_delay_ms = 0. }
      | Trickle { chunk; delay_ms } ->
          { m with chunk = Some (max 1 chunk); inter_delay_ms = delay_ms }
      | Garbage g -> { m with garbage = m.garbage ^ g }
      | Tear_after n -> { m with cutoff = Some (max 0 n, `Fin) }
      | Reset_after n -> { m with cutoff = Some (max 0 n, `Rst) }
      | Blackhole -> { m with blackhole = true })
    {
      delay_ms = 0.;
      garbage = "";
      chunk = None;
      inter_delay_ms = 0.;
      cutoff = None;
      blackhole = false;
    }
    faults

(* One proxied connection: the two fds and an idempotent teardown the
   two pump domains (and [stop]) can all call. *)
type conn = {
  client_fd : Unix.file_descr;
  server_fd : Unix.file_descr;
  conn_lock : Mutex.t;
  mutable open_ : bool;
  (* Pump domains still using the fds; the last one out closes them. *)
  mutable pumps_left : int;
  mutable closed : bool;
}

(* Call with [conn_lock] held. *)
let close_both conn =
  if not conn.closed then begin
    conn.closed <- true;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ conn.client_fd; conn.server_fd ]
  end

(* [`Rst] aborts the client side: SO_LINGER 0 turns the eventual close
   into a real RST, which is what a crashed or power-cycled peer looks
   like on the wire.

   Teardown only *shuts down* the sockets — that wakes both pump
   domains out of blocked reads/writes — and leaves the actual close
   to the last pump to exit ([release]). Closing here would free the
   fd numbers for reuse while the sibling pump may still be blocked on
   them, and a recycled number lets a stale pump (with an old
   connection's fault mode) ferry bytes around a newer connection's
   faults. *)
let teardown conn ~how =
  Mutex.lock conn.conn_lock;
  let first = conn.open_ in
  conn.open_ <- false;
  if first then begin
    (match how with
    | `Rst -> (
        try Unix.setsockopt_optint conn.client_fd Unix.SO_LINGER (Some 0)
        with Unix.Unix_error _ | Invalid_argument _ -> ())
    | `Fin -> ());
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      [ conn.client_fd; conn.server_fd ];
    if conn.pumps_left = 0 then close_both conn
  end;
  Mutex.unlock conn.conn_lock

let release conn =
  Mutex.lock conn.conn_lock;
  conn.pumps_left <- conn.pumps_left - 1;
  if conn.pumps_left = 0 && not conn.open_ then close_both conn;
  Mutex.unlock conn.conn_lock

let rec eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr f

let write_all fd b off len =
  let rec go off len =
    if len > 0 then
      let n = eintr (fun () -> Unix.write fd b off len) in
      go (off + n) (len - n)
  in
  go off len

let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

(* Forward src → dst through [mode] until EOF, a cutoff, or the
   connection is torn down by the other pump. *)
let pump conn ~src ~dst mode =
  Fun.protect ~finally:(fun () -> release conn) @@ fun () ->
  let buf = Bytes.create 4096 in
  let forwarded = ref 0 in
  let send b off len =
    (* A blackholed direction keeps reading (the sender sees an open,
       accepting connection) but forwards nothing — the partition a
       dropped-packets firewall rule produces, as opposed to the RST a
       dead process produces. *)
    if not mode.blackhole then begin
      let step = match mode.chunk with Some c -> c | None -> len in
      let rec chunks off len =
        if len > 0 then begin
          let n = min step len in
          write_all dst b off n;
          if len - n > 0 then sleep_ms mode.inter_delay_ms;
          chunks (off + n) (len - n)
        end
      in
      chunks off len
    end;
    forwarded := !forwarded + len
  in
  match
    sleep_ms mode.delay_ms;
    if mode.garbage <> "" && not mode.blackhole then begin
      let g = Bytes.of_string mode.garbage in
      write_all dst g 0 (Bytes.length g)
    end;
    let rec loop () =
      let n = eintr (fun () -> Unix.read src buf 0 (Bytes.length buf)) in
      if n = 0 then teardown conn ~how:`Fin
      else
        match mode.cutoff with
        | Some (limit, how) when !forwarded + n >= limit ->
            send buf 0 (max 0 (limit - !forwarded));
            teardown conn ~how
        | _ ->
            send buf 0 n;
            loop ()
    in
    loop ()
  with
  | () -> ()
  | exception (Unix.Unix_error _ | Sys_error _) -> teardown conn ~how:`Fin

type t = {
  listener : Unix.file_descr;
  listen_port : int;
  mutable plan : conn:int -> script;
  lock : Mutex.t;
  mutable closing : bool;
  mutable accepted : int;
  mutable conns : conn list;
  mutable pumps : unit Domain.t list;
  mutable acceptor : unit Domain.t option;
}

let dial = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let handle_accept t upstream client_fd =
  match dial upstream with
  | exception (Unix.Unix_error _ as _e) ->
      (* Upstream down (e.g. the kill -9 window): drop the client; its
         retry layer is the thing under test. *)
      (try Unix.close client_fd with Unix.Unix_error _ -> ())
  | server_fd ->
      let conn =
        {
          client_fd;
          server_fd;
          conn_lock = Mutex.create ();
          open_ = true;
          pumps_left = 2;
          closed = false;
        }
      in
      let script =
        let i, plan =
          locked t (fun () ->
              let i = t.accepted in
              t.accepted <- i + 1;
              (i, t.plan))
        in
        plan ~conn:i
      in
      let up =
        Domain.spawn (fun () ->
            pump conn ~src:client_fd ~dst:server_fd
              (mode_of_faults script.to_server))
      in
      let down =
        Domain.spawn (fun () ->
            pump conn ~src:server_fd ~dst:client_fd
              (mode_of_faults script.to_client))
      in
      locked t (fun () ->
          t.conns <- conn :: t.conns;
          t.pumps <- up :: down :: t.pumps)

let accept_loop t upstream () =
  let rec loop () =
    if locked t (fun () -> t.closing) then ()
    else begin
      (match eintr (fun () -> Unix.select [ t.listener ] [] [] 0.05) with
      | [ _ ], _, _ -> (
          match Unix.accept t.listener with
          | fd, _ -> handle_accept t upstream fd
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start ?(plan = fun ~conn:_ -> clean) ~upstream () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
     Unix.listen listener 16
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let listen_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    {
      listener;
      listen_port;
      plan;
      lock = Mutex.create ();
      closing = false;
      accepted = 0;
      conns = [];
      pumps = [];
      acceptor = None;
    }
  in
  t.acceptor <- Some (Domain.spawn (accept_loop t upstream));
  t

let address t = Server.Tcp ("127.0.0.1", t.listen_port)
let port t = t.listen_port
let connections t = locked t (fun () -> t.accepted)

let set_plan t plan = locked t (fun () -> t.plan <- plan)

(* Tear down every live proxied connection but keep accepting: the next
   dial goes through the (possibly new) plan. [set_plan] + [sever] is
   how the nemesis flips a healthy link into a partition and back —
   existing connections die, reconnects see the new behaviour. *)
let sever t =
  let conns = locked t (fun () -> let c = t.conns in t.conns <- []; c) in
  List.iter (fun c -> teardown c ~how:`Fin) conns

let stop t =
  let first = locked t (fun () -> let f = not t.closing in t.closing <- true; f) in
  if first then begin
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    let conns, pumps = locked t (fun () -> (t.conns, t.pumps)) in
    List.iter (fun c -> teardown c ~how:`Fin) conns;
    List.iter Domain.join pumps
  end

(* ----- signal storm ----- *)

let with_signal_storm ?(interval_ms = 0.2) f =
  let stop_flag = Atomic.make false in
  let previous = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  let pid = Unix.getpid () in
  let storm =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_flag) do
          (try Unix.kill pid Sys.sigusr1 with Unix.Unix_error _ -> ());
          Unix.sleepf (interval_ms /. 1000.)
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop_flag true;
      Domain.join storm;
      Sys.set_signal Sys.sigusr1 previous)
    f
