type address = Unix_socket of string | Tcp of string * int

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let address_of_string s =
  let prefix = "unix:" in
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    Ok (Unix_socket (String.sub s plen (String.length s - plen)))
  else if String.contains s '/' then Ok (Unix_socket s)
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = if i = 0 then "127.0.0.1" else String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some port when port > 0 && port < 65536 -> Ok (Tcp (host, port))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))
    | None -> (
        match int_of_string_opt s with
        | Some port when port > 0 && port < 65536 -> Ok (Tcp ("127.0.0.1", port))
        | _ ->
            Error
              (Printf.sprintf
                 "bad address %S: expected unix:PATH, HOST:PORT, :PORT or PORT" s))

type config = {
  workers : int;
  queue_depth : int option;
  max_request_bytes : int;
  backlog : int;
  accept_tick_s : float;
  log : string -> unit;
}

let default_config =
  {
    workers = 4;
    queue_depth = None;
    max_request_bytes = 8 * 1024 * 1024;
    backlog = 64;
    accept_tick_s = 0.2;
    log = ignore;
  }

(* ----- low-level I/O ----- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_reply fd json = write_all fd (Json.to_string json ^ "\n")

(* A buffered line reader over a nonblocking-ish fd. [read_line] returns
   [`Line s] (newline stripped, CR tolerated), [`Too_long] once a line
   exceeds [limit] (the remainder of that line is consumed and
   discarded), [`Eof], or [`Timeout] when the socket's receive timeout
   expired with no pending bytes (used to poll the drain flag). *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  limit : int;
  mutable pending : string;  (* bytes read past the last returned line *)
}

let make_reader fd ~limit =
  { fd; buf = Buffer.create 512; chunk = Bytes.create 8192; limit; pending = "" }

let rec read_line r ~dropping =
  (* Look for a newline in what we already have. *)
  match String.index_opt r.pending '\n' with
  | Some i ->
      let line = String.sub r.pending 0 i in
      r.pending <- String.sub r.pending (i + 1) (String.length r.pending - i - 1);
      if dropping then `Too_long
      else begin
        Buffer.add_string r.buf line;
        let full = Buffer.contents r.buf in
        Buffer.clear r.buf;
        let full =
          if full <> "" && full.[String.length full - 1] = '\r' then
            String.sub full 0 (String.length full - 1)
          else full
        in
        if String.length full > r.limit then `Too_long else `Line full
      end
  | None ->
      if dropping then begin
        r.pending <- "";
        fill r ~dropping
      end
      else begin
        Buffer.add_string r.buf r.pending;
        r.pending <- "";
        if Buffer.length r.buf > r.limit then begin
          Buffer.clear r.buf;
          fill r ~dropping:true
        end
        else fill r ~dropping
      end

and fill r ~dropping =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> `Eof
  | n ->
      r.pending <- Bytes.sub_string r.chunk 0 n;
      read_line r ~dropping
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Timeout
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill r ~dropping
  | exception Unix.Unix_error _ -> `Eof

(* ----- per-connection loop ----- *)

let serve_connection ~draining ~handle config fd =
  (* A receive timeout lets an idle connection notice the drain flag. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.accept_tick_s
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let reader = make_reader fd ~limit:config.max_request_bytes in
  let rec loop () =
    if draining () then ()
    else
      match read_line reader ~dropping:false with
      | `Eof -> ()
      | `Timeout -> loop ()
      | `Too_long ->
          send_reply fd
            (Protocol.error_response ~code:Protocol.Too_large
               ~message:
                 (Printf.sprintf "request line exceeded %d bytes"
                    config.max_request_bytes)
               ());
          loop ()
      | `Line "" -> loop ()
      | `Line line ->
          let reply = handle line in
          send_reply fd reply;
          loop ()
  in
  (try loop () with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ----- accept loop ----- *)

let bind_listener address ~backlog =
  match address with
  | Unix_socket path ->
      (try
         if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd backlog;
      fd
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd backlog;
      fd

let run_handler ?(config = default_config) ?obs ?(name = "mcss serve") ~draining
    ~handle address =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  let obs = match obs with Some r -> r | None -> Mcss_obs.Registry.noop in
  let listener = bind_listener address ~backlog:config.backlog in
  let pool = Pool.start ?queue_depth:config.queue_depth ~workers:(max 1 config.workers) () in
  config.log
    (Printf.sprintf "%s: listening on %s (%d workers)" name
       (address_to_string address) (max 1 config.workers));
  let rec accept_loop () =
    if draining () then ()
    else begin
      (match Unix.select [ listener ] [] [] config.accept_tick_s with
      | [ _ ], _, _ -> (
          match Unix.accept listener with
          | fd, _ ->
              if not
                   (Pool.submit pool (fun () ->
                        serve_connection ~draining ~handle config fd))
              then begin
                (* Pool saturated or closing: shed the connection with a
                   parseable reason rather than a silent RST. *)
                Mcss_obs.Metric.Counter.inc
                  (Mcss_obs.Registry.counter obs
                     ~help:"Connections shed because the worker queue was full"
                     "serve.connections.shed");
                (try
                   send_reply fd
                     (Protocol.error_response ~code:Protocol.Overloaded
                        ~message:"connection queue full" ())
                 with Unix.Unix_error _ -> ());
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  config.log (name ^ ": draining");
  (try Unix.close listener with Unix.Unix_error _ -> ());
  Pool.shutdown pool;
  (match address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  config.log (name ^ ": stopped")

let run ?(config = default_config) service address =
  run_handler ~config ~obs:(Service.obs service)
    ~draining:(fun () -> Service.draining service)
    ~handle:(Service.handle_line service)
    address
