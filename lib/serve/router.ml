module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Rng = Mcss_prng.Rng

type member = { name : string; address : Server.address }
type shard = { shard_name : string; members : member list }

type config = {
  vnodes : int;
  health_period_s : float;
  policy : Retry.policy;
  log : string -> unit;
}

let default_config =
  {
    vnodes = 64;
    health_period_s = 1.;
    policy =
      {
        Retry.max_attempts = 4;
        base_ms = 25.;
        cap_ms = 500.;
        attempt_timeout_ms = Some 5000.;
      };
    log = ignore;
  }

type t = {
  config : config;
  obs : Registry.t;
  ring : Ring.t;
  shards : (string, shard) Hashtbl.t;
  rng : Rng.t;
  lock : Mutex.t;  (** Guards [health], [rng], and the mutable flags. *)
  health : (string, bool) Hashtbl.t;  (* "shard/member" -> last probe ok *)
  mutable draining : bool;
  mutable forwarded : int;
  mutable health_domain : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let member_key shard m = shard.shard_name ^ "/" ^ m.name

let create ?obs ?(config = default_config) ?(seed = 0) shards =
  if shards = [] then invalid_arg "Router.create: no shards";
  List.iter
    (fun s ->
      if s.members = [] then
        invalid_arg
          (Printf.sprintf "Router.create: shard %S has no members" s.shard_name))
    shards;
  let obs = match obs with Some r -> r | None -> Registry.create () in
  let ring = Ring.create ~vnodes:config.vnodes (List.map (fun s -> s.shard_name) shards) in
  let tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tbl s.shard_name s) shards;
  let health = Hashtbl.create 16 in
  List.iter
    (fun s -> List.iter (fun m -> Hashtbl.replace health (member_key s m) true) s.members)
    shards;
  {
    config;
    obs;
    ring;
    shards = tbl;
    rng = Rng.create seed;
    lock = Mutex.create ();
    health;
    draining = false;
    forwarded = 0;
    health_domain = None;
  }

let draining t = locked t (fun () -> t.draining)
let obs t = t.obs

let set_health t shard m up =
  locked t (fun () -> Hashtbl.replace t.health (member_key shard m) up)

let healthy t shard m =
  locked t (fun () ->
      Option.value ~default:true (Hashtbl.find_opt t.health (member_key shard m)))

(* ----- health checking ----- *)

let probe_policy =
  {
    Retry.max_attempts = 1;
    base_ms = 10.;
    cap_ms = 10.;
    attempt_timeout_ms = Some 1000.;
  }

let probe_member t shard m =
  let env =
    { Protocol.id = None; deadline_ms = None; request = Protocol.Health }
  in
  let rng = locked t (fun () -> Rng.create (Rng.int t.rng 0x3FFFFFFF)) in
  let outcome = Client.call ~rng ~policy:probe_policy m.address env in
  let up = match outcome.Retry.result with Ok _ -> true | Error _ -> false in
  set_health t shard m up;
  up

let probe_all t =
  Hashtbl.iter
    (fun _ shard -> List.iter (fun m -> ignore (probe_member t shard m)) shard.members)
    t.shards

let health_loop t () =
  let rec loop () =
    if draining t then ()
    else begin
      probe_all t;
      (* Sleep in small ticks so drain is prompt. *)
      let rec nap left =
        if left > 0. && not (draining t) then begin
          Unix.sleepf (Float.min 0.1 left);
          nap (left -. 0.1)
        end
      in
      nap t.config.health_period_s;
      loop ()
    end
  in
  loop ()

let start_health_checks t =
  locked t (fun () ->
      match t.health_domain with
      | Some _ -> ()
      | None -> t.health_domain <- Some (Domain.spawn (health_loop t)))

let join_health_checks t =
  match locked t (fun () -> t.health_domain) with
  | Some d ->
      Domain.join d;
      locked t (fun () -> t.health_domain <- None)
  | None -> ()

(* ----- forwarding ----- *)

let count t name help = Counter.inc (Registry.counter t.obs ~help name)

let no_quorum t ~id shard =
  count t "serve.router.no_quorum" "Requests shed because a whole shard was down";
  Protocol.error_response ~id ~code:Protocol.No_quorum
    ~message:
      (Printf.sprintf "shard %s: no member reachable" shard.shard_name)
    ()

(* Candidate order for an idempotent request: leader first (its cache is
   authoritative and it can solve cold misses), then followers, with
   members that failed their last health probe pushed to the back —
   still tried, because a probe can be stale in either direction. *)
let candidates t shard =
  let up, down = List.partition (fun m -> healthy t shard m) shard.members in
  up @ down

let forward_idempotent t ~id shard env =
  let cands = Array.of_list (candidates t shard) in
  let n = Array.length cands in
  let policy =
    { t.config.policy with Retry.max_attempts = max t.config.policy.Retry.max_attempts (2 * n) }
  in
  let route ~attempt = cands.((attempt - 1) mod n).address in
  let rng = locked t (fun () -> Rng.create (Rng.int t.rng 0x3FFFFFFF)) in
  let outcome = Client.call ~obs:t.obs ~rng ~policy ~route cands.(0).address env in
  (match outcome.Retry.result with
  | Ok _ when outcome.Retry.attempts > 1 ->
      count t "serve.router.failovers"
        "Requests answered only after rerouting to another member"
  | _ -> ());
  match outcome.Retry.result with
  | Ok reply ->
      locked t (fun () -> t.forwarded <- t.forwarded + 1);
      reply
  | Error _ ->
      (* Every attempt (cycling all members) failed at the transport:
         mark them down and shed with a parseable verdict. *)
      List.iter (fun m -> set_health t shard m false) shard.members;
      no_quorum t ~id shard

(* [update] mutates the journal, so it goes to the leader (the first
   member) only — blind replay against a follower would be refused with
   [not_leader] anyway, and replay against a second leader could fork
   history. One attempt, no failover. *)
let forward_update t ~id shard env =
  let leader = List.hd shard.members in
  let policy = { t.config.policy with Retry.max_attempts = 1 } in
  let rng = locked t (fun () -> Rng.create (Rng.int t.rng 0x3FFFFFFF)) in
  let outcome = Client.call ~obs:t.obs ~rng ~policy leader.address env in
  match outcome.Retry.result with
  | Ok reply ->
      locked t (fun () -> t.forwarded <- t.forwarded + 1);
      reply
  | Error m ->
      set_health t shard leader false;
      let followers = List.tl shard.members in
      let any_follower_up =
        List.exists (fun f -> probe_member t shard f) followers
      in
      if any_follower_up then
        (* The shard still has a live (unpromoted) member: the caller
           must promote it before updates can continue. *)
        Protocol.error_response ~id ~code:Protocol.Not_leader
          ~message:
            (Printf.sprintf
               "shard %s: leader unreachable (%s); promote a follower to \
                resume updates"
               shard.shard_name m)
          ()
      else no_quorum t ~id shard

let shard_of_digest t digest =
  Hashtbl.find t.shards (Ring.owner t.ring digest)

(* ----- request handling ----- *)

let handle_health t ~id =
  let members_total, members_up =
    locked t (fun () ->
        Hashtbl.fold (fun _ up (total, ups) -> (total + 1, if up then ups + 1 else ups))
          t.health (0, 0))
  in
  Protocol.ok_response ~id
    [
      ("status", Json.String (if draining t then "draining" else "serving"));
      ("service", Json.String "mcss-plan-router");
      ("role", Json.String "router");
      ("shards", Json.Int (Hashtbl.length t.shards));
      ("members", Json.Int members_total);
      ("members_up", Json.Int members_up);
      ("pid", Json.Int (Unix.getpid ()));
    ]

let handle_stats t ~id =
  let shard_objs =
    Hashtbl.fold
      (fun _ shard acc ->
        Json.Obj
          [
            ("shard", Json.String shard.shard_name);
            ( "members",
              Json.List
                (List.mapi
                   (fun i m ->
                     Json.Obj
                       [
                         ("name", Json.String m.name);
                         ("address", Json.String (Server.address_to_string m.address));
                         ("role_hint", Json.String (if i = 0 then "leader" else "follower"));
                         ("up", Json.Bool (healthy t shard m));
                       ])
                   shard.members) );
          ]
        :: acc)
      t.shards []
  in
  let forwarded = locked t (fun () -> t.forwarded) in
  Protocol.ok_response ~id
    [
      ("service", Json.String "mcss-plan-router");
      ("draining", Json.Bool (draining t));
      ("forwarded", Json.Int forwarded);
      ("ring_points", Json.Int (Ring.points t.ring));
      ("shards", Json.List shard_objs);
    ]

let handle_metrics t ~id =
  Protocol.ok_response ~id
    [
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String (Mcss_obs.Sink.prometheus t.obs));
    ]

let handle_shutdown t ~id =
  let forwarded = locked t (fun () -> t.draining <- true; t.forwarded) in
  Protocol.ok_response ~id
    [ ("draining", Json.Bool true); ("requests_forwarded", Json.Int forwarded) ]

(* A [load] must be routed by the digest of its content, which only
   exists router-side once the workload is parsed; a path is read here
   (the members may not share a filesystem) and forwarded inline. *)
let handle_load t ~id env source =
  let parsed =
    match source with
    | `Inline text -> (
        match Wio.of_string text with
        | w -> Ok w
        | exception Wio.Parse_error m -> Error m)
    | `Path path -> (
        match Wio.load path with
        | w -> Ok w
        | exception Sys_error m -> Error m
        | exception Wio.Parse_error m -> Error (path ^ ": " ^ m))
  in
  match parsed with
  | Error m -> Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
  | Ok w ->
      let digest = Service.digest_of_workload w in
      let shard = shard_of_digest t digest in
      let env =
        { env with Protocol.request = Protocol.Load (`Inline (Wio.to_string w)) }
      in
      forward_idempotent t ~id shard env

let handle t (env : Protocol.envelope) =
  let id = env.Protocol.id in
  match env.Protocol.request with
  | Protocol.Health -> handle_health t ~id
  | Protocol.Stats -> handle_stats t ~id
  | Protocol.Metrics -> handle_metrics t ~id
  | Protocol.Shutdown -> handle_shutdown t ~id
  | Protocol.Promote ->
      Protocol.error_response ~id ~code:Protocol.Bad_request
        ~message:"promote must be sent to a member, not the router" ()
  | Protocol.Drain | Protocol.Rehome _ | Protocol.Ledger ->
      Protocol.error_response ~id ~code:Protocol.Bad_request
        ~message:
          "dataplane control verbs go to a broker socket (mcss dataplane), \
           not the planning router"
        ()
  | Protocol.Load source -> handle_load t ~id env source
  | Protocol.Solve { digest; _ }
  | Protocol.Whatif { digest; _ }
  | Protocol.Chaos { digest; _ } ->
      forward_idempotent t ~id (shard_of_digest t digest) env
  | Protocol.Update { digest; _ } ->
      forward_update t ~id (shard_of_digest t digest) env

let handle_line t line =
  match Json.parse line with
  | Error m -> Protocol.error_response ~code:Protocol.Bad_request ~message:m ()
  | Ok j -> (
      match Protocol.decode j with
      | Error m ->
          Protocol.error_response ~id:(Json.member "id" j)
            ~code:Protocol.Bad_request ~message:m ()
      | Ok env -> (
          match handle t env with
          | reply -> reply
          | exception exn ->
              Protocol.error_response ~id:env.Protocol.id
                ~code:Protocol.Internal ~message:(Printexc.to_string exn) ()))

let run ?server_config t address =
  start_health_checks t;
  Server.run_handler
    ?config:server_config ~obs:t.obs ~name:"mcss route"
    ~draining:(fun () -> draining t)
    ~handle:(handle_line t) address;
  join_health_checks t
