module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Rng = Mcss_prng.Rng

type member = { name : string; address : Server.address }
type shard = { shard_name : string; members : member list }

type config = {
  vnodes : int;
  health_period_s : float;
  policy : Retry.policy;
  auto_promote : bool;
  promote_after : int;
  log : string -> unit;
}

let default_config =
  {
    vnodes = 64;
    health_period_s = 1.;
    policy =
      {
        Retry.max_attempts = 4;
        base_ms = 25.;
        cap_ms = 500.;
        attempt_timeout_ms = Some 5000.;
      };
    auto_promote = false;
    promote_after = 2;
    log = ignore;
  }

(* Last known state of a member, written by the probe loop. [role],
   [epoch], and [last_index] survive a down-marking: the failover logic
   needs the dead leader's last known epoch to pick a fencing epoch that
   outranks it. *)
type probe = {
  up : bool;
  role : string;  (* "leader" | "follower" | "" before the first reply *)
  epoch : int;
  last_index : int;
  fails : int;  (* consecutive failed probes *)
}

let fresh_probe = { up = true; role = ""; epoch = 0; last_index = 0; fails = 0 }

type t = {
  config : config;
  obs : Registry.t;
  ring : Ring.t;
  shards : (string, shard) Hashtbl.t;
  rng : Rng.t;
  lock : Mutex.t;
      (** Guards [health], [rng], the mutable flags, and [shards]
          (member order is rewritten by automatic promotion). *)
  health : (string, probe) Hashtbl.t;  (* "shard/member" -> last probe *)
  mutable draining : bool;
  mutable forwarded : int;
  mutable health_domain : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let member_key shard m = shard.shard_name ^ "/" ^ m.name

let create ?obs ?(config = default_config) ?(seed = 0) shards =
  if shards = [] then invalid_arg "Router.create: no shards";
  List.iter
    (fun s ->
      if s.members = [] then
        invalid_arg
          (Printf.sprintf "Router.create: shard %S has no members" s.shard_name))
    shards;
  let obs = match obs with Some r -> r | None -> Registry.create () in
  let ring = Ring.create ~vnodes:config.vnodes (List.map (fun s -> s.shard_name) shards) in
  let tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tbl s.shard_name s) shards;
  let health = Hashtbl.create 16 in
  List.iter
    (fun s ->
      List.iter
        (fun m -> Hashtbl.replace health (member_key s m) fresh_probe)
        s.members)
    shards;
  {
    config;
    obs;
    ring;
    shards = tbl;
    rng = Rng.create seed;
    lock = Mutex.create ();
    health;
    draining = false;
    forwarded = 0;
    health_domain = None;
  }

let draining t = locked t (fun () -> t.draining)
let obs t = t.obs

let shard_get t name = locked t (fun () -> Hashtbl.find t.shards name)

let shards_snapshot t =
  locked t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.shards [])

let probe_of t shard m =
  locked t (fun () ->
      Option.value ~default:fresh_probe
        (Hashtbl.find_opt t.health (member_key shard m)))

let set_probe t shard m f =
  locked t (fun () ->
      let key = member_key shard m in
      let old =
        Option.value ~default:fresh_probe (Hashtbl.find_opt t.health key)
      in
      Hashtbl.replace t.health key (f old))

let set_health t shard m up =
  set_probe t shard m (fun p ->
      { p with up; fails = (if up then 0 else p.fails + 1) })

let healthy t shard m = (probe_of t shard m).up

(* ----- health checking ----- *)

let probe_policy =
  {
    Retry.max_attempts = 1;
    base_ms = 10.;
    cap_ms = 10.;
    attempt_timeout_ms = Some 1000.;
  }

let json_str j key = Json.member key j |> Fun.flip Option.bind Json.to_string_opt
let json_int j key = Json.member key j |> Fun.flip Option.bind Json.to_int_opt

let probe_member t shard m =
  let env =
    { Protocol.id = None; deadline_ms = None; request = Protocol.Health }
  in
  let rng = locked t (fun () -> Rng.create (Rng.int t.rng 0x3FFFFFFF)) in
  let outcome = Client.call ~rng ~policy:probe_policy m.address env in
  (match outcome.Retry.result with
  | Ok reply ->
      set_probe t shard m (fun p ->
          {
            up = true;
            fails = 0;
            role = Option.value ~default:p.role (json_str reply "role");
            epoch = Option.value ~default:p.epoch (json_int reply "epoch");
            last_index =
              Option.value ~default:p.last_index (json_int reply "last_index");
          })
  | Error _ -> set_health t shard m false);
  (probe_of t shard m).up

let probe_shard t shard = List.iter (fun m -> ignore (probe_member t shard m)) shard.members
let probe_all t = List.iter (fun s -> probe_shard t s) (shards_snapshot t)

let count t name help = Counter.inc (Registry.counter t.obs ~help name)

(* ----- automatic fenced failover ----- *)

(* Move [name] to the head of the shard's member list, so [update]s
   (leader-only) land on the member we just promoted or discovered. *)
let set_member_order t shard_name name =
  locked t (fun () ->
      match Hashtbl.find_opt t.shards shard_name with
      | None -> ()
      | Some s -> (
          match List.partition (fun m -> m.name = name) s.members with
          | [ m ], rest ->
              Hashtbl.replace t.shards shard_name { s with members = m :: rest }
          | _ -> ()))

(* One request to one member, no retries (promotion/demotion must not be
   replayed blindly against whoever answers). *)
let send_to t m request =
  let env = { Protocol.id = None; deadline_ms = None; request } in
  let rng = locked t (fun () -> Rng.create (Rng.int t.rng 0x3FFFFFFF)) in
  let outcome = Client.call ~rng ~policy:probe_policy m.address env in
  match outcome.Retry.result with
  | Ok reply when Protocol.response_ok reply -> Ok reply
  | Ok reply -> (
      match Protocol.response_error reply with
      | Some (_, m) -> Error m
      | None -> Error "refused")
  | Error m -> Error m

let cmp_caught_up (e1, i1) (e2, i2) = compare (e1, i1) (e2, i2)

(* Drive one shard toward a single, fenced leader. Called from the
   health loop (and synchronously from [forward_update] after a leader
   failure) when [auto_promote] is on; probes must be fresh.

   Two jobs: (a) the configured leader is dead past the threshold and a
   follower is up — promote the most caught-up follower (highest
   (epoch, last_index)) at an epoch above everything the cluster has
   reported, so the dead leader is fenced if it ever comes back; (b) two
   live members both claim to lead (a revived stale leader) — keep the
   higher (epoch, last_index) one and send the other a fenced demote. *)
let failover_shard t shard_name =
  let shard = shard_get t shard_name in
  let probed = List.map (fun m -> (m, probe_of t shard m)) shard.members in
  let max_epoch =
    List.fold_left (fun acc (_, p) -> max acc p.epoch) 0 probed
  in
  (* (b) fence duplicate leaders first so (a) never sees two. *)
  let leaders =
    List.filter (fun (_, p) -> p.up && p.role = "leader") probed
  in
  (match leaders with
  | _ :: _ :: _ ->
      let wm, wp =
        List.fold_left
          (fun ((_, bp) as best) ((_, p) as cand) ->
            if cmp_caught_up (p.epoch, p.last_index) (bp.epoch, bp.last_index) > 0
            then cand
            else best)
          (List.hd leaders) (List.tl leaders)
      in
      List.iter
        (fun (m, p) ->
          if m.name <> wm.name then begin
            let fence =
              if p.epoch < wp.epoch then wp.epoch else wp.epoch + 1
            in
            t.config.log
              (Printf.sprintf "shard %s: fencing stale leader %s at epoch %d"
                 shard_name m.name fence);
            count t "serve.router.fenced_demotions"
              "Stale duplicate leaders demoted by the router";
            match send_to t m (Protocol.Demote { epoch = fence }) with
            | Ok _ -> set_probe t shard m (fun p -> { p with role = "follower"; epoch = fence })
            | Error _ -> ()
          end)
        leaders;
      set_member_order t shard_name wm.name
  | [ (m, _) ] ->
      (* A single live leader is authoritative, wherever it is in the
         configured order (e.g. promoted while the router was away). *)
      set_member_order t shard_name m.name
  | [] -> ());
  (* (a) promote when the head of the (possibly just reordered) order is
     down past the threshold. *)
  let shard = shard_get t shard_name in
  match shard.members with
  | [] -> ()
  | leader :: followers -> (
      let lp = probe_of t shard leader in
      let candidates =
        List.filter_map
          (fun m ->
            let p = probe_of t shard m in
            if p.up && p.role <> "leader" then Some (m, p) else None)
          followers
      in
      if (not lp.up) && lp.fails >= t.config.promote_after && candidates <> []
      then begin
        let best, _ =
          List.fold_left
            (fun ((_, bp) as best) ((_, p) as cand) ->
              if
                cmp_caught_up (p.epoch, p.last_index) (bp.epoch, bp.last_index)
                > 0
              then cand
              else best)
            (List.hd candidates) (List.tl candidates)
        in
        let fence = max_epoch + 1 in
        t.config.log
          (Printf.sprintf
             "shard %s: leader %s down (%d probes); promoting %s at epoch %d"
             shard_name leader.name lp.fails best.name fence);
        match send_to t best (Protocol.Promote { epoch = Some fence }) with
        | Ok _ ->
            count t "serve.router.auto_promotions"
              "Followers promoted automatically after a dead leader";
            set_probe t shard best (fun p ->
                { p with role = "leader"; epoch = fence });
            set_member_order t shard_name best.name
        | Error m ->
            t.config.log
              (Printf.sprintf "shard %s: promotion of %s failed: %s" shard_name
                 best.name m)
      end)

let failover_all t =
  if t.config.auto_promote then
    List.iter (fun s -> failover_shard t s.shard_name) (shards_snapshot t)

let health_loop t () =
  let rec loop () =
    if draining t then ()
    else begin
      probe_all t;
      failover_all t;
      (* Sleep in small ticks so drain is prompt. *)
      let rec nap left =
        if left > 0. && not (draining t) then begin
          Unix.sleepf (Float.min 0.1 left);
          nap (left -. 0.1)
        end
      in
      nap t.config.health_period_s;
      loop ()
    end
  in
  loop ()

let start_health_checks t =
  locked t (fun () ->
      match t.health_domain with
      | Some _ -> ()
      | None -> t.health_domain <- Some (Domain.spawn (health_loop t)))

let join_health_checks t =
  match locked t (fun () -> t.health_domain) with
  | Some d ->
      Domain.join d;
      locked t (fun () -> t.health_domain <- None)
  | None -> ()

(* ----- forwarding ----- *)

let no_quorum t ~id shard =
  count t "serve.router.no_quorum" "Requests shed because a whole shard was down";
  Protocol.error_response ~id ~code:Protocol.No_quorum
    ~message:
      (Printf.sprintf "shard %s: no member reachable" shard.shard_name)
    ()

(* Candidate order for an idempotent request: leader first (its cache is
   authoritative and it can solve cold misses), then followers, with
   members that failed their last health probe pushed to the back —
   still tried, because a probe can be stale in either direction. *)
let candidates t shard =
  let up, down = List.partition (fun m -> healthy t shard m) shard.members in
  up @ down

let forward_idempotent t ~id shard env =
  let cands = Array.of_list (candidates t shard) in
  let n = Array.length cands in
  let policy =
    { t.config.policy with Retry.max_attempts = max t.config.policy.Retry.max_attempts (2 * n) }
  in
  let route ~attempt = cands.((attempt - 1) mod n).address in
  let rng = locked t (fun () -> Rng.create (Rng.int t.rng 0x3FFFFFFF)) in
  let outcome = Client.call ~obs:t.obs ~rng ~policy ~route cands.(0).address env in
  (match outcome.Retry.result with
  | Ok _ when outcome.Retry.attempts > 1 ->
      count t "serve.router.failovers"
        "Requests answered only after rerouting to another member"
  | _ -> ());
  match outcome.Retry.result with
  | Ok reply ->
      locked t (fun () -> t.forwarded <- t.forwarded + 1);
      reply
  | Error _ ->
      (* Every attempt (cycling all members) failed at the transport:
         mark them down and shed with a parseable verdict. *)
      List.iter (fun m -> set_health t shard m false) shard.members;
      no_quorum t ~id shard

(* [update] mutates the journal, so it goes to the leader (the current
   head of the member order) only — blind replay against a follower
   would be refused with [not_leader] anyway, and replay against a
   second leader could fork history. The member order is re-resolved on
   every attempt: a [not_leader] refusal or a dead leader means the
   order just changed (or is about to — with [auto_promote] the failover
   step is driven synchronously), and the refusal itself proves the
   server did nothing, so retrying the verb is safe. *)
let forward_update t ~id shard_name env =
  let rec attempt n =
    let shard = shard_get t shard_name in
    let leader = List.hd shard.members in
    let policy = { t.config.policy with Retry.max_attempts = 1 } in
    let rng = locked t (fun () -> Rng.create (Rng.int t.rng 0x3FFFFFFF)) in
    let outcome = Client.call ~obs:t.obs ~rng ~policy leader.address env in
    match outcome.Retry.result with
    | Ok reply -> (
        match Protocol.response_error reply with
        | Some (Some Protocol.Not_leader, _) when n > 0 ->
            (* The member order is stale: re-probe, let the failover
               logic find (or make) the real leader, and retry. *)
            count t "serve.router.not_leader_reroutes"
              "Updates rerouted after a not_leader refusal";
            probe_shard t shard;
            if t.config.auto_promote then failover_shard t shard_name;
            attempt (n - 1)
        | _ ->
            locked t (fun () -> t.forwarded <- t.forwarded + 1);
            reply)
    | Error m ->
        set_health t shard leader false;
        if t.config.auto_promote then begin
          (* Detection normally needs [promote_after] consecutive probe
             failures; a live update hitting a dead leader is evidence
             enough to re-probe immediately and, if the leader is still
             dead, count this failure toward the threshold. *)
          probe_shard t shard;
          failover_shard t shard_name;
          let shard' = shard_get t shard_name in
          if n > 0 && (List.hd shard'.members).name <> leader.name then
            attempt (n - 1)
          else if n > 0 then begin
            Unix.sleepf (t.config.health_period_s /. 2.);
            probe_shard t shard;
            failover_shard t shard_name;
            attempt (n - 1)
          end
          else no_quorum t ~id shard
        end
        else
          let followers = List.tl shard.members in
          let any_follower_up =
            List.exists (fun f -> probe_member t shard f) followers
          in
          if any_follower_up then
            (* The shard still has a live (unpromoted) member: the caller
               must promote it before updates can continue. *)
            Protocol.error_response ~id ~code:Protocol.Not_leader
              ~message:
                (Printf.sprintf
                   "shard %s: leader unreachable (%s); promote a follower to \
                    resume updates"
                   shard.shard_name m)
              ()
          else no_quorum t ~id shard
  in
  attempt 4

let shard_of_digest t digest = shard_get t (Ring.owner t.ring digest)

(* ----- request handling ----- *)

let handle_health t ~id =
  let members_total, members_up =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ p (total, ups) -> (total + 1, if p.up then ups + 1 else ups))
          t.health (0, 0))
  in
  Protocol.ok_response ~id
    [
      ("status", Json.String (if draining t then "draining" else "serving"));
      ("service", Json.String "mcss-plan-router");
      ("role", Json.String "router");
      ("shards", Json.Int (Hashtbl.length t.shards));
      ("members", Json.Int members_total);
      ("members_up", Json.Int members_up);
      ("pid", Json.Int (Unix.getpid ()));
    ]

let handle_stats t ~id =
  let shard_objs =
    List.fold_left
      (fun acc shard ->
        Json.Obj
          [
            ("shard", Json.String shard.shard_name);
            ( "members",
              Json.List
                (List.mapi
                   (fun i m ->
                     let p = probe_of t shard m in
                     Json.Obj
                       [
                         ("name", Json.String m.name);
                         ("address", Json.String (Server.address_to_string m.address));
                         ("role_hint", Json.String (if i = 0 then "leader" else "follower"));
                         ("role_seen", Json.String p.role);
                         ("epoch", Json.Int p.epoch);
                         ("last_index", Json.Int p.last_index);
                         ("up", Json.Bool p.up);
                       ])
                   shard.members) );
          ]
        :: acc)
      [] (shards_snapshot t)
  in
  let forwarded = locked t (fun () -> t.forwarded) in
  Protocol.ok_response ~id
    [
      ("service", Json.String "mcss-plan-router");
      ("draining", Json.Bool (draining t));
      ("auto_promote", Json.Bool t.config.auto_promote);
      ("forwarded", Json.Int forwarded);
      ("ring_points", Json.Int (Ring.points t.ring));
      ("shards", Json.List shard_objs);
    ]

let handle_metrics t ~id =
  Protocol.ok_response ~id
    [
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String (Mcss_obs.Sink.prometheus t.obs));
    ]

let handle_shutdown t ~id =
  let forwarded = locked t (fun () -> t.draining <- true; t.forwarded) in
  Protocol.ok_response ~id
    [ ("draining", Json.Bool true); ("requests_forwarded", Json.Int forwarded) ]

(* A [load] must be routed by the digest of its content, which only
   exists router-side once the workload is parsed; a path is read here
   (the members may not share a filesystem) and forwarded inline. *)
let handle_load t ~id env source =
  let parsed =
    match source with
    | `Inline text -> (
        match Wio.of_string text with
        | w -> Ok w
        | exception Wio.Parse_error m -> Error m)
    | `Path path -> (
        match Wio.load path with
        | w -> Ok w
        | exception Sys_error m -> Error m
        | exception Wio.Parse_error m -> Error (path ^ ": " ^ m))
  in
  match parsed with
  | Error m -> Protocol.error_response ~id ~code:Protocol.Bad_request ~message:m ()
  | Ok w ->
      let digest = Service.digest_of_workload w in
      let shard = shard_of_digest t digest in
      let env =
        { env with Protocol.request = Protocol.Load (`Inline (Wio.to_string w)) }
      in
      forward_idempotent t ~id shard env

let handle t (env : Protocol.envelope) =
  let id = env.Protocol.id in
  match env.Protocol.request with
  | Protocol.Health -> handle_health t ~id
  | Protocol.Stats -> handle_stats t ~id
  | Protocol.Metrics -> handle_metrics t ~id
  | Protocol.Shutdown -> handle_shutdown t ~id
  | Protocol.Promote _ | Protocol.Demote _ ->
      Protocol.error_response ~id ~code:Protocol.Bad_request
        ~message:"promote/demote must be sent to a member, not the router" ()
  | Protocol.Drain | Protocol.Rehome _ | Protocol.Ledger ->
      Protocol.error_response ~id ~code:Protocol.Bad_request
        ~message:
          "dataplane control verbs go to a broker socket (mcss dataplane), \
           not the planning router"
        ()
  | Protocol.Load source -> handle_load t ~id env source
  | Protocol.Solve { digest; _ }
  | Protocol.Whatif { digest; _ }
  | Protocol.Chaos { digest; _ } ->
      forward_idempotent t ~id (shard_of_digest t digest) env
  | Protocol.Update { digest; _ } ->
      forward_update t ~id (shard_of_digest t digest).shard_name env

let handle_line t line =
  match Json.parse line with
  | Error m -> Protocol.error_response ~code:Protocol.Bad_request ~message:m ()
  | Ok j -> (
      match Protocol.decode j with
      | Error m ->
          Protocol.error_response ~id:(Json.member "id" j)
            ~code:Protocol.Bad_request ~message:m ()
      | Ok env -> (
          match handle t env with
          | reply -> reply
          | exception exn ->
              Protocol.error_response ~id:env.Protocol.id
                ~code:Protocol.Internal ~message:(Printexc.to_string exn) ()))

let run ?server_config t address =
  start_health_checks t;
  Server.run_handler
    ?config:server_config ~obs:t.obs ~name:"mcss route"
    ~draining:(fun () -> draining t)
    ~handle:(handle_line t) address;
  join_health_checks t
