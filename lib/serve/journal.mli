(** Crash-safe persistence for the planning daemon: a write-ahead log of
    framed records plus a periodically rewritten snapshot, so a
    [kill -9]'d server recovers its workload registry and plan cache on
    restart instead of re-running the solver.

    The journal stores opaque string payloads ({!Service} encodes its
    ops as one JSON object per record). On disk each record is framed as

    {v
    <u32 LE payload length> <u32 LE CRC-32 of payload> <payload bytes>
    v}

    under [DIR/wal.mcssj]; [DIR/snapshot.mcssj] holds the same framing
    and is only ever replaced atomically (write to a temp file, fsync,
    rename), after which the WAL is truncated. Replay reads the snapshot
    then the WAL; a torn tail — a crash mid-append leaves a short header
    or a payload whose CRC does not match — is cut off the WAL in place
    ([ftruncate] to the last good record) and everything before it is
    recovered. A corrupt snapshot record stops the snapshot replay at
    that point but is never "repaired": the snapshot is only written
    whole.

    All operations are thread-safe. *)

type config = {
  dir : string;  (** Created (with parents) on {!open_} when missing. *)
  fsync : bool;
      (** [fsync] the WAL after every append (default). Disabling trades
          the tail of the log on power loss for append latency. *)
  snapshot_every : int;
      (** WAL records after which {!snapshot_due} turns true; [0] never. *)
}

val default_config : dir:string -> config
(** [fsync = true], [snapshot_every = 256]. *)

type replay = {
  records : string list;  (** Recovered payloads: snapshot first, then WAL. *)
  snapshot_records : int;
  wal_records : int;
  truncated_bytes : int;  (** Torn tail cut off the WAL. *)
  corrupt_records : int;  (** Framing/CRC failures hit during replay. *)
}

type t

val open_ : ?obs:Mcss_obs.Registry.t -> config -> t * replay
(** Replay what is on disk, truncate any torn WAL tail, and reopen the
    WAL for appending. [obs] receives [serve.journal.*] counters and the
    fsync latency histogram. Raises [Unix.Unix_error]/[Sys_error] when
    the directory cannot be created or opened. *)

val append : t -> string -> unit
(** Frame, write, and (per {!config}) fsync one record. *)

val wal_records : t -> int
(** Records currently in the WAL (replayed + appended since the last
    {!snapshot}). *)

val snapshot_due : t -> bool

val snapshot : t -> string list -> unit
(** Atomically replace the snapshot with the given full state and start
    a fresh WAL. The caller (the service) passes every record needed to
    rebuild its state from scratch. *)

val snapshots_taken : t -> int

val wal_path : t -> string
val snapshot_path : t -> string

val close : t -> unit
(** Idempotent. Appending after [close] raises [Sys_error]. *)

(** {2 CRC-32}

    Exposed for tests and the fault-injection suite (corrupting a frame
    deliberately requires computing what the good CRC would have been). *)

val crc32 : string -> int32
(** IEEE 802.3 (zlib) CRC-32 of the whole string. *)
