(** Crash-safe persistence for the planning daemon: a write-ahead log of
    framed records plus a periodically rewritten snapshot, so a
    [kill -9]'d server recovers its workload registry and plan cache on
    restart instead of re-running the solver.

    The journal stores opaque string payloads ({!Service} encodes its
    ops as one JSON object per record). On disk each record is framed as

    {v
    <u32 LE payload length> <u32 LE CRC-32> <u64 LE epoch> <payload bytes>
    v}

    where the CRC covers the epoch field followed by the payload, under
    [DIR/wal.mcssj]; [DIR/snapshot.mcssj] holds the same framing and is
    only ever replaced atomically (write to a temp file, fsync, rename),
    after which the WAL is truncated. Replay reads the snapshot then the
    WAL; a torn tail — a crash mid-append leaves a short header or a
    payload whose CRC does not match — is cut off the WAL in place
    ([ftruncate] to the last good record) and everything before it is
    recovered. A corrupt snapshot record stops the snapshot replay at
    that point but is never "repaired": the snapshot is only written
    whole.

    All operations are thread-safe. *)

type config = {
  dir : string;  (** Created (with parents) on {!open_} when missing. *)
  fsync : bool;
      (** [fsync] the WAL after every append (default). Disabling trades
          the tail of the log on power loss for append latency. *)
  snapshot_every : int;
      (** WAL records after which {!snapshot_due} turns true; [0] never. *)
}

val default_config : dir:string -> config
(** [fsync = true], [snapshot_every = 256]. *)

type replay = {
  records : (int * string) list;
      (** Recovered [(epoch, payload)] records: snapshot first, then
          WAL. *)
  snapshot_records : int;
  wal_records : int;
  truncated_bytes : int;  (** Torn tail cut off the WAL. *)
  corrupt_records : int;  (** Framing/CRC failures hit during replay. *)
  dropped_frames : int;
      (** Best-effort count of whole frames lost to the cut tail: the
          scan keeps following frame headers past the first failure
          (without trusting their payloads) and counts any
          unsynchronised remainder as one more frame. [0] on a clean
          log. *)
}

type t

val open_ : ?obs:Mcss_obs.Registry.t -> config -> t * replay
(** Replay what is on disk, truncate any torn WAL tail, and reopen the
    WAL for appending. [obs] receives [serve.journal.*] counters and the
    fsync latency histogram. Raises [Unix.Unix_error]/[Sys_error] when
    the directory cannot be created or opened. *)

val append : ?epoch:int -> t -> string -> unit
(** Frame, write, and (per {!config}) fsync one record. Without [epoch]
    the frame is stamped with the journal's current epoch; with it, the
    frame is stamped with exactly [epoch] (a follower mirroring a
    leader's backlog must reproduce each frame byte for byte, including
    frames below its own adopted epoch) and the journal's epoch floor is
    raised when [epoch] is ahead. *)

val wal_records : t -> int
(** Records currently in the WAL (replayed + appended since the last
    {!snapshot}). *)

val snapshot_due : t -> bool

val snapshot : t -> string list -> unit
(** Atomically replace the snapshot with the given full state and start
    a fresh WAL. The caller (the service) passes every record needed to
    rebuild its state from scratch. Snapshot frames are stamped with the
    current epoch. *)

val snapshots_taken : t -> int

(** {2 Fencing epochs}

    Every record carries the epoch it was written under. The epoch is a
    monotonically increasing term number bumped by leader promotion:
    replication rejects a leader presenting a lower epoch than its
    follower has already adopted, which is what makes a revived stale
    leader harmless. [DIR/epoch.mcssj] persists the current epoch
    atomically; on {!open_} the journal adopts the maximum of the
    persisted value and the highest epoch seen in any recovered frame,
    so the invariant survives a crash between the record fsync and the
    sidecar write. *)

val epoch : t -> int
(** The epoch new appends are stamped with ([0] initially). *)

val last_epoch : t -> int
(** Epoch of the most recently written record ([0] on an empty
    journal) — what the replication handshake reports, so a leader can
    detect a divergent tail and not just a divergent length. *)

val set_epoch : t -> int -> unit
(** Adopt a higher epoch (persisted before the in-memory update). Lower
    or equal values are ignored: epochs never regress. *)

val bump_epoch : t -> int
(** Atomically raise the epoch by one and return the new value
    (promotion). *)

(** {2 Record indices}

    Every record appended to the journal has a dense, monotonically
    increasing absolute index starting at 1. [DIR/base.mcssj] persists
    the index of the last record folded into the snapshot, so indices
    survive both restarts and snapshot folds; the WAL always holds
    records [base_index + 1 .. last_index]. Replication uses these
    indices to negotiate incremental resync: a follower reports its
    [last_index] and the leader streams the missing suffix when it still
    has it in its WAL, or ships a full snapshot otherwise. *)

val base_index : t -> int
(** Index of the last record folded into the snapshot ([0] before any
    fold). *)

val last_index : t -> int
(** Index of the most recently appended record:
    [base_index t + wal_records t]. [0] on an empty journal. *)

val read_from :
  t -> index:int -> ((int * int * string) list, [ `Resync ]) result
(** [read_from t ~index] returns the WAL records strictly after absolute
    index [index] as [(index, epoch, payload)] triples, in order.
    [Error `Resync] when the span is gone — [index < base_index t]
    (folded into the snapshot) or [index > last_index t] (the caller is
    ahead of this journal, e.g. after a divergent restart) — in which
    case the caller must take a full snapshot instead. *)

val epoch_at : t -> index:int -> int option
(** Epoch of the WAL record at absolute index [index]; [None] when that
    record is not in the WAL (folded into the snapshot, or past the
    end). The replication handshake uses this to detect a follower whose
    tail diverged — same index, different epoch — and force a reset. *)

val iter_from :
  t ->
  index:int ->
  (index:int -> epoch:int -> string -> unit) ->
  (int, [ `Resync ]) result
(** [iter_from t ~index f] applies [f] to each record {!read_from}
    returns and yields how many records were visited. Same [`Resync]
    contract as {!read_from}. *)

val install_snapshot : t -> base:int -> epoch:int -> string list -> unit
(** Atomically replace this journal's entire contents with a full state
    received from elsewhere (follower resync): adopts [epoch] (raises
    only), writes the payloads as the new snapshot, persists [base] as
    the new base index, and truncates the WAL — discarding any divergent
    local tail. After the call [last_index t = base]. The caller owns
    the corresponding in-memory state reset. *)

val wal_path : t -> string
val snapshot_path : t -> string

val close : t -> unit
(** Idempotent. Appending after [close] raises [Sys_error]. *)

(** {2 Read-only verification} *)

type verify_report = {
  v_snapshot_records : int;
  v_wal_records : int;
  v_corrupt_records : int;  (** Framing/CRC failures across both files. *)
  v_dropped_frames : int;  (** Frames apparently lost past a failure. *)
  v_trailing_bytes : int;
      (** Bytes past the last good WAL frame (torn or corrupt tail). *)
  v_base_index : int;
  v_persisted_epoch : int;  (** Contents of [epoch.mcssj]. *)
  v_min_epoch : int;  (** Over recovered records; [0] when empty. *)
  v_max_epoch : int;
  v_epoch_regressions : int;
      (** Adjacent record pairs whose epoch decreased — always [0] on a
          journal written by this code. *)
}

val verify : dir:string -> verify_report
(** Scan [dir]'s snapshot and WAL without opening anything for write:
    unlike {!open_} a torn tail is reported, never truncated — the
    journal on disk is byte-identical before and after. Backs
    [mcss journal --verify]. *)

(** {2 Framing}

    Exposed for tests, the fault-injection suite (corrupting a frame
    deliberately requires computing what the good CRC would have been),
    and {!Replication}, which reuses the on-disk framing as its wire
    format. *)

val crc32 : string -> int32
(** IEEE 802.3 (zlib) CRC-32 of the whole string. *)

val frame : epoch:int -> string -> string
(** [frame ~epoch payload] is the on-disk/on-wire encoding of one
    record: [<u32 LE length><u32 LE crc><u64 LE epoch><payload>], the
    CRC taken over the 8 epoch bytes followed by the payload. Raises
    [Invalid_argument] past {!max_record_bytes} or on a negative
    epoch. *)

val header_bytes : int
(** Frame header size in bytes (16). *)

val max_record_bytes : int
(** Upper bound on a single payload (256 MiB); larger lengths in a frame
    header are treated as corruption. *)

val read_base : string -> int
(** [read_base dir] reads [dir/base.mcssj] ([0] when absent). *)

val read_epoch : string -> int
(** [read_epoch dir] reads [dir/epoch.mcssj] ([0] when absent). *)
