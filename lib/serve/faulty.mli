(** Wire-level fault injection for the planning daemon's transport: a
    TCP proxy that sits between a client and a real server and mangles
    the byte stream on purpose — partial writes, torn frames, abrupt
    resets, slow-loris trickle, garbage bytes — plus a signal storm that
    forces genuine [EINTR] out of blocking syscalls.

    The point is to prove, in tests and the [serve-faults] bench, that
    the resilient pieces actually resist: {!Client.call} retries through
    a reset, {!Server}'s reader survives torn frames, {!Journal} replay
    truncates torn tails, and the {!Retry} backoff spreads reconnect
    storms. A real proxy (not a mock transport) is used so resets are
    real RSTs ([SO_LINGER 0]) and partial writes are real short
    [write(2)]s. *)

(** What to do to one direction of one proxied connection. Byte counts
    are of {e forwarded} payload for that direction. *)
type fault =
  | Delay_ms of float  (** Sleep before forwarding the first byte. *)
  | Chop of int  (** Forward in at-most-[n]-byte writes (partial writes). *)
  | Trickle of { chunk : int; delay_ms : float }
      (** Slow-loris: [Chop chunk] plus a sleep between chunks. *)
  | Garbage of string  (** Inject these bytes before any real ones. *)
  | Tear_after of int
      (** Forward only the first [n] bytes, then close both sides
          cleanly (FIN) — the peer sees a torn frame, then EOF. *)
  | Reset_after of int
      (** Forward the first [n] bytes, then abort the client side with
          [SO_LINGER 0] — the peer sees a real RST ([ECONNRESET]). *)
  | Blackhole
      (** Accept and read this direction, forward nothing, never signal:
          the sender sees an open connection that swallows bytes — the
          shape of a dropped-packets partition, as opposed to the RST of
          a dead process. Applied to both directions of a script it
          makes the link a full network partition; to one, an
          asymmetric link. *)

type script = {
  to_server : fault list;  (** Applied to client → server bytes. *)
  to_client : fault list;  (** Applied to server → client bytes. *)
}

val clean : script
(** Forward both directions untouched. *)

type t

val start :
  ?plan:(conn:int -> script) -> upstream:Server.address -> unit -> t
(** Listen on an ephemeral loopback TCP port; each accepted connection
    [i] (0-based, in accept order) dials [upstream] and is pumped
    through [plan ~conn:i] (default {!clean} for every connection).
    Raises [Unix.Unix_error] when the listener cannot bind. *)

val address : t -> Server.address
(** Where clients should connect. *)

val port : t -> int

val connections : t -> int
(** Connections accepted so far. *)

val set_plan : t -> (conn:int -> script) -> unit
(** Replace the fault plan for connections accepted {e from now on};
    live connections keep their script (use {!sever} to force them
    through the new plan). The nemesis flips links between healthy and
    partitioned this way mid-run. *)

val sever : t -> unit
(** Tear down every live proxied connection (clean FIN both sides) but
    keep the listener accepting — reconnects go through the current
    plan. *)

val stop : t -> unit
(** Close the listener and every live connection, join the pumps.
    Idempotent. *)

(** {2 Signal storm}

    Blocking syscalls in OCaml are interrupted by signals (handlers are
    installed without [SA_RESTART]), so pounding the process with a
    harmless signal makes [read]/[write]/[select] return [EINTR] at
    random points — exactly the noise the I/O loops must absorb. *)

val with_signal_storm : ?interval_ms:float -> (unit -> 'a) -> 'a
(** Install a no-op [SIGUSR1] handler, spawn a domain that signals this
    process every [interval_ms] (default 0.2 ms) while [f] runs, then
    stop the storm and restore the previous handler. Exception-safe. *)
