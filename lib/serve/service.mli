(** The planning service proper: resident workloads, the plan cache, the
    admission gate, the solver circuit breaker, and the request
    dispatcher — everything except the sockets, so it can be driven
    in-process by tests and the bench as well as by {!Server}.

    A workload is registered once ([load]) and addressed thereafter by
    the MD5 digest of its canonical {!Mcss_workload.Wio} text, so the
    same content always maps to the same digest no matter how it
    arrived. Plans are cached under [(digest, solver params)]; a [solve]
    or [whatif] point that hits the cache is answered without running
    the solver (the [serve.solver.runs] counter does not move and no
    solver timing is recorded — only [serve.cache.hits]). Concurrent
    misses on the same key are single-flighted: one request runs the
    solver, the rest share its result as a hit.

    {b Durability.} With a {!Journal} configured, every registered
    workload and every solved plan is appended to a write-ahead log
    before the reply goes out; {!create} replays the log so a restarted
    (even [kill -9]'d) daemon answers the same [solve] as a cache hit,
    with the same [plan_digest], without re-running the solver.

    {b Live updates.} An [update] request evolves a cached plan through
    the incremental engine ({!Mcss_engine.Engine}): only the delta batch
    is journaled, and replay re-applies it to the base plan — the engine
    is deterministic, so the restarted daemon reproduces the exact
    [plan_digest] the live run answered with (and drops the record if it
    does not). The evolved workload gets its own content digest, so
    existing plans for the old digest stay valid and the plan cache
    never serves a stale allocation for the new content.

    {b Degradation.} Consecutive solver failures (deadline blowouts or
    internal errors) open a circuit breaker; while it is open, cache
    misses are answered [degraded] from the last solved plan for the
    digest (see {!Protocol}) instead of queueing doomed work.

    All entry points are thread-safe; the heavy phases (solving, chaos
    drills) run outside the internal lock so concurrent workers only
    contend for microseconds. *)

type config = {
  cache_capacity : int;  (** Plan-cache entries (default 128). *)
  max_in_flight : int;  (** Concurrent solver runs (default 4). *)
  default_deadline_ms : float option;
      (** Applied when a request carries no ["deadline_ms"]. *)
  journal : Journal.config option;
      (** Where to persist state; [None] (default) serves from memory
          only. *)
  breaker : Breaker.config;  (** Solver circuit breaker thresholds. *)
  chaos_policy : Mcss_resilience.Orchestrator.policy;
      (** Baseline supervision policy for [chaos] drill requests —
          failure-detection hysteresis and repair backoff (base, cap,
          jitter) come from here; the request's own [epochs] and [seed]
          always override those two fields. Default
          {!Mcss_resilience.Orchestrator.default_policy}. *)
  name : string;
      (** This node's name, stamped as ["origin"] into every journal op
          it accepts as leader (default ["node"]). Replication preserves
          the field, so post-mortem invariant checks can attribute every
          record in any journal to the leader that wrote it. *)
  quorum_acks : int;
      (** Replicas (including this leader) that must have fsynced a
          non-idempotent record ([update], first-time [load]) before its
          reply goes out. [1] (default) keeps replication fully async;
          with more, the reply waits on the {!set_commit_gate} gate and
          becomes [no_quorum] on timeout. Idempotent verbs never wait. *)
  quorum_timeout_ms : float;
      (** How long a write may wait for its quorum (default 2000). *)
}

val default_config : config

type t

(** A service is either a [Leader] — journals its own ops and may feed
    them to followers — or a [Follower], whose journal is a verbatim
    mirror of its leader's record sequence: local ops are never
    journaled, [update] is refused with [not_leader], and only
    {!apply_replicated}/{!reset_to_snapshot} write its journal.
    Followers still serve reads (a replicated plan is a cache hit with
    the leader's exact [plan_digest]); {!promote} turns one into a
    leader in place. *)
type role = Leader | Follower

val create :
  ?obs:Mcss_obs.Registry.t ->
  ?config:config ->
  ?role:role ->
  ?replay_to:int ->
  unit ->
  t
(** [obs] (default a fresh enabled registry) receives the per-endpoint
    request counters and latency histograms, the cache/in-flight/breaker
    gauges, the journal counters, and the solver-run counter/duration
    histogram; it is what the [metrics] request renders. When
    [config.journal] is set, opens the journal and replays it (raising
    [Unix.Unix_error]/[Sys_error] if the directory cannot be created or
    opened). [role] defaults to [Leader]. [replay_to] caps replay at the
    first N recovered records (snapshot records first, then WAL) —
    point-in-time recovery for [mcss journal --seek]. *)

val close : t -> unit
(** Close the journal (no-op without one). Idempotent. *)

val handle_line : t -> string -> Json.t
(** Decode one request line and dispatch it. Never raises: malformed
    input becomes a [bad_request] reply, unexpected exceptions an
    [internal] one. *)

val handle : t -> Protocol.envelope -> Json.t
(** Dispatch an already-decoded request. Never raises. *)

val load_workload : t -> Mcss_workload.Workload.t -> string
(** Register a workload directly (the CLI uses this to preload), returns
    its digest. Journaled unless the digest is already resident. *)

val digest_of_workload : Mcss_workload.Workload.t -> string
(** The content digest (hex MD5 of the canonical Wio text). *)

val draining : t -> bool
(** Set forever once a [shutdown] request has been answered; {!Server}
    polls it to stop accepting and drain. *)

type replay_stats = {
  workloads_recovered : int;
  plans_recovered : int;
  updates_replayed : int;
      (** Journaled delta batches re-applied through the engine, each
          verified to land on the [new_digest] the live run recorded. *)
  records_skipped : int;
      (** Records that no longer decode or reference a workload that was
          not recovered; skipped, never fatal. *)
  wal_truncated_bytes : int;  (** Torn tail cut off the WAL. *)
  corrupt_records : int;  (** Framing/CRC failures hit during replay. *)
  dropped_frames : int;
      (** Best-effort count of whole frames lost to the cut tail (see
          {!Journal.replay}). *)
}

val replay_stats : t -> replay_stats option
(** What {!create} recovered from the journal; [None] without one. *)

(** {2 Replication}

    The leader side exposes its journal as an indexed record stream
    ({!set_journal_hook} for the live tail, {!sync_state} for a full
    snapshot); the follower side applies it ({!apply_replicated},
    {!reset_to_snapshot}). {!Replication} wires the two over a socket. *)

val role : t -> role
val role_to_string : role -> string

val epoch : t -> int
(** This node's fencing epoch: the journal's {!Journal.epoch}, or a
    volatile in-memory term when running without one. *)

val promote : ?epoch:int -> t -> bool
(** Make this service a leader (idempotent); [true] when it actually was
    a follower. A follower-to-leader transition always bumps the fencing
    epoch to [max (own + 1) epoch] — pass the highest epoch observed
    cluster-wide so the promotion fences every earlier leader; an
    already-leading node adopts [epoch] when ahead but does not re-bump.
    The caller (the serve loop) is responsible for stopping the
    follower's replication pull. *)

val demote : t -> epoch:int -> (bool, string) result
(** Fenced step-down: become a follower and adopt [epoch], but only when
    [epoch] is strictly ahead of this node's own — [Error] otherwise, so
    a laggard's stale view can never demote a genuinely newer leader.
    [Ok true] when the node was actually leading. The caller restarts
    the replication pull. *)

type journal_event = Appended of { index : int; epoch : int; payload : string }

val set_journal_hook : t -> (journal_event -> unit) option -> unit
(** Observe leader-side journal appends, with each record's absolute
    index and frame epoch. Called under the journal lock — the hook must
    be quick and must not call back into journaling. *)

val set_commit_gate : t -> (index:int -> (unit, string) result) option -> unit
(** Install the quorum gate replies to non-idempotent verbs wait on when
    [config.quorum_acks > 1] (the replication hub provides it: block
    until enough followers acked [index], [Error] on timeout). Called
    outside all service locks. *)

val journal_last_index : t -> int option
(** The journal's {!Journal.last_index}; [None] without a journal. *)

val journal_last_epoch : t -> int option
(** The journal's {!Journal.last_epoch}; [None] without a journal. *)

val journal_epoch_at : t -> index:int -> int option
(** {!Journal.epoch_at}: the epoch of the WAL record at [index], [None]
    when not in the WAL (or no journal). *)

val journal_read_from :
  t -> index:int -> ((int * int * string) list, [ `Resync ]) result
(** {!Journal.read_from} on the service's journal: the
    [(index, epoch, payload)] records strictly after absolute index
    [index]. [Error `Resync] when that span is no longer available (or
    there is no journal) — stream a {!sync_state} snapshot instead. *)

val sync_state : t -> int * int * string list
(** A consistent [(last_index, epoch, full state)] triple for seeding a
    follower that is too far behind for an incremental tail: replaying
    the records on an empty service reproduces this service's answers.
    Raises [Invalid_argument] without a journal. *)

val apply_replicated :
  t -> index:int -> epoch:int -> string -> (unit, string) result
(** Apply one leader record on a follower — through the same replay path
    a restart uses — and mirror it into the local journal at the
    leader's frame [epoch]. [index] must be exactly
    [journal_last_index + 1]; [Error] (gap, rewind, no journal, or this
    node is itself a leader — the split-brain guard) means the caller
    must stop or resync. Records that no longer replay locally are
    mirrored anyway and counted, never fatal. *)

val reset_to_snapshot :
  t -> base:int -> epoch:int -> string list -> (unit, string) result
(** Replace the journal and the in-memory state with a leader's
    {!sync_state} snapshot taken at absolute index [base] under [epoch].
    Any local records past [base] are a divergent un-acked tail and are
    truncated (counted in [serve.replication.truncated_records]).
    Refused on a leader. *)

val obs : t -> Mcss_obs.Registry.t
val cache_stats : t -> Plan_cache.stats
val solver_runs : t -> int

val breaker : t -> Breaker.t
(** The solver circuit breaker (tests trip and inspect it directly). *)
