(** The planning service proper: resident workloads, the plan cache, the
    admission gate, and the request dispatcher — everything except the
    sockets, so it can be driven in-process by tests and the bench as
    well as by {!Server}.

    A workload is registered once ([load]) and addressed thereafter by
    the MD5 digest of its canonical {!Mcss_workload.Wio} text, so the
    same content always maps to the same digest no matter how it
    arrived. Plans are cached under [(digest, solver params)]; a [solve]
    or [whatif] point that hits the cache is answered without running
    the solver (the [serve.solver.runs] counter does not move and no
    solver timing is recorded — only [serve.cache.hits]).

    All entry points are thread-safe; the heavy phases (solving, chaos
    drills) run outside the internal lock so concurrent workers only
    contend for microseconds. *)

type config = {
  cache_capacity : int;  (** Plan-cache entries (default 128). *)
  max_in_flight : int;  (** Concurrent solver runs (default 4). *)
  default_deadline_ms : float option;
      (** Applied when a request carries no ["deadline_ms"]. *)
}

val default_config : config

type t

val create : ?obs:Mcss_obs.Registry.t -> ?config:config -> unit -> t
(** [obs] (default a fresh enabled registry) receives the per-endpoint
    request counters and latency histograms, the cache and in-flight
    gauges, and the solver-run counter/duration histogram; it is what
    the [metrics] request renders. *)

val handle_line : t -> string -> Json.t
(** Decode one request line and dispatch it. Never raises: malformed
    input becomes a [bad_request] reply, unexpected exceptions an
    [internal] one. *)

val handle : t -> Protocol.envelope -> Json.t
(** Dispatch an already-decoded request. Never raises. *)

val load_workload : t -> Mcss_workload.Workload.t -> string
(** Register a workload directly (the CLI uses this to preload), returns
    its digest. *)

val digest_of_workload : Mcss_workload.Workload.t -> string
(** The content digest (hex MD5 of the canonical Wio text). *)

val draining : t -> bool
(** Set forever once a [shutdown] request has been answered; {!Server}
    polls it to stop accepting and drain. *)

val obs : t -> Mcss_obs.Registry.t
val cache_stats : t -> Plan_cache.stats
val solver_runs : t -> int
