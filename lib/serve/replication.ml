module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter

(* ----- wire format -----

   The follower drives. It connects to the leader's replication address
   and sends one JSON hello line:

     {"rep":"hello","last_index":N,"last_epoch":L,"epoch":E}

   [L] is the epoch of its last journal record and [E] the fencing epoch
   it has adopted. A leader whose own epoch is below [E] has been fenced
   by a newer promotion it never heard about: it refuses the stream with
   {"ok":false,"stale":true,"epoch":E} and demotes itself to follower on
   the spot. Otherwise the leader answers with one JSON header line,
   then switches the stream to binary CRC frames (the journal's own
   framing, one record per frame, each carrying its epoch):

     {"ok":true,"mode":"tail","from":N,"epoch":EL}
                                            records N+1, N+2, ... follow
     {"ok":true,"mode":"reset","base":B,"records":K,"epoch":EL}
                                            K full-state records follow,
                                            then live records B+1, ...
     {"ok":false,"message":...}             handshake refused

   A [tail] is only offered when the follower's (last_index, last_epoch)
   matches the leader's own record at that index — same length but a
   different epoch means the follower's tail was written by a fenced
   leader and is forced through a [reset], which truncates it.

   Indices never travel with the frames: records are dense and
   monotonic, so the follower numbers them by counting from the
   negotiated point. After applying each record the follower writes an
   {"ack":INDEX} line back on the same socket; the leader tracks the
   high-water mark per connection, and {!commit_gate} turns those marks
   into the quorum barrier [update]/[load] replies wait on. Any framing
   or CRC failure on either side simply drops the connection — the
   follower's journal keeps only whole verified frames, so the worst
   case is a truncated tail healed by the next handshake. *)

let rec eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr f

(* Both sides write to sockets the peer may have torn or reset; a
   broken pipe must surface as EPIPE, not kill the process. *)
let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = eintr (fun () -> Unix.write fd b off (len - off)) in
      go (off + n)
  in
  go 0

(* Read exactly [len] bytes. [`Stopped] when [stop] turned true while
   the socket was idle at a frame boundary-or-not — the caller treats a
   mid-frame stop as a dropped connection, never a half-applied one. *)
let read_exactly ~stop fd buf len =
  let rec go off =
    if off >= len then `Ok
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if stop () then `Stopped else go off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> `Eof
  in
  go 0

(* One frame off the socket: [`Record (epoch, payload)] with the CRC
   verified (it covers the epoch bytes too), or the reason the stream
   ended. *)
let read_frame ~stop fd =
  let header = Bytes.create Journal.header_bytes in
  match read_exactly ~stop fd header Journal.header_bytes with
  | (`Eof | `Stopped) as e -> e
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_le header 0) in
      let crc = Bytes.get_int32_le header 4 in
      let epoch = Int64.to_int (Bytes.get_int64_le header 8) in
      if len < 0 || len > Journal.max_record_bytes || epoch < 0 then `Corrupt
      else
        let payload = Bytes.create len in
        (match read_exactly ~stop fd payload len with
        | (`Eof | `Stopped) as e -> e
        | `Ok ->
            let payload = Bytes.unsafe_to_string payload in
            if Journal.crc32 (Bytes.sub_string header 8 8 ^ payload) <> crc then
              `Corrupt
            else `Record (epoch, payload))

(* Read one newline-terminated line, byte-buffered, bounded. Used for
   the handshake and ack lines only — the record stream is frames. *)
let read_line_bounded ~stop ?(limit = 1 lsl 20) fd =
  let buf = Buffer.create 128 in
  let one = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > limit then `Too_long
    else
      match Unix.read fd one 0 1 with
      | 0 -> `Eof
      | _ ->
          let c = Bytes.get one 0 in
          if c = '\n' then `Line (Buffer.contents buf)
          else begin
            Buffer.add_char buf c;
            go ()
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if stop () then `Stopped else go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> `Eof
  in
  go ()

let set_rcvtimeo fd seconds =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* ----- leader side ----- *)

(* Per-follower fan-out queue, fed by the service's journal hook. The
   hook must never block (it runs under the journal lock), so the queue
   is bounded: a follower that cannot drain [queue_cap] records loses
   the connection and resyncs, instead of back-pressuring the leader. *)
let queue_cap = 1024

type sub = {
  q : (int * int * string) Queue.t;  (* index, epoch, payload *)
  m : Mutex.t;
  cv : Condition.t;
  mutable overflowed : bool;
  mutable acked : int;
      (* Highest index this follower has applied and fsynced (its
         {"ack":N} high-water mark); what {!commit_gate} counts. *)
}

type leader = {
  service : Service.t;
  listener : Unix.file_descr;
  obs : Registry.t;
  lock : Mutex.t;
  mutable subs : sub list;
  mutable closing : bool;
  mutable conn_fds : Unix.file_descr list;
  mutable conn_domains : unit Domain.t list;
  mutable acceptor : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let leader_closing t = locked t (fun () -> t.closing)

let subscribe t =
  let sub =
    { q = Queue.create (); m = Mutex.create (); cv = Condition.create ();
      overflowed = false; acked = 0 }
  in
  locked t (fun () -> t.subs <- sub :: t.subs);
  sub

let unsubscribe t sub =
  locked t (fun () -> t.subs <- List.filter (fun s -> s != sub) t.subs)

(* Next queued record, or [None] once the leader is closing or the
   queue overflowed (the connection must drop and the follower resync —
   a partial queue after overflow would hide a gap). *)
let rec sub_next t sub =
  Mutex.lock sub.m;
  let state =
    if sub.overflowed then `Overflow
    else match Queue.take_opt sub.q with
      | Some r -> `Record r
      | None -> `Empty
  in
  (match state with
  | `Empty when not (leader_closing t) -> Condition.wait sub.cv sub.m
  | _ -> ());
  Mutex.unlock sub.m;
  match state with
  | `Record r -> Some r
  | `Overflow -> None
  | `Empty -> if leader_closing t then None else sub_next t sub

let push_event t (Service.Appended { index; epoch; payload }) =
  let subs = locked t (fun () -> t.subs) in
  List.iter
    (fun s ->
      Mutex.lock s.m;
      if Queue.length s.q >= queue_cap then s.overflowed <- true
      else Queue.push (index, epoch, payload) s.q;
      Condition.signal s.cv;
      Mutex.unlock s.m)
    subs

let count t name help = Counter.inc (Registry.counter t.obs ~help name)

(* How many followers have acked record [index]. The leader's own fsync
   is not counted here — {!commit_gate} owes [quorum - 1] remote acks. *)
let acked_count t ~index =
  let subs = locked t (fun () -> t.subs) in
  List.fold_left
    (fun n s ->
      Mutex.lock s.m;
      let a = s.acked in
      Mutex.unlock s.m;
      if a >= index then n + 1 else n)
    0 subs

(* The quorum barrier {!Service}'s non-idempotent verbs wait on: block
   until [quorum - 1] followers have acked [index]. Polling (2 ms) keeps
   the ack readers free of any condition-variable protocol with this
   caller; quorum writes are control-plane rare. *)
let commit_gate t ~quorum ~timeout_ms ~index =
  let needed = quorum - 1 in
  if needed <= 0 then Ok ()
  else
    let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
    let rec wait () =
      if leader_closing t then Error "replication hub is closing"
      else
        let acked = acked_count t ~index in
        if acked >= needed then Ok ()
        else if Unix.gettimeofday () > deadline then begin
          count t "serve.replication.quorum_timeouts"
            "Quorum waits that timed out";
          Error
            (Printf.sprintf
               "%d of %d required follower acks for record %d within %.0f ms"
               acked needed index timeout_ms)
        end
        else begin
          Unix.sleepf 0.002;
          wait ()
        end
    in
    wait ()

(* Serve one follower connection to completion. *)
let handle_follower t fd =
  set_rcvtimeo fd 0.2;
  let stop () = leader_closing t in
  let hello =
    match read_line_bounded ~stop fd with
    | `Line line -> (
        match Json.parse line with
        | Ok j
          when Json.member "rep" j
               |> Fun.flip Option.bind Json.to_string_opt
               = Some "hello" -> (
            let int key ~default =
              match
                Json.member key j |> Fun.flip Option.bind Json.to_int_opt
              with
              | Some n when n >= 0 -> Some n
              | Some _ -> None
              | None -> Some default
            in
            match (int "last_index" ~default:(-1), int "last_epoch" ~default:0,
                   int "epoch" ~default:0)
            with
            | Some n, Some le, Some e when n >= 0 -> Ok (n, le, e)
            | _ -> Error "hello carries no usable last_index/epochs")
        | Ok _ -> Error "expected a {\"rep\":\"hello\",...} line"
        | Error m -> Error ("unparseable hello: " ^ m))
    | `Eof | `Stopped -> Error "connection ended before hello"
    | `Too_long -> Error "hello line too long"
  in
  let refuse fields =
    try write_all fd (Json.to_string (Json.Obj (("ok", Json.Bool false) :: fields)) ^ "\n")
    with Unix.Unix_error _ -> ()
  in
  match hello with
  | Error message -> refuse [ ("message", Json.String message) ]
  | Ok (follower_last, follower_last_epoch, follower_epoch) ->
      let own_epoch = Service.epoch t.service in
      if follower_epoch > own_epoch then begin
        (* The dialing follower has adopted a newer promotion than we
           ever heard about: we are the stale leader. Fence ourselves —
           demote and refuse, so we stop accepting writes *before* the
           follower could mirror anything from us. *)
        count t "serve.replication.fenced"
          "Streams refused because this leader's epoch was stale";
        ignore (Service.demote t.service ~epoch:follower_epoch);
        refuse
          [
            ("stale", Json.Bool true);
            ("epoch", Json.Int follower_epoch);
            ( "message",
              Json.String
                (Printf.sprintf
                   "leader epoch %d fenced by follower epoch %d; demoted"
                   own_epoch follower_epoch) );
          ]
      end
      else begin
        (* Subscribe before reading the journal: anything appended from
           here on lands in the queue, anything before is on disk, and
           the overlap is deduplicated by index below. *)
        let sub = subscribe t in
        let conn_done = Atomic.make false in
        let ack_stop () = stop () || Atomic.get conn_done in
        (* Acks ride the same socket in the other direction; a dedicated
           reader keeps them flowing while this domain streams frames. *)
        let acker =
          Domain.spawn (fun () ->
              let rec loop () =
                match read_line_bounded ~stop:ack_stop ~limit:4096 fd with
                | `Line line ->
                    (match Json.parse line with
                    | Ok j -> (
                        match
                          Json.member "ack" j
                          |> Fun.flip Option.bind Json.to_int_opt
                        with
                        | Some n ->
                            Mutex.lock sub.m;
                            if n > sub.acked then sub.acked <- n;
                            Mutex.unlock sub.m
                        | None -> ())
                    | Error _ -> ());
                    loop ()
                | `Eof | `Stopped | `Too_long -> ()
              in
              try loop () with Unix.Unix_error _ | Sys_error _ -> ())
        in
        Fun.protect
          ~finally:(fun () ->
            unsubscribe t sub;
            Atomic.set conn_done true;
            Domain.join acker)
          (fun () ->
            (* Same length is not enough: the record at the follower's
               last index must also carry the epoch the follower thinks
               it does, or its tail was written by a fenced leader and
               must be truncated via a reset. *)
            let diverged =
              follower_last > 0
              &&
              match Service.journal_epoch_at t.service ~index:follower_last with
              | Some e -> e <> follower_last_epoch
              | None -> false
            in
            if diverged then
              count t "serve.replication.divergent_tails"
                "Follower tails that mismatched by epoch and were reset";
            let tail_records =
              if diverged then Error `Resync
              else Service.journal_read_from t.service ~index:follower_last
            in
            let header, backlog, sent0 =
              match tail_records with
              | Ok records ->
                  count t "serve.replication.tails"
                    "Incremental tail streams served";
                  ( Json.Obj
                      [
                        ("ok", Json.Bool true);
                        ("mode", Json.String "tail");
                        ("from", Json.Int follower_last);
                        ("epoch", Json.Int own_epoch);
                      ],
                    List.map (fun (_, e, p) -> (e, p)) records,
                    match List.rev records with
                    | (i, _, _) :: _ -> i
                    | [] -> follower_last )
              | Error `Resync ->
                  count t "serve.replication.resets"
                    "Full snapshot streams served";
                  let base, sync_epoch, payloads =
                    Service.sync_state t.service
                  in
                  ( Json.Obj
                      [
                        ("ok", Json.Bool true);
                        ("mode", Json.String "reset");
                        ("base", Json.Int base);
                        ("records", Json.Int (List.length payloads));
                        ("epoch", Json.Int sync_epoch);
                      ],
                    List.map (fun p -> (sync_epoch, p)) payloads,
                    base )
            in
            match
              write_all fd (Json.to_string header ^ "\n");
              List.iter
                (fun (epoch, p) -> write_all fd (Journal.frame ~epoch p))
                backlog
            with
            | exception (Unix.Unix_error _ | Sys_error _) -> ()
            | () ->
                let rec tail sent =
                  match sub_next t sub with
                  | None -> ()
                  | Some (index, _, _) when index <= sent -> tail sent
                  | Some (index, epoch, payload) -> (
                      match write_all fd (Journal.frame ~epoch payload) with
                      | () -> tail index
                      | exception (Unix.Unix_error _ | Sys_error _) -> ())
                in
                tail sent0)
      end

let accept_loop t () =
  let rec loop () =
    if leader_closing t then ()
    else begin
      (match eintr (fun () -> Unix.select [ t.listener ] [] [] 0.1) with
      | [ _ ], _, _ -> (
          match Unix.accept t.listener with
          | fd, _ ->
              let d =
                Domain.spawn (fun () ->
                    Fun.protect
                      ~finally:(fun () ->
                        try Unix.close fd with Unix.Unix_error _ -> ())
                      (fun () -> handle_follower t fd))
              in
              locked t (fun () ->
                  t.conn_fds <- fd :: t.conn_fds;
                  t.conn_domains <- d :: t.conn_domains)
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start_leader ?obs ~service address =
  ignore_sigpipe ();
  let obs = match obs with Some r -> r | None -> Service.obs service in
  (match Service.journal_last_index service with
  | Some _ -> ()
  | None ->
      invalid_arg "Replication.start_leader: the leader needs a journal");
  let listener = Server.bind_listener address ~backlog:16 in
  let t =
    {
      service;
      listener;
      obs;
      lock = Mutex.create ();
      subs = [];
      closing = false;
      conn_fds = [];
      conn_domains = [];
      acceptor = None;
    }
  in
  Service.set_journal_hook service (Some (push_event t));
  t.acceptor <- Some (Domain.spawn (accept_loop t));
  t

let stop_leader t =
  let first =
    locked t (fun () ->
        let f = not t.closing in
        t.closing <- true;
        f)
  in
  if first then begin
    Service.set_journal_hook t.service None;
    Service.set_commit_gate t.service None;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    let subs, fds, domains =
      locked t (fun () -> (t.subs, t.conn_fds, t.conn_domains))
    in
    (* Wake blocked senders, then cut their sockets out from under them. *)
    List.iter
      (fun s ->
        Mutex.lock s.m;
        Condition.broadcast s.cv;
        Mutex.unlock s.m)
      subs;
    List.iter
      (fun fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()))
      fds;
    List.iter Domain.join domains
  end

(* ----- follower side ----- *)

let dial = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd

(* One connection's worth of following: handshake, install the backlog,
   then apply the live tail until something breaks. Returns why. *)
let follow_once ~stop ~service fd =
  set_rcvtimeo fd 0.2;
  let last () = Option.value ~default:0 (Service.journal_last_index service) in
  write_all fd
    (Json.to_string
       (Json.Obj
          [
            ("rep", Json.String "hello");
            ("last_index", Json.Int (last ()));
            ( "last_epoch",
              Json.Int (Option.value ~default:0 (Service.journal_last_epoch service)) );
            ("epoch", Json.Int (Service.epoch service));
          ])
    ^ "\n");
  let header =
    match read_line_bounded ~stop fd with
    | `Line line -> (
        match Json.parse line with
        | Ok j -> Ok j
        | Error m -> Error ("unparseable header: " ^ m))
    | `Eof -> Error "connection ended before header"
    | `Stopped -> Error "stopped"
    | `Too_long -> Error "header line too long"
  in
  let ack index =
    write_all fd
      (Json.to_string (Json.Obj [ ("ack", Json.Int index) ]) ^ "\n")
  in
  let apply_stream () =
    (* Dense records: each frame is the successor of the local journal's
       last index, applied at the epoch the leader wrote it and acked
       back once it is on disk. Any apply failure is a divergence — drop
       and resync. *)
    let rec go () =
      if stop () then `Stopped
      else
        match read_frame ~stop fd with
        | `Eof -> `Eof
        | `Stopped -> `Stopped
        | `Corrupt -> `Corrupt
        | `Record (epoch, payload) -> (
            let index = last () + 1 in
            match Service.apply_replicated service ~index ~epoch payload with
            | Ok () ->
                ack index;
                go ()
            | Error m -> `Apply_failed m)
    in
    go ()
  in
  match header with
  | Error m -> `Handshake_failed m
  | Ok j -> (
      let str key = Json.member key j |> Fun.flip Option.bind Json.to_string_opt in
      let int key = Json.member key j |> Fun.flip Option.bind Json.to_int_opt in
      let leader_epoch = Option.value ~default:0 (int "epoch") in
      let ok =
        Json.member "ok" j |> Fun.flip Option.bind Json.to_bool_opt = Some true
      in
      if ok && leader_epoch < Service.epoch service then
        (* Mirroring a fenced leader would stamp records below our
           adopted epoch; refuse and wait for the router to re-point us
           (or for that leader to learn it was fenced). *)
        `Stale_leader
      else
        match (ok, str "mode") with
        | true, Some "tail" -> apply_stream ()
        | true, Some "reset" -> (
            match (int "base", int "records") with
            | Some base, Some k when base >= 0 && k >= 0 -> (
                let rec collect acc n =
                  if n = 0 then `Ok (List.rev acc)
                  else
                    match read_frame ~stop fd with
                    | `Record (_, p) -> collect (p :: acc) (n - 1)
                    | (`Eof | `Stopped | `Corrupt) as e -> e
                in
                match collect [] k with
                | `Ok payloads -> (
                    match
                      Service.reset_to_snapshot service ~base
                        ~epoch:leader_epoch payloads
                    with
                    | Ok () ->
                        ack base;
                        apply_stream ()
                    | Error m -> `Apply_failed m)
                | `Eof -> `Eof
                | `Stopped -> `Stopped
                | `Corrupt -> `Corrupt)
            | _ -> `Handshake_failed "reset header missing base/records")
        | _, _ -> (
            match str "message" with
            | Some m -> `Handshake_failed m
            | None -> `Handshake_failed "leader refused the stream"))

let follow ?obs ?(sleep = fun ms -> Unix.sleepf (ms /. 1000.))
    ?(reconnect_ms = 200.) ~service ~stop leader =
  ignore_sigpipe ();
  let obs = match obs with Some r -> r | None -> Service.obs service in
  let stop () = stop () || Service.role service = Service.Leader in
  let count name help = Counter.inc (Registry.counter obs ~help name) in
  let rec loop () =
    if stop () then ()
    else begin
      (match dial leader with
      | exception Unix.Unix_error _ ->
          count "serve.replication.connect_failures"
            "Follower dials that could not reach the leader"
      | fd ->
          count "serve.replication.connects" "Follower connections established";
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match follow_once ~stop ~service fd with
              | exception (Unix.Unix_error _ | Sys_error _) ->
                  count "serve.replication.stream_errors"
                    "Replication streams dropped on a transport error"
              | `Stopped -> ()
              | `Eof | `Corrupt ->
                  count "serve.replication.stream_errors"
                    "Replication streams dropped on a transport error"
              | `Stale_leader ->
                  count "serve.replication.stale_leaders"
                    "Streams refused because the dialed leader's epoch was behind"
              | `Handshake_failed _ ->
                  count "serve.replication.handshake_failures"
                    "Replication handshakes refused or unparseable"
              | `Apply_failed _ ->
                  count "serve.replication.apply_failures"
                    "Replicated records that failed to apply (resync follows)"));
      if not (stop ()) then sleep reconnect_ms;
      loop ()
    end
  in
  loop ()
