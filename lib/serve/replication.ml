module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter

(* ----- wire format -----

   The follower drives. It connects to the leader's replication address
   and sends one JSON hello line:

     {"rep":"hello","last_index":N}

   The leader answers with one JSON header line, then switches the
   stream to binary CRC frames (the journal's own framing, one record
   per frame):

     {"ok":true,"mode":"tail","from":N}     records N+1, N+2, ... follow
     {"ok":true,"mode":"reset","base":B,"records":K}
                                            K full-state records follow,
                                            then live records B+1, ...
     {"ok":false,"message":...}             handshake refused

   Indices never travel with the frames: records are dense and
   monotonic, so the follower numbers them by counting from the
   negotiated point. Any framing or CRC failure on either side simply
   drops the connection — the follower's journal keeps only whole
   verified frames, so the worst case is a truncated tail healed by the
   next handshake. *)

let rec eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr f

(* Both sides write to sockets the peer may have torn or reset; a
   broken pipe must surface as EPIPE, not kill the process. *)
let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = eintr (fun () -> Unix.write fd b off (len - off)) in
      go (off + n)
  in
  go 0

(* Read exactly [len] bytes. [`Stopped] when [stop] turned true while
   the socket was idle at a frame boundary-or-not — the caller treats a
   mid-frame stop as a dropped connection, never a half-applied one. *)
let read_exactly ~stop fd buf len =
  let rec go off =
    if off >= len then `Ok
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if stop () then `Stopped else go off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> `Eof
  in
  go 0

(* One frame off the socket: [`Record payload] with the CRC verified, or
   the reason the stream ended. *)
let read_frame ~stop fd =
  let header = Bytes.create Journal.header_bytes in
  match read_exactly ~stop fd header Journal.header_bytes with
  | (`Eof | `Stopped) as e -> e
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_le header 0) in
      let crc = Bytes.get_int32_le header 4 in
      if len < 0 || len > Journal.max_record_bytes then `Corrupt
      else
        let payload = Bytes.create len in
        (match read_exactly ~stop fd payload len with
        | (`Eof | `Stopped) as e -> e
        | `Ok ->
            let payload = Bytes.unsafe_to_string payload in
            if Journal.crc32 payload <> crc then `Corrupt else `Record payload)

(* Read one newline-terminated line, byte-buffered, bounded. Used for
   the two handshake lines only — after that the stream is frames. *)
let read_line_bounded ~stop ?(limit = 1 lsl 20) fd =
  let buf = Buffer.create 128 in
  let one = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > limit then `Too_long
    else
      match Unix.read fd one 0 1 with
      | 0 -> `Eof
      | _ ->
          let c = Bytes.get one 0 in
          if c = '\n' then `Line (Buffer.contents buf)
          else begin
            Buffer.add_char buf c;
            go ()
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if stop () then `Stopped else go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> `Eof
  in
  go ()

let set_rcvtimeo fd seconds =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* ----- leader side ----- *)

(* Per-follower fan-out queue, fed by the service's journal hook. The
   hook must never block (it runs under the journal lock), so the queue
   is bounded: a follower that cannot drain [queue_cap] records loses
   the connection and resyncs, instead of back-pressuring the leader. *)
let queue_cap = 1024

type sub = {
  q : (int * string) Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable overflowed : bool;
}

type leader = {
  service : Service.t;
  listener : Unix.file_descr;
  obs : Registry.t;
  lock : Mutex.t;
  mutable subs : sub list;
  mutable closing : bool;
  mutable conn_fds : Unix.file_descr list;
  mutable conn_domains : unit Domain.t list;
  mutable acceptor : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let leader_closing t = locked t (fun () -> t.closing)

let subscribe t =
  let sub =
    { q = Queue.create (); m = Mutex.create (); cv = Condition.create ();
      overflowed = false }
  in
  locked t (fun () -> t.subs <- sub :: t.subs);
  sub

let unsubscribe t sub =
  locked t (fun () -> t.subs <- List.filter (fun s -> s != sub) t.subs)

(* Next queued record, or [None] once the leader is closing or the
   queue overflowed (the connection must drop and the follower resync —
   a partial queue after overflow would hide a gap). *)
let rec sub_next t sub =
  Mutex.lock sub.m;
  let state =
    if sub.overflowed then `Overflow
    else match Queue.take_opt sub.q with
      | Some r -> `Record r
      | None -> `Empty
  in
  (match state with
  | `Empty when not (leader_closing t) -> Condition.wait sub.cv sub.m
  | _ -> ());
  Mutex.unlock sub.m;
  match state with
  | `Record r -> Some r
  | `Overflow -> None
  | `Empty -> if leader_closing t then None else sub_next t sub

let push_event t (Service.Appended { index; payload }) =
  let subs = locked t (fun () -> t.subs) in
  List.iter
    (fun s ->
      Mutex.lock s.m;
      if Queue.length s.q >= queue_cap then s.overflowed <- true
      else Queue.push (index, payload) s.q;
      Condition.signal s.cv;
      Mutex.unlock s.m)
    subs

let count t name help = Counter.inc (Registry.counter t.obs ~help name)

(* Serve one follower connection to completion. *)
let handle_follower t fd =
  set_rcvtimeo fd 0.2;
  let stop () = leader_closing t in
  let hello =
    match read_line_bounded ~stop fd with
    | `Line line -> (
        match Json.parse line with
        | Ok j
          when Json.member "rep" j
               |> Fun.flip Option.bind Json.to_string_opt
               = Some "hello" -> (
            match
              Json.member "last_index" j |> Fun.flip Option.bind Json.to_int_opt
            with
            | Some n when n >= 0 -> Ok n
            | _ -> Error "hello carries no usable last_index")
        | Ok _ -> Error "expected a {\"rep\":\"hello\",...} line"
        | Error m -> Error ("unparseable hello: " ^ m))
    | `Eof | `Stopped -> Error "connection ended before hello"
    | `Too_long -> Error "hello line too long"
  in
  match hello with
  | Error message ->
      (try
         write_all fd
           (Json.to_string
              (Json.Obj
                 [ ("ok", Json.Bool false); ("message", Json.String message) ])
           ^ "\n")
       with Unix.Unix_error _ -> ())
  | Ok follower_last ->
      (* Subscribe before reading the journal: anything appended from
         here on lands in the queue, anything before is on disk, and
         the overlap is deduplicated by index below. *)
      let sub = subscribe t in
      Fun.protect
        ~finally:(fun () -> unsubscribe t sub)
        (fun () ->
          let header, backlog, sent0 =
            match Service.journal_read_from t.service ~index:follower_last with
            | Ok records ->
                count t "serve.replication.tails" "Incremental tail streams served";
                ( Json.Obj
                    [
                      ("ok", Json.Bool true);
                      ("mode", Json.String "tail");
                      ("from", Json.Int follower_last);
                    ],
                  List.map snd records,
                  match List.rev records with
                  | (i, _) :: _ -> i
                  | [] -> follower_last )
            | Error `Resync ->
                count t "serve.replication.resets" "Full snapshot streams served";
                let base, payloads = Service.sync_state t.service in
                ( Json.Obj
                    [
                      ("ok", Json.Bool true);
                      ("mode", Json.String "reset");
                      ("base", Json.Int base);
                      ("records", Json.Int (List.length payloads));
                    ],
                  payloads,
                  base )
          in
          match
            write_all fd (Json.to_string header ^ "\n");
            List.iter (fun p -> write_all fd (Journal.frame p)) backlog
          with
          | exception (Unix.Unix_error _ | Sys_error _) -> ()
          | () ->
              let rec tail sent =
                match sub_next t sub with
                | None -> ()
                | Some (index, _) when index <= sent -> tail sent
                | Some (index, payload) -> (
                    match write_all fd (Journal.frame payload) with
                    | () -> tail index
                    | exception (Unix.Unix_error _ | Sys_error _) -> ())
              in
              tail sent0)

let accept_loop t () =
  let rec loop () =
    if leader_closing t then ()
    else begin
      (match eintr (fun () -> Unix.select [ t.listener ] [] [] 0.1) with
      | [ _ ], _, _ -> (
          match Unix.accept t.listener with
          | fd, _ ->
              let d =
                Domain.spawn (fun () ->
                    Fun.protect
                      ~finally:(fun () ->
                        try Unix.close fd with Unix.Unix_error _ -> ())
                      (fun () -> handle_follower t fd))
              in
              locked t (fun () ->
                  t.conn_fds <- fd :: t.conn_fds;
                  t.conn_domains <- d :: t.conn_domains)
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start_leader ?obs ~service address =
  ignore_sigpipe ();
  let obs = match obs with Some r -> r | None -> Service.obs service in
  (match Service.journal_last_index service with
  | Some _ -> ()
  | None ->
      invalid_arg "Replication.start_leader: the leader needs a journal");
  let listener = Server.bind_listener address ~backlog:16 in
  let t =
    {
      service;
      listener;
      obs;
      lock = Mutex.create ();
      subs = [];
      closing = false;
      conn_fds = [];
      conn_domains = [];
      acceptor = None;
    }
  in
  Service.set_journal_hook service (Some (push_event t));
  t.acceptor <- Some (Domain.spawn (accept_loop t));
  t

let stop_leader t =
  let first =
    locked t (fun () ->
        let f = not t.closing in
        t.closing <- true;
        f)
  in
  if first then begin
    Service.set_journal_hook t.service None;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    let subs, fds, domains =
      locked t (fun () -> (t.subs, t.conn_fds, t.conn_domains))
    in
    (* Wake blocked senders, then cut their sockets out from under them. *)
    List.iter
      (fun s ->
        Mutex.lock s.m;
        Condition.broadcast s.cv;
        Mutex.unlock s.m)
      subs;
    List.iter
      (fun fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()))
      fds;
    List.iter Domain.join domains
  end

(* ----- follower side ----- *)

let dial = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd

(* One connection's worth of following: handshake, install the backlog,
   then apply the live tail until something breaks. Returns why. *)
let follow_once ~stop ~service fd =
  set_rcvtimeo fd 0.2;
  let last () = Option.value ~default:0 (Service.journal_last_index service) in
  write_all fd
    (Json.to_string
       (Json.Obj
          [ ("rep", Json.String "hello"); ("last_index", Json.Int (last ())) ])
    ^ "\n");
  let header =
    match read_line_bounded ~stop fd with
    | `Line line -> (
        match Json.parse line with
        | Ok j -> Ok j
        | Error m -> Error ("unparseable header: " ^ m))
    | `Eof -> Error "connection ended before header"
    | `Stopped -> Error "stopped"
    | `Too_long -> Error "header line too long"
  in
  let apply_stream () =
    (* Dense records: each frame is the successor of the local journal's
       last index. Any apply failure is a divergence — drop and resync. *)
    let rec go () =
      if stop () then `Stopped
      else
        match read_frame ~stop fd with
        | `Eof -> `Eof
        | `Stopped -> `Stopped
        | `Corrupt -> `Corrupt
        | `Record payload -> (
            match
              Service.apply_replicated service ~index:(last () + 1) payload
            with
            | Ok () -> go ()
            | Error m -> `Apply_failed m)
    in
    go ()
  in
  match header with
  | Error m -> `Handshake_failed m
  | Ok j -> (
      let str key = Json.member key j |> Fun.flip Option.bind Json.to_string_opt in
      let int key = Json.member key j |> Fun.flip Option.bind Json.to_int_opt in
      match (Json.member "ok" j |> Fun.flip Option.bind Json.to_bool_opt, str "mode") with
      | Some true, Some "tail" -> apply_stream ()
      | Some true, Some "reset" -> (
          match (int "base", int "records") with
          | Some base, Some k when base >= 0 && k >= 0 -> (
              let rec collect acc n =
                if n = 0 then `Ok (List.rev acc)
                else
                  match read_frame ~stop fd with
                  | `Record p -> collect (p :: acc) (n - 1)
                  | (`Eof | `Stopped | `Corrupt) as e -> e
              in
              match collect [] k with
              | `Ok payloads -> (
                  match Service.reset_to_snapshot service ~base payloads with
                  | Ok () -> apply_stream ()
                  | Error m -> `Apply_failed m)
              | `Eof -> `Eof
              | `Stopped -> `Stopped
              | `Corrupt -> `Corrupt)
          | _ -> `Handshake_failed "reset header missing base/records")
      | _, _ -> (
          match str "message" with
          | Some m -> `Handshake_failed m
          | None -> `Handshake_failed "leader refused the stream"))

let follow ?obs ?(sleep = fun ms -> Unix.sleepf (ms /. 1000.))
    ?(reconnect_ms = 200.) ~service ~stop leader =
  ignore_sigpipe ();
  let obs = match obs with Some r -> r | None -> Service.obs service in
  let stop () = stop () || Service.role service = Service.Leader in
  let count name help = Counter.inc (Registry.counter obs ~help name) in
  let rec loop () =
    if stop () then ()
    else begin
      (match dial leader with
      | exception Unix.Unix_error _ ->
          count "serve.replication.connect_failures"
            "Follower dials that could not reach the leader"
      | fd ->
          count "serve.replication.connects" "Follower connections established";
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match follow_once ~stop ~service fd with
              | exception (Unix.Unix_error _ | Sys_error _) ->
                  count "serve.replication.stream_errors"
                    "Replication streams dropped on a transport error"
              | `Stopped -> ()
              | `Eof | `Corrupt ->
                  count "serve.replication.stream_errors"
                    "Replication streams dropped on a transport error"
              | `Handshake_failed _ ->
                  count "serve.replication.handshake_failures"
                    "Replication handshakes refused or unparseable"
              | `Apply_failed _ ->
                  count "serve.replication.apply_failures"
                    "Replicated records that failed to apply (resync follows)"));
      if not (stop ()) then sleep reconnect_ms;
      loop ()
    end
  in
  loop ()
