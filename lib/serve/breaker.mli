(** A circuit breaker around the solver: after enough consecutive
    failures (internal errors or deadline blowouts) the circuit {e
    opens} and solve attempts are refused instantly — the service sheds
    to [degraded] replies built from the last known plan instead of
    queueing doomed work. After a cooldown the breaker lets exactly one
    {e half-open} probe through; a success closes the circuit, a failure
    re-opens it and restarts the cooldown.

    Thread-safe. The clock is injectable so the whole state machine unit
    tests without sleeping. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type config = {
  failure_threshold : int;  (** Consecutive failures that open the circuit. *)
  cooldown_ms : float;  (** Open time before a half-open probe is allowed. *)
}

val default_config : config
(** 5 failures, 5000 ms. *)

type t

val create : ?now:(unit -> int64) -> config -> t
(** [now] returns monotonic nanoseconds (default
    {!Mcss_obs.Clock.now_ns}). Raises [Invalid_argument] when
    [failure_threshold < 1] or [cooldown_ms <= 0]. *)

val admit : t -> bool
(** May a solve run now? [Closed]: yes. [Open]: no, until the cooldown
    has elapsed — then the breaker turns [Half_open] and this call
    admits the probe. [Half_open]: no while the probe is outstanding.
    Every admitted call {e must} be matched by exactly one {!success} or
    {!failure}. *)

val success : t -> unit
(** The admitted run completed: reset the failure streak; a half-open
    probe closes the circuit. *)

val failure : t -> unit
(** The admitted run failed: extend the streak; at
    [failure_threshold] the circuit opens, and a failed half-open probe
    re-opens it immediately. *)

val state : t -> state
(** Current state; reading it also performs the [Open] → [Half_open]
    transition when the cooldown has elapsed (so a gauge scrape shows
    the same state {!admit} would act on). *)

val opens : t -> int
(** Times the circuit opened (including half-open → open). *)

val closes : t -> int
val rejections : t -> int
(** {!admit} calls refused. *)

val consecutive_failures : t -> int
