(** A thin, fault-tolerant router in front of a sharded planning
    cluster ([mcss route]).

    Requests arrive on the same line protocol the daemon speaks
    ({!Protocol}); the router maps each digest-bearing request to the
    owning shard through a consistent-hash {!Ring} over workload
    digests (a [load] is parsed router-side so its content digest — and
    therefore its owner — is known before forwarding), and proxies it to
    a shard member:

    - {e idempotent} verbs go to the leader first and fail over to the
      followers on a transport failure, using {!Client.call}'s pluggable
      per-attempt routing;
    - [update] goes to the leader only — replaying a journal append
      against a second member could fork history;
    - when every member of the owning shard is unreachable, the reply is
      a parseable [no_quorum] error ([mcss query] exits 3), never a
      hang;
    - [health]/[stats]/[metrics]/[shutdown] are answered by the router
      itself.

    A background probe loop health-checks every member each
    [health_period_s]; probe results only order the candidate list
    (down-marked members are still tried last, because probes go stale
    in both directions), except for [no_quorum], which is only declared
    after live transport failures against every member.

    {b Automatic fenced failover.} With [auto_promote] on, the probe
    loop also records each member's reported role, fencing epoch, and
    [last_index]. When the shard's leader has failed [promote_after]
    consecutive probes (or a live [update] hits it dead), the router
    promotes the most caught-up live follower — highest
    [(epoch, last_index)] — with an explicit epoch one above anything
    the shard has reported, so the old leader is fenced if it revives.
    If two live members ever claim leadership (a revived stale leader),
    the router keeps the higher [(epoch, last_index)] one and sends the
    other a fenced [demote]. [update]s that draw a [not_leader] refusal
    re-resolve the member order and retry instead of surfacing the
    error. *)

type member = { name : string; address : Server.address }

type shard = { shard_name : string; members : member list }
(** [members] is ordered: the first is the leader, the rest followers.
    Without [auto_promote] the order is static — after promoting a
    follower by hand, restart the router (or pass the new order). With
    [auto_promote] the router rewrites the order itself as it promotes
    followers and discovers role changes. *)

type config = {
  vnodes : int;  (** Ring points per shard (default 64). *)
  health_period_s : float;  (** Probe cadence (default 1 s). *)
  policy : Retry.policy;  (** Per-request forwarding retries. *)
  auto_promote : bool;
      (** Drive fenced promotion/demotion from the probe loop (default
          [false]: the operator promotes by hand, as before). *)
  promote_after : int;
      (** Consecutive failed probes before a leader is declared dead and
          a follower is promoted (default 2). *)
  log : string -> unit;
}

val default_config : config

type t

val create : ?obs:Mcss_obs.Registry.t -> ?config:config -> ?seed:int -> shard list -> t
(** Raises [Invalid_argument] on an empty shard list, a shard without
    members, or duplicate shard names. [seed] (default 0) drives the
    retry jitter. *)

val handle : t -> Protocol.envelope -> Json.t
(** Route one decoded request (tests drive this directly). Never
    raises. *)

val handle_line : t -> string -> Json.t
(** Decode and route one request line. Never raises. *)

val run : ?server_config:Server.config -> t -> Server.address -> unit
(** Serve on [address] (accept loop, line framing, and drain semantics
    shared with the daemon via {!Server.run_handler}), with the health
    probe loop running alongside; returns after a [shutdown] request
    drains the listener. *)

val probe_all : t -> unit
(** Probe every member once, synchronously (tests use this instead of
    waiting out the probe cadence). *)

val failover_all : t -> unit
(** Run one failover pass over every shard — promote for dead leaders,
    fence duplicate ones — exactly as the probe loop would. No-op unless
    [auto_promote]; tests use this instead of waiting out the cadence. *)

val draining : t -> bool
val obs : t -> Mcss_obs.Registry.t
