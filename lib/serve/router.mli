(** A thin, fault-tolerant router in front of a sharded planning
    cluster ([mcss route]).

    Requests arrive on the same line protocol the daemon speaks
    ({!Protocol}); the router maps each digest-bearing request to the
    owning shard through a consistent-hash {!Ring} over workload
    digests (a [load] is parsed router-side so its content digest — and
    therefore its owner — is known before forwarding), and proxies it to
    a shard member:

    - {e idempotent} verbs go to the leader first and fail over to the
      followers on a transport failure, using {!Client.call}'s pluggable
      per-attempt routing;
    - [update] goes to the leader only — replaying a journal append
      against a second member could fork history;
    - when every member of the owning shard is unreachable, the reply is
      a parseable [no_quorum] error ([mcss query] exits 3), never a
      hang;
    - [health]/[stats]/[metrics]/[shutdown] are answered by the router
      itself.

    A background probe loop health-checks every member each
    [health_period_s]; probe results only order the candidate list
    (down-marked members are still tried last, because probes go stale
    in both directions), except for [no_quorum], which is only declared
    after live transport failures against every member. *)

type member = { name : string; address : Server.address }

type shard = { shard_name : string; members : member list }
(** [members] is ordered: the first is the leader, the rest followers.
    After promoting a follower, restart the router (or pass the new
    order) — it does not discover role changes on its own. *)

type config = {
  vnodes : int;  (** Ring points per shard (default 64). *)
  health_period_s : float;  (** Probe cadence (default 1 s). *)
  policy : Retry.policy;  (** Per-request forwarding retries. *)
  log : string -> unit;
}

val default_config : config

type t

val create : ?obs:Mcss_obs.Registry.t -> ?config:config -> ?seed:int -> shard list -> t
(** Raises [Invalid_argument] on an empty shard list, a shard without
    members, or duplicate shard names. [seed] (default 0) drives the
    retry jitter. *)

val handle : t -> Protocol.envelope -> Json.t
(** Route one decoded request (tests drive this directly). Never
    raises. *)

val handle_line : t -> string -> Json.t
(** Decode and route one request line. Never raises. *)

val run : ?server_config:Server.config -> t -> Server.address -> unit
(** Serve on [address] (accept loop, line framing, and drain semantics
    shared with the daemon via {!Server.run_handler}), with the health
    probe loop running alongside; returns after a [shutdown] request
    drains the listener. *)

val probe_all : t -> unit
(** Probe every member once, synchronously (tests use this instead of
    waiting out the probe cadence). *)

val draining : t -> bool
val obs : t -> Mcss_obs.Registry.t
