module Rng = Mcss_prng.Rng
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Histogram = Mcss_obs.Metric.Histogram

type policy = {
  max_attempts : int;
  base_ms : float;
  cap_ms : float;
  attempt_timeout_ms : float option;
}

let default_policy =
  { max_attempts = 4; base_ms = 25.; cap_ms = 2000.; attempt_timeout_ms = None }

let backoff_ms rng policy ~prev_ms =
  let hi = Float.max policy.base_ms (3. *. prev_ms) in
  let draw =
    if hi <= policy.base_ms then policy.base_ms
    else policy.base_ms +. Rng.float rng (hi -. policy.base_ms)
  in
  Float.min policy.cap_ms draw

type 'a verdict = Done of 'a | Give_up of string | Retry of string

type 'a outcome = {
  result : ('a, string) result;
  attempts : int;
  total_backoff_ms : float;
}

let run ?obs ?sleep ~rng ~policy f =
  if policy.max_attempts < 1 then
    invalid_arg "Retry.run: max_attempts must be >= 1";
  let obs = match obs with Some r -> r | None -> Registry.noop in
  let sleep = match sleep with Some s -> s | None -> fun ms -> Unix.sleepf (ms /. 1000.) in
  let attempts_c =
    Registry.counter obs ~help:"Client request attempts (incl. first tries)"
      "serve.client.retry.attempts"
  in
  let retries_c =
    Registry.counter obs ~help:"Client retries after a transient failure"
      "serve.client.retry.retries"
  in
  let backoff_h =
    Registry.histogram obs ~help:"Backoff sleeps between attempts (seconds)"
      "serve.client.retry.backoff_seconds"
  in
  let rec go attempt prev_ms total_backoff =
    Counter.inc attempts_c;
    match f ~attempt with
    | Done v -> { result = Ok v; attempts = attempt; total_backoff_ms = total_backoff }
    | Give_up m ->
        { result = Error m; attempts = attempt; total_backoff_ms = total_backoff }
    | Retry m ->
        if attempt >= policy.max_attempts then
          {
            result =
              Error (Printf.sprintf "%s (gave up after %d attempts)" m attempt);
            attempts = attempt;
            total_backoff_ms = total_backoff;
          }
        else begin
          let ms = backoff_ms rng policy ~prev_ms in
          Counter.inc retries_c;
          Histogram.observe backoff_h (ms /. 1000.);
          sleep ms;
          go (attempt + 1) ms (total_backoff +. ms)
        end
  in
  go 1 0. 0.
