(** A thread-safe, content-addressed LRU cache for solved plans.

    Keys are opaque strings — the service keys entries by
    [(workload digest, solver params)] so two clients asking the same
    what-if question share one solve. Capacity is a fixed entry count;
    inserting into a full cache evicts the least recently used entry.
    [find] promotes, and every operation is guarded by an internal
    mutex so connection workers on different domains can share one
    cache.

    Hits, misses and evictions are counted since creation; the service
    surfaces them through [stats] and the Prometheus [metrics] reply. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int

val find : 'a t -> string -> 'a option
(** Look up and promote; counts one hit or one miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace (replacement promotes and does not evict);
    eviction of the LRU entry is counted. *)

val length : 'a t -> int

val clear : 'a t -> unit
(** Drop every entry (hit/miss/eviction counters are kept — they count
    since creation). A follower resetting to a leader's snapshot uses
    this before replaying the received state. *)

val to_list : 'a t -> (string * 'a) list
(** Every entry, least recently used first, so [add]-ing them back in
    order reproduces the recency list. Snapshots use this to persist
    the cache without disturbing it (no promotion, no counter churn). *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : 'a t -> stats

val hit_ratio : stats -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)
