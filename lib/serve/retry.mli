(** Retry with capped exponential backoff and decorrelated jitter, for
    clients of the planning daemon: a transient transport failure (reset
    mid-frame, refused connect during a restart, an [overloaded] shed)
    is retried on a fresh connection instead of surfacing to the caller.

    The backoff follows the "decorrelated jitter" rule: each sleep is
    drawn uniformly from [[base, 3 × previous sleep]] and capped, which
    spreads synchronised retry storms apart faster than equal-jitter
    while keeping the expected wait close to plain exponential. The
    randomness comes from {!Mcss_prng.Rng}, so a seeded client retries
    reproducibly. *)

type policy = {
  max_attempts : int;  (** Total attempts including the first ([>= 1]). *)
  base_ms : float;  (** Lower bound of every backoff draw. *)
  cap_ms : float;  (** Upper bound of every backoff draw. *)
  attempt_timeout_ms : float option;
      (** Per-attempt deadline. {!Client.call} applies it as both the
          socket receive timeout and the request's [deadline_ms]. *)
}

val default_policy : policy
(** 4 attempts, 25 ms base, 2000 ms cap, no per-attempt timeout. *)

val backoff_ms : Mcss_prng.Rng.t -> policy -> prev_ms:float -> float
(** One decorrelated-jitter draw:
    [min cap_ms (uniform base_ms (max base_ms (3 × prev_ms)))]. Pass
    [prev_ms = 0.] for the first backoff. *)

type 'a verdict =
  | Done of 'a  (** Stop; the outcome's result is [Ok]. *)
  | Give_up of string  (** Stop; not retryable (e.g. a [bad_request]). *)
  | Retry of string  (** Transient; back off and try again. *)

type 'a outcome = {
  result : ('a, string) result;
      (** The final verdict; [Error] carries the last failure message. *)
  attempts : int;  (** Attempts actually made ([>= 1]). *)
  total_backoff_ms : float;  (** Time spent sleeping between attempts. *)
}

val run :
  ?obs:Mcss_obs.Registry.t ->
  ?sleep:(float -> unit) ->
  rng:Mcss_prng.Rng.t ->
  policy:policy ->
  (attempt:int -> 'a verdict) ->
  'a outcome
(** Drive [f ~attempt] (1-based) until [Done]/[Give_up] or the attempt
    budget runs out. [sleep] takes milliseconds (default
    [Unix.sleepf (ms /. 1000.)]; tests inject a recorder). [obs]
    receives [serve.client.retry.*] counters and the backoff histogram.
    Exceptions from [f] are not caught — wrap transport calls that
    already speak [result]. *)
