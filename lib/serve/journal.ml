module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter
module Histogram = Mcss_obs.Metric.Histogram
module Clock = Mcss_obs.Clock

type config = { dir : string; fsync : bool; snapshot_every : int }

let default_config ~dir = { dir; fsync = true; snapshot_every = 256 }

type replay = {
  records : (int * string) list;
  snapshot_records : int;
  wal_records : int;
  truncated_bytes : int;
  corrupt_records : int;
  dropped_frames : int;
}

(* ----- CRC-32 (IEEE 802.3 / zlib polynomial, table-driven) ----- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ----- framing ----- *)

let header_bytes = 16
let max_record_bytes = 256 * 1024 * 1024

(* The CRC covers the epoch field as well as the payload, so a flipped
   epoch byte is detected exactly like payload corruption. *)
let epoch_bytes epoch =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int epoch);
  Bytes.unsafe_to_string b

let frame ~epoch payload =
  let len = String.length payload in
  if len > max_record_bytes then
    invalid_arg (Printf.sprintf "Journal.append: record of %d bytes" len);
  if epoch < 0 then invalid_arg "Journal.frame: negative epoch";
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (crc32 (epoch_bytes epoch ^ payload));
  Bytes.set_int64_le b 8 (Int64.of_int epoch);
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

(* Scan the framed records of [path]. Returns the [(epoch, payload)]
   records in order, the byte offset just past the last good record, how
   many framing/CRC failures stopped the scan (0 or 1 — the first
   failure ends recovery, since nothing after an unsynchronised point
   can be trusted), and how many frames the cut tail appears to hold.
   The dropped count is best-effort forensics for replay stats: after
   the first failure we keep walking frame headers (without trusting
   payloads) to estimate how much history was lost; any unsynchronised
   remainder counts as one more frame. *)
let scan path =
  match open_in_bin path with
  | exception Sys_error _ -> ([], 0, 0, 0)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let total = in_channel_length ic in
          let header = Bytes.create header_bytes in
          (* Count-only continuation past the first failure: follow frame
             headers while they stay plausible, never recovering data. *)
          let rec count_tail dropped pos =
            if pos >= total then dropped
            else if total - pos < header_bytes then dropped + 1
            else begin
              seek_in ic pos;
              really_input ic header 0 header_bytes;
              let len = Int32.to_int (Bytes.get_int32_le header 0) in
              if len < 0 || len > max_record_bytes then dropped + 1
              else if total - pos - header_bytes < len then dropped + 1
              else count_tail (dropped + 1) (pos + header_bytes + len)
            end
          in
          let rec go acc good_end =
            if total - good_end < header_bytes then
              let dropped = if total > good_end then 1 else 0 in
              (List.rev acc, good_end, 0, dropped)
            else begin
              really_input ic header 0 header_bytes;
              let len = Int32.to_int (Bytes.get_int32_le header 0) in
              let crc = Bytes.get_int32_le header 4 in
              let epoch = Int64.to_int (Bytes.get_int64_le header 8) in
              if len < 0 || len > max_record_bytes || epoch < 0 then
                (* A garbage length or epoch: unsynchronised, cut here. *)
                (List.rev acc, good_end, 1, count_tail 0 good_end)
              else if total - good_end - header_bytes < len then
                (* Torn tail: the payload never fully made it to disk. *)
                (List.rev acc, good_end, 0, 1)
              else
                let payload = really_input_string ic len in
                if crc32 (epoch_bytes epoch ^ payload) <> crc then
                  (List.rev acc, good_end, 1, count_tail 0 good_end)
                else go ((epoch, payload) :: acc) (good_end + header_bytes + len)
            end
          in
          go [] 0)

(* ----- the journal ----- *)

type t = {
  config : config;
  obs : Registry.t;
  lock : Mutex.t;
  mutable wal_fd : Unix.file_descr option;
  mutable wal_count : int;
  mutable snapshot_count : int;
  mutable base : int;
      (* Absolute index of the last record folded into the snapshot; the
         WAL holds records [base+1 .. base+wal_count]. Persisted in
         base.mcssj so indices survive restarts and snapshot folds. *)
  mutable epoch : int;
      (* The fencing epoch this journal currently writes at. Never
         decreases; persisted in epoch.mcssj on every change and floored
         at open by the highest epoch seen in any recovered frame. *)
  mutable last_epoch : int;
      (* Epoch of the most recently appended record (0 when empty) —
         what the replication handshake reports so a leader can detect a
         divergent tail, not just a divergent length. *)
}

let wal_path_of dir = Filename.concat dir "wal.mcssj"
let snapshot_path_of dir = Filename.concat dir "snapshot.mcssj"
let base_path_of dir = Filename.concat dir "base.mcssj"
let epoch_path_of dir = Filename.concat dir "epoch.mcssj"

let wal_path t = wal_path_of t.config.dir
let snapshot_path t = snapshot_path_of t.config.dir
let base_path t = base_path_of t.config.dir
let epoch_path t = epoch_path_of t.config.dir

let read_int_file path =
  match open_in_bin path with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match int_of_string_opt (String.trim (input_line ic)) with
          | Some n when n >= 0 -> n
          | Some _ | None | (exception End_of_file) -> 0)

let read_base dir = read_int_file (base_path_of dir)
let read_epoch dir = read_int_file (epoch_path_of dir)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec fsync_eintr fd =
  try Unix.fsync fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> fsync_eintr fd

let fsync_timed t fd =
  let t0 = Clock.now_ns () in
  fsync_eintr fd;
  Histogram.observe
    (Registry.histogram t.obs ~help:"Journal fsync latency (seconds)"
       "serve.journal.fsync_seconds")
    (Clock.seconds_since t0)

let fsync_dir dir =
  (* Persist the rename/creation itself; best-effort where directories
     cannot be fsynced (some filesystems refuse). *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let count c name help n =
  if n > 0 then Counter.add (Registry.counter c ~help name) n

let open_ ?obs config =
  let obs = match obs with Some r -> r | None -> Registry.noop in
  mkdir_p config.dir;
  let snap_records, _snap_end, snap_corrupt, snap_dropped =
    scan (snapshot_path_of config.dir)
  in
  let wal_records, wal_end, wal_corrupt, wal_dropped =
    scan (wal_path_of config.dir)
  in
  (* Cut the torn/corrupt tail off the WAL so the next append starts at
     a clean frame boundary. *)
  let wal = wal_path_of config.dir in
  let truncated_bytes =
    match Unix.openfile wal [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let size = (Unix.fstat fd).Unix.st_size in
            if size > wal_end then Unix.ftruncate fd wal_end;
            size - wal_end)
    | exception Unix.Unix_error _ -> 0
  in
  let wal_fd =
    Unix.openfile wal [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let records = snap_records @ wal_records in
  let max_record_epoch =
    List.fold_left (fun acc (e, _) -> max acc e) 0 records
  in
  let last_epoch =
    match List.rev records with (e, _) :: _ -> e | [] -> 0
  in
  let t =
    {
      config;
      obs;
      lock = Mutex.create ();
      wal_fd = Some wal_fd;
      wal_count = List.length wal_records;
      snapshot_count = 0;
      base = read_base config.dir;
      epoch = max (read_epoch config.dir) max_record_epoch;
      last_epoch;
    }
  in
  let replay =
    {
      records;
      snapshot_records = List.length snap_records;
      wal_records = List.length wal_records;
      truncated_bytes = max 0 truncated_bytes;
      corrupt_records = snap_corrupt + wal_corrupt;
      dropped_frames = snap_dropped + wal_dropped;
    }
  in
  count obs "serve.journal.replay.records" "Records recovered at startup"
    (List.length replay.records);
  count obs "serve.journal.replay.truncated_bytes"
    "Torn WAL tail bytes cut at startup" replay.truncated_bytes;
  count obs "serve.journal.replay.corrupt_records"
    "CRC/framing failures hit during replay" replay.corrupt_records;
  count obs "serve.journal.replay.dropped_frames"
    "Frames lost to the cut tail at startup" replay.dropped_frames;
  (t, replay)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let live t =
  match t.wal_fd with
  | Some fd -> fd
  | None -> raise (Sys_error "journal is closed")

(* Persist a small integer file atomically: temp, fsync, rename. Used
   for both the base index and the epoch. *)
let write_int_file_locked t path v =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd (string_of_int v ^ "\n");
      fsync_timed t fd);
  Unix.rename tmp path;
  fsync_dir t.config.dir

(* Caller holds [t.lock]. Epochs only ever move up: adopting a lower
   epoch would let a fenced-off leader write records that sort before
   history it has already mirrored. *)
let set_epoch_locked t e =
  if e > t.epoch then begin
    write_int_file_locked t (epoch_path t) e;
    t.epoch <- e;
    Counter.inc
      (Registry.counter t.obs ~help:"Fencing epoch adoptions (raises only)"
         "serve.journal.epoch_raises")
  end

let epoch t = locked t (fun () -> t.epoch)
let last_epoch t = locked t (fun () -> t.last_epoch)
let set_epoch t e = locked t (fun () -> set_epoch_locked t e)

let bump_epoch t =
  locked t (fun () ->
      set_epoch_locked t (t.epoch + 1);
      t.epoch)

let append ?epoch t payload =
  locked t (fun () ->
      let fd = live t in
      (* An explicit epoch is stamped verbatim (it can sit below the
         journal's floor: a follower mirroring a leader's backlog writes
         each frame at the epoch the leader originally wrote it, so the
         two WALs stay byte-identical) and raises the floor when ahead. *)
      let e =
        match epoch with
        | Some e ->
            set_epoch_locked t e;
            e
        | None -> t.epoch
      in
      write_all fd (frame ~epoch:e payload);
      if t.config.fsync then fsync_timed t fd;
      t.wal_count <- t.wal_count + 1;
      t.last_epoch <- e;
      Counter.inc
        (Registry.counter t.obs ~help:"Records appended to the WAL"
           "serve.journal.appends"))

let wal_records t = locked t (fun () -> t.wal_count)
let base_index t = locked t (fun () -> t.base)
let last_index t = locked t (fun () -> t.base + t.wal_count)

let snapshot_due t =
  locked t (fun () ->
      t.config.snapshot_every > 0 && t.wal_count >= t.config.snapshot_every)

(* Both callers hold [t.lock]. Writes the new base index atomically; a
   crash between the snapshot rename and this write only inflates the
   apparent WAL span, which replication detects as a resync. *)
let write_base_locked t base =
  write_int_file_locked t (base_path t) base;
  t.base <- base

(* Caller holds [t.lock]. Snapshot records are stamped with the epoch
   current at fold time — the fold rewrites history the journal already
   owns, and a single stamp keeps the non-decreasing epoch invariant
   for everything appended afterwards. *)
let write_snapshot_locked t payloads =
  let tmp = snapshot_path t ^ ".tmp" in
  let snap_fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close snap_fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter (fun p -> write_all snap_fd (frame ~epoch:t.epoch p)) payloads;
      fsync_timed t snap_fd);
  Unix.rename tmp (snapshot_path t);
  fsync_dir t.config.dir

(* Caller holds [t.lock]. *)
let truncate_wal_locked t =
  let fd = live t in
  Unix.ftruncate fd 0;
  if t.config.fsync then fsync_timed t fd;
  t.wal_count <- 0;
  t.snapshot_count <- t.snapshot_count + 1;
  Counter.inc
    (Registry.counter t.obs ~help:"Snapshot rewrites since start"
       "serve.journal.snapshots")

let snapshot t payloads =
  locked t (fun () ->
      let new_base = t.base + t.wal_count in
      write_snapshot_locked t payloads;
      write_base_locked t new_base;
      (* The WAL's contents are now folded into the snapshot. *)
      truncate_wal_locked t;
      t.last_epoch <- t.epoch)

let install_snapshot t ~base ~epoch payloads =
  if base < 0 then invalid_arg "Journal.install_snapshot: negative base";
  locked t (fun () ->
      set_epoch_locked t epoch;
      write_snapshot_locked t payloads;
      write_base_locked t base;
      truncate_wal_locked t;
      t.last_epoch <- t.epoch)

let read_from t ~index =
  locked t (fun () ->
      if index < t.base || index > t.base + t.wal_count then Error `Resync
      else begin
        (* Re-scan the WAL on disk: everything appended so far is there,
           and we hold the lock so no append can race the scan. *)
        let records, _, _, _ = scan (wal_path t) in
        let rec drop n l =
          if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
        in
        let tail = drop (index - t.base) records in
        Ok (List.mapi (fun i (e, p) -> (index + 1 + i, e, p)) tail)
      end)

(* The epoch a given WAL record was written at, for the replication
   handshake's divergence check. [None] when the index is not in the
   WAL (folded into the snapshot, or past the end). *)
let epoch_at t ~index =
  locked t (fun () ->
      if index <= t.base || index > t.base + t.wal_count then None
      else
        let records, _, _, _ = scan (wal_path t) in
        match List.nth_opt records (index - t.base - 1) with
        | Some (e, _) -> Some e
        | None -> None)

let iter_from t ~index f =
  match read_from t ~index with
  | Error `Resync -> Error `Resync
  | Ok records ->
      List.iter (fun (i, e, p) -> f ~index:i ~epoch:e p) records;
      Ok (List.length records)

let snapshots_taken t = locked t (fun () -> t.snapshot_count)

let close t =
  locked t (fun () ->
      match t.wal_fd with
      | None -> ()
      | Some fd ->
          t.wal_fd <- None;
          (try if t.config.fsync then Unix.fsync fd with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ()))

(* ----- read-only verification (mcss journal --verify) ----- *)

type verify_report = {
  v_snapshot_records : int;
  v_wal_records : int;
  v_corrupt_records : int;
  v_dropped_frames : int;
  v_trailing_bytes : int;
      (* Bytes past the last good WAL frame (torn or corrupt tail). *)
  v_base_index : int;
  v_persisted_epoch : int;
  v_min_epoch : int;
  v_max_epoch : int;
  v_epoch_regressions : int;
}

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

(* Scan both files without opening anything for write: unlike {!open_},
   a torn tail is reported, never truncated — the journal on disk is
   byte-identical before and after. *)
let verify ~dir =
  let snap_records, _, snap_corrupt, snap_dropped = scan (snapshot_path_of dir) in
  let wal_records, wal_end, wal_corrupt, wal_dropped = scan (wal_path_of dir) in
  let records = snap_records @ wal_records in
  let epochs = List.map fst records in
  let regressions =
    match epochs with
    | [] -> 0
    | first :: rest ->
        snd
          (List.fold_left
             (fun (prev, bad) e -> (e, if e < prev then bad + 1 else bad))
             (first, 0) rest)
  in
  {
    v_snapshot_records = List.length snap_records;
    v_wal_records = List.length wal_records;
    v_corrupt_records = snap_corrupt + wal_corrupt;
    v_dropped_frames = snap_dropped + wal_dropped;
    v_trailing_bytes = max 0 (file_size (wal_path_of dir) - wal_end);
    v_base_index = read_base dir;
    v_persisted_epoch = read_epoch dir;
    v_min_epoch = List.fold_left min (match epochs with [] -> 0 | e :: _ -> e) epochs;
    v_max_epoch = List.fold_left max 0 epochs;
    v_epoch_regressions = regressions;
  }
