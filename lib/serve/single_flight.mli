(** Cache-stampede suppression: when several requests miss the plan
    cache on the same key at once, exactly one of them (the {e leader})
    runs the solver; the rest ({e followers}) block until the leader's
    result is ready and share it, instead of all running the same solve.

    Thread-safe. Followers block on a condition variable with no
    timeout: the leader always completes (the service converts solver
    exceptions to values) and always wakes them. *)

type 'a t

val create : unit -> 'a t

type 'a role =
  | Leader of 'a  (** This caller ran the computation. *)
  | Follower of 'a  (** Another caller ran it; this is its result. *)

val run : 'a t -> key:string -> (unit -> 'a) -> 'a role
(** If no computation for [key] is in flight, run [f] as the leader;
    otherwise wait for the in-flight leader and return its result. A
    leader exception is re-raised in the leader {e and} every waiting
    follower. Calls that arrive after the leader finished start a fresh
    computation (the caller is expected to re-check its cache first). *)

val in_flight : 'a t -> int
(** Keys with a computation currently running. *)
