(** The socket front of the planning daemon: accept loop, per-connection
    line framing, and graceful drain. All protocol logic lives in
    {!Service} — this module only moves bytes.

    Connections speak one JSON object per line in each direction
    ({!Protocol}). A request line longer than [max_request_bytes] is
    answered with a [too_large] error (the oversized line is consumed,
    the connection survives). When a [shutdown] request has been
    answered, the listener closes, idle connections are hung up, in-
    flight requests finish, and {!run} returns. *)

type address =
  | Unix_socket of string  (** Filesystem path. *)
  | Tcp of string * int  (** Host (numeric or name) and port. *)

val address_to_string : address -> string

val address_of_string : string -> (address, string) result
(** Accepts ["unix:PATH"], a bare path containing ['/'], ["HOST:PORT"],
    [":PORT"], or a bare port number (loopback). *)

type config = {
  workers : int;  (** Connection-worker domains (default 4). *)
  queue_depth : int option;
      (** Submitted-but-unclaimed connection bound; beyond it new
          connections are shed with an [overloaded] reply (default
          [4 * workers]). *)
  max_request_bytes : int;  (** Request-line size limit (default 8 MiB). *)
  backlog : int;  (** [listen] backlog (default 64). *)
  accept_tick_s : float;
      (** How often the accept loop re-checks the drain flag (default 0.2 s). *)
  log : string -> unit;  (** One line per lifecycle event. *)
}

val default_config : config
(** Logging disabled. *)

val run : ?config:config -> Service.t -> address -> unit
(** Bind, serve until the service starts draining, drain, clean up
    (including unlinking a Unix-socket path) and return. Raises
    [Unix.Unix_error] when the address cannot be bound. *)

val run_handler :
  ?config:config ->
  ?obs:Mcss_obs.Registry.t ->
  ?name:string ->
  draining:(unit -> bool) ->
  handle:(string -> Json.t) ->
  address ->
  unit
(** The same accept/line-framing/drain loop with a caller-supplied
    request handler instead of a {!Service} — the router serves its
    line protocol through this. [handle] is called on each non-empty
    request line from a pool worker and must not raise; [draining] is
    polled every [accept_tick_s] and ends the loop. [obs] receives the
    shed-connection counter; [name] prefixes log lines. *)

(** {2 Raw building blocks}

    For listeners that do not speak the line protocol (the replication
    stream). *)

val bind_listener : address -> backlog:int -> Unix.file_descr
(** Bind and listen; unlinks a stale Unix-socket path first. Raises
    [Unix.Unix_error] on bind failure. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying on [EINTR]. Raises
    [Unix.Unix_error] on a dead peer. *)

val send_reply : Unix.file_descr -> Json.t -> unit
(** [write_all] of one JSON line. *)
