let version = "1.0.0"

let probe_git () =
  let safe_close ic = try ignore (Unix.close_process_in ic) with _ -> () in
  match
    Unix.open_process_in "git describe --tags --always --dirty 2>/dev/null"
  with
  | exception _ -> None
  | ic -> (
      match input_line ic with
      | line ->
          let status = try Unix.close_process_in ic with _ -> Unix.WEXITED 1 in
          let line = String.trim line in
          if status = Unix.WEXITED 0 && line <> "" then Some line else None
      | exception _ ->
          safe_close ic;
          None)

let describe = lazy (probe_git ())
let git_describe () = Lazy.force describe

let to_string () =
  match git_describe () with
  | Some d -> Printf.sprintf "%s (git %s)" version d
  | None -> version
