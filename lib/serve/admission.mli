(** Request admission control for the planning daemon.

    Three gates keep a misbehaving client from taking the service down:

    - {e in-flight solves}: at most [max_in_flight] solver runs at once
      — the solver fans out across domains internally, so unbounded
      concurrent solves would oversubscribe the machine. A request that
      finds the gate full is refused immediately with an [overloaded]
      error (shed, not queued: the client can retry with backoff).
    - {e deadlines}: a per-request time budget, checked at admission and
      again before expensive phases; exceeding it yields a clean
      [timeout] reply instead of a stale answer.
    - {e oversized requests}: enforced by the connection reader
      ({!Server}), which refuses to buffer a request line beyond the
      configured byte limit.

    The gate is shared across connection workers; all operations are
    thread-safe. *)

type t

val create : max_in_flight:int -> t
(** Raises [Invalid_argument] when [max_in_flight < 1]. *)

val try_acquire : t -> bool
(** Take a solve slot if one is free; never blocks. *)

val release : t -> unit

val with_slot : t -> (unit -> 'a) -> 'a option
(** Run the thunk holding a slot; [None] when the gate is full.
    Exception-safe: the slot is released either way. *)

val in_flight : t -> int
val max_in_flight : t -> int

val rejected : t -> int
(** How many {!try_acquire}/{!with_slot} calls found the gate full. *)

(** {2 Deadlines} *)

type deadline
(** An absolute point on the monotonic clock (or "none"). *)

val deadline_of_ms : float option -> deadline
(** Start the clock now; [None] means no deadline. A non-positive
    budget (0 ms, or negative) is expired from birth: {!expired} is
    deterministically [true] without ever consulting the clock. *)

val expired : deadline -> bool

val remaining_ms : deadline -> float
(** [infinity] when there is no deadline; can go negative once expired
    ([0.] for a deadline born expired). *)
