(** A fixed pool of worker domains draining a bounded job queue — the
    concurrency substrate of the planning daemon.

    The accept loop submits one job per client connection; each worker
    handles its connection to completion (many requests) before taking
    the next, so a long [chaos] drill on one connection never blocks
    another client that lands on a different worker. Solver parallelism
    stays inside the job: Stage-1 spawns its own short-lived domains,
    and the {!Admission} gate bounds how many jobs may do so at once.

    Jobs must not raise — the pool wraps each job and swallows (counts)
    escaped exceptions so a poisoned connection cannot kill a worker. *)

type t

val start : ?queue_depth:int -> workers:int -> unit -> t
(** Spawn [workers] domains ([>= 1]; raises [Invalid_argument]
    otherwise). [queue_depth] (default [4 * workers]) bounds the number
    of submitted-but-unclaimed jobs. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] when the queue is full or the pool is
    shutting down (the caller sheds the connection). Never blocks. *)

val escaped_exceptions : t -> int
(** Jobs that terminated with an uncaught exception. *)

val queue_length : t -> int
(** Jobs submitted but not yet claimed by a worker. *)

val rejected : t -> int
(** {!submit} calls refused because the queue was full or closing. *)

val shutdown : t -> unit
(** Stop accepting jobs, let queued and running jobs finish, then join
    every worker. Idempotent. *)
