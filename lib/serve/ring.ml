(* Consistent hashing over workload digests. Each shard contributes
   [vnodes] points on a ring of hash values; a key is owned by the first
   point clockwise from its own hash. Virtual nodes smooth the split:
   with 64 per shard the imbalance across 3 shards stays within a few
   percent, and adding or removing one shard only moves the keys whose
   nearest point belonged to it. *)

(* First 8 bytes of the MD5, as a non-negative int. Workload digests are
   themselves hex MD5 strings, so hashing them again costs little and
   makes the ring position independent of the digest's own bit layout. *)
let hash s =
  let d = Digest.string s in
  Int64.to_int (String.get_int64_be d 0) land max_int

type t = {
  points : (int * string) array;  (* sorted by point hash *)
  shards : string list;  (* creation order, deduplicated input *)
}

let create ?(vnodes = 64) shards =
  if shards = [] then invalid_arg "Ring.create: no shards";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s then
        invalid_arg (Printf.sprintf "Ring.create: duplicate shard %S" s);
      Hashtbl.add seen s ())
    shards;
  let points =
    List.concat_map
      (fun shard ->
        List.init vnodes (fun i ->
            (hash (Printf.sprintf "%s#%d" shard i), shard)))
      shards
    |> Array.of_list
  in
  (* Ties (astronomically unlikely) resolve by shard name so the ring is
     deterministic regardless of input order. *)
  Array.sort compare points;
  { points; shards }

let shards t = t.shards
let points t = Array.length t.points

let owner t key =
  let h = hash key in
  let n = Array.length t.points in
  (* First point with hash >= h, wrapping to point 0 past the end. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  snd t.points.(if i = n then 0 else i)
