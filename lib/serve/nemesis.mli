(** A deterministic partition nemesis for the replicated planning
    cluster: a live 3-replica cluster (real sockets, real journals, real
    replication streams) with every link routed through a {!Faulty}
    proxy, attacked by a seeded schedule of network partitions while a
    workload generator keeps a full operation history — then audited
    against the failover invariants.

    The schedule always covers the three shapes that matter:

    - {e leader isolation} — the leader is blackholed from the router
      and from both followers; the router must fence-promote the most
      caught-up follower, and a direct write against the still-running
      stale leader must come back [no_quorum] (quorum acks refuse it).
      The heal revives the stale leader, which the router must demote
      with a fencing epoch;
    - {e asymmetric link} — one follower's bytes toward the leader
      vanish while the reverse direction flows, so its acks stop
      counting and the other follower must carry the quorum;
    - {e follower isolation} — a follower is fully partitioned (a
      pause, as seen from the network) and must resync on heal.

    Invariants checked over the surviving journals after the final heal:

    + {e single writer per epoch} — no two nodes' names appear as
      ["origin"] of journaled updates under the same fencing epoch;
    + {e no acknowledged update lost} — every update the generator saw
      acked survives on {e every} replica (as its delta batch, or as the
      workload state it produced after a snapshot fold/reset);
    + {e journal convergence} — the WAL suffixes from the highest base
      index are bit-identical triples on all replicas;
    + {e plan convergence} — the final solve answers with the same
      [plan_digest] from every replica's cache;
    + {e clean verification} — {!Journal.verify} finds no corruption,
      no trailing bytes, and no epoch regressions anywhere.

    Everything is seeded and in-process (the "network" is loopback
    through {!Faulty}), so a failing run replays exactly. Backs
    [mcss nemesis] and the [partition] bench section. *)

type config = {
  seed : int;  (** Drives victim choice and the phase shuffle. *)
  partitions : int;
      (** Fault phases to run ([>= 3]; the first three are the mandatory
          shapes in a seeded order, extras are drawn from the pool). *)
  updates_per_phase : int;  (** Updates pushed during/after each phase. *)
  quorum_acks : int;  (** Passed to every node (default 2 — majority). *)
  quorum_timeout_ms : float;
  log : string -> unit;
}

val default_config : config
(** seed 42, 3 partitions, 3 updates per phase, quorum 2-of-3, 2 s
    quorum timeout, logging disabled. *)

type report = {
  r_seed : int;
  r_replicas : int;
  r_partitions : int;
  r_heals : int;
  r_stale_leader_revivals : int;
  r_updates_sent : int;
  r_updates_acked : int;
  r_updates_unacked : int;
  r_direct_attacks : int;  (** Writes aimed straight at an isolated leader. *)
  r_direct_attacks_acked : int;  (** Must be 0 — quorum refused them all. *)
  r_final_epoch : int;
  r_auto_promotions : int;
  r_fenced_demotions : int;
  r_not_leader_reroutes : int;
  r_divergent_tails : int;
      (** Epoch-mismatched follower tails the leaders forced through a
          reset (a revived stale leader's un-acked writes being cut). *)
  r_truncated_records : int;
      (** Records actually discarded by those resets when the follower's
          tail extended past the incoming snapshot base. *)
  r_recovery_ms : float list;
      (** Partition injection → first acked update, per leader-loss
          phase, sorted ascending. *)
  r_recovery_p50_ms : float;
  r_recovery_p95_ms : float;
  r_single_writer_per_epoch : bool;
  r_no_acked_update_lost : bool;
  r_journals_converged : bool;
  r_plan_digests_converged : bool;
  r_journals_verify_clean : bool;
  r_notes : string list;  (** Phase-by-phase narration, in order. *)
}

val passed : report -> bool
(** All five invariants hold {e and} at least one automatic promotion
    was observed (the run exercised failover, not just fair weather). *)

val report_to_json : report -> Json.t
(** The [BENCH_partition.json] shape: counters, recovery percentiles,
    and an ["invariants"] object of hard booleans plus ["passed"]. *)

val run : config -> report
(** Build the cluster in a fresh temp directory, run the schedule, audit
    the journals, tear everything down (the temp directory is removed
    even on failure). Raises [Invalid_argument] on a bad config and
    [Nemesis_timeout] when the cluster wedges (which is itself a
    failover bug). Takes tens of seconds: wall-clock includes real probe
    cadences and quorum timeouts. *)

exception Nemesis_timeout of string
