(** Journal streaming between a shard's leader and its followers.

    The leader exposes its journal on a dedicated replication address;
    each follower connects, names the last absolute record index it has
    ({!Journal.last_index}), and receives either the missing tail of
    the WAL or — when its index falls outside the leader's WAL span — a
    full {!Service.sync_state} snapshot, then the live stream of every
    subsequent append. Records travel in the journal's own CRC frames;
    the follower verifies each frame, applies it through the same
    replay path a restart uses ({!Service.apply_replicated}), and
    mirrors it into its own journal. After [kill -9] of the leader, a
    promoted follower therefore answers an already-solved [solve] as a
    cache hit with the leader's bit-identical [plan_digest].

    {b Fault behaviour.} The stream has no acknowledgements and no
    repair: a torn frame, CRC mismatch, RST, or gap simply drops the
    connection. Follower state is only ever advanced by whole verified
    frames, so every fault degenerates to "reconnect and resync from my
    last index" — follower corruption is structurally impossible, which
    is what the {!Faulty}-driven replication test suite pins down. A
    follower too slow to drain the leader's bounded fan-out queue is
    disconnected the same way and picks up where it left off. *)

(** {1 Leader side} *)

type leader

val start_leader :
  ?obs:Mcss_obs.Registry.t -> service:Service.t -> Server.address -> leader
(** Bind the replication listener and start streaming: hooks the
    service's journal ({!Service.set_journal_hook}) and serves each
    follower connection on its own domain. The service must have a
    journal ([Invalid_argument] otherwise). [obs] defaults to the
    service's registry and receives [serve.replication.*] counters.
    Raises [Unix.Unix_error] when the address cannot be bound. *)

val stop_leader : leader -> unit
(** Unhook the journal, close the listener and every follower stream,
    and join all domains. Idempotent. *)

(** {1 Follower side} *)

val follow :
  ?obs:Mcss_obs.Registry.t ->
  ?sleep:(float -> unit) ->
  ?reconnect_ms:float ->
  service:Service.t ->
  stop:(unit -> bool) ->
  Server.address ->
  unit
(** Pull the leader's stream into [service] until [stop ()] turns true
    or the service is {!Service.promote}d (checked continuously, also
    while blocked on the socket). Reconnects with a fixed [reconnect_ms]
    pause (default 200) after any connection failure, stream fault, or
    apply failure — each reconnect renegotiates from the follower's own
    [last_index], so faults cost at most a resync. Runs in the calling
    domain; spawn one for it. *)
