(** Journal streaming between a shard's leader and its followers.

    The leader exposes its journal on a dedicated replication address;
    each follower connects, names the last absolute record index it has
    ({!Journal.last_index}), and receives either the missing tail of
    the WAL or — when its index falls outside the leader's WAL span — a
    full {!Service.sync_state} snapshot, then the live stream of every
    subsequent append. Records travel in the journal's own CRC frames;
    the follower verifies each frame, applies it through the same
    replay path a restart uses ({!Service.apply_replicated}), and
    mirrors it into its own journal. After [kill -9] of the leader, a
    promoted follower therefore answers an already-solved [solve] as a
    cache hit with the leader's bit-identical [plan_digest].

    {b Epoch fencing.} Every frame carries the fencing epoch it was
    written under and both handshake directions carry the peers' epochs.
    A leader dialed by a follower with a higher epoch has been fenced by
    a promotion it never heard about: it demotes itself on the spot and
    refuses the stream. A follower offered a stream by a lower-epoch
    leader refuses to mirror it ([stale_leaders] counter). A follower
    whose last record's epoch does not match the leader's record at the
    same index wrote its tail under a fenced leader; the handshake
    forces a full reset, which truncates the divergent un-acked tail
    (counted in [serve.replication.truncated_records]).

    {b Acks and quorum.} After applying each record the follower writes
    an [{"ack":INDEX}] line back on the same socket. The leader keeps a
    per-connection high-water mark and {!commit_gate} turns the marks
    into the barrier {!Service}'s non-idempotent verbs wait on when
    [quorum_acks > 1]; idempotent traffic never waits, so replication
    stays asynchronous for it.

    {b Fault behaviour.} Beyond acks the stream has no repair protocol:
    a torn frame, CRC mismatch, RST, or gap simply drops the
    connection. Follower state is only ever advanced by whole verified
    frames, so every fault degenerates to "reconnect and resync from my
    last index" — follower corruption is structurally impossible, which
    is what the {!Faulty}-driven replication test suite pins down. A
    follower too slow to drain the leader's bounded fan-out queue is
    disconnected the same way and picks up where it left off. *)

(** {1 Leader side} *)

type leader

val start_leader :
  ?obs:Mcss_obs.Registry.t -> service:Service.t -> Server.address -> leader
(** Bind the replication listener and start streaming: hooks the
    service's journal ({!Service.set_journal_hook}) and serves each
    follower connection on its own domain. The service must have a
    journal ([Invalid_argument] otherwise). [obs] defaults to the
    service's registry and receives [serve.replication.*] counters.
    Raises [Unix.Unix_error] when the address cannot be bound. *)

val stop_leader : leader -> unit
(** Unhook the journal (and the commit gate), close the listener and
    every follower stream, and join all domains. Idempotent. *)

val commit_gate :
  leader -> quorum:int -> timeout_ms:float -> index:int -> (unit, string) result
(** Block until [quorum - 1] follower connections have acked the record
    at absolute [index] (the leader's own fsync is the remaining vote);
    [Error] on timeout or when the hub is closing. Wire it into
    {!Service.set_commit_gate} with the configured quorum:
    [Service.set_commit_gate svc (Some (fun ~index -> commit_gate hub ~quorum ~timeout_ms ~index))]. *)

(** {1 Follower side} *)

val follow :
  ?obs:Mcss_obs.Registry.t ->
  ?sleep:(float -> unit) ->
  ?reconnect_ms:float ->
  service:Service.t ->
  stop:(unit -> bool) ->
  Server.address ->
  unit
(** Pull the leader's stream into [service] until [stop ()] turns true
    or the service is {!Service.promote}d (checked continuously, also
    while blocked on the socket). Reconnects with a fixed [reconnect_ms]
    pause (default 200) after any connection failure, stream fault, or
    apply failure — each reconnect renegotiates from the follower's own
    [last_index], so faults cost at most a resync. Runs in the calling
    domain; spawn one for it. *)
