(** A consistent-hash ring mapping workload digests to shards.

    The router shards the planning cluster by content digest: every
    digest-bearing request ([solve], [update], [whatif], [chaos]) and
    every [load] (hashed by the workload's canonical content) lands on
    the shard that owns the digest's ring position, so a workload and
    all of its plans live together and the plan cache of each shard
    stays disjoint. Each shard contributes [vnodes] virtual points, so
    load splits near-evenly and resharding moves only the arc owned by
    the shard that changed. *)

type t

val create : ?vnodes:int -> string list -> t
(** [create shards] builds the ring over the given shard names
    ([vnodes] points each, default 64). Raises [Invalid_argument] on an
    empty or duplicate-bearing list, or [vnodes < 1]. Deterministic:
    the same names yield the same ring in any order. *)

val owner : t -> string -> string
(** [owner t key] is the shard owning [key] (the first ring point
    clockwise from [key]'s hash). Total — any string has an owner. *)

val shards : t -> string list
(** The shard names, in the order given to {!create}. *)

val points : t -> int
(** Total virtual points ([shards * vnodes]); exposed for tests. *)
