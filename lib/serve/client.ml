type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable closed : bool;
}

let connect address =
  let sockaddr, domain =
    match address with
    | Server.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Server.Tcp (host, port) -> (
        match
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
            | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
            | _ -> raise Not_found)
        with
        | inet -> (Unix.ADDR_INET (inet, port), Unix.PF_INET)
        | exception Not_found ->
            raise (Unix.Unix_error (Unix.EINVAL, "resolve", host)))
  in
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd -> Ok { fd; ic = Unix.in_channel_of_descr fd; closed = false }
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Server.address_to_string address)
           (Unix.error_message err))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Closing the channel closes the underlying fd. *)
    try close_in t.ic with Sys_error _ -> ()
  end

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let request t json =
  if t.closed then Error "connection is closed"
  else
    match
      write_all t.fd (Json.to_string json ^ "\n");
      input_line t.ic
    with
    | line -> (
        match Json.parse line with
        | Ok reply -> Ok reply
        | Error m -> Error (Printf.sprintf "unparseable reply: %s" m))
    | exception End_of_file ->
        close t;
        Error "server closed the connection"
    | exception Unix.Unix_error (err, _, _) ->
        close t;
        Error (Unix.error_message err)
    | exception Sys_error m ->
        close t;
        Error m
    | exception Sys_blocked_io ->
        (* SO_RCVTIMEO expired under the channel: the peer is up but
           silent (a blackholed link, not a dead process). *)
        close t;
        Error "receive timed out"

let request_envelope t env = request t (Protocol.encode env)

let with_connection address f =
  match connect address with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ----- resilient one-shot call ----- *)

let receive_timeout t seconds =
  try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* Which replies are worth another attempt: the server shed us
   ([overloaded]) or blew the deadline ([timeout] — the plan stays
   cached server-side, so the retry is usually a hit). Everything else
   is a real answer the caller must see. *)
let transient_reply reply =
  match Protocol.response_error reply with
  | Some (Some Protocol.Overloaded, m) -> Some ("overloaded: " ^ m)
  | Some (Some Protocol.Timeout, m) -> Some ("timeout: " ^ m)
  | _ -> None

let call ?obs ?sleep ?(rng = Mcss_prng.Rng.create 0)
    ?(policy = Retry.default_policy) ?route address (env : Protocol.envelope) =
  let replayable = Protocol.idempotent env.Protocol.request in
  (* Each attempt re-resolves its target: by default the given address,
     but a failover-aware caller (the router) plugs in [route] to point
     the retry at a different member — a mid-reply disconnect used to be
     retried against the very address that just died. *)
  let route =
    match route with Some f -> f | None -> fun ~attempt:_ -> address
  in
  let env =
    match (env.Protocol.deadline_ms, policy.Retry.attempt_timeout_ms) with
    | None, Some ms -> { env with Protocol.deadline_ms = Some ms }
    | _ -> env
  in
  Retry.run ?obs ?sleep ~rng ~policy (fun ~attempt ->
      (* A fresh connection per attempt: the previous one may be
         half-dead (reset mid-frame, server restarting). *)
      let attempt_result =
        with_connection (route ~attempt) (fun t ->
            (match policy.Retry.attempt_timeout_ms with
            | Some ms -> receive_timeout t (ms /. 1000.)
            | None -> ());
            request_envelope t env)
      in
      match attempt_result with
      | Ok reply -> (
          match Protocol.response_error reply with
          (* A [not_leader] refusal proves the member did nothing, so a
             retry is safe even for non-idempotent verbs — and each
             attempt re-resolves [route], so a failover-aware caller gets
             steered to the new leader instead of surfacing the refusal
             as a hard error. The last attempt returns the reply itself:
             the structured error (and its exit-code mapping) must
             survive when the shard genuinely has no leader. *)
          | Some (Some Protocol.Not_leader, m)
            when attempt < policy.Retry.max_attempts ->
              Retry.Retry ("not_leader: " ^ m)
          | _ -> (
              match transient_reply reply with
              | Some m when replayable -> Retry.Retry m
              | _ -> Retry.Done reply))
      | Error m -> if replayable then Retry.Retry m else Retry.Give_up m)
