type solve_params = {
  tau : float;
  instance : string;
  bc_events : float option;
  config : string;
}

let default_params =
  { tau = 100.; instance = "c3.large"; bc_events = None; config = "(e) +cost-decision" }

type request =
  | Health
  | Load of [ `Inline of string | `Path of string ]
  | Solve of { digest : string; params : solve_params }
  | Update of { digest : string; params : solve_params; deltas : string }
  | Whatif of { digest : string; params : solve_params; taus : float list }
  | Chaos of {
      digest : string;
      params : solve_params;
      seed : int;
      epochs : int;
      zones : int;
      faults : string list;
    }
  | Stats
  | Metrics
  | Promote of { epoch : int option }
  | Demote of { epoch : int }
  | Shutdown
  | Drain
  | Rehome of { add : (int * int) list; remove : (int * int) list }
  | Ledger

type envelope = {
  id : Json.t option;
  deadline_ms : float option;
  request : request;
}

(* ----- decoding ----- *)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let field_float j key ~default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> (
      match Json.to_float_opt v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S must be a number" key))

let field_int j key ~default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> (
      match Json.to_int_opt v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S must be an integer" key))

let field_string j key ~default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> (
      match Json.to_string_opt v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S must be a string" key))

let required_string j key =
  match Json.member key j with
  | None -> Error (Printf.sprintf "field %S is required" key)
  | Some v -> (
      match Json.to_string_opt v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S must be a string" key))

let params_of j =
  let* tau = field_float j "tau" ~default:default_params.tau in
  let* instance = field_string j "instance" ~default:default_params.instance in
  let* config = field_string j "config" ~default:default_params.config in
  let* bc_events =
    match Json.member "bc_events" j with
    | None -> Ok None
    | Some raw -> (
        match Json.to_float_opt raw with
        | Some x -> Ok (Some x)
        | None -> Error "field \"bc_events\" must be a number")
  in
  if tau <= 0. then Error "field \"tau\" must be positive"
  else Ok { tau; instance; bc_events; config }

let decode j =
  let* verb = required_string j "req" in
  let id = Json.member "id" j in
  let* deadline_ms =
    match Json.member "deadline_ms" j with
    | None -> Ok None
    | Some v -> (
        match Json.to_float_opt v with
        | Some x when x > 0. -> Ok (Some x)
        | Some _ -> Error "field \"deadline_ms\" must be positive"
        | None -> Error "field \"deadline_ms\" must be a number")
  in
  let* request =
    match verb with
    | "health" -> Ok Health
    | "stats" -> Ok Stats
    | "metrics" -> Ok Metrics
    | "promote" -> (
        match Json.member "epoch" j with
        | None -> Ok (Promote { epoch = None })
        | Some v -> (
            match Json.to_int_opt v with
            | Some e when e > 0 -> Ok (Promote { epoch = Some e })
            | Some _ -> Error "field \"epoch\" must be positive"
            | None -> Error "field \"epoch\" must be an integer"))
    | "demote" -> (
        match Json.member "epoch" j with
        | None -> Error "field \"epoch\" is required"
        | Some v -> (
            match Json.to_int_opt v with
            | Some e when e > 0 -> Ok (Demote { epoch = e })
            | Some _ -> Error "field \"epoch\" must be positive"
            | None -> Error "field \"epoch\" must be an integer"))
    | "shutdown" -> Ok Shutdown
    | "drain" -> Ok Drain
    | "ledger" -> Ok Ledger
    | "rehome" ->
        let pairs_of key =
          match Json.member key j with
          | None -> Ok []
          | Some v -> (
              match Json.to_list_opt v with
              | None ->
                  Error (Printf.sprintf "field %S must be an array of [topic, subscriber] pairs" key)
              | Some xs ->
                  let rec conv acc = function
                    | [] -> Ok (List.rev acc)
                    | Json.List [ t; s ] :: rest -> (
                        match (Json.to_int_opt t, Json.to_int_opt s) with
                        | Some t, Some s when t >= 0 && s >= 0 -> conv ((t, s) :: acc) rest
                        | _ ->
                            Error
                              (Printf.sprintf
                                 "field %S must contain nonnegative [topic, subscriber] pairs" key))
                    | _ ->
                        Error
                          (Printf.sprintf "field %S must contain [topic, subscriber] pairs" key)
                  in
                  conv [] xs)
        in
        let* add = pairs_of "add" in
        let* remove = pairs_of "remove" in
        if add = [] && remove = [] then
          Error "rehome needs a non-empty \"add\" or \"remove\""
        else Ok (Rehome { add; remove })
    | "load" -> (
        match (Json.member "workload" j, Json.member "path" j) with
        | Some w, None -> (
            match Json.to_string_opt w with
            | Some text -> Ok (Load (`Inline text))
            | None -> Error "field \"workload\" must be a string")
        | None, Some p -> (
            match Json.to_string_opt p with
            | Some path -> Ok (Load (`Path path))
            | None -> Error "field \"path\" must be a string")
        | Some _, Some _ -> Error "pass either \"workload\" or \"path\", not both"
        | None, None -> Error "load needs a \"workload\" (inline text) or \"path\"")
    | "solve" ->
        let* digest = required_string j "digest" in
        let* params = params_of j in
        Ok (Solve { digest; params })
    | "update" ->
        let* digest = required_string j "digest" in
        let* deltas = required_string j "deltas" in
        let* params = params_of j in
        Ok (Update { digest; params; deltas })
    | "whatif" ->
        let* digest = required_string j "digest" in
        let* params = params_of j in
        let* taus =
          match Json.member "taus" j with
          | None -> Error "field \"taus\" is required"
          | Some v -> (
              match Json.to_list_opt v with
              | None -> Error "field \"taus\" must be an array of numbers"
              | Some xs ->
                  let rec conv acc = function
                    | [] -> Ok (List.rev acc)
                    | x :: rest -> (
                        match Json.to_float_opt x with
                        | Some f when f > 0. -> conv (f :: acc) rest
                        | _ -> Error "field \"taus\" must contain positive numbers")
                  in
                  conv [] xs)
        in
        if taus = [] then Error "field \"taus\" must be non-empty"
        else Ok (Whatif { digest; params; taus })
    | "chaos" ->
        let* digest = required_string j "digest" in
        let* params = params_of j in
        let* seed = field_int j "seed" ~default:1 in
        let* epochs = field_int j "epochs" ~default:8 in
        let* zones = field_int j "zones" ~default:3 in
        let* faults =
          match Json.member "faults" j with
          | None -> Ok []
          | Some v -> (
              match Json.to_list_opt v with
              | None -> Error "field \"faults\" must be an array of strings"
              | Some xs ->
                  let rec conv acc = function
                    | [] -> Ok (List.rev acc)
                    | x :: rest -> (
                        match Json.to_string_opt x with
                        | Some s -> conv (s :: acc) rest
                        | None -> Error "field \"faults\" must contain strings")
                  in
                  conv [] xs)
        in
        if epochs < 1 then Error "field \"epochs\" must be >= 1"
        else if zones < 1 then Error "field \"zones\" must be >= 1"
        else Ok (Chaos { digest; params; seed; epochs; zones; faults })
    | other -> Error (Printf.sprintf "unknown request %S" other)
  in
  Ok { id; deadline_ms; request }

(* ----- encoding ----- *)

let params_fields p =
  [ ("tau", Json.Float p.tau); ("instance", Json.String p.instance);
    ("config", Json.String p.config) ]
  @ match p.bc_events with None -> [] | Some x -> [ ("bc_events", Json.Float x) ]

let encode { id; deadline_ms; request } =
  let base =
    match request with
    | Health -> [ ("req", Json.String "health") ]
    | Stats -> [ ("req", Json.String "stats") ]
    | Metrics -> [ ("req", Json.String "metrics") ]
    | Promote { epoch = None } -> [ ("req", Json.String "promote") ]
    | Promote { epoch = Some e } ->
        [ ("req", Json.String "promote"); ("epoch", Json.Int e) ]
    | Demote { epoch } ->
        [ ("req", Json.String "demote"); ("epoch", Json.Int epoch) ]
    | Shutdown -> [ ("req", Json.String "shutdown") ]
    | Drain -> [ ("req", Json.String "drain") ]
    | Ledger -> [ ("req", Json.String "ledger") ]
    | Rehome { add; remove } ->
        let pairs ps =
          Json.List (List.map (fun (t, s) -> Json.List [ Json.Int t; Json.Int s ]) ps)
        in
        [ ("req", Json.String "rehome"); ("add", pairs add); ("remove", pairs remove) ]
    | Load (`Inline text) ->
        [ ("req", Json.String "load"); ("workload", Json.String text) ]
    | Load (`Path path) -> [ ("req", Json.String "load"); ("path", Json.String path) ]
    | Solve { digest; params } ->
        (("req", Json.String "solve") :: ("digest", Json.String digest)
        :: params_fields params)
    | Update { digest; params; deltas } ->
        ("req", Json.String "update") :: ("digest", Json.String digest)
        :: ("deltas", Json.String deltas)
        :: params_fields params
    | Whatif { digest; params; taus } ->
        ("req", Json.String "whatif") :: ("digest", Json.String digest)
        :: ("taus", Json.List (List.map (fun t -> Json.Float t) taus))
        :: params_fields params
    | Chaos { digest; params; seed; epochs; zones; faults } ->
        ("req", Json.String "chaos") :: ("digest", Json.String digest)
        :: ("seed", Json.Int seed) :: ("epochs", Json.Int epochs)
        :: ("zones", Json.Int zones)
        :: ("faults", Json.List (List.map (fun f -> Json.String f) faults))
        :: params_fields params
  in
  let base =
    match deadline_ms with
    | None -> base
    | Some d -> base @ [ ("deadline_ms", Json.Float d) ]
  in
  let base = match id with None -> base | Some id -> base @ [ ("id", id) ] in
  Json.Obj base

(* ----- replies ----- *)

type error_code =
  | Bad_request
  | Too_large
  | Unknown_digest
  | Timeout
  | Overloaded
  | Draining
  | Infeasible
  | Degraded
  | Not_leader
  | No_quorum
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Too_large -> "too_large"
  | Unknown_digest -> "unknown_digest"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Infeasible -> "infeasible"
  | Degraded -> "degraded"
  | Not_leader -> "not_leader"
  | No_quorum -> "no_quorum"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "too_large" -> Some Too_large
  | "unknown_digest" -> Some Unknown_digest
  | "timeout" -> Some Timeout
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | "infeasible" -> Some Infeasible
  | "degraded" -> Some Degraded
  | "not_leader" -> Some Not_leader
  | "no_quorum" -> Some No_quorum
  | "internal" -> Some Internal
  | _ -> None

let with_id id fields =
  match id with None | Some None -> fields | Some (Some id) -> ("id", id) :: fields

let ok_response ?id fields = Json.Obj (("ok", Json.Bool true) :: with_id id fields)

let error_response ?id ~code ~message () =
  Json.Obj
    (("ok", Json.Bool false)
    :: with_id id
         [
           ("error", Json.String (error_code_to_string code));
           ("message", Json.String message);
         ])

let response_ok j = Json.member "ok" j |> Fun.flip Option.bind Json.to_bool_opt = Some true

let response_degraded j =
  response_ok j
  && Json.member "degraded" j |> Fun.flip Option.bind Json.to_bool_opt = Some true

(* [load] is content-addressed (re-sending the same workload maps to the
   same digest), [solve]/[whatif] are deterministic and cached, [chaos]
   is seeded, the read-only verbs are read-only, and [shutdown] merely
   re-sets the drain flag — all safe to replay on a fresh connection
   after a transport failure. [update] is the mutating verb this
   function existed for: it appends to the write-ahead log, so a blind
   replay after an ambiguous transport failure would journal the same
   update twice. The result is deterministic either way, but duplicated
   history is not "as if sent once" — {!Client.call} refuses to
   reconnect-and-replay it and surfaces the failure to the caller
   instead.

   The dataplane verbs are all replay-safe: [ledger] is a read,
   [drain] re-sets a flag like [shutdown], and [rehome] has set
   semantics — adding a pair a broker already hosts or removing one it
   does not is reported in the reply but leaves the table exactly as a
   single application would. *)
let idempotent = function
  | Health | Load _ | Solve _ | Whatif _ | Chaos _ | Stats | Metrics
  | Promote _ | Demote _ | Shutdown | Drain | Rehome _ | Ledger ->
      true
  | Update _ -> false

let response_error j =
  if response_ok j then None
  else
    let code =
      Json.member "error" j
      |> Fun.flip Option.bind Json.to_string_opt
      |> Fun.flip Option.bind error_code_of_string
    in
    let message =
      match Json.member "message" j |> Fun.flip Option.bind Json.to_string_opt with
      | Some m -> m
      | None -> "unknown error"
    in
    Some (code, message)
