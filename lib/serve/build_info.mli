(** What this binary is: the package version plus, when the binary runs
    inside a git checkout with [git] on PATH, the commit description.
    The serve handshake, [mcss version], and the bench JSON all log the
    same string so a measurement can always be traced to a build. *)

val version : string
(** The package version (kept in lock-step with the opam metadata). *)

val git_describe : unit -> string option
(** [git describe --tags --always --dirty] of the current directory's
    checkout, probed once per process; [None] when git or the repository
    is unavailable. Never raises. *)

val to_string : unit -> string
(** ["VERSION"] or ["VERSION (git DESCRIBE)"]. *)
