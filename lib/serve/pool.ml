type t = {
  queue : (unit -> unit) Queue.t;
  depth : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closing : bool;
  mutable escaped : int;
  mutable rejected : int;
  mutable workers : unit Domain.t array;
}

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.lock;
    let job =
      let rec wait () =
        if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
        else if pool.closing then None
        else begin
          Condition.wait pool.nonempty pool.lock;
          wait ()
        end
      in
      wait ()
    in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some job ->
        (try job ()
         with _ ->
           Mutex.lock pool.lock;
           pool.escaped <- pool.escaped + 1;
           Mutex.unlock pool.lock);
        next ()
  in
  next ()

let start ?queue_depth ~workers () =
  if workers < 1 then invalid_arg "Pool.start: workers must be >= 1";
  let depth = match queue_depth with Some d -> max 1 d | None -> 4 * workers in
  let pool =
    {
      queue = Queue.create ();
      depth;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closing = false;
      escaped = 0;
      rejected = 0;
      workers = [||];
    }
  in
  (* [workers] is only read by [shutdown], which happens strictly after
     this assignment on the starting thread. *)
  pool.workers <- Array.init workers (fun _ -> Domain.spawn (worker_loop pool));
  pool

let submit pool job =
  Mutex.lock pool.lock;
  let accepted =
    if pool.closing || Queue.length pool.queue >= pool.depth then begin
      pool.rejected <- pool.rejected + 1;
      false
    end
    else begin
      Queue.push job pool.queue;
      Condition.signal pool.nonempty;
      true
    end
  in
  Mutex.unlock pool.lock;
  accepted

let escaped_exceptions pool =
  Mutex.lock pool.lock;
  let n = pool.escaped in
  Mutex.unlock pool.lock;
  n

let queue_length pool =
  Mutex.lock pool.lock;
  let n = Queue.length pool.queue in
  Mutex.unlock pool.lock;
  n

let rejected pool =
  Mutex.lock pool.lock;
  let n = pool.rejected in
  Mutex.unlock pool.lock;
  n

let shutdown pool =
  Mutex.lock pool.lock;
  let first = not pool.closing in
  pool.closing <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  if first then Array.iter Domain.join pool.workers
