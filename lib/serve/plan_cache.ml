(* Classic hash-map + doubly-linked recency list. [head] is most
   recently used, [tail] least. Nodes are never shared outside the
   mutex, so the structure needs no atomics. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    cap = capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity c = c.cap

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.head;
  n.prev <- None;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let find c key =
  locked c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some n ->
          c.hits <- c.hits + 1;
          unlink c n;
          push_front c n;
          Some n.value
      | None ->
          c.misses <- c.misses + 1;
          None)

let add c key value =
  locked c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some n ->
          n.value <- value;
          unlink c n;
          push_front c n
      | None ->
          if Hashtbl.length c.table >= c.cap then begin
            match c.tail with
            | Some lru ->
                unlink c lru;
                Hashtbl.remove c.table lru.key;
                c.evictions <- c.evictions + 1
            | None -> ()
          end;
          let n = { key; value; prev = None; next = None } in
          Hashtbl.replace c.table key n;
          push_front c n)

let length c = locked c (fun () -> Hashtbl.length c.table)

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.table;
      c.head <- None;
      c.tail <- None)

let to_list c =
  locked c (fun () ->
      (* Walk tail→head collecting MRU-first, then reverse to LRU-first:
         re-adding in that order reproduces the recency list. *)
      let rec walk acc = function
        | None -> acc
        | Some n -> walk ((n.key, n.value) :: acc) n.prev
      in
      List.rev (walk [] c.tail))

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats c =
  locked c (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
        entries = Hashtbl.length c.table;
      })

let hit_ratio s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total
