module Rng = Mcss_prng.Rng
module Workload = Mcss_workload.Workload
module Wio = Mcss_workload.Wio
module Registry = Mcss_obs.Registry
module Counter = Mcss_obs.Metric.Counter

type config = {
  seed : int;
  partitions : int;
  updates_per_phase : int;
  quorum_acks : int;
  quorum_timeout_ms : float;
  log : string -> unit;
}

let default_config =
  {
    seed = 42;
    partitions = 3;
    updates_per_phase = 3;
    quorum_acks = 2;
    (* Loopback quorum acks land in single-digit milliseconds, so a
       partitioned write is refused fast instead of pinning one of the
       node's two workers on the commit gate for seconds — the refusal
       itself is what the harness asserts on. Must stay below the
       router policy's [attempt_timeout_ms]: the client has to outwait
       the gate to *see* the [no_quorum] refusal rather than abandon
       the attempt mid-wait. *)
    quorum_timeout_ms = 500.;
    log = ignore;
  }

type report = {
  r_seed : int;
  r_replicas : int;
  r_partitions : int;
  r_heals : int;
  r_stale_leader_revivals : int;
  r_updates_sent : int;
  r_updates_acked : int;
  r_updates_unacked : int;
  r_direct_attacks : int;
  r_direct_attacks_acked : int;
  r_final_epoch : int;
  r_auto_promotions : int;
  r_fenced_demotions : int;
  r_not_leader_reroutes : int;
  r_divergent_tails : int;
  r_truncated_records : int;
  r_recovery_ms : float list;
  r_recovery_p50_ms : float;
  r_recovery_p95_ms : float;
  r_single_writer_per_epoch : bool;
  r_no_acked_update_lost : bool;
  r_journals_converged : bool;
  r_plan_digests_converged : bool;
  r_journals_verify_clean : bool;
  r_notes : string list;
}

let passed r =
  r.r_single_writer_per_epoch && r.r_no_acked_update_lost
  && r.r_journals_converged && r.r_plan_digests_converged
  && r.r_journals_verify_clean
  && r.r_auto_promotions >= 1

let percentile sorted p =
  match sorted with
  | [] -> 0.
  | l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) i))

let report_to_json r =
  Json.Obj
    [
      ("seed", Json.Int r.r_seed);
      ("replicas", Json.Int r.r_replicas);
      ("partitions", Json.Int r.r_partitions);
      ("heals", Json.Int r.r_heals);
      ("stale_leader_revivals", Json.Int r.r_stale_leader_revivals);
      ("updates_sent", Json.Int r.r_updates_sent);
      ("updates_acked", Json.Int r.r_updates_acked);
      ("updates_unacked", Json.Int r.r_updates_unacked);
      ("direct_attacks", Json.Int r.r_direct_attacks);
      ("direct_attacks_acked", Json.Int r.r_direct_attacks_acked);
      ("final_epoch", Json.Int r.r_final_epoch);
      ("auto_promotions", Json.Int r.r_auto_promotions);
      ("fenced_demotions", Json.Int r.r_fenced_demotions);
      ("not_leader_reroutes", Json.Int r.r_not_leader_reroutes);
      ("divergent_tails", Json.Int r.r_divergent_tails);
      ("truncated_records", Json.Int r.r_truncated_records);
      ("recovery_ms", Json.List (List.map (fun x -> Json.Float x) r.r_recovery_ms));
      ("recovery_p50_ms", Json.Float r.r_recovery_p50_ms);
      ("recovery_p95_ms", Json.Float r.r_recovery_p95_ms);
      ( "invariants",
        Json.Obj
          [
            ("single_writer_per_epoch", Json.Bool r.r_single_writer_per_epoch);
            ("no_acked_update_lost", Json.Bool r.r_no_acked_update_lost);
            ("journals_converged", Json.Bool r.r_journals_converged);
            ("plan_digests_converged", Json.Bool r.r_plan_digests_converged);
            ("journals_verify_clean", Json.Bool r.r_journals_verify_clean);
            ("automatic_promotion_observed", Json.Bool (r.r_auto_promotions >= 1));
          ] );
      ("passed", Json.Bool (passed r));
      ("notes", Json.List (List.map (fun s -> Json.String s) r.r_notes));
    ]

(* ----- scratch space ----- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* ----- the cluster under test -----

   Three planning services, each with its own journal, its own request
   socket, and its own always-on replication hub. Every byte between
   processes crosses a {!Faulty} proxy:

   - the router reaches node [i]'s request socket through [req_proxy.(i)];
   - follower [i] reaches node [j]'s replication hub through
     [rep_proxy.(i).(j)].

   A partition is therefore just [Faulty.set_plan] (blackhole) +
   [Faulty.sever] on the right proxies, and a heal the reverse — no
   process is ever actually killed, which is exactly what makes the
   revived-stale-leader scenario honest: the old leader keeps running
   and believing. *)

type node = {
  idx : int;
  node_name : string;
  dir : string;
  svc : Service.t;
  obs : Registry.t;
  req_addr : Server.address;
  server_dom : unit Domain.t;
  hub : Replication.leader;
  req_proxy : Faulty.t;
}

let replicas = 3

let blackhole_script =
  { Faulty.to_server = [ Faulty.Blackhole ]; to_client = [ Faulty.Blackhole ] }

let now_ms () = Unix.gettimeofday () *. 1000.

exception Nemesis_timeout of string

let wait_until ?(timeout_s = 30.) ~what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then raise (Nemesis_timeout what)
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let json_str j key = Json.member key j |> Fun.flip Option.bind Json.to_string_opt

let test_workload =
  Workload.create
    ~event_rates:[| 20.; 10.; 5. |]
    ~interests:[| [| 0; 1 |]; [| 0; 1 |]; [| 1; 2 |]; [| 2 |] |]

let params = { Protocol.default_params with Protocol.tau = 100. }

let env request = { Protocol.id = None; deadline_ms = None; request }

let handle_env svc e = Service.handle_line svc (Json.to_string (Protocol.encode e))

let run config =
  if config.partitions < 3 then
    invalid_arg "Nemesis.run: at least 3 partitions (the schedule must cover \
                 leader isolation, an asymmetric link, and a follower pause)";
  if config.quorum_acks < 1 || config.quorum_acks > replicas then
    invalid_arg "Nemesis.run: quorum_acks must be in [1, replicas]";
  let log = config.log in
  let rng = Rng.create config.seed in
  let scratch =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcss-nemesis-%d-%d" (Unix.getpid ()) config.seed)
  in
  Unix.mkdir scratch 0o755;
  let notes = ref [] in
  let note fmt =
    Printf.ksprintf
      (fun s ->
        log s;
        notes := s :: !notes)
      fmt
  in
  Fun.protect ~finally:(fun () -> rm_rf scratch) @@ fun () ->
  (* --- build the cluster --- *)
  let rep_addr i =
    Server.Unix_socket (Filename.concat scratch (Printf.sprintf "rep%d.sock" i))
  in
  let make_node idx =
    let node_name = Printf.sprintf "node%d" idx in
    let dir = Filename.concat scratch node_name in
    let obs = Registry.create () in
    let svc =
      Service.create ~obs
        ~config:
          {
            Service.default_config with
            Service.name = node_name;
            quorum_acks = config.quorum_acks;
            quorum_timeout_ms = config.quorum_timeout_ms;
            journal =
              Some
                {
                  (Journal.default_config ~dir) with
                  Journal.snapshot_every = 0;
                };
          }
        ~role:(if idx = 0 then Service.Leader else Service.Follower)
        ()
    in
    let req_addr =
      Server.Unix_socket (Filename.concat scratch (node_name ^ ".sock"))
    in
    let server_dom =
      Domain.spawn (fun () ->
          Server.run
            ~config:
              {
                Server.default_config with
                Server.workers = 2;
                accept_tick_s = 0.05;
              }
            svc req_addr)
    in
    let hub = Replication.start_leader ~service:svc (rep_addr idx) in
    Service.set_commit_gate svc
      (Some
         (fun ~index ->
           Replication.commit_gate hub ~quorum:config.quorum_acks
             ~timeout_ms:config.quorum_timeout_ms ~index));
    let req_proxy = Faulty.start ~upstream:req_addr () in
    { idx; node_name; dir; svc; obs; req_addr; server_dom; hub; req_proxy }
  in
  let nodes = Array.init replicas make_node in
  Array.iter
    (fun n ->
      wait_until ~timeout_s:10. ~what:(n.node_name ^ " request server")
        (fun () ->
          match Client.connect n.req_addr with
          | Ok c ->
              Client.close c;
              true
          | Error _ -> false))
    nodes;
  (* rep_proxy.(i).(j): the proxy follower [i] dials to reach [j]'s hub. *)
  let rep_proxy =
    Array.init replicas (fun i ->
        Array.init replicas (fun j ->
            if i = j then None
            else Some (Faulty.start ~upstream:(rep_addr j) ())))
  in
  let rep_proxy_exn i j =
    match rep_proxy.(i).(j) with Some p -> p | None -> assert false
  in
  (* --- follower controllers --- *)
  let stop_all = Atomic.make false in
  let targets = Array.init replicas (fun _ -> Atomic.make None) in
  let controllers =
    Array.map
      (fun n ->
        Domain.spawn (fun () ->
            let rec loop () =
              if Atomic.get stop_all then ()
              else begin
                (match Atomic.get targets.(n.idx) with
                | Some j when Service.role n.svc = Service.Follower ->
                    Replication.follow ~reconnect_ms:100. ~service:n.svc
                      ~stop:(fun () ->
                        Atomic.get stop_all
                        || Atomic.get targets.(n.idx) <> Some j)
                      (Faulty.address (rep_proxy_exn n.idx j))
                | _ -> Unix.sleepf 0.05);
                loop ()
              end
            in
            loop ()))
      nodes
  in
  (* --- router (driven in-process; probes go over the proxied wire) --- *)
  let router_obs = Registry.create () in
  let router =
    Router.create ~obs:router_obs
      ~config:
        {
          Router.default_config with
          Router.auto_promote = true;
          promote_after = 2;
          policy =
            {
              Retry.max_attempts = 2;
              base_ms = 5.;
              cap_ms = 25.;
              (* Above [quorum_timeout_ms] (a quorum refusal must
                 arrive before the client gives up on the attempt) but
                 small against the 60 s recovery deadline: a blackholed
                 member costs one full attempt timeout per probe, so
                 this bounds how long each recovery tick burns against
                 the partition. *)
              attempt_timeout_ms = Some 750.;
            };
          log;
        }
      [
        {
          Router.shard_name = "s0";
          members =
            Array.to_list
              (Array.map
                 (fun n ->
                   { Router.name = n.node_name; address = Faulty.address n.req_proxy })
                 nodes);
        };
      ]
  in
  let idx_of_name name =
    match Array.to_list nodes |> List.find_opt (fun n -> n.node_name = name) with
    | Some n -> n.idx
    | None -> -1
  in
  let router_head () =
    let stats = Router.handle router (env Protocol.Stats) in
    match Json.member "shards" stats with
    | Some (Json.List (shard :: _)) -> (
        match Json.member "members" shard with
        | Some (Json.List (m :: _)) ->
            Option.value ~default:"" (json_str m "name")
        | _ -> "")
    | _ -> ""
  in
  (* Point every non-leader at the router's current head. The router owns
     leadership; the controllers just chase it. *)
  let retarget () =
    let head = idx_of_name (router_head ()) in
    if head >= 0 then
      Array.iteri
        (fun i tgt -> Atomic.set tgt (if i = head then None else Some head))
        targets
  in
  let tick () =
    Router.probe_all router;
    Router.failover_all router;
    retarget ()
  in
  Atomic.set targets.(1) (Some 0);
  Atomic.set targets.(2) (Some 0);
  (* --- workload generator + operation history --- *)
  let op_counter = ref 0 in
  let updates_sent = ref 0 in
  let updates_unacked = ref 0 in
  (* Every acked update is remembered as (unique delta marker, the new
     workload digest it produced): the invariant checker later demands
     both survive on every replica. *)
  let acked : (string * string) list ref = ref [] in
  let current_digest = ref "" in
  let send_update via =
    incr op_counter;
    incr updates_sent;
    let marker_rate = 50. +. float_of_int !op_counter in
    let deltas = Printf.sprintf "mcss-deltas 1\nrate 0 %.17g\n" marker_rate in
    let e =
      env (Protocol.Update { digest = !current_digest; params; deltas })
    in
    let reply = via e in
    if Protocol.response_ok reply then begin
      (match json_str reply "digest" with
      | Some d ->
          acked := (deltas, d) :: !acked;
          current_digest := d
      | None -> ());
      Ok reply
    end
    else begin
      incr updates_unacked;
      Error reply
    end
  in
  let update_via_router () = send_update (Router.handle router) in
  let caught_up () =
    let last n = Service.journal_last_index n.svc in
    last nodes.(0) = last nodes.(1) && last nodes.(1) = last nodes.(2)
  in
  (* --- cluster boot: load, solve, steady traffic, full replication --- *)
  let load_reply =
    let rec go attempts =
      let reply =
        Router.handle router
          (env (Protocol.Load (`Inline (Wio.to_string test_workload))))
      in
      if Protocol.response_ok reply || attempts = 0 then reply
      else begin
        (* The first load can race the followers' first dial: quorum is
           not reachable for a few hundred ms. The load is
           content-addressed, so retrying is safe. *)
        Unix.sleepf 0.2;
        go (attempts - 1)
      end
    in
    go 20
  in
  if not (Protocol.response_ok load_reply) then
    raise
      (Nemesis_timeout
         (Printf.sprintf "initial load never acked: %s"
            (Json.to_string load_reply)));
  current_digest :=
    (match json_str load_reply "digest" with Some d -> d | None -> "");
  ignore
    (Router.handle router
       (env (Protocol.Solve { digest = !current_digest; params })));
  for _ = 1 to config.updates_per_phase do
    ignore (update_via_router ())
  done;
  wait_until ~what:"initial replication" caught_up;
  note "boot: %d updates acked, journals level at %s" (List.length !acked)
    (match Service.journal_last_index nodes.(0).svc with
    | Some i -> string_of_int i
    | None -> "?");
  (* --- fault schedule --- *)
  let heals = ref 0 in
  let revivals = ref 0 in
  let direct_attacks = ref 0 in
  let direct_attacks_acked = ref 0 in
  let recovery_ms = ref [] in
  let set_router_link i script =
    Faulty.set_plan nodes.(i).req_proxy (fun ~conn:_ -> script);
    Faulty.sever nodes.(i).req_proxy
  in
  let set_rep_link i j script =
    let p = rep_proxy_exn i j in
    Faulty.set_plan p (fun ~conn:_ -> script);
    Faulty.sever p
  in
  let isolate i =
    set_router_link i blackhole_script;
    for j = 0 to replicas - 1 do
      if j <> i then begin
        set_rep_link i j blackhole_script;
        set_rep_link j i blackhole_script
      end
    done
  in
  let heal_all () =
    incr heals;
    Array.iteri (fun i _ -> set_router_link i Faulty.clean) nodes;
    for i = 0 to replicas - 1 do
      for j = 0 to replicas - 1 do
        if i <> j then set_rep_link i j Faulty.clean
      done
    done
  in
  let leader_idx () =
    let head = idx_of_name (router_head ()) in
    if head >= 0 then head else 0
  in
  let followers_of leader =
    List.filter (fun i -> i <> leader) (List.init replicas Fun.id)
  in
  (* The first three phases cover the three required shapes in a seeded
     order; extra phases re-draw from the same pool. *)
  let base_kinds = [| `Isolate_leader; `Asym_link; `Isolate_follower |] in
  let kind_of_phase p =
    if p < 3 then begin
      (* A seeded Fisher-Yates of the three mandatory shapes, fixed for
         the whole run. *)
      let order = Array.copy base_kinds in
      let shuffle_rng = Rng.create (config.seed + 7919) in
      for k = 2 downto 1 do
        let j = Rng.int shuffle_rng (k + 1) in
        let tmp = order.(k) in
        order.(k) <- order.(j);
        order.(j) <- tmp
      done;
      order.(p)
    end
    else base_kinds.(Rng.int rng 3)
  in
  let steady () =
    (* Keep traffic flowing; failures here are recorded, not fatal —
       they are what the invariants adjudicate at the end. *)
    for _ = 1 to config.updates_per_phase do
      tick ();
      ignore (update_via_router ());
      ignore
        (Router.handle router
           (env (Protocol.Solve { digest = !current_digest; params })))
    done
  in
  let recover_updates ~t0 =
    (* Drive ticks until an update goes through again; the elapsed time
       is the headline recovery number. *)
    let deadline = Unix.gettimeofday () +. 60. in
    let rec go () =
      if Unix.gettimeofday () > deadline then
        raise (Nemesis_timeout "updates never recovered after a partition");
      tick ();
      match update_via_router () with
      | Ok _ -> recovery_ms := (now_ms () -. t0) :: !recovery_ms
      | Error _ ->
          Unix.sleepf 0.1;
          go ()
    in
    go ()
  in
  for phase = 0 to config.partitions - 1 do
    tick ();
    let leader = leader_idx () in
    (match kind_of_phase phase with
    | `Isolate_leader ->
        note "phase %d: isolating leader %s" phase nodes.(leader).node_name;
        isolate leader;
        let t0 = now_ms () in
        (* The severed leader still believes: hit it directly, as a
           client with a stale address would. Quorum acks must refuse. *)
        incr direct_attacks;
        let e =
          env
            (Protocol.Update
               {
                 digest = !current_digest;
                 params;
                 deltas = "mcss-deltas 1\nrate 1 999.0\n";
               })
        in
        if Protocol.response_ok (handle_env nodes.(leader).svc e) then
          incr direct_attacks_acked;
        recover_updates ~t0;
        note "phase %d: recovered through %s" phase (router_head ());
        steady ();
        heal_all ();
        incr revivals;
        (* The healed node comes back claiming leadership; the router
           must fence it and the controllers re-point it at the winner. *)
        wait_until ~what:"stale leader demoted" (fun () ->
            tick ();
            Service.role nodes.(leader).svc = Service.Follower);
        note "phase %d: stale leader %s fenced at epoch %d" phase
          nodes.(leader).node_name
          (Service.epoch nodes.(leader).svc)
    | `Asym_link ->
        let f =
          let fs = followers_of leader in
          List.nth fs (Rng.int rng (List.length fs))
        in
        note "phase %d: asymmetric link %s -> %s (requests blackholed one way)"
          phase nodes.(f).node_name nodes.(leader).node_name;
        (* Follower -> leader bytes vanish; leader -> follower still
           flows. The follower's hello never lands, so it stalls and its
           acks stop counting toward quorum — the other follower must
           carry it. *)
        set_rep_link f leader
          { Faulty.clean with Faulty.to_server = [ Faulty.Blackhole ] };
        steady ();
        heal_all ()
    | `Isolate_follower ->
        let f =
          let fs = followers_of leader in
          List.nth fs (Rng.int rng (List.length fs))
        in
        note "phase %d: isolating follower %s (pause)" phase
          nodes.(f).node_name;
        isolate f;
        steady ();
        heal_all ());
    tick ();
    wait_until ~timeout_s:60. ~what:"journals to reconverge after heal"
      (fun () ->
        tick ();
        caught_up ())
  done;
  (* --- settle and check --- *)
  tick ();
  wait_until ~timeout_s:60. ~what:"final convergence" (fun () ->
      tick ();
      caught_up ());
  (* Bit-identical plans: the same solve answered from every replica's
     cache, no solver run anywhere. *)
  let plan_digests =
    Array.map
      (fun n ->
        let reply =
          handle_env n.svc
            (env (Protocol.Solve { digest = !current_digest; params }))
        in
        Option.value ~default:("missing@" ^ n.node_name)
          (json_str reply "plan_digest"))
      nodes
  in
  let plan_digests_converged =
    Array.for_all (fun d -> d = plan_digests.(0)) plan_digests
  in
  (* WAL suffixes from the highest base (a fenced node's reset moves its
     base forward) must be bit-identical triples. *)
  let common_base =
    Array.fold_left (fun acc n -> max acc (Journal.read_base n.dir)) 0 nodes
  in
  let suffixes =
    Array.map (fun n -> Service.journal_read_from n.svc ~index:common_base) nodes
  in
  let journals_converged =
    (* Same length, same servable span, and bit-identical
       (index, epoch, payload) triples. An empty suffix everywhere is
       converged too: the reset that raised [common_base] was the last
       append. *)
    caught_up ()
    && (match suffixes.(0) with
       | Error `Resync -> false
       | Ok s0 ->
           Array.for_all
             (function Ok s -> s = s0 | Error `Resync -> false)
             suffixes)
  in
  let final_epoch = Service.epoch nodes.(leader_idx ()).svc in
  (* --- tear down, then audit the journals cold --- *)
  Atomic.set stop_all true;
  Array.iter (fun tgt -> Atomic.set tgt None) targets;
  Array.iter
    (fun n ->
      ignore
        (Client.with_connection n.req_addr (fun c ->
             Client.request c (Json.Obj [ ("req", Json.String "shutdown") ]))))
    nodes;
  Array.iter (fun d -> Domain.join d) controllers;
  Array.iter (fun n -> Domain.join n.server_dom) nodes;
  Array.iter (fun n -> Replication.stop_leader n.hub) nodes;
  Array.iter (fun n -> Faulty.stop n.req_proxy) nodes;
  Array.iter (Array.iter (Option.iter Faulty.stop)) rep_proxy;
  Array.iter (fun n -> Service.close n.svc) nodes;
  let replays =
    Array.map
      (fun n ->
        let j, replay =
          Journal.open_
            { (Journal.default_config ~dir:n.dir) with Journal.fsync = false }
        in
        Journal.close j;
        replay.Journal.records)
      nodes
  in
  let verify_clean =
    Array.for_all
      (fun n ->
        let v = Journal.verify ~dir:n.dir in
        v.Journal.v_corrupt_records = 0
        && v.Journal.v_trailing_bytes = 0
        && v.Journal.v_epoch_regressions = 0)
      nodes
  in
  (* Invariant 1: across every surviving journal, each epoch has at most
     one distinct origin among journaled updates — no two leaders
     accepted writes in the same epoch. *)
  let epoch_origins : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun records ->
      List.iter
        (fun (epoch, payload) ->
          match Json.parse payload with
          | Error _ -> ()
          | Ok j ->
              if json_str j "op" = Some "update" then begin
                let origin = Option.value ~default:"?" (json_str j "origin") in
                let cur =
                  Option.value ~default:[] (Hashtbl.find_opt epoch_origins epoch)
                in
                if not (List.mem origin cur) then
                  Hashtbl.replace epoch_origins epoch (origin :: cur)
              end)
        records)
    replays;
  let single_writer =
    Hashtbl.fold (fun _ origins acc -> acc && List.length origins <= 1)
      epoch_origins true
  in
  (* Invariant 2: every acknowledged update survives on every replica —
     as its journaled delta batch, or (after a snapshot fold or fenced
     reset) as the workload state it produced. *)
  let journal_has records (deltas, new_digest) =
    List.exists
      (fun (_, payload) ->
        match Json.parse payload with
        | Error _ -> false
        | Ok j -> (
            match json_str j "op" with
            | Some "update" -> json_str j "deltas" = Some deltas
            | Some "load" -> json_str j "digest" = Some new_digest
            | _ -> false))
      records
  in
  let no_acked_lost =
    List.for_all
      (fun a -> Array.for_all (fun records -> journal_has records a) replays)
      !acked
  in
  let counter obs name = Counter.value (Registry.counter obs ~help:"" name) in
  let sum_nodes name =
    Array.fold_left (fun acc n -> acc + counter n.obs name) 0 nodes
  in
  let sorted = List.sort compare !recovery_ms in
  let r =
    {
      r_seed = config.seed;
      r_replicas = replicas;
      r_partitions = config.partitions;
      r_heals = !heals;
      r_stale_leader_revivals = !revivals;
      r_updates_sent = !updates_sent;
      r_updates_acked = List.length !acked;
      r_updates_unacked = !updates_unacked;
      r_direct_attacks = !direct_attacks;
      r_direct_attacks_acked = !direct_attacks_acked;
      r_final_epoch = final_epoch;
      r_auto_promotions = counter router_obs "serve.router.auto_promotions";
      r_fenced_demotions = counter router_obs "serve.router.fenced_demotions";
      r_not_leader_reroutes =
        counter router_obs "serve.router.not_leader_reroutes";
      r_divergent_tails = sum_nodes "serve.replication.divergent_tails";
      r_truncated_records = sum_nodes "serve.replication.truncated_records";
      r_recovery_ms = sorted;
      r_recovery_p50_ms = percentile sorted 0.50;
      r_recovery_p95_ms = percentile sorted 0.95;
      r_single_writer_per_epoch = single_writer;
      r_no_acked_update_lost = no_acked_lost;
      r_journals_converged = journals_converged;
      r_plan_digests_converged = plan_digests_converged;
      r_journals_verify_clean = verify_clean;
      r_notes = List.rev !notes;
    }
  in
  note "done: %d/%d updates acked, %d promotions, %d demotions, passed=%b"
    r.r_updates_acked r.r_updates_sent r.r_auto_promotions r.r_fenced_demotions
    (passed r);
  r
