(** The planning daemon's wire protocol: one JSON object per line, in
    both directions.

    A request names its verb in a ["req"] field and may carry:

    - ["id"] — any JSON value, echoed verbatim in the response so
      clients can match replies when pipelining;
    - ["deadline_ms"] — per-request deadline budget; when the server
      cannot complete the work inside it, the reply is an [`Timeout]
      error and the connection stays usable.

    Verbs:

    {v
    {"req":"health"}
    {"req":"load","workload":"<mcss-workload text>"}   (or "path":"FILE")
    {"req":"solve","digest":D,"tau":100,"instance":"c3.large",
     "bc_events":F?,"config":"(e) +cost-decision"?}
    {"req":"update","digest":D,"deltas":"<mcss-deltas text>",...solve params...}
    {"req":"whatif","digest":D,"taus":[10,100,1000],...solve params...}
    {"req":"chaos","digest":D,"seed":1,"epochs":8,"zones":3,
     "faults":["crash:0@0.6",...]?,...solve params...}
    {"req":"stats"}
    {"req":"metrics"}
    {"req":"promote","epoch":E?}
    {"req":"demote","epoch":E}
    {"req":"shutdown"}
    {"req":"drain"}                                    (dataplane broker)
    {"req":"rehome","add":[[T,S],...],"remove":[[T,S],...]}   (broker)
    {"req":"ledger"}                                   (dataplane broker)
    v}

    The last three are {e dataplane control verbs}: they share this
    envelope and reply shape but are answered by the per-VM broker
    processes of {!Mcss_dataplane} (a planning server replies
    [bad_request] and points at the broker socket). [drain] stops a
    broker's publisher intake so in-flight fan-out can quiesce; [rehome]
    adds/removes (topic, subscriber) pairs on the live subscription
    table — set semantics, so replays are safe; [ledger] reads the
    broker's delivery ledger (see {!Mcss_dataplane.Ledger}). All three
    are idempotent, so {!Client.call} may reconnect-and-replay them.

    Responses are [{"ok":true,...}] or
    [{"ok":false,"error":CODE,"message":TEXT}].

    {b Degraded replies.} When the solver's circuit breaker is open, a
    [solve] (or [whatif] point) that misses the plan cache is answered
    from the last journaled plan for that digest instead of erroring:
    the reply is [ok:true] with ["degraded":true], a
    ["degraded_reason"], the ["requested_tau"], and the {e served}
    plan's own parameters in the usual fields — the client gets a stale
    but feasible plan rather than nothing. When no plan for the digest
    has ever been solved, the reply is an [ok:false] error with code
    [degraded]. [mcss query] exits with status 2 (not 1) on both shapes
    so scripts can tell "shed, retry later" from a hard error. *)

type solve_params = {
  tau : float;  (** Satisfaction threshold (default 100). *)
  instance : string;  (** EC2 instance type name (default ["c3.large"]). *)
  bc_events : float option;  (** Per-VM capacity override, events/horizon. *)
  config : string;  (** Solver ladder configuration name. *)
}

val default_params : solve_params

type request =
  | Health
  | Load of [ `Inline of string | `Path of string ]
  | Solve of { digest : string; params : solve_params }
  | Update of { digest : string; params : solve_params; deltas : string }
      (** Apply a {!Mcss_engine.Delta_io} batch to the plan cached under
          [(digest, params)] through the incremental engine; the evolved
          workload is registered under its own content digest and the
          evolved plan cached under it. The reply carries both digests
          and the engine's change stats. *)
  | Whatif of { digest : string; params : solve_params; taus : float list }
  | Chaos of {
      digest : string;
      params : solve_params;
      seed : int;
      epochs : int;
      zones : int;
      faults : string list;  (** {!Mcss_resilience.Failure_model} specs; empty = random campaign. *)
    }
  | Stats
  | Metrics
  | Promote of { epoch : int option }
      (** Ask a follower to become leader: it stops pulling the
          replication stream, bumps its fencing epoch, and starts
          accepting [update]s. With [epoch = Some e] the new leader
          adopts [max (own + 1) e] — the router passes the highest epoch
          it has observed cluster-wide plus one, so a promotion always
          fences every earlier leader. A no-op on a server that is
          already leading (its epoch still rises to cover [e]). *)
  | Demote of { epoch : int }
      (** Fence a (possibly stale) leader: step down to follower iff
          [epoch] is strictly greater than the server's own epoch, and
          adopt it. Refused (as [bad_request]) when [epoch] is not
          ahead — a genuinely newer leader can never be demoted by a
          laggard's view of the world. A no-op beyond epoch adoption on
          a server already following. *)
  | Shutdown
  | Drain
      (** Dataplane: stop accepting publications; in-flight fan-out
          drains. Answered by broker processes, not planning servers. *)
  | Rehome of { add : (int * int) list; remove : (int * int) list }
      (** Dataplane: mutate a live broker's (topic, subscriber) table.
          Set semantics — already-present adds / already-absent removes
          are counted in the reply, not errors — so replay is safe. *)
  | Ledger
      (** Dataplane: read the broker's delivery ledger snapshot. *)

type envelope = {
  id : Json.t option;
  deadline_ms : float option;  (** Must be positive when present. *)
  request : request;
}

val decode : Json.t -> (envelope, string) result
(** Decode a request line; [Error] is a human-readable reason suited to
    a [`Bad_request] reply. *)

val encode : envelope -> Json.t
(** The inverse of {!decode} (used by clients and the bench driver). *)

(** {2 Replies} *)

type error_code =
  | Bad_request  (** Malformed JSON or missing/ill-typed fields. *)
  | Too_large  (** Request line exceeded the server's byte limit. *)
  | Unknown_digest  (** No workload registered under that digest. *)
  | Timeout  (** Deadline exceeded before the reply could be produced. *)
  | Overloaded  (** Admission control refused: too many in-flight solves. *)
  | Draining  (** Server is shutting down and no longer takes work. *)
  | Infeasible  (** The MCSS instance cannot be solved at these params. *)
  | Degraded
      (** The solver circuit is open and no previously solved plan
          exists for this digest to degrade to. *)
  | Not_leader
      (** The mutating verb ([update]) was sent to a follower; retry
          against the shard's leader (or promote the follower first). *)
  | No_quorum
      (** Router-side shed: every member of the owning shard is
          unreachable. [mcss query] exits 3 on this code so scripts can
          tell a whole-shard outage from a degraded reply (2) or a hard
          error (1). *)
  | Internal  (** Unexpected server-side failure. *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

val ok_response : ?id:Json.t option -> (string * Json.t) list -> Json.t
(** [{"ok":true,"id":...?,...fields}]. *)

val error_response :
  ?id:Json.t option -> code:error_code -> message:string -> unit -> Json.t
(** [{"ok":false,"id":...?,"error":CODE,"message":TEXT}]. *)

val response_ok : Json.t -> bool
(** Whether a reply has ["ok"] = [true]. *)

val response_degraded : Json.t -> bool
(** Whether a reply is an ok reply carrying ["degraded"] = [true] (a
    stale plan served because the solver circuit is open). *)

val response_error : Json.t -> (error_code option * string) option
(** [(code, message)] of an error reply; [None] for an ok reply. *)

val idempotent : request -> bool
(** Whether replaying the request on a fresh connection is safe after a
    transport failure mid-exchange ([Promote]/[Demote] are fenced by
    epoch, so a replay is absorbed). True for every verb except [Update],
    which appends to the server's write-ahead log; retry layers gate
    reconnect-and-replay on it. The dataplane verbs ([Drain], [Rehome],
    [Ledger]) are all true: reads, flag sets, and set-semantics table
    mutations replay cleanly. *)
