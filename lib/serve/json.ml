type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.12g" x)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add_to buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          add_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_to buf v;
  Buffer.contents buf

(* ----- parsing ----- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some code -> code
    | None -> fail "bad \\u escape"
  in
  (* Encode a code point as UTF-8; unpaired surrogates pass through as
     the replacement-free 3-byte form, which keeps round-trips lossless
     enough for the protocol's ASCII payloads. *)
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'u' ->
              let code = parse_hex4 () in
              let code =
                (* Surrogate pair *)
                if code >= 0xD800 && code <= 0xDBFF && !pos + 1 < n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = parse_hex4 () in
                  if low >= 0xDC00 && low <= 0xDFFF then
                    0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                  else fail "unpaired surrogate"
                end
                else code
              in
              add_utf8 buf code;
              loop ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ----- accessors ----- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float x when Float.is_integer x && Float.abs x <= 1e15 -> Some (int_of_float x)
  | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
