(** A blocking client for the planning daemon — one connection, one
    request/reply at a time. Backs [mcss query] and the [serve] bench
    driver. *)

type t

val connect : Server.address -> (t, string) result
(** Errors are human-readable connection failures ("connection refused",
    missing socket, unresolvable host). *)

val request : t -> Json.t -> (Json.t, string) result
(** Send one request object, wait for the reply line. [Error] means the
    transport failed (closed connection, unparseable reply) — protocol-
    level failures come back as [Ok] error replies
    ({!Protocol.response_error}). *)

val request_envelope : t -> Protocol.envelope -> (Json.t, string) result
(** {!Protocol.encode} then {!request}. *)

val close : t -> unit
(** Idempotent. *)

val with_connection :
  Server.address -> (t -> ('a, string) result) -> ('a, string) result
(** Connect, run, always close. *)
