(** A blocking client for the planning daemon — one connection, one
    request/reply at a time. Backs [mcss query] and the [serve] bench
    driver. *)

type t

val connect : Server.address -> (t, string) result
(** Errors are human-readable connection failures ("connection refused",
    missing socket, unresolvable host). *)

val request : t -> Json.t -> (Json.t, string) result
(** Send one request object, wait for the reply line. [Error] means the
    transport failed (closed connection, unparseable reply) — protocol-
    level failures come back as [Ok] error replies
    ({!Protocol.response_error}). *)

val request_envelope : t -> Protocol.envelope -> (Json.t, string) result
(** {!Protocol.encode} then {!request}. *)

val close : t -> unit
(** Idempotent. *)

val with_connection :
  Server.address -> (t -> ('a, string) result) -> ('a, string) result
(** Connect, run, always close. *)

val call :
  ?obs:Mcss_obs.Registry.t ->
  ?sleep:(float -> unit) ->
  ?rng:Mcss_prng.Rng.t ->
  ?policy:Retry.policy ->
  ?route:(attempt:int -> Server.address) ->
  Server.address ->
  Protocol.envelope ->
  Json.t Retry.outcome
(** One request with {!Retry} semantics: each attempt connects fresh
    (reconnect-and-replay), applies [policy.attempt_timeout_ms] as both
    the socket receive timeout and the request's [deadline_ms] (unless
    the envelope carries its own), and retries transport failures and
    [overloaded]/[timeout] replies — but only when the request is
    {!Protocol.idempotent}; otherwise the first failure gives up.
    Other error replies (bad request, infeasible, degraded, ...) are
    final answers, returned [Ok] for the caller to inspect. [rng]
    (default seed 0) drives the jittered backoff.

    [route] re-resolves the target before {e every} attempt (it also
    decides attempt 1's address; the positional address is only the
    default when [route] is absent). The router uses it to redirect a
    retry at a shard's follower after the leader dies mid-reply instead
    of hammering the dead address.

    A [not_leader] reply is retried (re-resolving [route]) even for
    non-idempotent verbs: the refusal proves the member did nothing, so
    replaying it elsewhere cannot double-apply. The last attempt's
    [not_leader] reply is returned as the final answer rather than
    flattened into a transport error, so its exit-code mapping
    survives. *)
