module Clock = Mcss_obs.Clock

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type config = { failure_threshold : int; cooldown_ms : float }

let default_config = { failure_threshold = 5; cooldown_ms = 5000. }

type t = {
  config : config;
  now : unit -> int64;
  lock : Mutex.t;
  mutable st : state;
  mutable failures : int;  (* consecutive, while Closed *)
  mutable opened_at : int64;  (* meaningful while Open *)
  mutable probe_in_flight : bool;  (* meaningful while Half_open *)
  mutable opens : int;
  mutable closes : int;
  mutable rejections : int;
}

let create ?(now = Clock.now_ns) config =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if config.cooldown_ms <= 0. then
    invalid_arg "Breaker.create: cooldown_ms must be positive";
  {
    config;
    now;
    lock = Mutex.create ();
    st = Closed;
    failures = 0;
    opened_at = 0L;
    probe_in_flight = false;
    opens = 0;
    closes = 0;
    rejections = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let cooldown_elapsed t =
  let elapsed_ms =
    Int64.to_float (Int64.sub (t.now ()) t.opened_at) /. 1e6
  in
  elapsed_ms >= t.config.cooldown_ms

(* Under the lock. *)
let tick t =
  if t.st = Open && cooldown_elapsed t then begin
    t.st <- Half_open;
    t.probe_in_flight <- false
  end

let open_circuit t =
  t.st <- Open;
  t.opened_at <- t.now ();
  t.probe_in_flight <- false;
  t.opens <- t.opens + 1

let admit t =
  locked t (fun () ->
      tick t;
      match t.st with
      | Closed -> true
      | Open ->
          t.rejections <- t.rejections + 1;
          false
      | Half_open ->
          if t.probe_in_flight then begin
            t.rejections <- t.rejections + 1;
            false
          end
          else begin
            t.probe_in_flight <- true;
            true
          end)

let success t =
  locked t (fun () ->
      match t.st with
      | Closed -> t.failures <- 0
      | Half_open ->
          t.st <- Closed;
          t.failures <- 0;
          t.probe_in_flight <- false;
          t.closes <- t.closes + 1
      | Open ->
          (* A run admitted before the circuit opened finished late;
             nothing to do. *)
          ())

let failure t =
  locked t (fun () ->
      match t.st with
      | Closed ->
          t.failures <- t.failures + 1;
          if t.failures >= t.config.failure_threshold then open_circuit t
      | Half_open -> open_circuit t
      | Open -> ())

let state t =
  locked t (fun () ->
      tick t;
      t.st)

let opens t = locked t (fun () -> t.opens)
let closes t = locked t (fun () -> t.closes)
let rejections t = locked t (fun () -> t.rejections)
let consecutive_failures t = locked t (fun () -> t.failures)
