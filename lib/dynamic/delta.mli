(** Workload change events — re-exported from {!Mcss_engine.Delta}, where
    the type moved when the incremental planning engine grew beneath this
    library (the engine consumes deltas, and [Reprovision]/[Recovery] are
    now thin wrappers over it). Kept here so existing users of
    [Mcss_dynamic.Delta] keep compiling unchanged. *)

type t = Mcss_engine.Delta.t =
  | Subscribe of { subscriber : int; topic : int }
  | Unsubscribe of { subscriber : int; topic : int }
  | Rate_change of { topic : int; rate : float }  (** New absolute rate. *)
  | New_topic of { rate : float }
  | New_subscriber of { interests : int array }

val apply : Mcss_workload.Workload.t -> t list -> Mcss_workload.Workload.t
(** See {!Mcss_engine.Delta.apply}. *)

val pp : Format.formatter -> t -> unit
