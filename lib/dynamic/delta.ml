include Mcss_engine.Delta
