module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Selection = Mcss_core.Selection
module Allocation = Mcss_core.Allocation
module Engine = Mcss_engine.Engine

type plan = Mcss_engine.Engine.plan = {
  problem : Problem.t;
  selection : Selection.t;
  allocation : Allocation.t;
}

type stats = {
  pairs_kept : int;
  pairs_added : int;
  pairs_removed : int;
  pairs_evicted : int;
  vms_added : int;
  vms_removed : int;
}

let initial problem = Engine.plan (Engine.create problem)

let cost plan =
  Problem.cost plan.problem
    ~vms:(Allocation.num_vms plan.allocation)
    ~bandwidth:(Allocation.total_load plan.allocation)

(* Rebuild an identical fleet so consolidation never mutates its input. *)
let clone_allocation (p : Problem.t) a =
  let w = p.Problem.workload in
  let fresh = Allocation.create ~capacity:p.Problem.capacity in
  Array.iter
    (fun vm ->
      let copy = Allocation.deploy fresh in
      List.iter
        (fun topic ->
          let subs = Array.of_list (Allocation.subscribers_of_topic_on vm topic) in
          Allocation.place fresh copy ~topic ~ev:(Workload.event_rate w topic)
            ~subscribers:subs ~from:0 ~count:(Array.length subs))
        (Allocation.topics_on vm))
    (Allocation.vms a);
  fresh

(* Can [src]'s whole content move into the other VMs? Plan against a
   snapshot of their free capacities and topic presence; commit only on a
   complete drain so bandwidth never grows without freeing the VM. *)
let plan_drain (p : Problem.t) a src =
  let w = p.Problem.workload in
  let eps = Problem.epsilon p in
  (* Only non-empty peers may receive: refilling a previously drained VM
     would undo the work, and excluding empties guarantees every
     successful drain strictly shrinks the set of occupied VMs (so the
     outer loop terminates). *)
  let others =
    Array.of_list
      (List.filter
         (fun vm ->
           Allocation.vm_id vm <> Allocation.vm_id src && Allocation.num_pairs_on vm > 0)
         (Array.to_list (Allocation.vms a)))
  in
  let free = Array.map (fun vm -> Allocation.free a vm) others in
  let groups =
    List.map
      (fun topic ->
        (topic, Array.of_list (Allocation.subscribers_of_topic_on src topic)))
      (Allocation.topics_on src)
  in
  (* Largest groups first: they are the hardest to place. *)
  let groups =
    List.sort
      (fun (ta, sa) (tb, sb) ->
        let vol (t, s) = float_of_int (Array.length s) *. Workload.event_rate w t in
        compare (-.vol (tb, sb), ta) (-.vol (ta, sa), tb))
      groups
  in
  let hosts = Hashtbl.create 64 in
  Array.iteri
    (fun i vm ->
      List.iter (fun t -> Hashtbl.replace hosts (i, t) ()) (Allocation.topics_on vm))
    others;
  let moves = ref [] in
  let ok = ref true in
  List.iter
    (fun (topic, subs) ->
      if !ok then begin
        let ev = Workload.event_rate w topic in
        let n = Array.length subs in
        let from = ref 0 in
        while !from < n && !ok do
          (* Most free first among those that can take a pair. *)
          let best = ref (-1) in
          Array.iteri
            (fun i _ ->
              let incoming = if Hashtbl.mem hosts (i, topic) then 0. else ev in
              if free.(i) +. eps -. incoming >= ev then
                match !best with
                | -1 -> best := i
                | b -> if free.(i) > free.(b) then best := i)
            others;
          match !best with
          | -1 -> ok := false
          | i ->
              let incoming = if Hashtbl.mem hosts (i, topic) then 0. else ev in
              let k =
                min (n - !from)
                  (int_of_float (floor ((free.(i) +. eps -. incoming) /. ev)))
              in
              free.(i) <- free.(i) -. (float_of_int k *. ev) -. incoming;
              Hashtbl.replace hosts (i, topic) ();
              moves := (Allocation.vm_id others.(i), topic, ev, subs, !from, k) :: !moves;
              from := !from + k
        done
      end)
    groups;
  if !ok then Some !moves else None

let consolidate ?(max_moves = 10_000) plan =
  let p = plan.problem in
  let a = clone_allocation p plan.allocation in
  let moved = ref 0 in
  let drained = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    (* Least-loaded non-empty VM that fully drains. *)
    let candidates =
      Array.to_list (Allocation.vms a)
      |> List.filter (fun vm -> Allocation.num_pairs_on vm > 0)
      |> List.sort (fun x y -> compare (Allocation.load x) (Allocation.load y))
    in
    let rec try_candidates = function
      | [] -> ()
      | src :: rest -> (
          if Allocation.num_pairs_on src + !moved > max_moves then try_candidates rest
          else
            match plan_drain p a src with
            | None -> try_candidates rest
            | Some moves ->
                List.iter
                  (fun (target_id, topic, ev, subs, from, k) ->
                    for i = from to from + k - 1 do
                      ignore (Allocation.remove a src ~topic ~ev ~subscriber:subs.(i))
                    done;
                    let target = (Allocation.vms a).(target_id) in
                    Allocation.place a target ~topic ~ev ~subscribers:subs ~from
                      ~count:k;
                    moved := !moved + k)
                  moves;
                incr drained;
                continue_ := true)
    in
    try_candidates candidates
  done;
  let compacted, _ = Allocation.compact a in
  ( { plan with allocation = compacted },
    {
      pairs_kept = 0;
      pairs_added = 0;
      pairs_removed = 0;
      pairs_evicted = !moved;
      vms_added = 0;
      vms_removed = !drained;
    } )

(* The incremental core now lives in {!Mcss_engine.Engine}; this wrapper
   keeps the historical contract: a pure function of [previous] (cloned
   by [Engine.of_plan]), full GSP reselection (all-dirty), and never a
   drift-triggered cold re-solve. *)
let reprovision ~previous (p : Problem.t) =
  let eng = Engine.of_plan ~drift_threshold:infinity previous in
  let cs = Engine.retarget eng p in
  ( Engine.plan eng,
    {
      pairs_kept = cs.Engine.pairs_kept;
      pairs_added = cs.Engine.pairs_added;
      pairs_removed = cs.Engine.pairs_removed;
      pairs_evicted = cs.Engine.pairs_evicted;
      vms_added = cs.Engine.vms_added;
      vms_removed = cs.Engine.vms_removed;
    } )
