module Engine = Mcss_engine.Engine

type stats = Mcss_engine.Engine.recovery_stats = {
  vms_lost : int;
  pairs_rehomed : int;
  vms_added : int;
}

(* Thin wrapper over the engine's failure path: [of_plan] clones, so the
   input plan is untouched and stats stay per-call. *)
let replan (plan : Reprovision.plan) ~failed =
  let eng = Engine.of_plan ~drift_threshold:infinity plan in
  let stats = Engine.fail eng ~failed in
  (Engine.plan eng, stats)
