(** Failure recovery: when VMs die (the failure-injection experiments
    measure what that costs subscribers per hour), the orchestrator must
    re-home the lost pairs. This planner rebuilds the fleet without the
    failed VMs, re-places their pairs with the usual insertion rule, and
    reports how much capacity had to be re-provisioned — turning the
    simulator's "13% of subscribers lost τ" observation into a repair
    action. *)

type stats = Mcss_engine.Engine.recovery_stats = {
  vms_lost : int;
  pairs_rehomed : int;  (** Pairs that lived on failed VMs. *)
  vms_added : int;  (** Fresh VMs deployed to absorb them. *)
}

val replan :
  Reprovision.plan -> failed:int list -> Reprovision.plan * stats
(** [replan plan ~failed] treats the listed VM ids as permanently dead.
    Surviving placements stay where they are; orphaned pairs are packed
    onto survivors (most-free first) and fresh VMs. Unknown ids are
    ignored. Failing {e every} VM does not raise: the fleet is rebuilt
    from scratch, with every pair counted as rehomed. The input plan is
    not modified, so stats are per-call — a second [replan] on the
    result counts only the second failure's damage. The result satisfies
    the plan's problem again — verify it, as the tests do. Raises
    {!Mcss_core.Problem.Infeasible} if an orphaned pair fits no VM
    (capacity shrank, never from failure alone). *)
