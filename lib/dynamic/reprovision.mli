(** Incremental re-provisioning: adapt a running deployment to a changed
    workload while moving as little as possible.

    A cold re-solve produces a near-arbitrary new allocation: every pair
    may land on a different VM, which in a live broker fleet means state
    migration and subscriber reconnects. This planner instead:

    + recomputes the Stage-1 selection with GSP (deterministic, so
      subscribers untouched by the deltas keep their exact old choice);
    + keeps every surviving pair on the VM it already occupies;
    + re-prices every VM under the new event rates and {e evicts} just
      enough pairs from any VM pushed over capacity;
    + places the new and evicted pairs with the CustomBinPacking
      insertion rule (grouped per topic, most-free VM first, new VMs on
      overflow);
    + drops VMs that ended up empty.

    The churn statistics quantify the migration the fleet would perform;
    the ablation benchmark compares cost and churn against a cold
    re-solve over a stream of deltas. *)

type plan = Mcss_engine.Engine.plan = {
  problem : Mcss_core.Problem.t;
  selection : Mcss_core.Selection.t;
  allocation : Mcss_core.Allocation.t;
}
(** Equal to {!Mcss_engine.Engine.plan}: plans flow freely between the
    wrappers here and the stateful engine. *)

type stats = {
  pairs_kept : int;  (** Survived in place. *)
  pairs_added : int;  (** Newly selected, placed fresh. *)
  pairs_removed : int;  (** Deselected, dropped from their VM. *)
  pairs_evicted : int;  (** Still selected but moved off an overloaded VM. *)
  vms_added : int;
  vms_removed : int;
}

val initial : Mcss_core.Problem.t -> plan
(** A cold solve (GSP + full CBP) wrapped as a plan. *)

val cost : plan -> float

val reprovision : previous:plan -> Mcss_core.Problem.t -> plan * stats
(** Adapt [previous] to the new problem (same id space, evolved by
    deltas). A thin wrapper over {!Mcss_engine.Engine.retarget} with
    every subscriber marked dirty and drift re-solves disabled — the
    historical contract: a pure function of its input that never falls
    back to a cold solve. The result always satisfies the new problem —
    run it through {!Mcss_core.Verifier} to confirm, as the tests do.
    Raises {!Mcss_core.Problem.Infeasible} when a needed pair cannot fit
    any VM. *)

val consolidate : ?max_moves:int -> plan -> plan * stats
(** Defragment a fleet that accumulated slack through churn: repeatedly
    try to drain the least-loaded VM into the rest of the fleet
    (all-or-nothing per VM, so bandwidth never grows without a VM being
    freed) until no VM can be fully drained or [max_moves] pair moves
    (default 10_000) have been spent. The input plan's allocation is not
    modified; the result is a fresh plan over the same problem.
    [stats.vms_removed] counts the drained VMs and [stats.pairs_evicted]
    the pairs moved. *)
