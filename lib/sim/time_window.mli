(** Shared validation for [from, until)] time windows, in horizons.

    Both the simulator's outage windows and the elastic planner's
    scenario slice/spike windows are half-open intervals on the same
    normalised time axis; this module is the single place their
    up-front checks (and error strings) live, so [mcss simulate
    --outage] and scenario files reject bad windows with the same
    vocabulary. *)

val validate_window :
  ?severity:float ->
  context:string ->
  from_time:float ->
  until_time:float ->
  unit ->
  unit
(** Raises [Invalid_argument "<context> has inverted window (%g > %g)"]
    when [from_time > until_time], and — when [severity] is given —
    ["<context> has severity %g outside (0, 1]"] unless it is in
    (0, 1]. [until_time = infinity] is a valid open-ended window. *)

val validate_id : context:string -> what:string -> id:int -> limit:int -> unit
(** Raises [Invalid_argument "<context> <id> out of range (<what>)"]
    unless [0 <= id < limit]. [what] describes the valid range, e.g.
    ["fleet has 12 VMs"]. *)

val validate_positive : context:string -> what:string -> float -> unit
(** Raises [Invalid_argument "<context>: <what> must be positive"]
    unless the value is strictly positive. *)
