(** A discrete-event replay of a pub/sub deployment over a computed
    allocation: publications for every topic are generated over a time
    window, fanned through the VMs hosting the topic's pairs, and metered.

    This is the "does the plan actually work" substrate: it validates
    that the analytical bandwidth bookkeeping the optimiser relies on
    (Eq. 2) matches what a running broker fleet would transfer, and that
    every subscriber's measured delivery rate meets its threshold.

    Time is normalised: the window [0, duration)] with [duration = 1.0]
    representing exactly one rate horizon (event rates are events per
    horizon). *)

type arrivals =
  | Deterministic
      (** Topic [t] publishes exactly [round(ev_t · duration)] events,
          evenly spaced with a topic-specific phase — measured totals then
          match the analytical model exactly for integral rates and
          [duration = 1]. *)
  | Poisson of int
      (** Poisson process with rate [ev_t], seeded for reproducibility —
          measured totals fluctuate around the analytical model. *)
  | Diurnal of { seed : int; amplitude : float }
      (** Inhomogeneous Poisson with intensity
          [ev_t · (1 + amplitude · sin(2π · time))] (thinning): the mean
          rate still matches the model the optimiser used, but traffic
          peaks [1 + amplitude] above it — the realistic case the paper's
          average-rate capacity constraint glosses over. Requires
          [0 <= amplitude < 1]. *)

type outage = {
  vm : int;  (** VM id, as in the allocation. *)
  from_time : float;
  until_time : float;  (** Use [infinity] for a crash with no recovery. *)
  severity : float;
      (** Fraction of the VM's events dropped inside the window, in
          (0, 1]. [1.] is a full outage; anything lower models a
          capacity-throttled VM, thinned deterministically (no RNG). *)
}
(** While down, a VM neither ingests nor forwards: publications in the
    window are lost for every pair it hosts — unless the pair is
    replicated on a VM that is still up (see {!run}). Failure injection
    measures how much subscriber satisfaction a partial outage costs. *)

val outage :
  ?severity:float -> vm:int -> from_time:float -> until_time:float -> unit -> outage
(** Build an outage; [severity] defaults to [1.] (full outage). *)

type config = {
  duration : float;  (** Window length in horizons; must be positive. *)
  buckets : int;  (** Per-VM bandwidth metering buckets; must be >= 1. *)
  arrivals : arrivals;
  outages : outage list;  (** Empty for a healthy run. *)
}

val default_config : config
(** One horizon, 20 buckets, deterministic arrivals, no outages. *)

type result = {
  events_published : int;
  vm_ingress : int array;  (** Events received by each VM (by VM id). *)
  vm_egress : int array;  (** Events sent out by each VM. *)
  delivered : int array;  (** Events delivered to each subscriber. *)
  lost : int array;  (** Events lost to outages, per subscriber. *)
  vm_bucket_load : float array array;
      (** [vm_bucket_load.(b).(k)]: events (in + out) moved by VM [b]
          during bucket [k]. *)
  totals : Mcss_report.Delivery.totals;
      (** The shared accounting schema: [published] events,
          [handoffs = Σ vm_ingress], [delivered = Σ delivered],
          [dropped = Σ lost] — what dataplane reconciliation compares
          against a live broker ledger. *)
  config : config;
}

val run :
  ?obs:Mcss_obs.Registry.t ->
  Mcss_core.Problem.t -> Mcss_core.Allocation.t -> config -> result
(** Replay the deployment. Deliveries are counted from the pairs the
    fleet actually hosts (each distinct placed pair delivers once per
    publication), so an allocation that lost pairs shows up as
    under-delivery. A pair replicated on several VMs (k-redundant
    placement) delivers as long as {e any} replica host forwards the
    event — replicas dedupe, they never double-deliver. O((E + P) log T)
    for E published events and P placed pairs.

    Every outage is validated up front: raises [Invalid_argument] if an
    outage's [vm] is outside the fleet, its window is inverted
    ([from_time > until_time]), or its [severity] is outside (0, 1].

    [obs] (default {!Mcss_obs.Registry.noop}) records a [simulate] span
    with [setup]/[drain]/[settle] children, the event-loop counters
    ([sim.events_published], [sim.heap_pops], [sim.forwards],
    [sim.outage_drops], [sim.outage_windows], [sim.delivered_events],
    [sim.lost_events]) and two per-VM histograms:
    [sim.vm_traffic_events] and [sim.vm_peak_utilisation] (peak bucket
    rate over capacity). Hot-loop tallies accumulate in locals and flush
    once, so the per-event overhead is negligible. *)

val total_vm_traffic : result -> vm:int -> int
(** Ingress plus egress of one VM, in events. *)

val peak_bucket_rate : result -> vm:int -> float
(** The VM's busiest bucket, converted to an event {e rate} (events per
    horizon): bucket load divided by bucket length. Comparing this to the
    capacity [BC] shows instantaneous (not just average) feasibility. *)

type check = {
  unsatisfied : (int * int * float) list;
      (** (subscriber, delivered, required · duration) for subscribers
          whose measured delivery missed the scaled threshold. *)
  traffic_mismatch : (int * int * float) list;
      (** (vm, measured, analytical · duration) where measured traffic
          deviates from the allocation's load by more than [tolerance]. *)
}

val check :
  Mcss_core.Problem.t -> Mcss_core.Allocation.t -> result -> tolerance:float -> check
(** Compare measurement against the analytical model. The allowed
    deviation around an expected count [x] is
    [tolerance · (x + 3·√x)] — proportional, plus a Poisson-noise term
    for small counts. With deterministic arrivals, integral rates and
    [duration = 1.0], a correct allocation yields empty lists at
    [tolerance = 0.]; Poisson arrivals need e.g. [0.2]–[0.5]. *)

val all_ok : check -> bool
