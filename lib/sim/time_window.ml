(* One validator for every [from, until) time window the code base
   injects into a run — simulator outages and elastic scenario slices
   both come through here, so their error messages cannot drift. *)

let validate_window ?severity ~context ~from_time ~until_time () =
  if not (from_time <= until_time) then
    invalid_arg
      (Printf.sprintf "%s has inverted window (%g > %g)" context from_time
         until_time);
  match severity with
  | None -> ()
  | Some s ->
      if not (s > 0. && s <= 1.) then
        invalid_arg
          (Printf.sprintf "%s has severity %g outside (0, 1]" context s)

let validate_id ~context ~what ~id ~limit =
  if id < 0 || id >= limit then
    invalid_arg
      (Printf.sprintf "%s %d out of range (%s)" context id what)

let validate_positive ~context ~what x =
  if not (x > 0.) then
    invalid_arg (Printf.sprintf "%s: %s must be positive" context what)
