module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Registry = Mcss_obs.Registry
module Span = Mcss_obs.Span
module Counter = Mcss_obs.Metric.Counter

type arrivals =
  | Deterministic
  | Poisson of int
  | Diurnal of { seed : int; amplitude : float }

let pi = 4. *. atan 1.

(* Intensity modulation with unit mean over whole horizons. *)
let modulation ~amplitude time = 1. +. (amplitude *. sin (2. *. pi *. time))

type outage = { vm : int; from_time : float; until_time : float; severity : float }

let outage ?(severity = 1.) ~vm ~from_time ~until_time () =
  { vm; from_time; until_time; severity }

type config = {
  duration : float;
  buckets : int;
  arrivals : arrivals;
  outages : outage list;
}

let default_config =
  { duration = 1.0; buckets = 20; arrivals = Deterministic; outages = [] }

type result = {
  events_published : int;
  vm_ingress : int array;
  vm_egress : int array;
  delivered : int array;
  lost : int array;
  vm_bucket_load : float array array;
  totals : Mcss_report.Delivery.totals;
  config : config;
}

(* A deterministic per-topic phase in [0, 1): decorrelates the evenly
   spaced publication streams without any RNG state. *)
let peak_bucket_rate_raw ~duration ~buckets loads =
  let bucket_len = duration /. float_of_int buckets in
  Array.fold_left Float.max 0. loads /. bucket_len

let phase_of_topic t =
  let h = Int64.to_int (Int64.shift_right_logical (Int64.mul (Int64.of_int (t + 1)) 0x9E3779B97F4A7C15L) 11) in
  float_of_int h *. 0x1p-53

let run ?(obs = Registry.noop) (p : Problem.t) a config =
  Span.with_ obs ~name:"simulate" @@ fun () ->
  Time_window.validate_positive ~context:"Simulator.run" ~what:"duration"
    config.duration;
  if config.buckets < 1 then invalid_arg "Simulator.run: buckets must be >= 1";
  (match config.arrivals with
  | Diurnal { amplitude; _ } when amplitude < 0. || amplitude >= 1. ->
      invalid_arg "Simulator.run: diurnal amplitude must be in [0, 1)"
  | _ -> ());
  let w = p.Problem.workload in
  let num_vms = Allocation.num_vms a in
  List.iter
    (fun o ->
      Time_window.validate_id ~context:"Simulator.run: outage vm"
        ~what:(Printf.sprintf "fleet has %d VMs" num_vms)
        ~id:o.vm ~limit:num_vms;
      Time_window.validate_window ~severity:o.severity
        ~context:(Printf.sprintf "Simulator.run: outage on vm %d" o.vm)
        ~from_time:o.from_time ~until_time:o.until_time ())
    config.outages;
  (* hosting.(t): the VMs carrying pairs of topic t, with pair counts. *)
  let hosting = Array.make (Workload.num_topics w) [] in
  Array.iter
    (fun vm ->
      let counts = Hashtbl.create 16 in
      Allocation.iter_vm_pairs vm (fun t _v ->
          Hashtbl.replace counts t (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)));
      Hashtbl.iter
        (fun t c -> hosting.(t) <- (Allocation.vm_id vm, c) :: hosting.(t))
        counts)
    (Allocation.vms a);
  let vm_ingress = Array.make num_vms 0 in
  let vm_egress = Array.make num_vms 0 in
  let vm_bucket_load = Array.make_matrix num_vms config.buckets 0. in
  (* Outage windows per VM. A full-severity window takes the VM out
     entirely; a throttled window (severity < 1) makes it drop exactly
     that fraction of the events it would have processed, by systematic
     thinning over a per-VM counter — deterministic, no RNG. *)
  let vm_outages = Array.make num_vms [] in
  List.iter
    (fun o ->
      vm_outages.(o.vm) <- (o.from_time, o.until_time, o.severity) :: vm_outages.(o.vm))
    config.outages;
  let throttle_seen = Array.make num_vms 0 in
  (* Hot-loop tallies live in plain refs and flush to the registry once
     after the drain, keeping the per-event cost identical whether or not
     observability is enabled. *)
  let n_forwards = ref 0 in
  let n_outage_drops = ref 0 in
  (* Whether the VM processes an event published at [time]. *)
  let forwards vm time =
    let sev =
      List.fold_left
        (fun acc (f, u, s) -> if time >= f && time < u then Float.max acc s else acc)
        0. vm_outages.(vm)
    in
    if sev <= 0. then true
    else if sev >= 1. then false
    else begin
      let n = throttle_seen.(vm) + 1 in
      throttle_seen.(vm) <- n;
      (* Drop the events where ⌊n·sev⌋ ticks up: exactly a [sev] fraction. *)
      not
        (int_of_float (float_of_int n *. sev)
        > int_of_float (float_of_int (n - 1) *. sev))
    end
  in
  (* Per topic: publication counts keyed by the exact set of hosting VMs
     that failed to forward them. [hosting.(t)] order is fixed for the
     run, so the key list is canonical. A pair replicated across VMs then
     loses an event only when {e every} replica host is in the failed
     set. *)
  let missed : (int, (int list, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let pubs = Array.make (Workload.num_topics w) 0 in
  let events_published = ref 0 in
  let bucket_of time =
    min (config.buckets - 1) (int_of_float (time /. config.duration *. float_of_int config.buckets))
  in
  let publish time t =
    pubs.(t) <- pubs.(t) + 1;
    incr events_published;
    let k = bucket_of time in
    let failed = ref [] in
    List.iter
      (fun (vm, count) ->
        if forwards vm time then begin
          incr n_forwards;
          vm_ingress.(vm) <- vm_ingress.(vm) + 1;
          vm_egress.(vm) <- vm_egress.(vm) + count;
          vm_bucket_load.(vm).(k) <- vm_bucket_load.(vm).(k) +. float_of_int (1 + count)
        end
        else begin
          incr n_outage_drops;
          failed := vm :: !failed
        end)
      hosting.(t);
    match !failed with
    | [] -> ()
    | f ->
        let tbl =
          match Hashtbl.find_opt missed t with
          | Some tbl -> tbl
          | None ->
              let tbl = Hashtbl.create 4 in
              Hashtbl.add missed t tbl;
              tbl
        in
        Hashtbl.replace tbl f (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f))
  in
  (* Drive all topic streams through one time-ordered queue. Each heap
     payload is (topic, interval): [interval <= 0.] marks a Poisson stream
     whose next gap is drawn on the fly. *)
  let heap = Event_heap.create () in
  let rng =
    match config.arrivals with
    | Deterministic -> None
    | Poisson seed | Diurnal { seed; _ } -> Some (Mcss_prng.Rng.create seed)
  in
  (* Every topic publishes — whether or not the allocation forwards it —
     so the delivered counts reflect the world, not just the fleet. *)
  Span.with_ obs ~name:"setup" (fun () ->
  for t = 0 to Workload.num_topics w - 1 do
    let ev = Workload.event_rate w t in
    match config.arrivals with
    | Deterministic ->
        let n = int_of_float (Float.round (ev *. config.duration)) in
        if n > 0 then begin
          let interval = config.duration /. float_of_int n in
          Event_heap.push heap (phase_of_topic t *. interval) (t, interval)
        end
    | Poisson _ ->
        let rng = Option.get rng in
        let first = Mcss_prng.Dist.exponential rng ~mean:(1. /. ev) in
        if first < config.duration then Event_heap.push heap first (t, -1.)
    | Diurnal { amplitude; _ } ->
        (* Thinning: candidates at the peak rate, accepted with
           probability modulation/peak; rejected candidates re-arm the
           stream without publishing (interval = -2 marks the variant). *)
        let rng = Option.get rng in
        let peak = ev *. (1. +. amplitude) in
        let first = Mcss_prng.Dist.exponential rng ~mean:(1. /. peak) in
        if first < config.duration then Event_heap.push heap first (t, -2.)
  done);
  let amplitude =
    match config.arrivals with Diurnal { amplitude; _ } -> amplitude | _ -> 0.
  in
  let heap_pops = ref 0 in
  let rec drain () =
    match Event_heap.pop heap with
    | None -> ()
    | Some (time, (t, interval)) ->
        incr heap_pops;
        let ev = Workload.event_rate w t in
        (if interval = -2. then begin
           (* Diurnal thinning: accept at the modulated fraction. *)
           let accept =
             Mcss_prng.Rng.unit_float (Option.get rng)
             < modulation ~amplitude time /. (1. +. amplitude)
           in
           if accept then publish time t
         end
         else publish time t);
        let next =
          if interval > 0. then time +. interval
          else if interval = -2. then
            time
            +. Mcss_prng.Dist.exponential (Option.get rng)
                 ~mean:(1. /. (ev *. (1. +. amplitude)))
          else time +. Mcss_prng.Dist.exponential (Option.get rng) ~mean:(1. /. ev)
        in
        if next < config.duration then Event_heap.push heap next (t, interval);
        drain ()
  in
  Span.with_ obs ~name:"drain" drain;
  (* Each distinct placed pair delivers every publication of its topic
     once. Replicas of the same pair on several VMs dedupe (a real broker
     would dedupe by event id): an event is lost for the pair only when
     every hosting VM failed to forward it. *)
  let delivered = Array.make (Workload.num_subscribers w) 0 in
  let lost = Array.make (Workload.num_subscribers w) 0 in
  let pair_hosts : (int * int, int list) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun vm ->
      let b = Allocation.vm_id vm in
      Allocation.iter_vm_pairs vm (fun t v ->
          Hashtbl.replace pair_hosts (t, v)
            (b :: Option.value ~default:[] (Hashtbl.find_opt pair_hosts (t, v)))))
    (Allocation.vms a);
  Span.with_ obs ~name:"settle" (fun () ->
      Hashtbl.iter
        (fun (t, v) hosts ->
          let dropped =
            match Hashtbl.find_opt missed t with
            | None -> 0
            | Some tbl ->
                Hashtbl.fold
                  (fun fail c acc ->
                    if List.for_all (fun h -> List.mem h fail) hosts then acc + c
                    else acc)
                  tbl 0
          in
          delivered.(v) <- delivered.(v) + pubs.(t) - dropped;
          lost.(v) <- lost.(v) + dropped)
        pair_hosts);
  let totals =
    {
      Mcss_report.Delivery.published = !events_published;
      handoffs = Array.fold_left ( + ) 0 vm_ingress;
      delivered = Array.fold_left ( + ) 0 delivered;
      dropped = Array.fold_left ( + ) 0 lost;
    }
  in
  let r =
    {
      events_published = !events_published;
      vm_ingress;
      vm_egress;
      delivered;
      lost;
      vm_bucket_load;
      totals;
      config;
    }
  in
  if Registry.enabled obs then begin
    let c name help v = Counter.add (Registry.counter obs ~help name) v in
    c "sim.events_published" "Publications generated by the event loop" r.events_published;
    c "sim.heap_pops" "Event-heap pops (arrivals dispatched)" !heap_pops;
    c "sim.forwards" "Per-VM forwarding decisions that went through" !n_forwards;
    c "sim.outage_drops" "Per-VM forwarding decisions lost to outages" !n_outage_drops;
    c "sim.outage_windows" "Outage windows injected into the run"
      (List.length config.outages);
    c "sim.delivered_events" "Events delivered across all subscribers"
      (Array.fold_left ( + ) 0 delivered);
    c "sim.lost_events" "Events lost across all subscribers"
      (Array.fold_left ( + ) 0 lost);
    let traffic =
      Registry.histogram obs
        ~buckets:(Mcss_obs.Metric.Histogram.exponential ~lo:1. ~factor:4. ~buckets:12)
        ~help:"Per-VM total traffic (ingress + egress events)" "sim.vm_traffic_events"
    in
    let util =
      Registry.histogram obs
        ~buckets:(Mcss_obs.Metric.Histogram.linear ~lo:0.1 ~hi:2.0 ~buckets:20)
        ~help:"Per-VM peak bucket rate as a fraction of capacity BC"
        "sim.vm_peak_utilisation"
    in
    for vm = 0 to num_vms - 1 do
      Mcss_obs.Metric.Histogram.observe traffic
        (float_of_int (vm_ingress.(vm) + vm_egress.(vm)));
      Mcss_obs.Metric.Histogram.observe util
        (peak_bucket_rate_raw ~duration:config.duration ~buckets:config.buckets
           vm_bucket_load.(vm)
        /. p.Problem.capacity)
    done
  end;
  r

let total_vm_traffic r ~vm = r.vm_ingress.(vm) + r.vm_egress.(vm)

let peak_bucket_rate r ~vm =
  let bucket_len = r.config.duration /. float_of_int r.config.buckets in
  Array.fold_left Float.max 0. r.vm_bucket_load.(vm) /. bucket_len

type check = {
  unsatisfied : (int * int * float) list;
  traffic_mismatch : (int * int * float) list;
}

(* Allowed deviation around an expected count [x]: proportional plus a
   sampling-noise term that matters for small counts (Poisson stddev is
   √x). Zero tolerance demands exact agreement. *)
let slack ~tolerance x = (tolerance *. (x +. (3. *. sqrt (Float.max x 1.)))) +. 1e-9

let check (p : Problem.t) a r ~tolerance =
  let w = p.Problem.workload in
  let unsatisfied = ref [] in
  for v = Workload.num_subscribers w - 1 downto 0 do
    let required = Problem.tau_v p v *. r.config.duration in
    if float_of_int r.delivered.(v) +. slack ~tolerance required < required then
      unsatisfied := (v, r.delivered.(v), required) :: !unsatisfied
  done;
  let traffic_mismatch = ref [] in
  Array.iter
    (fun vm ->
      let b = Allocation.vm_id vm in
      let measured = total_vm_traffic r ~vm:b in
      let analytical = Allocation.load vm *. r.config.duration in
      if Float.abs (float_of_int measured -. analytical) > slack ~tolerance analytical
      then traffic_mismatch := (b, measured, analytical) :: !traffic_mismatch)
    (Allocation.vms a);
  { unsatisfied = !unsatisfied; traffic_mismatch = !traffic_mismatch }

let all_ok c = c.unsatisfied = [] && c.traffic_mismatch = []
