(** Scenario files: a seeded, time-sliced rate curve layered on a base
    workload, compiled to engine delta batches.

    A scenario divides a planning horizon into [slices] slices of
    [slice_hours] each. Slice [k] covers hours
    [[k * slice_hours, (k+1) * slice_hours)] and its rates are the base
    workload's rates scaled by the curve multiplier at the slice start.
    [coverage] is the fraction of topics that follow the curve (chosen
    deterministically from [seed]); the rest keep their base rate, so a
    scenario can model one hot community inside a steady trace.

    {2 File format ("mcss-scenario 1")}

    Line-oriented UTF-8, ['#'] comments and blank lines ignored:

    {v
    mcss-scenario 1
    slices 24
    slice-hours 1
    seed 7
    coverage 1
    diurnal amplitude 0.4 period 24 phase 0
    weekly weekend 0.65
    spikes count 2 magnitude 2 width 3
    growth per-hour 0.001
    v}

    Header keys may appear in any order before the curve lines; every
    curve line adds one {!Rate_curve.component} (multiplied together).
    Floats are printed with ["%.17g"] so {!to_string} / {!of_string}
    round-trips exactly. *)

type t = {
  slices : int;  (** Number of time slices, [>= 1]. *)
  slice_hours : float;  (** Duration of one slice, [> 0]. *)
  seed : int;  (** Drives spike placement and coverage choice. *)
  coverage : float;  (** Fraction of topics on the curve, in (0, 1]. *)
  curve : Rate_curve.t;
}

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range fields or curve
    parameters, including a curve that goes non-positive within the
    horizon. *)

val horizon_hours : t -> float
(** [slices * slice_hours]. *)

exception Parse_error of { line : int; message : string }

val of_string : string -> t
(** Raises {!Parse_error} on malformed input and [Invalid_argument]
    (via {!validate}) on well-formed but out-of-range scenarios. *)

val to_string : t -> string
val load : string -> t
val save : string -> t -> unit

val multiplier : t -> slice:int -> float
(** The curve multiplier at the start of [slice]; requires
    [0 <= slice < slices]. Deterministic in [seed]. *)

val affected : t -> num_topics:int -> bool array
(** Which topics follow the curve: a seeded, order-independent choice
    of [ceil (coverage * num_topics)] topics. [coverage = 1] marks
    every topic. *)

val target_rates : t -> Mcss_workload.Workload.t -> slice:int -> float array
(** Per-topic absolute rates in effect during [slice]: base rate times
    {!multiplier} for affected topics, base rate otherwise. *)

val envelope_rates : t -> Mcss_workload.Workload.t -> float array
(** Per-topic maximum rate across all slices (affected topics at the
    peak multiplier, others at base) — the peak workload a static plan
    must be provisioned for. *)

val workload_at : t -> Mcss_workload.Workload.t -> slice:int -> Mcss_workload.Workload.t
(** The base workload re-rated to {!target_rates} directly (same
    topics, subscribers, and interests). *)

val envelope_workload : t -> Mcss_workload.Workload.t -> Mcss_workload.Workload.t

val compile : t -> Mcss_workload.Workload.t -> Mcss_engine.Delta.t list array
(** [compile s w] is one delta batch per slice: batch [k] carries a
    [Rate_change] for exactly the topics whose rate differs between
    slice [k] and slice [k-1] (slice [-1] being the base workload).
    Folding the batches in order through {!Mcss_engine.Delta.apply} (or
    a live engine) therefore lands on the same workload as
    [workload_at ~slice:(slices - 1)]. Batches for slices where the
    multiplier repeats exactly are empty. *)
