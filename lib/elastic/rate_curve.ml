module Rng = Mcss_prng.Rng
module Time_window = Mcss_sim.Time_window

type component =
  | Diurnal of { amplitude : float; period_hours : float; phase_hours : float }
  | Weekly of { weekend_factor : float }
  | Spikes of { count : int; magnitude : float; width_hours : float }
  | Growth of { per_hour : float }

type t = component list

let pi = 4.0 *. atan 1.0

let validate_component = function
  | Diurnal { amplitude; period_hours; phase_hours = _ } ->
      if not (amplitude >= 0. && amplitude < 1.) then
        invalid_arg
          (Printf.sprintf "Rate_curve: diurnal amplitude %g outside [0, 1)"
             amplitude);
      Time_window.validate_positive ~context:"Rate_curve: diurnal"
        ~what:"period" period_hours
  | Weekly { weekend_factor } ->
      Time_window.validate_positive ~context:"Rate_curve: weekly"
        ~what:"weekend factor" weekend_factor
  | Spikes { count; magnitude; width_hours } ->
      if count < 0 then
        invalid_arg
          (Printf.sprintf "Rate_curve: spike count %d is negative" count);
      Time_window.validate_positive ~context:"Rate_curve: spikes"
        ~what:"magnitude" magnitude;
      Time_window.validate_positive ~context:"Rate_curve: spikes"
        ~what:"width" width_hours
  | Growth { per_hour = _ } ->
      (* Any slope parses; positivity over the horizon is checked by
         [realize], which knows the horizon. *)
      ()

let validate curve = List.iter validate_component curve

type spike = { from_hours : float; until_hours : float; magnitude : float }

type realized = {
  components : t;
  spike_windows : spike list;
  horizon_hours : float;
}

let components r = r.components
let spikes r = r.spike_windows

let component_value ~spike_windows ~hours = function
  | Diurnal { amplitude; period_hours; phase_hours } ->
      1. +. (amplitude *. sin (2. *. pi *. (hours +. phase_hours) /. period_hours))
  | Weekly { weekend_factor } ->
      let day = int_of_float (floor (hours /. 24.)) mod 7 in
      if day = 5 || day = 6 then weekend_factor else 1.
  | Spikes _ ->
      (* Overlapping spikes take the max magnitude rather than
         compounding, so two coincident windows cannot blow past the
         declared burst height. *)
      List.fold_left
        (fun acc s ->
          if hours >= s.from_hours && hours < s.until_hours then
            Float.max acc s.magnitude
          else acc)
        1. spike_windows
  | Growth { per_hour } -> 1. +. (per_hour *. hours)

let value r ~hours =
  List.fold_left
    (fun acc c -> acc *. component_value ~spike_windows:r.spike_windows ~hours c)
    1. r.components

let realize curve ~seed ~horizon_hours =
  validate curve;
  Time_window.validate_positive ~context:"Rate_curve.realize"
    ~what:"horizon" horizon_hours;
  let rng = Rng.create seed in
  let spike_windows =
    List.concat_map
      (function
        | Spikes { count; magnitude; width_hours } ->
            List.init count (fun _ ->
                let from_hours = Rng.float rng horizon_hours in
                {
                  from_hours;
                  until_hours = from_hours +. width_hours;
                  magnitude;
                })
        | _ -> [])
      curve
  in
  List.iter
    (fun s ->
      Time_window.validate_window
        ~context:(Printf.sprintf "Rate_curve: spike at %gh" s.from_hours)
        ~from_time:s.from_hours ~until_time:s.until_hours ())
    spike_windows;
  let r = { components = curve; spike_windows; horizon_hours } in
  (* The curve must stay strictly positive everywhere a slice boundary
     can land. Diurnal/weekly/spike components are positive by
     construction; only a negative growth slope can cross zero, and it
     does so monotonically, so checking the horizon end suffices —
     but sample hourly anyway to keep the check composition-proof. *)
  let h = ref 0. in
  while !h <= horizon_hours do
    if not (value r ~hours:!h > 0.) then
      invalid_arg
        (Printf.sprintf
           "Rate_curve: curve multiplier %g at %gh is not positive"
           (value r ~hours:!h) !h);
    h := !h +. 1.
  done;
  r

let component_to_string = function
  | Diurnal { amplitude; period_hours; phase_hours } ->
      Printf.sprintf "diurnal amplitude %.17g period %.17g phase %.17g"
        amplitude period_hours phase_hours
  | Weekly { weekend_factor } ->
      Printf.sprintf "weekly weekend %.17g" weekend_factor
  | Spikes { count; magnitude; width_hours } ->
      Printf.sprintf "spikes count %d magnitude %.17g width %.17g" count
        magnitude width_hours
  | Growth { per_hour } -> Printf.sprintf "growth per-hour %.17g" per_hour

let component_of_string line =
  let float_tok what s =
    match float_of_string_opt s with
    | Some f -> f
    | None ->
        invalid_arg (Printf.sprintf "Rate_curve: bad %s value %S" what s)
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "diurnal"; "amplitude"; a; "period"; p; "phase"; ph ] ->
      Some
        (Diurnal
           {
             amplitude = float_tok "amplitude" a;
             period_hours = float_tok "period" p;
             phase_hours = float_tok "phase" ph;
           })
  | [ "weekly"; "weekend"; f ] ->
      Some (Weekly { weekend_factor = float_tok "weekend" f })
  | [ "spikes"; "count"; c; "magnitude"; m; "width"; w ] ->
      let count =
        match int_of_string_opt c with
        | Some n -> n
        | None -> invalid_arg (Printf.sprintf "Rate_curve: bad count value %S" c)
      in
      Some
        (Spikes
           {
             count;
             magnitude = float_tok "magnitude" m;
             width_hours = float_tok "width" w;
           })
  | [ "growth"; "per-hour"; g ] ->
      Some (Growth { per_hour = float_tok "per-hour" g })
  | _ -> None
