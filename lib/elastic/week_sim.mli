(** The week simulator: step a scenario slice-by-slice through live
    engines, one per policy, and account every dollar.

    For each adaptive policy the simulator clones the base plan into a
    private {!Mcss_engine.Engine}, then per slice: applies the slice's
    delta batch, consults the policy, runs a
    {!Mcss_dynamic.Reprovision.consolidate} pass if asked, verifies the
    resulting plan against the slice's problem with
    {!Mcss_core.Verifier}, and prices the slice — reserved capacity at
    the reservation rate, overflow on demand, the slice's traffic
    through the cost model's [C2], and a flat charge per scaling
    action (reservation change or consolidation; the initial
    commitment is free for every policy).

    Two baselines frame the policies:

    - {b static} — the paper's regime: one cold solve of the envelope
      (per-topic peak) workload, fully reserved for the whole horizon,
      verified once against the envelope problem (by rate dominance it
      over-delivers in every slice). Its per-slice bandwidth is the
      envelope allocation re-priced under that slice's rates.
    - {b oracle} — knows the whole curve: tracks every slice with free
      consolidation, commits exactly its fleet at the reserved rate
      each slice, and pays no scaling charges. A lower frame, not a
      reachable policy.

    Determinism: given the same scenario, workload, and policies, every
    figure except the [apply_seconds] timings is reproducible
    bit-for-bit. *)

type slice_row = {
  slice : int;
  multiplier : float;
  fleet : int;  (** VMs in the plan billed for this slice. *)
  reserved : int;
  overflow : int;  (** [max 0 (fleet - reserved)], billed on demand. *)
  consolidated : bool;
  scaling_actions : int;
  vm_usd : float;
  bandwidth_usd : float;
  scaling_usd : float;
  apply_seconds : float;
      (** Wall time of this slice's plan surgery (delta apply plus any
          consolidation); [0.] for the static baseline. *)
  clean : bool;  (** The verifier found no violations. *)
}

type policy_run = {
  policy : string;
  rows : slice_row array;
  vm_usd : float;
  bandwidth_usd : float;
  scaling_usd : float;
  total_usd : float;  (** The policy's week cost: sum of the above. *)
  scaling_actions : int;
  reprovisions : int;
      (** Slices whose plan actually changed (delta surgery touched
          pairs or VMs, a drift re-solve fired, or consolidation
          drained something). *)
  apply_p95_seconds : float;
  clean : bool;  (** Every slice verified clean. *)
}

type result = {
  scenario : Scenario.t;
  static_fleet : int;
  static : policy_run;
  policies : policy_run list;  (** In the order given to {!run}. *)
  oracle_usd : float;
  oracle_fleet : int array;  (** The oracle's per-slice fleet. *)
}

val run :
  ?pricing:Mcss_pricing.Reservation.t ->
  ?capacity_events:float ->
  ?policies:Autoscaler.t list ->
  ?on_slice:(policy:string -> slice_row -> unit) ->
  workload:Mcss_workload.Workload.t ->
  tau:float ->
  model:Mcss_pricing.Cost_model.t ->
  Scenario.t ->
  result
(** [pricing] defaults to [Reservation.default ()] over the model's
    instance; [capacity_events] overrides the model-derived [BC] as in
    {!Mcss_core.Problem.of_pricing}; [policies] defaults to
    [hysteresis] and [lookahead] with their default configs.
    [on_slice] observes each row as it is produced (ledger streaming).
    Raises {!Mcss_core.Problem.Infeasible} if the envelope workload (or
    any slice) cannot be allocated — check the scenario's peak
    multiplier against the capacity before running. *)

val write_ledger : string -> result -> unit
(** Write the full per-slice ledger as JSON: scenario parameters, one
    row array per policy (static included), and the oracle series. The
    schema is documented in EXPERIMENTS.md. *)
