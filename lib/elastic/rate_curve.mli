(** Deterministic, seeded time-varying rate curves.

    A curve is a product of multiplicative components evaluated at an
    hour offset [h] from the start of the scenario:

    - {b diurnal}: [1 + amplitude * sin (2π (h + phase) / period)] — the
      day/night swing every pub/sub trace shows. [amplitude] must be in
      [0, 1) so the multiplier stays strictly positive.
    - {b weekly}: [weekend_factor] on days 5 and 6 of each 7 × 24 h
      week (day 0 is the scenario start), [1] otherwise.
    - {b spikes}: [count] bursty windows of [width_hours] each at
      [magnitude] (> 0), placed uniformly at random over the horizon by
      a {!Mcss_prng.Rng} stream — deterministic given the seed.
      Overlapping spikes do not compound; the maximum magnitude wins.
    - {b growth}: linear trend [1 + per_hour * h]; validated to stay
      strictly positive over the realized horizon.

    Components are specified seed-free ({!component}); {!realize} pins
    the random spike placement against a [seed] and [horizon_hours],
    after which {!value} is a pure function of the hour. *)

type component =
  | Diurnal of { amplitude : float; period_hours : float; phase_hours : float }
  | Weekly of { weekend_factor : float }
  | Spikes of { count : int; magnitude : float; width_hours : float }
  | Growth of { per_hour : float }

type t = component list
(** Multiplied together; the empty list is the constant curve [1]. *)

val validate : t -> unit
(** Raises [Invalid_argument] when any component parameter is out of
    range (amplitude outside [0, 1), non-positive period / factor /
    magnitude / width, negative spike count). Growth slopes are only
    fully checkable against a horizon and are re-validated by
    {!realize}. *)

type spike = { from_hours : float; until_hours : float; magnitude : float }

type realized
(** A curve with its spike windows pinned down. *)

val realize : t -> seed:int -> horizon_hours:float -> realized
(** Draws every spike window from a fresh [Rng.create seed] stream and
    checks the curve stays strictly positive over
    [[0, horizon_hours]]. Raises [Invalid_argument] if it does not
    (e.g. a growth slope that crosses zero before the horizon ends). *)

val value : realized -> hours:float -> float
(** The multiplier at hour [hours]; strictly positive within the
    realized horizon. *)

val spikes : realized -> spike list
(** The pinned spike windows, in draw order. *)

val components : realized -> t

val component_to_string : component -> string
(** One scenario-file line, e.g.
    ["diurnal amplitude 0.4 period 24 phase 0"]. Floats print with
    ["%.17g"] so parsing round-trips exactly. *)

val component_of_string : string -> component option
(** Inverse of {!component_to_string}; [None] when the line is not a
    curve component. *)
