module Rng = Mcss_prng.Rng
module Workload = Mcss_workload.Workload
module Delta = Mcss_engine.Delta
module Time_window = Mcss_sim.Time_window

type t = {
  slices : int;
  slice_hours : float;
  seed : int;
  coverage : float;
  curve : Rate_curve.t;
}

let horizon_hours s = float_of_int s.slices *. s.slice_hours

let validate s =
  if s.slices < 1 then
    invalid_arg (Printf.sprintf "Scenario: %d slices, need at least 1" s.slices);
  Time_window.validate_positive ~context:"Scenario" ~what:"slice-hours"
    s.slice_hours;
  if not (s.coverage > 0. && s.coverage <= 1.) then
    invalid_arg
      (Printf.sprintf "Scenario: coverage %g outside (0, 1]" s.coverage);
  (* Realizing checks the curve parameters and that the multiplier
     stays strictly positive over the whole horizon. *)
  ignore (Rate_curve.realize s.curve ~seed:s.seed ~horizon_hours:(horizon_hours s))

let realized s =
  Rate_curve.realize s.curve ~seed:s.seed ~horizon_hours:(horizon_hours s)

let multiplier s ~slice =
  if slice < 0 || slice >= s.slices then
    invalid_arg
      (Printf.sprintf "Scenario.multiplier: slice %d out of range (%d slices)"
         slice s.slices);
  Rate_curve.value (realized s) ~hours:(float_of_int slice *. s.slice_hours)

let multipliers s =
  let r = realized s in
  Array.init s.slices (fun k ->
      Rate_curve.value r ~hours:(float_of_int k *. s.slice_hours))

(* The coverage draw uses a split of the scenario seed so adding spike
   components to the curve cannot shift which topics are affected. *)
let affected s ~num_topics =
  let marked = Array.make num_topics false in
  if s.coverage >= 1. then Array.fill marked 0 num_topics true
  else begin
    let k =
      min num_topics
        (int_of_float (ceil (s.coverage *. float_of_int num_topics)))
    in
    let rng = Rng.create (s.seed lxor 0x5ce9a810) in
    Array.iter
      (fun t -> marked.(t) <- true)
      (Rng.sample_without_replacement rng k num_topics)
  end;
  marked

let target_rates s w ~slice =
  let m = multiplier s ~slice in
  let base = Workload.event_rates w in
  let marked = affected s ~num_topics:(Array.length base) in
  Array.mapi (fun t r -> if marked.(t) then r *. m else r) base

let envelope_rates s w =
  let ms = multipliers s in
  let peak = Array.fold_left Float.max ms.(0) ms in
  let base = Workload.event_rates w in
  let marked = affected s ~num_topics:(Array.length base) in
  Array.mapi (fun t r -> if marked.(t) then r *. peak else r) base

let reworkload w rates =
  let interests =
    Array.init (Workload.num_subscribers w) (fun v -> Workload.interests w v)
  in
  Workload.unsafe_create ?followers:(Workload.cached_followers w)
    ~event_rates:rates ~interests ()

let workload_at s w ~slice = reworkload w (target_rates s w ~slice)
let envelope_workload s w = reworkload w (envelope_rates s w)

let compile s w =
  validate s;
  let base = Workload.event_rates w in
  let marked = affected s ~num_topics:(Array.length base) in
  let ms = multipliers s in
  let prev = ref 1.0 in
  Array.map
    (fun m ->
      let batch =
        if m = !prev then []
        else begin
          let deltas = ref [] in
          for t = Array.length base - 1 downto 0 do
            if marked.(t) then
              deltas :=
                Delta.Rate_change { topic = t; rate = base.(t) *. m } :: !deltas
          done;
          !deltas
        end
      in
      prev := m;
      batch)
    ms

(* --- codec ------------------------------------------------------- *)

exception Parse_error of { line : int; message : string }

let magic = "mcss-scenario 1"

let to_string s =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "slices %d\n" s.slices);
  Buffer.add_string b (Printf.sprintf "slice-hours %.17g\n" s.slice_hours);
  Buffer.add_string b (Printf.sprintf "seed %d\n" s.seed);
  Buffer.add_string b (Printf.sprintf "coverage %.17g\n" s.coverage);
  List.iter
    (fun c ->
      Buffer.add_string b (Rate_curve.component_to_string c);
      Buffer.add_char b '\n')
    s.curve;
  Buffer.contents b

let of_string text =
  let fail line message = raise (Parse_error { line; message }) in
  let lines = String.split_on_char '\n' text in
  let slices = ref None
  and slice_hours = ref None
  and seed = ref None
  and coverage = ref None
  and curve = ref []
  and seen_magic = ref false in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if not !seen_magic then
        if line = magic then seen_magic := true
        else fail lineno (Printf.sprintf "expected %S header" magic)
      else
        let int_field name tok =
          match int_of_string_opt tok with
          | Some n -> n
          | None -> fail lineno (Printf.sprintf "bad %s value %S" name tok)
        in
        let float_field name tok =
          match float_of_string_opt tok with
          | Some f -> f
          | None -> fail lineno (Printf.sprintf "bad %s value %S" name tok)
        in
        match String.split_on_char ' ' line with
        | [ "slices"; v ] -> slices := Some (int_field "slices" v)
        | [ "slice-hours"; v ] ->
            slice_hours := Some (float_field "slice-hours" v)
        | [ "seed"; v ] -> seed := Some (int_field "seed" v)
        | [ "coverage"; v ] -> coverage := Some (float_field "coverage" v)
        | _ -> (
            match
              try Rate_curve.component_of_string line
              with Invalid_argument m -> fail lineno m
            with
            | Some c -> curve := c :: !curve
            | None -> fail lineno (Printf.sprintf "unrecognised line %S" line)))
    lines;
  if not !seen_magic then fail 1 (Printf.sprintf "expected %S header" magic);
  let require name = function
    | Some v -> v
    | None -> fail 1 (Printf.sprintf "missing %s line" name)
  in
  let s =
    {
      slices = require "slices" !slices;
      slice_hours = require "slice-hours" !slice_hours;
      seed = require "seed" !seed;
      coverage = Option.value ~default:1.0 !coverage;
      curve = List.rev !curve;
    }
  in
  validate s;
  s

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string s))
