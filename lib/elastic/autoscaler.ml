module Reservation = Mcss_pricing.Reservation

type observation = {
  slice : int;
  fleet : int;
  min_fleet : int;
  utilization : float;
  forecast : int array;
}

type decision = { reserved : int; consolidate : bool }
type t = { name : string; horizon : int; decide : observation -> decision }

let static ~fleet =
  if fleet < 1 then invalid_arg "Autoscaler.static: fleet must be >= 1";
  {
    name = "static";
    horizon = 0;
    decide = (fun _ -> { reserved = fleet; consolidate = false });
  }

(* Shared scale-down trigger: there is slack worth draining, the fleet
   is loose enough, and we have not consolidated too recently. [min_int]
   means "never fired" — it must not enter the subtraction, which would
   wrap. *)
let slack_trigger ~below ~cooldown ~last obs =
  let fire =
    obs.fleet > obs.min_fleet
    && obs.utilization < below
    && (!last = min_int || obs.slice - !last >= cooldown)
  in
  if fire then last := obs.slice;
  fire

type hysteresis_config = {
  down_cooldown : int;
  consolidate_below : float;
  consolidate_cooldown : int;
}

let default_hysteresis =
  { down_cooldown = 2; consolidate_below = 0.9; consolidate_cooldown = 2 }

let validate_thresholds ~context ~below ~cooldowns =
  if not (below > 0. && below <= 1.) then
    invalid_arg
      (Printf.sprintf "%s: consolidate-below %g outside (0, 1]" context below);
  List.iter
    (fun (what, c) ->
      if c < 0 then
        invalid_arg (Printf.sprintf "%s: %s cooldown %d is negative" context what c))
    cooldowns

let hysteresis ?(config = default_hysteresis) () =
  validate_thresholds ~context:"Autoscaler.hysteresis"
    ~below:config.consolidate_below
    ~cooldowns:
      [ ("down", config.down_cooldown); ("consolidate", config.consolidate_cooldown) ];
  let reserved = ref (-1) in
  let low_streak = ref 0 in
  let last_consolidate = ref min_int in
  let decide obs =
    (if !reserved < 0 then reserved := obs.fleet
     else if obs.fleet >= !reserved then begin
       (* Overflow is billed at the on-demand rate, so commit to what
          the rates already forced into existence right away. *)
       reserved := obs.fleet;
       low_streak := 0
     end
     else begin
       incr low_streak;
       if !low_streak >= config.down_cooldown then begin
         reserved := obs.fleet;
         low_streak := 0
       end
     end);
    let consolidate =
      slack_trigger ~below:config.consolidate_below
        ~cooldown:config.consolidate_cooldown ~last:last_consolidate obs
    in
    { reserved = !reserved; consolidate }
  in
  { name = "hysteresis"; horizon = 0; decide }

type lookahead_config = {
  horizon : int;
  consolidate_below : float;
  consolidate_cooldown : int;
}

let default_lookahead =
  { horizon = 6; consolidate_below = 0.9; consolidate_cooldown = 2 }

let lookahead ?(config = default_lookahead) ~pricing ~slice_hours () =
  if config.horizon < 1 then
    invalid_arg "Autoscaler.lookahead: horizon must be >= 1";
  validate_thresholds ~context:"Autoscaler.lookahead"
    ~below:config.consolidate_below
    ~cooldowns:[ ("consolidate", config.consolidate_cooldown) ];
  Reservation.validate pricing;
  let current = ref (-1) in
  let last_consolidate = ref min_int in
  let change_cost = pricing.Reservation.scaling_usd_per_action in
  let slice_cost r d =
    Reservation.slice_vm_cost pricing ~reserved:r ~used:d ~hours:slice_hours
  in
  let decide obs =
    let demands =
      Array.append [| obs.fleet |]
        (Array.sub obs.forecast 0
           (min config.horizon (Array.length obs.forecast)))
    in
    let n = Array.length demands in
    let ladder = max (Array.fold_left max 0 demands) (max !current 0) + 1 in
    (* Value iteration over the commitment ladder, backwards from the
       end of the forecast window: [v.(r)] holds V_{j+1} r, the best
       achievable cost of slices j+1 .. n-1 entering them committed to
       r VMs. Beyond the window the future is worth 0 to everyone. *)
    let v = Array.make ladder 0. in
    let v' = Array.make ladder infinity in
    for j = n - 1 downto 1 do
      Array.fill v' 0 ladder infinity;
      for r = 0 to ladder - 1 do
        for r_next = 0 to ladder - 1 do
          let c =
            (if r_next <> r then change_cost else 0.)
            +. slice_cost r_next demands.(j)
            +. v.(r_next)
          in
          if c < v'.(r) then v'.(r) <- c
        done
      done;
      Array.blit v' 0 v 0 ladder
    done;
    (* Today's commitment: the ladder rung minimizing change cost (the
       very first commitment of the run is free — static pays none
       either) + today's slice cost + the optimal future from there. *)
    let best = ref 0 and best_cost = ref infinity in
    for r_next = 0 to ladder - 1 do
      let c =
        (if !current >= 0 && r_next <> !current then change_cost else 0.)
        +. slice_cost r_next demands.(0)
        +. v.(r_next)
      in
      if c < !best_cost then begin
        best_cost := c;
        best := r_next
      end
    done;
    current := !best;
    let consolidate =
      slack_trigger ~below:config.consolidate_below
        ~cooldown:config.consolidate_cooldown ~last:last_consolidate obs
    in
    { reserved = !best; consolidate }
  in
  { name = "lookahead"; horizon = config.horizon; decide }
