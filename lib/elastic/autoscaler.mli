(** Autoscaling policies: who decides, each slice, how much capacity to
    commit to and whether to consolidate the fleet.

    A policy is consulted once per slice, {e after} the slice's rate
    deltas were applied to the live engine (so it sees the fleet the
    new rates forced into existence), and returns:

    - [reserved] — the number of VMs committed at the reserved hourly
      rate for this slice; any fleet above it is billed on demand.
    - [consolidate] — whether to run a {!Mcss_dynamic.Reprovision}
      consolidation pass to drain slack VMs. Engine delta application
      only ever {e grows} the fleet under load (it drops a VM when it
      empties, but falling rates leave VMs underfull, not empty), so
      scale-down is always an explicit, charged decision.

    Both a reservation change and a consolidation pass count as one
    scaling action and are charged
    [Reservation.scaling_usd_per_action] each by the week simulator.

    Policies are stateful closures — cooldown counters and the current
    commitment live inside [t]; build a fresh one per run. *)

type observation = {
  slice : int;
  fleet : int;  (** VMs in the plan after this slice's deltas. *)
  min_fleet : int;
      (** Load-based lower bound [ceil (total load / BC)] on the fleet
          any consolidation could reach. *)
  utilization : float;
      (** Total broker load over fleet capacity, in [0, 1]. *)
  forecast : int array;
      (** Predicted fleet need for the next slices ([forecast.(0)] is
          slice [slice + 1]); scaled from the scenario curve. Empty for
          policies that asked for no lookahead. *)
}

type decision = { reserved : int; consolidate : bool }

type t = { name : string; horizon : int; decide : observation -> decision }
(** [horizon] is how many slices of [forecast] the policy wants (0 for
    purely reactive policies). *)

val static : fleet:int -> t
(** The paper's baseline: one plan sized for the peak, reserved in
    full for the whole horizon, never touched again. *)

type hysteresis_config = {
  down_cooldown : int;
      (** Consecutive slices the fleet must sit below the commitment
          before the commitment is lowered to it. *)
  consolidate_below : float;
      (** Utilization threshold that triggers a consolidation pass. *)
  consolidate_cooldown : int;
      (** Minimum slices between consolidation passes. *)
}

val default_hysteresis : hysteresis_config
(** [down_cooldown = 2], [consolidate_below = 0.9],
    [consolidate_cooldown = 2]. A consolidated fleet sits near full
    utilization, so the threshold is deliberately close to 1 — it
    re-arms as soon as demand has visibly sagged, and the cooldown does
    the damping. *)

val hysteresis : ?config:hysteresis_config -> unit -> t
(** Reactive hysteresis: commits to the observed fleet immediately on
    the way up (overflow is expensive), and only after [down_cooldown]
    quiet slices on the way down; consolidates when utilization sinks
    below the threshold and the cooldown allows. *)

type lookahead_config = {
  horizon : int;  (** Slices of forecast fed into the value iteration. *)
  consolidate_below : float;
  consolidate_cooldown : int;
}

val default_lookahead : lookahead_config
(** [horizon = 6], thresholds as {!default_hysteresis}. *)

val lookahead :
  ?config:lookahead_config ->
  pricing:Mcss_pricing.Reservation.t ->
  slice_hours:float ->
  unit ->
  t
(** Finite-horizon lookahead: rolls the forecast [horizon] slices
    forward and picks today's commitment by value iteration over the
    discretized commitment ladder [0 .. max demand] —
    [V_j R = min_{R'} (change cost + slice cost of R' under demand j
    + V_{j+1} R')] — so it holds a commitment through a short dip when
    two scaling charges would cost more than the idle capacity, and
    pre-books cheap reserved capacity ahead of a forecast ramp.
    Consolidation uses the same slack trigger as {!hysteresis}. *)
