module Workload = Mcss_workload.Workload
module Problem = Mcss_core.Problem
module Allocation = Mcss_core.Allocation
module Verifier = Mcss_core.Verifier
module Engine = Mcss_engine.Engine
module Reprovision = Mcss_dynamic.Reprovision
module Cost_model = Mcss_pricing.Cost_model
module Reservation = Mcss_pricing.Reservation
module Clock = Mcss_obs.Clock

type slice_row = {
  slice : int;
  multiplier : float;
  fleet : int;
  reserved : int;
  overflow : int;
  consolidated : bool;
  scaling_actions : int;
  vm_usd : float;
  bandwidth_usd : float;
  scaling_usd : float;
  apply_seconds : float;
  clean : bool;
}

type policy_run = {
  policy : string;
  rows : slice_row array;
  vm_usd : float;
  bandwidth_usd : float;
  scaling_usd : float;
  total_usd : float;
  scaling_actions : int;
  reprovisions : int;
  apply_p95_seconds : float;
  clean : bool;
}

type result = {
  scenario : Scenario.t;
  static_fleet : int;
  static : policy_run;
  policies : policy_run list;
  oracle_usd : float;
  oracle_fleet : int array;
}

let percentile values p =
  let n = Array.length values in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))
  end

(* Re-price an allocation's bandwidth under different event rates: one
   incoming unit per distinct topic on a VM plus one outgoing unit per
   pair, exactly the verifier's recomputation (Eq. 2). *)
let bandwidth_under allocation rates =
  Array.fold_left
    (fun acc vm ->
      let incoming =
        List.fold_left (fun a t -> a +. rates.(t)) 0. (Allocation.topics_on vm)
      in
      let outgoing = ref 0. in
      Allocation.iter_vm_pairs vm (fun t _ -> outgoing := !outgoing +. rates.(t));
      acc +. incoming +. !outgoing)
    0.
    (Allocation.vms allocation)

let finish_run ~policy (rows : slice_row array) =
  let sum f = Array.fold_left (fun a r -> a +. f r) 0. rows in
  {
    policy;
    rows;
    vm_usd = sum (fun r -> r.vm_usd);
    bandwidth_usd = sum (fun r -> r.bandwidth_usd);
    scaling_usd = sum (fun r -> r.scaling_usd);
    total_usd = sum (fun r -> r.vm_usd +. r.bandwidth_usd +. r.scaling_usd);
    scaling_actions =
      Array.fold_left (fun a (r : slice_row) -> a + r.scaling_actions) 0 rows;
    reprovisions = 0;
    apply_p95_seconds = percentile (Array.map (fun r -> r.apply_seconds) rows) 95.;
    clean = Array.for_all (fun (r : slice_row) -> r.clean) rows;
  }

let run ?pricing ?capacity_events ?policies ?(on_slice = fun ~policy:_ _ -> ())
    ~workload ~tau ~model scenario =
  Scenario.validate scenario;
  let pricing =
    match pricing with
    | Some p ->
        Reservation.validate p;
        p
    | None -> Reservation.default ~instance:model.Cost_model.instance ()
  in
  let slices = scenario.Scenario.slices in
  let slice_hours = scenario.Scenario.slice_hours in
  let base_rates = Workload.event_rates workload in
  let num_topics = Array.length base_rates in
  let marked = Scenario.affected scenario ~num_topics in
  let ms = Array.init slices (fun k -> Scenario.multiplier scenario ~slice:k) in
  let rates_at k =
    Array.mapi (fun t r -> if marked.(t) then r *. ms.(k) else r) base_rates
  in
  let batches = Scenario.compile scenario workload in
  let problem_of w = Problem.of_pricing ?capacity_events ~workload:w ~tau model in
  (* Traffic during one slice, in event units: rates are events per
     model horizon, a slice is slice_hours of it. *)
  let bandwidth_usd bw_rate =
    Cost_model.bandwidth_cost model
      (bw_rate *. slice_hours /. model.Cost_model.horizon_hours)
  in
  let base_plan = Engine.plan (Engine.create (problem_of workload)) in

  (* --- static baseline: solve the envelope once, reserve it all. --- *)
  let static_run, static_fleet =
    let env_problem = problem_of (Scenario.envelope_workload scenario workload) in
    let plan = Engine.plan (Engine.create env_problem) in
    let report = Verifier.verify plan.problem plan.selection plan.allocation in
    let clean = Verifier.is_valid report in
    let fleet = Allocation.num_vms plan.allocation in
    let rows =
      Array.init slices (fun k ->
          let row =
            {
              slice = k;
              multiplier = ms.(k);
              fleet;
              reserved = fleet;
              overflow = 0;
              consolidated = false;
              scaling_actions = 0;
              vm_usd =
                Reservation.slice_vm_cost pricing ~reserved:fleet ~used:fleet
                  ~hours:slice_hours;
              bandwidth_usd =
                bandwidth_usd (bandwidth_under plan.allocation (rates_at k));
              scaling_usd = 0.;
              apply_seconds = 0.;
              clean;
            }
          in
          on_slice ~policy:"static" row;
          row)
    in
    (finish_run ~policy:"static" rows, fleet)
  in

  (* --- one tracked engine per adaptive policy. --- *)
  let policies =
    match policies with
    | Some ps -> ps
    | None ->
        [
          Autoscaler.hysteresis ();
          Autoscaler.lookahead ~pricing ~slice_hours ();
        ]
  in
  let track (policy : Autoscaler.t) =
    let engine = ref (Engine.of_plan base_plan) in
    let prev_reserved = ref None in
    let reprovisions = ref 0 in
    let rows =
      Array.init slices (fun k ->
          let t0 = Clock.now_ns () in
          let stats = Engine.apply !engine batches.(k) in
          let plan = Engine.plan !engine in
          let fleet0 = Allocation.num_vms plan.allocation in
          let load = Allocation.total_load plan.allocation in
          let capacity = plan.problem.Problem.capacity in
          let observation =
            {
              Autoscaler.slice = k;
              fleet = fleet0;
              min_fleet = int_of_float (ceil (load /. capacity));
              utilization = load /. (float_of_int fleet0 *. capacity);
              forecast =
                Array.init
                  (min policy.Autoscaler.horizon (slices - 1 - k))
                  (fun j ->
                    max 1
                      (int_of_float
                         (Float.round
                            (float_of_int fleet0 *. ms.(k + 1 + j) /. ms.(k)))));
            }
          in
          let decision = policy.Autoscaler.decide observation in
          let consolidated =
            decision.Autoscaler.consolidate
            &&
            let plan', cstats = Reprovision.consolidate plan in
            if cstats.Reprovision.vms_removed > 0 then begin
              engine := Engine.of_plan plan';
              true
            end
            else false
          in
          let apply_seconds = Clock.seconds_since t0 in
          let plan = Engine.plan !engine in
          let fleet = Allocation.num_vms plan.allocation in
          let report = Verifier.verify plan.problem plan.selection plan.allocation in
          let reserved = decision.Autoscaler.reserved in
          let scaling_actions =
            (match !prev_reserved with
            | Some r when r <> reserved -> 1
            | _ -> 0)
            + if consolidated then 1 else 0
          in
          prev_reserved := Some reserved;
          let changed =
            stats.Engine.pairs_added + stats.Engine.pairs_removed
              + stats.Engine.pairs_evicted + stats.Engine.vms_added
              + stats.Engine.vms_removed
              > 0
            || stats.Engine.resolved || consolidated
          in
          if changed then incr reprovisions;
          let row =
            {
              slice = k;
              multiplier = ms.(k);
              fleet;
              reserved;
              overflow = max 0 (fleet - reserved);
              consolidated;
              scaling_actions;
              vm_usd =
                Reservation.slice_vm_cost pricing ~reserved ~used:fleet
                  ~hours:slice_hours;
              bandwidth_usd = bandwidth_usd report.Verifier.total_bandwidth;
              scaling_usd = Reservation.scaling_cost pricing ~actions:scaling_actions;
              apply_seconds;
              clean = Verifier.is_valid report;
            }
          in
          on_slice ~policy:policy.Autoscaler.name row;
          row)
    in
    { (finish_run ~policy:policy.Autoscaler.name rows) with
      reprovisions = !reprovisions }
  in
  let policy_runs = List.map track policies in

  (* --- oracle: free per-slice consolidation, exact commitment. --- *)
  let oracle_usd, oracle_fleet =
    let engine = ref (Engine.of_plan base_plan) in
    let total = ref 0. in
    let fleets =
      Array.init slices (fun k ->
          ignore (Engine.apply !engine batches.(k));
          let plan = Engine.plan !engine in
          let plan =
            let plan', cstats = Reprovision.consolidate plan in
            if cstats.Reprovision.vms_removed > 0 then begin
              engine := Engine.of_plan plan';
              plan'
            end
            else plan
          in
          let fleet = Allocation.num_vms plan.allocation in
          total :=
            !total
            +. Reservation.slice_vm_cost pricing ~reserved:fleet ~used:fleet
                 ~hours:slice_hours
            +. bandwidth_usd (Allocation.total_load plan.allocation);
          fleet)
    in
    (!total, fleets)
  in
  {
    scenario;
    static_fleet;
    static = static_run;
    policies = policy_runs;
    oracle_usd;
    oracle_fleet;
  }

(* --- JSON ledger -------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_ledger path result =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      let s = result.scenario in
      p "{\n";
      p "  \"schema\": \"mcss-elastic-ledger-1\",\n";
      p "  \"scenario\": {\n";
      p "    \"slices\": %d,\n" s.Scenario.slices;
      p "    \"slice_hours\": %.17g,\n" s.Scenario.slice_hours;
      p "    \"seed\": %d,\n" s.Scenario.seed;
      p "    \"coverage\": %.17g,\n" s.Scenario.coverage;
      p "    \"curve\": [%s]\n"
        (String.concat ", "
           (List.map
              (fun c ->
                Printf.sprintf "\"%s\""
                  (json_escape (Rate_curve.component_to_string c)))
              s.Scenario.curve));
      p "  },\n";
      p "  \"static_fleet\": %d,\n" result.static_fleet;
      p "  \"oracle\": { \"total_usd\": %.6f, \"fleet\": [%s] },\n"
        result.oracle_usd
        (String.concat ", "
           (Array.to_list (Array.map string_of_int result.oracle_fleet)));
      p "  \"policies\": [";
      List.iteri
        (fun i run ->
          if i > 0 then p ",";
          p "\n    {\n";
          p "      \"policy\": \"%s\",\n" (json_escape run.policy);
          p "      \"total_usd\": %.6f,\n" run.total_usd;
          p "      \"vm_usd\": %.6f,\n" run.vm_usd;
          p "      \"bandwidth_usd\": %.6f,\n" run.bandwidth_usd;
          p "      \"scaling_usd\": %.6f,\n" run.scaling_usd;
          p "      \"scaling_actions\": %d,\n" run.scaling_actions;
          p "      \"reprovisions\": %d,\n" run.reprovisions;
          p "      \"apply_p95_seconds\": %.9f,\n" run.apply_p95_seconds;
          p "      \"clean\": %b,\n" run.clean;
          p "      \"rows\": [";
          Array.iteri
            (fun j r ->
              if j > 0 then p ",";
              p
                "\n        { \"slice\": %d, \"multiplier\": %.6f, \"fleet\": \
                 %d, \"reserved\": %d, \"overflow\": %d, \"consolidated\": \
                 %b, \"scaling_actions\": %d, \"vm_usd\": %.6f, \
                 \"bandwidth_usd\": %.6f, \"scaling_usd\": %.6f, \
                 \"apply_seconds\": %.9f, \"clean\": %b }"
                r.slice r.multiplier r.fleet r.reserved r.overflow
                r.consolidated r.scaling_actions r.vm_usd r.bandwidth_usd
                r.scaling_usd r.apply_seconds r.clean)
            run.rows;
          p "\n      ]\n";
          p "    }")
        (result.static :: result.policies);
      p "\n  ]\n";
      p "}\n")
