(** Nestable monotonic-clock span tracing.

    [Span.with_ obs ~name f] times [f] on the monotonic clock and records
    it under the innermost open span, producing a tree: repeated
    executions of the same name under the same parent aggregate into one
    node with a count and a total. On the no-op registry it calls [f]
    directly.

    {[
      Span.with_ obs ~name:"solve" (fun () ->
          let s = Span.with_ obs ~name:"stage1" (fun () -> Selection.gsp p) in
          Span.with_ obs ~name:"stage2" (fun () -> Cbp.run p s opts))
    ]}

    prints as

    {v
    solve              240.1 ms  x1
    ├─ stage1          180.3 ms  x1
    └─ stage2           59.2 ms  x1
    v} *)

type node = Registry.span_node = {
  span_name : string;
  count : int;  (** Executions aggregated into this node. *)
  total_ns : int64;  (** Summed duration across executions. *)
  children : node list;  (** First-execution order. *)
}

val with_ : Registry.t -> name:string -> (unit -> 'a) -> 'a
(** Time the thunk as a span named [name] (exception-safe: the span is
    recorded even when the thunk raises). *)

val roots : Registry.t -> node list
(** The aggregated top-level spans recorded so far. *)

val seconds : node -> float
(** [total_ns] in seconds. *)

val find : node list -> string -> node option
(** First node with that name, searching depth-first. *)

val flatten : node list -> (string * node) list
(** Every node paired with its slash-separated path from the root, e.g.
    [("solve/stage1", n)], in tree order. *)

val pp : Format.formatter -> node list -> unit
(** Render the forest with box-drawing connectors, humanised durations
    and execution counts. *)
