type node = Registry.span_node = {
  span_name : string;
  count : int;
  total_ns : int64;
  children : node list;
}

let with_ t ~name f = Registry.with_span t name f
let roots = Registry.span_roots
let seconds n = Clock.ns_to_seconds n.total_ns

let rec find nodes name =
  match nodes with
  | [] -> None
  | n :: rest ->
      if n.span_name = name then Some n
      else (
        match find n.children name with Some hit -> Some hit | None -> find rest name)

let flatten nodes =
  let out = ref [] in
  let rec go prefix n =
    let path = if prefix = "" then n.span_name else prefix ^ "/" ^ n.span_name in
    out := (path, n) :: !out;
    List.iter (go path) n.children
  in
  List.iter (go "") nodes;
  List.rev !out

let human_duration ns =
  let ns_f = Int64.to_float ns in
  if ns_f < 1e3 then Printf.sprintf "%.0f ns" ns_f
  else if ns_f < 1e6 then Printf.sprintf "%.1f us" (ns_f /. 1e3)
  else if ns_f < 1e9 then Printf.sprintf "%.1f ms" (ns_f /. 1e6)
  else Printf.sprintf "%.3f s" (ns_f /. 1e9)

let pp ppf nodes =
  (* [label] is the already-built connector column for this node's line;
     [prefix] is what the node's children extend. *)
  let rec go ~depth ~prefix ~label n =
    (* [label] holds multi-byte box-drawing chars: each tree level is 3
       display columns, so pad the name from [depth], not byte length. *)
    Format.fprintf ppf "%s%-*s  %9s  x%d@," label
      (max 1 (24 - (3 * depth)))
      n.span_name (human_duration n.total_ns) n.count;
    let k = List.length n.children in
    List.iteri
      (fun i c ->
        let last = i = k - 1 in
        go ~depth:(depth + 1)
          ~prefix:(prefix ^ if last then "   " else "\xe2\x94\x82  ")
          ~label:(prefix ^ if last then "\xe2\x94\x94\xe2\x94\x80 " else "\xe2\x94\x9c\xe2\x94\x80 ")
          c)
      n.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (fun n -> go ~depth:0 ~prefix:"" ~label:"" n) nodes;
  Format.fprintf ppf "@]"
