(** Process-level resource figures sampled at reporting time, so every
    benchmark record says not just how fast a run was but what it cost
    the machine to get there.

    Peak RSS comes from [/proc/self/status]'s [VmHWM] line (Linux); on
    platforms without procfs it is reported as [0] rather than guessed.
    Allocation pressure comes from [Gc.stat] — [major_words] is
    cumulative over the process, so per-phase attribution needs two
    samples. *)

type t = {
  peak_rss_bytes : int;  (** [VmHWM], in bytes; [0] when unavailable. *)
  gc_major_words : float;
      (** Words promoted to or allocated in the major heap since
          process start. *)
  gc_major_collections : int;
  gc_heap_words : int;  (** Current major heap size, in words. *)
}

val sample : unit -> t

val to_json_object : t -> string
(** A JSON object literal (no trailing newline), e.g.
    [{ "peak_rss_bytes": 123, ... }] — spliced into the BENCH_*.json
    writers as the ["runtime"] field. Also embeds the process-wide
    per-phase allocation table ({!Gc_phase}) as a ["gc_phases"] field,
    read at formatting time. *)
