(** The handle every instrumented layer shares: a named-metric registry
    plus the mutable state behind {!Span} tracing.

    A registry is either {e enabled} ({!create}) or the shared {e no-op}
    handle ({!noop}). Instrumented code is written once against this
    interface; with {!noop} the registration calls hand back shared dummy
    metrics and {!with_span} calls through without touching the clock, so
    the disabled-path overhead is a branch and a memory write — the
    regression test pins the counter hot path to zero allocations.

    Registration is idempotent: asking twice for the same name returns
    the same metric, so callees can re-register on every call instead of
    threading metric handles around. Asking for the same name with a
    different kind raises [Invalid_argument]. *)

type t

val create : unit -> t
(** A fresh, enabled, empty registry. *)

val noop : t
(** The shared disabled registry: metrics registered on it are dummies
    (never reported), spans do not time anything, {!samples} is always
    empty. *)

val enabled : t -> bool

val counter : t -> ?help:string -> string -> Metric.Counter.t
val gauge : t -> ?help:string -> string -> Metric.Gauge.t

val histogram : t -> ?help:string -> ?buckets:float array -> string -> Metric.Histogram.t
(** [buckets] is only honoured by the call that creates the histogram;
    later registrations of the same name return the existing one. *)

type metric =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type sample = { name : string; help : string; metric : metric }

val samples : t -> sample list
(** Snapshot of every registered metric, in registration order. *)

(** {2 Span state}

    {!Span} is the public face; these are the underlying operations. A
    span tree node aggregates every execution of the same name under the
    same parent: [count] executions totalling [total_ns]. *)

type span_node = {
  span_name : string;
  count : int;
  total_ns : int64;
  children : span_node list;  (** First-execution order. *)
}

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span nested under the currently open
    span (exception-safe). On {!noop}, calls the thunk directly. *)

val span_roots : t -> span_node list
(** The aggregated top-level spans, in first-execution order. *)

val reset : t -> unit
(** Drop all metrics and spans (for reusing one registry across
    benchmark repetitions). No-op on {!noop}. *)
