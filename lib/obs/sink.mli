(** Pluggable exporters for a registry snapshot.

    Three sinks cover the three consumers the reproduction has today:

    - {!jsonl} / {!write_jsonl} — one self-describing JSON object per
      line (machines; the [--metrics-out] CLI flag);
    - {!prometheus} — Prometheus/OpenMetrics text exposition (scrapers);
    - {!console} — an aligned {!Mcss_report.Table} of metrics plus the
      rendered span tree (humans; the [mcss profile] subcommand).

    All sinks are read-only over the registry: exporting never clears or
    perturbs the metrics, so a run can export to several sinks. *)

val jsonl : Registry.t -> string
(** The registry as JSON lines, in registration order, spans last. Lines
    look like:

    {v
    {"type":"counter","name":"stage1.pairs_selected","value":59}
    {"type":"gauge","name":"solve.cost_usd","value":1234.5}
    {"type":"histogram","name":"fleet.vm_utilisation","count":12,"sum":9.1,
     "min":0.31,"max":1.0,"mean":0.76,"p50":0.81,"p95":0.99,"p99":1.0,
     "buckets":[0.1,...],"counts":[0,...]}
    {"type":"span","path":"solve/stage1","name":"stage1","count":1,"seconds":0.18}
    v}

    Non-finite floats are emitted as [null] so every line stays strict
    JSON. *)

val write_jsonl : Registry.t -> path:string -> unit
(** {!jsonl} to a file (truncates). *)

val prometheus : Registry.t -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] headers, names
    sanitised to [[a-zA-Z0-9_:]] and prefixed with [mcss_], histograms
    as cumulative [_bucket{le="..."}]/[_sum]/[_count] series, spans as
    [mcss_span_seconds{path="..."}] plus [mcss_span_count{path="..."}].
    Help strings escape backslash and newline; label values (span
    paths) additionally escape the double quote, per the exposition
    format — so a help string or span name containing any of those
    cannot split a line or truncate a label. *)

val console : Registry.t -> string
(** A human-readable report: one aligned table of metrics (histograms
    summarised as count/mean/p50/p95/p99/max) followed by the span tree.
    Newline-terminated. *)
