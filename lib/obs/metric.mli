(** The three metric primitives of the observability subsystem.

    All hot-path operations ({!Counter.inc}, {!Counter.add}, {!Gauge.set},
    {!Histogram.observe}) are allocation-free: counters are mutable [int]
    cells, gauges are flat float records, and histograms update
    pre-allocated arrays in place. A disabled {!Registry.t} hands out
    shared dummy instances of these same types, so instrumented code pays
    one predictable memory write per operation and nothing else. *)

module Counter : sig
  type t
  (** A monotonically increasing integer. *)

  val make : unit -> t

  val inc : t -> unit
  (** Add one. Never allocates. *)

  val add : t -> int -> unit
  (** Add [n] (negative [n] is accepted but makes Prometheus semantics
      lie; instrumentation only adds nonnegative deltas). Never
      allocates. *)

  val value : t -> int
end

module Gauge : sig
  type t
  (** A point-in-time float (fleet size, cost, utilisation). *)

  val make : unit -> t

  val set : t -> float -> unit
  (** Replace the value. Never allocates (flat float record). *)

  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t
  (** A fixed-bucket histogram: upper bucket bounds are chosen at
      creation and never change, so {!observe} is a binary search plus
      array increments. An implicit overflow bucket catches values above
      the last bound. *)

  val make : ?buckets:float array -> unit -> t
  (** [buckets] are the ascending, strictly increasing upper bounds
      (default {!default_buckets}). Raises [Invalid_argument] if empty or
      not strictly increasing. *)

  val linear : lo:float -> hi:float -> buckets:int -> float array
  (** [buckets] evenly spaced upper bounds covering [(lo, hi]]: the first
      bound is [lo + (hi-lo)/buckets], the last is [hi]. *)

  val exponential : lo:float -> factor:float -> buckets:int -> float array
  (** Upper bounds [lo, lo·factor, lo·factor², …] ([factor > 1]). *)

  val default_buckets : float array
  (** Exponential bounds from 1 µs to ~1000 s — suited to durations in
      seconds. *)

  val observe : t -> float -> unit
  (** Record one value (NaN is dropped). Never allocates. *)

  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** Smallest observed value; [nan] when empty. *)

  val max_value : t -> float
  (** Largest observed value; [nan] when empty. *)

  val mean : t -> float
  (** [sum / count]; [nan] when empty. *)

  val bucket_bounds : t -> float array
  (** The upper bounds, as passed at creation (fresh copy). *)

  val bucket_counts : t -> int array
  (** Per-bucket counts (fresh copy), one longer than
      {!bucket_bounds}: the final cell is the overflow bucket. *)

  val quantile : t -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) by linear
      interpolation inside the bucket holding rank [q·count], using the
      observed min/max as the edges of the first and overflow buckets.
      The estimate is exact at the bucket bounds and within one bucket
      width elsewhere; [nan] when empty. Raises [Invalid_argument] when
      [q] is outside [0, 1]. *)
end
