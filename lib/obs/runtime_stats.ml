type t = {
  peak_rss_bytes : int;
  gc_major_words : float;
  gc_major_collections : int;
  gc_heap_words : int;
}

(* VmHWM is reported in kB, e.g. "VmHWM:\t    123456 kB". *)
let peak_rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                  let fields =
                    String.split_on_char ' '
                      (String.sub line 6 (String.length line - 6))
                    |> List.concat_map (String.split_on_char '\t')
                    |> List.filter (fun s -> s <> "")
                  in
                  match fields with
                  | kb :: _ -> (
                      match int_of_string_opt kb with
                      | Some n -> n * 1024
                      | None -> 0)
                  | [] -> 0
                else scan ()
          in
          scan ())

let sample () =
  let gc = Gc.stat () in
  {
    peak_rss_bytes = peak_rss_bytes ();
    gc_major_words = gc.Gc.major_words;
    gc_major_collections = gc.Gc.major_collections;
    gc_heap_words = gc.Gc.heap_words;
  }

let to_json_object t =
  Printf.sprintf
    "{ \"peak_rss_bytes\": %d, \"gc_major_words\": %.0f, \
     \"gc_major_collections\": %d, \"gc_heap_words\": %d, \"gc_phases\": %s }"
    t.peak_rss_bytes t.gc_major_words t.gc_major_collections t.gc_heap_words
    (Gc_phase.to_json_object ())
