(** Monotonic time source for the observability subsystem.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a tiny C stub, so span
    durations are immune to wall-clock adjustments. All other [mcss]
    timing ([Unix.gettimeofday] in the solver result, the bench harness)
    measures elapsed wall time over seconds-long runs where drift is
    irrelevant; spans attribute sub-millisecond stages, where it is not. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin. Strictly non-decreasing
    within a process. *)

val ns_to_seconds : int64 -> float
(** Convert a nanosecond span to seconds. *)

val seconds_since : int64 -> float
(** [seconds_since t0] is [ns_to_seconds (now_ns () - t0)]. *)
