(** Per-phase GC allocation accounting.

    [measure] brackets a phase with [Gc.counters] samples and attributes
    the words the {e calling domain} allocated in between to a named
    phase in a process-wide table (allocations made by domains spawned
    inside the phase are not charged — OCaml GC counters are
    per-domain, and that under-count is exactly the interesting number:
    what the orchestrating domain itself still allocates).

    The table is cumulative over the process, like [Gc.stat]; the
    benchmark writers splice it into every BENCH_*.json [runtime] block
    via {!Runtime_stats.to_json_object}, and [measure] also bumps
    [gc.<phase>.minor_words] / [gc.<phase>.major_words] counters on the
    given registry so the numbers surface in [--metrics-out] dumps. *)

type totals = {
  mutable minor_words : float;
  mutable major_words : float;
  mutable samples : int;  (** Number of [measure] calls for the phase. *)
}

val measure : ?obs:Registry.t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, charging its allocations to the phase. Exceptions
    propagate; the partial phase is still recorded. Thread-safe. *)

val totals : unit -> (string * totals) list
(** Snapshot of every phase recorded so far, sorted by phase name. *)

val reset : unit -> unit
(** Forget all phases (tests). *)

val to_json_object : unit -> string
(** The table as a JSON object literal, phases in sorted order:
    [{ "stage1": { "minor_words": ..., "major_words": ...,
    "samples": ... }, ... }]. *)
