type metric =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type sample = { name : string; help : string; metric : metric }

(* Accumulating span-tree node: children keyed by name so repeated
   executions of the same span under the same parent aggregate. *)
type span_acc = {
  aname : string;
  mutable acount : int;
  mutable atotal : int64;
  akids : (string, span_acc) Hashtbl.t;
  mutable aorder : string list;  (* reversed first-execution order *)
}

let fresh_acc name =
  { aname = name; acount = 0; atotal = 0L; akids = Hashtbl.create 8; aorder = [] }

type t = {
  on : bool;
  metrics : (string, sample) Hashtbl.t;
  mutable order : string list;  (* reversed registration order *)
  mutable root : span_acc;
  mutable stack : span_acc list;  (* open spans, innermost first *)
  dummy_counter : Metric.Counter.t;
  dummy_gauge : Metric.Gauge.t;
  dummy_histogram : Metric.Histogram.t;
}

let make ~on =
  {
    on;
    metrics = Hashtbl.create 64;
    order = [];
    root = fresh_acc "";
    stack = [];
    dummy_counter = Metric.Counter.make ();
    dummy_gauge = Metric.Gauge.make ();
    dummy_histogram = Metric.Histogram.make ();
  }

let create () = make ~on:true
let noop = make ~on:false
let enabled t = t.on

let register t name help make_metric =
  match Hashtbl.find_opt t.metrics name with
  | Some s -> s.metric
  | None ->
      let metric = make_metric () in
      Hashtbl.add t.metrics name { name; help; metric };
      t.order <- name :: t.order;
      metric

let kind_error name want =
  invalid_arg (Printf.sprintf "Registry: %S already registered as a different kind (want %s)" name want)

let counter t ?(help = "") name =
  if not t.on then t.dummy_counter
  else
    match register t name help (fun () -> Counter (Metric.Counter.make ())) with
    | Counter c -> c
    | _ -> kind_error name "counter"

let gauge t ?(help = "") name =
  if not t.on then t.dummy_gauge
  else
    match register t name help (fun () -> Gauge (Metric.Gauge.make ())) with
    | Gauge g -> g
    | _ -> kind_error name "gauge"

let histogram t ?(help = "") ?buckets name =
  if not t.on then t.dummy_histogram
  else
    match
      register t name help (fun () -> Histogram (Metric.Histogram.make ?buckets ()))
    with
    | Histogram h -> h
    | _ -> kind_error name "histogram"

let samples t =
  List.rev_map (fun name -> Hashtbl.find t.metrics name) t.order

type span_node = {
  span_name : string;
  count : int;
  total_ns : int64;
  children : span_node list;
}

let with_span t name f =
  if not t.on then f ()
  else begin
    let parent = match t.stack with [] -> t.root | p :: _ -> p in
    let acc =
      match Hashtbl.find_opt parent.akids name with
      | Some a -> a
      | None ->
          let a = fresh_acc name in
          Hashtbl.add parent.akids name a;
          parent.aorder <- name :: parent.aorder;
          a
    in
    t.stack <- acc :: t.stack;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        acc.atotal <- Int64.add acc.atotal (Int64.sub (Clock.now_ns ()) t0);
        acc.acount <- acc.acount + 1;
        match t.stack with
        | top :: rest when top == acc -> t.stack <- rest
        | _ -> ())
      f
  end

let rec node_of_acc a =
  {
    span_name = a.aname;
    count = a.acount;
    total_ns = a.atotal;
    children = List.rev_map (fun n -> node_of_acc (Hashtbl.find a.akids n)) a.aorder;
  }

let span_roots t = (node_of_acc t.root).children

let reset t =
  if t.on then begin
    Hashtbl.reset t.metrics;
    t.order <- [];
    t.root <- fresh_acc "";
    t.stack <- []
  end
