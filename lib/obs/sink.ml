module Table = Mcss_report.Table

(* ----- JSON lines ----- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x = if Float.is_finite x then Printf.sprintf "%.12g" x else "null"

let json_float_array xs =
  "[" ^ String.concat "," (Array.to_list (Array.map json_float xs)) ^ "]"

let json_int_array xs =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int xs)) ^ "]"

let jsonl reg =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun { Registry.name; metric; _ } ->
      match metric with
      | Registry.Counter c ->
          line {|{"type":"counter","name":"%s","value":%d}|} (json_escape name)
            (Metric.Counter.value c)
      | Registry.Gauge g ->
          line {|{"type":"gauge","name":"%s","value":%s}|} (json_escape name)
            (json_float (Metric.Gauge.value g))
      | Registry.Histogram h ->
          line
            {|{"type":"histogram","name":"%s","count":%d,"sum":%s,"min":%s,"max":%s,"mean":%s,"p50":%s,"p95":%s,"p99":%s,"buckets":%s,"counts":%s}|}
            (json_escape name) (Metric.Histogram.count h)
            (json_float (Metric.Histogram.sum h))
            (json_float (Metric.Histogram.min_value h))
            (json_float (Metric.Histogram.max_value h))
            (json_float (Metric.Histogram.mean h))
            (json_float (Metric.Histogram.quantile h 0.5))
            (json_float (Metric.Histogram.quantile h 0.95))
            (json_float (Metric.Histogram.quantile h 0.99))
            (json_float_array (Metric.Histogram.bucket_bounds h))
            (json_int_array (Metric.Histogram.bucket_counts h)))
    (Registry.samples reg);
  List.iter
    (fun (path, (n : Span.node)) ->
      line {|{"type":"span","path":"%s","name":"%s","count":%d,"seconds":%s}|}
        (json_escape path) (json_escape n.Span.span_name) n.Span.count
        (json_float (Span.seconds n)))
    (Span.flatten (Span.roots reg));
  Buffer.contents buf

let write_jsonl reg ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (jsonl reg))

(* ----- Prometheus text exposition ----- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" x

(* Exposition-format escaping. HELP text escapes backslash and newline;
   label values additionally escape the double quote. Without this, a
   help string or span path containing a newline or quote splits the
   line and breaks every scraper. *)
let prom_escape ~quote s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help = prom_escape ~quote:false
let escape_label = prom_escape ~quote:true

let prometheus reg =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun { Registry.name; help; metric } ->
      let pname = "mcss_" ^ sanitize name in
      if help <> "" then add "# HELP %s %s" pname (escape_help help);
      match metric with
      | Registry.Counter c ->
          add "# TYPE %s counter" pname;
          add "%s %d" pname (Metric.Counter.value c)
      | Registry.Gauge g ->
          add "# TYPE %s gauge" pname;
          add "%s %s" pname (prom_float (Metric.Gauge.value g))
      | Registry.Histogram h ->
          add "# TYPE %s histogram" pname;
          let bounds = Metric.Histogram.bucket_bounds h in
          let counts = Metric.Histogram.bucket_counts h in
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + counts.(i);
              add "%s_bucket{le=\"%s\"} %d" pname (prom_float bound) !cum)
            bounds;
          cum := !cum + counts.(Array.length counts - 1);
          add "%s_bucket{le=\"+Inf\"} %d" pname !cum;
          add "%s_sum %s" pname (prom_float (Metric.Histogram.sum h));
          add "%s_count %d" pname (Metric.Histogram.count h))
    (Registry.samples reg);
  let spans = Span.flatten (Span.roots reg) in
  if spans <> [] then begin
    add "# TYPE mcss_span_seconds gauge";
    List.iter
      (fun (path, (n : Span.node)) ->
        add "mcss_span_seconds{path=\"%s\"} %s" (escape_label path)
          (prom_float (Span.seconds n)))
      spans;
    add "# TYPE mcss_span_count counter";
    List.iter
      (fun (path, (n : Span.node)) ->
        add "mcss_span_count{path=\"%s\"} %d" (escape_label path) n.Span.count)
      spans
  end;
  Buffer.contents buf

(* ----- console ----- *)

let console reg =
  let buf = Buffer.create 4096 in
  let samples = Registry.samples reg in
  if samples <> [] then begin
    let table =
      Table.create
        [ ("metric", Table.Left); ("type", Table.Left); ("value", Table.Right) ]
    in
    List.iter
      (fun { Registry.name; metric; _ } ->
        match metric with
        | Registry.Counter c ->
            Table.add_row table [ name; "counter"; string_of_int (Metric.Counter.value c) ]
        | Registry.Gauge g ->
            Table.add_row table [ name; "gauge"; Table.cell_float ~decimals:3 (Metric.Gauge.value g) ]
        | Registry.Histogram h ->
            let q p = Metric.Histogram.quantile h p in
            Table.add_row table
              [
                name;
                "histogram";
                (if Metric.Histogram.count h = 0 then "(empty)"
                 else
                   Printf.sprintf "n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g"
                     (Metric.Histogram.count h) (Metric.Histogram.mean h) (q 0.5) (q 0.95)
                     (q 0.99)
                     (Metric.Histogram.max_value h));
              ])
      samples;
    Buffer.add_string buf (Table.render table)
  end;
  let roots = Span.roots reg in
  if roots <> [] then begin
    if samples <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf "span tree:\n";
    Buffer.add_string buf (Format.asprintf "%a" Span.pp roots);
    Buffer.add_char buf '\n'
  end;
  if samples = [] && roots = [] then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf
