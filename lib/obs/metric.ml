module Counter = struct
  type t = { mutable count : int }

  let make () = { count = 0 }
  let inc t = t.count <- t.count + 1
  let add t n = t.count <- t.count + n
  let value t = t.count
end

module Gauge = struct
  (* All-float record: stored flat, so [set] is one unboxed write. *)
  type t = { mutable v : float }

  let make () = { v = 0. }
  let set t x = t.v <- x
  let add t x = t.v <- t.v +. x
  let value t = t.v
end

module Histogram = struct
  type t = {
    bounds : float array;  (* ascending upper bounds; observe binary-searches *)
    counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
    stats : float array;  (* 0: sum, 1: min, 2: max — flat float array *)
    mutable n : int;
  }

  let linear ~lo ~hi ~buckets =
    if buckets < 1 then invalid_arg "Histogram.linear: buckets must be >= 1";
    if not (hi > lo) then invalid_arg "Histogram.linear: need hi > lo";
    let step = (hi -. lo) /. float_of_int buckets in
    Array.init buckets (fun i -> lo +. (step *. float_of_int (i + 1)))

  let exponential ~lo ~factor ~buckets =
    if buckets < 1 then invalid_arg "Histogram.exponential: buckets must be >= 1";
    if not (lo > 0.) then invalid_arg "Histogram.exponential: need lo > 0";
    if not (factor > 1.) then invalid_arg "Histogram.exponential: need factor > 1";
    Array.init buckets (fun i -> lo *. (factor ** float_of_int i))

  let default_buckets = exponential ~lo:1e-6 ~factor:4. ~buckets:16

  let make ?(buckets = default_buckets) () =
    if Array.length buckets = 0 then invalid_arg "Histogram.make: no buckets";
    for i = 1 to Array.length buckets - 1 do
      if not (buckets.(i) > buckets.(i - 1)) then
        invalid_arg "Histogram.make: bounds must be strictly increasing"
    done;
    {
      bounds = Array.copy buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      stats = [| 0.; infinity; neg_infinity |];
      n = 0;
    }

  (* Index of the first bound >= x, or the overflow bucket. *)
  let bucket_index t x =
    let nb = Array.length t.bounds in
    if x > t.bounds.(nb - 1) then nb
    else begin
      let lo = ref 0 and hi = ref (nb - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if x <= t.bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

  let observe t x =
    if not (Float.is_nan x) then begin
      let i = bucket_index t x in
      t.counts.(i) <- t.counts.(i) + 1;
      t.stats.(0) <- t.stats.(0) +. x;
      if x < t.stats.(1) then t.stats.(1) <- x;
      if x > t.stats.(2) then t.stats.(2) <- x;
      t.n <- t.n + 1
    end

  let count t = t.n
  let sum t = t.stats.(0)
  let min_value t = if t.n = 0 then nan else t.stats.(1)
  let max_value t = if t.n = 0 then nan else t.stats.(2)
  let mean t = if t.n = 0 then nan else t.stats.(0) /. float_of_int t.n
  let bucket_bounds t = Array.copy t.bounds
  let bucket_counts t = Array.copy t.counts

  let quantile t q =
    if not (q >= 0. && q <= 1.) then invalid_arg "Histogram.quantile: q outside [0, 1]";
    if t.n = 0 then nan
    else begin
      let nb = Array.length t.bounds in
      let target = q *. float_of_int t.n in
      let rec walk i cum =
        if i > nb then max_value t
        else begin
          let c = t.counts.(i) in
          let cum' = cum + c in
          if float_of_int cum' >= target && c > 0 then begin
            (* Interpolate inside bucket i between its lower and upper
               edge, clamping the open ends to the observed extremes. *)
            let lo =
              if i = 0 then min_value t else Float.max (min_value t) t.bounds.(i - 1)
            in
            let hi = if i = nb then max_value t else Float.min (max_value t) t.bounds.(i) in
            let need = target -. float_of_int cum in
            let frac = if c = 0 then 0. else Float.max 0. (need /. float_of_int c) in
            Float.min hi (lo +. (frac *. (hi -. lo)))
          end
          else walk (i + 1) cum'
        end
      in
      walk 0 0
    end
end
