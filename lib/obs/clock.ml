external now_ns : unit -> int64 = "mcss_obs_clock_monotonic_ns"

let ns_to_seconds ns = Int64.to_float ns *. 1e-9
let seconds_since t0 = ns_to_seconds (Int64.sub (now_ns ()) t0)
