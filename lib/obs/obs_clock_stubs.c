/* Monotonic clock for span tracing: CLOCK_MONOTONIC is immune to
   wall-clock adjustments (NTP slew, manual resets), which matters when
   spans are used to attribute sub-second stage runtimes. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value mcss_obs_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t) ts.tv_sec * 1000000000LL + (int64_t) ts.tv_nsec);
}
