type totals = {
  mutable minor_words : float;
  mutable major_words : float;
  mutable samples : int;
}

let lock = Mutex.create ()
let table : (string, totals) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record name ~minor ~major =
  locked (fun () ->
      let t =
        match Hashtbl.find_opt table name with
        | Some t -> t
        | None ->
            let t = { minor_words = 0.; major_words = 0.; samples = 0 } in
            Hashtbl.add table name t;
            t
      in
      t.minor_words <- t.minor_words +. minor;
      t.major_words <- t.major_words +. major;
      t.samples <- t.samples + 1)

let measure ?(obs = Registry.noop) name f =
  let minor0, _, major0 = Gc.counters () in
  Fun.protect
    ~finally:(fun () ->
      let minor1, _, major1 = Gc.counters () in
      let minor = minor1 -. minor0 and major = major1 -. major0 in
      record name ~minor ~major;
      if Registry.enabled obs then begin
        Metric.Counter.add
          (Registry.counter obs
             ~help:"Minor-heap words allocated inside the phase (calling domain)"
             (Printf.sprintf "gc.%s.minor_words" name))
          (int_of_float minor);
        Metric.Counter.add
          (Registry.counter obs
             ~help:"Major-heap words allocated inside the phase (calling domain)"
             (Printf.sprintf "gc.%s.major_words" name))
          (int_of_float major)
      end)
    f

let totals () =
  locked (fun () ->
      Hashtbl.fold
        (fun name t acc ->
          (name, { minor_words = t.minor_words; major_words = t.major_words; samples = t.samples })
          :: acc)
        table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () = locked (fun () -> Hashtbl.reset table)

let to_json_object () =
  let fields =
    totals ()
    |> List.map (fun (name, t) ->
           Printf.sprintf
             "\"%s\": { \"minor_words\": %.0f, \"major_words\": %.0f, \"samples\": %d }"
             name t.minor_words t.major_words t.samples)
  in
  "{ " ^ String.concat ", " fields ^ " }"
