module Rng = Mcss_prng.Rng
module Dist = Mcss_prng.Dist
module Workload = Mcss_workload.Workload
module Stamp_set = Mcss_core.Arena.Stamp_set

type source =
  | Spotify of Spotify.params
  | Twitter of Twitter.params

let source_num_topics = function
  | Spotify p -> p.Spotify.num_topics
  | Twitter p -> p.Twitter.num_topics

let source_num_subscribers = function
  | Spotify p -> p.Spotify.num_subscribers
  | Twitter p -> p.Twitter.num_subscribers

let default_chunk = 65_536

(* Drive [gen_one] over subscribers [0 .. n-1] in chunks. [Array.init]
   evaluates indices 0, 1, ... in order (guaranteed by the stdlib), so
   the rng draw sequence is identical to the materialised generators'
   single [Array.init n gen_one]. *)
let chunked ~num_subscribers ~chunk ~gen_one ~init ~f =
  if chunk < 1 then invalid_arg "Stream: chunk must be >= 1";
  let acc = ref init in
  let v = ref 0 in
  while !v < num_subscribers do
    let len = min chunk (num_subscribers - !v) in
    let first = !v in
    let rows = Array.init len (fun i -> gen_one (first + i)) in
    acc := f !acc ~first rows;
    v := first + len
  done;
  !acc

let fold_spotify p ~chunk ~init ~f =
  Spotify.check_dims p;
  let rng = Rng.create p.Spotify.seed in
  let pop =
    Gen.popularity rng ~num_topics:p.Spotify.num_topics
      ~exponent:p.Spotify.popularity_exponent
  in
  let event_rates =
    Array.init p.Spotify.num_topics (fun _ ->
        Gen.round_rate
          (Dist.log_normal rng ~mu:p.Spotify.rate_mu ~sigma:p.Spotify.rate_sigma))
  in
  let scratch = Stamp_set.create 0 in
  let gen_one _ =
    let k = Spotify.interest_count rng p in
    Gen.sample_distinct_interests rng pop ~count:k ~scratch
  in
  let acc =
    chunked ~num_subscribers:p.Spotify.num_subscribers ~chunk ~gen_one ~init ~f
  in
  (acc, event_rates)

let fold_twitter p ~chunk ~init ~f =
  Twitter.check_dims p;
  let rng = Rng.create p.Twitter.seed in
  let pop =
    Gen.popularity rng ~num_topics:p.Twitter.num_topics
      ~exponent:p.Twitter.popularity_exponent
  in
  (* Pass 1: the follow graph, counting followers as rows stream by
     instead of from a finished edge list. *)
  let followers = Array.make p.Twitter.num_topics 0 in
  let scratch = Stamp_set.create 0 in
  let gen_one _ =
    let k = Twitter.followings_count rng p in
    let tv = Gen.sample_distinct_interests rng pop ~count:k ~scratch in
    Array.iter (fun t -> followers.(t) <- followers.(t) + 1) tv;
    tv
  in
  let acc =
    chunked ~num_subscribers:p.Twitter.num_subscribers ~chunk ~gen_one ~init ~f
  in
  (* Pass 2: rates conditioned on realised audience size, as in
     [Twitter.generate]. *)
  let knee =
    Float.max 10.
      (p.Twitter.celebrity_knee_fraction
      *. float_of_int p.Twitter.num_subscribers)
  in
  let raw =
    Array.init p.Twitter.num_topics (fun t ->
        let individual =
          Dist.log_normal rng ~mu:0. ~sigma:p.Twitter.rate_sigma
        in
        let base =
          individual *. Twitter.follower_multiplier p ~knee followers.(t)
        in
        if Rng.bernoulli rng p.Twitter.bot_fraction then
          base *. p.Twitter.bot_boost
        else base)
  in
  let mean_raw =
    Array.fold_left ( +. ) 0. raw /. float_of_int p.Twitter.num_topics
  in
  let scale = p.Twitter.target_mean_rate /. mean_raw in
  let event_rates = Array.map (fun x -> Gen.round_rate (x *. scale)) raw in
  (acc, event_rates)

let fold_chunks ?(chunk = default_chunk) src ~init ~f =
  match src with
  | Spotify p -> fold_spotify p ~chunk ~init ~f
  | Twitter p -> fold_twitter p ~chunk ~init ~f

let workload ?chunk src =
  let b = Workload.Builder.create ~capacity:(max 1 (source_num_subscribers src)) () in
  let (), event_rates =
    fold_chunks ?chunk src ~init:() ~f:(fun () ~first:_ rows ->
        Array.iter (Workload.Builder.add b) rows)
  in
  Workload.Builder.finish b ~event_rates
