module Rng = Mcss_prng.Rng
module Dist = Mcss_prng.Dist
module Workload = Mcss_workload.Workload

type params = {
  num_topics : int;
  num_subscribers : int;
  interest_pareto_scale : float;
  interest_pareto_alpha : float;
  glitch20_fraction : float;
  cap2000_fraction : float;
  popularity_exponent : float;
  rate_sigma : float;
  rate_follower_exponent : float;
  celebrity_knee_fraction : float;
  celebrity_dip : float;
  bot_fraction : float;
  bot_boost : float;
  target_mean_rate : float;
  seed : int;
}

let full_scale =
  {
    num_topics = 8_000_000;
    num_subscribers = 30_000_000;
    interest_pareto_scale = 3.5;
    interest_pareto_alpha = 1.1;
    glitch20_fraction = 0.06;
    cap2000_fraction = 0.7;
    popularity_exponent = 1.0;
    rate_sigma = 1.3;
    rate_follower_exponent = 0.85;
    celebrity_knee_fraction = 1e5 /. 30e6;
    celebrity_dip = 0.05;
    bot_fraction = 0.006;
    bot_boost = 30.;
    target_mean_rate = 57.;
    seed = 20131030;
  }

let scaled f =
  if not (f > 0.) then invalid_arg "Twitter.scaled: factor must be positive";
  {
    full_scale with
    num_topics = max 1 (int_of_float (Float.round (float_of_int full_scale.num_topics *. f)));
    num_subscribers =
      max 1 (int_of_float (Float.round (float_of_int full_scale.num_subscribers *. f)));
  }

let default = scaled 0.004

let followings_count rng params =
  if Rng.bernoulli rng params.glitch20_fraction then 20
  else begin
    let raw =
      Dist.pareto rng ~scale:params.interest_pareto_scale
        ~alpha:params.interest_pareto_alpha
    in
    let k = max 1 (int_of_float (Float.round raw)) in
    if k > 2000 && Rng.bernoulli rng params.cap2000_fraction then 2000 else k
  end

(* Mean-rate multiplier as a function of follower count: roughly linear
   growth up to the knee, a dip beyond it (Fig. 10's celebrity cloud). *)
let follower_multiplier params ~knee followers =
  let f = float_of_int (max followers 1) in
  if f <= knee then f ** params.rate_follower_exponent
  else (knee ** params.rate_follower_exponent) *. params.celebrity_dip
       *. ((f /. knee) ** 0.3)

let check_dims params =
  if params.num_topics < 1 || params.num_subscribers < 0 then
    invalid_arg "Twitter.generate: bad dimensions"

let generate params =
  check_dims params;
  let rng = Rng.create params.seed in
  let pop =
    Gen.popularity rng ~num_topics:params.num_topics
      ~exponent:params.popularity_exponent
  in
  (* Pass 1: the follow graph. *)
  let interests =
    Array.init params.num_subscribers (fun _ ->
        let k = followings_count rng params in
        Gen.sample_distinct_interests rng pop ~count:k)
  in
  let followers = Array.make params.num_topics 0 in
  Array.iter
    (Array.iter (fun t -> followers.(t) <- followers.(t) + 1))
    interests;
  (* Pass 2: tweet rates conditioned on realised audience size, rescaled
     to the target mean. *)
  let knee =
    Float.max 10.
      (params.celebrity_knee_fraction *. float_of_int params.num_subscribers)
  in
  let raw =
    Array.init params.num_topics (fun t ->
        let individual = Dist.log_normal rng ~mu:0. ~sigma:params.rate_sigma in
        let base = individual *. follower_multiplier params ~knee followers.(t) in
        if Rng.bernoulli rng params.bot_fraction then base *. params.bot_boost
        else base)
  in
  let mean_raw =
    Array.fold_left ( +. ) 0. raw /. float_of_int params.num_topics
  in
  let scale = params.target_mean_rate /. mean_raw in
  let event_rates = Array.map (fun x -> Gen.round_rate (x *. scale)) raw in
  Workload.create ~event_rates ~interests
