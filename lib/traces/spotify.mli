(** Synthetic Spotify-like pub/sub workload.

    The paper's Spotify trace (proprietary; 10 days of music-playback
    events from the Stockholm data centre, analysed in detail in its
    reference [6]) comprises ~1.1 M topics, ~4.9 M subscribers and ~12 M
    topic–subscriber pairs, i.e. ~2.4 interests per subscriber, with
    heavy-tailed follower counts and per-user playback rates in the
    hundreds of events per 10 days.

    This generator reproduces those marginals: topic popularity is
    Zipf-skewed, interest counts are [1 + Poisson] with a small Pareto
    tail, and event rates are log-normal integer counts. The MCSS
    algorithms consume only these distributions, so the cost/optimisation
    behaviour of the real trace is preserved (see DESIGN.md §2). *)

type params = {
  num_topics : int;
  num_subscribers : int;
  mean_interests : float;  (** Mean [|T_v|]; the trace has ~2.45. *)
  heavy_interest_fraction : float;
      (** Fraction of subscribers with an additional Pareto-tailed batch
          of interests (power listeners following many artists). *)
  popularity_exponent : float;  (** Zipf [s] for topic choice. *)
  rate_mu : float;
  rate_sigma : float;
      (** Log-normal parameters of the per-topic event count per horizon. *)
  seed : int;
}

val full_scale : params
(** The published trace's dimensions: 1.1 M topics, 4.9 M subscribers. *)

val scaled : float -> params
(** [scaled f] shrinks topic and subscriber counts by factor [f]
    (e.g. [scaled 0.02] for a 1/50-size trace); distribution parameters
    are unchanged, so the shape survives scaling. *)

val default : params
(** [scaled 0.02] — the benchmark default (≈22 k topics, 98 k
    subscribers, ≈240 k pairs). *)

val generate : params -> Mcss_workload.Workload.t
(** Deterministic for a fixed [params] (including [seed]). This is the
    materialise-everything reference path; {!Stream} builds the same
    workload (bit-for-bit, property-tested) without the second copy of
    the edge list. *)

(**/**)

(* Internals shared with the streaming generator ({!Stream}); the draw
   sequence per subscriber must match [generate] exactly. *)

val interest_count : Mcss_prng.Rng.t -> params -> int
val check_dims : params -> unit
