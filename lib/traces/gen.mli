(** Shared machinery for the synthetic trace generators: skewed topic
    popularity and distinct-interest sampling. *)

type popularity
(** A sampling distribution over topic ids with Zipf-like skew, where the
    popularity rank of a topic is decoupled from its id by a random
    permutation (so topic id 0 is not automatically the most popular). *)

val popularity : Mcss_prng.Rng.t -> num_topics:int -> exponent:float -> popularity

val rank_of_topic : popularity -> int -> int
(** Popularity rank of a topic id, 1 = most popular. *)

val sample_distinct_interests :
  ?scratch:Mcss_core.Arena.Stamp_set.t ->
  Mcss_prng.Rng.t ->
  popularity ->
  count:int ->
  int array
(** Draw [count] distinct topic ids, popular topics proportionally more
    often (rejection on duplicates; [count] is clamped to the number of
    topics). The result is unsorted. [scratch] replaces the per-call
    dedup [Hashtbl] with a reusable stamp set (the streaming generators
    pass one per stream); it never changes the draws — both paths make
    identical accept/reject decisions. *)

val round_rate : float -> float
(** Round a raw positive rate to an integral event count, at least 1 —
    trace event rates are integer counts over the horizon. *)
