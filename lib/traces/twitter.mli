(** Synthetic Twitter-like pub/sub workload.

    The paper's Twitter trace couples the Kwak et al. (WWW 2010) social
    graph with per-user tweet counts fetched for a 10-day window in 2013:
    ~8 M active topics (users who tweeted), ~30 M subscribers, ~683.5 M
    topic–subscriber pairs and ~455 M tweets. Its Appendix D documents
    the distinguishing features this generator reproduces:

    - the followings CCDF has glitches at 20 (historical default-follow
      suggestions) and at 2000 (the pre-2009 following cap);
    - follower counts are heavy-tailed over five orders of magnitude;
    - the mean tweet rate grows roughly linearly with follower count up
      to ~1e5 followers, then {e drops} — celebrities and news agencies
      have enormous audiences but tweet comparatively rarely;
    - ~half the active users tweet fewer than 10 times in 10 days, while
      a small bot population tweets thousands of times.

    Rates are assigned in a second pass, conditioned on the realised
    follower counts, then rescaled so the mean rate matches
    [target_mean_rate] (≈57 = 455 M / 8 M in the trace). *)

type params = {
  num_topics : int;
  num_subscribers : int;
  interest_pareto_scale : float;
  interest_pareto_alpha : float;
      (** Pareto followings; scale 3.5, alpha 1.1 gives the trace's mean of
          ~22 followings. *)
  glitch20_fraction : float;
      (** Subscribers pinned at exactly 20 followings. *)
  cap2000_fraction : float;
      (** Probability that a draw above 2000 is clamped to exactly 2000
          (pre-2009 accounts). *)
  popularity_exponent : float;  (** Zipf [s] for follow-target choice. *)
  rate_sigma : float;  (** Log-normal spread of individual tweet rates. *)
  rate_follower_exponent : float;
      (** Growth of mean rate with follower count below the knee. *)
  celebrity_knee_fraction : float;
      (** The knee as a fraction of the subscriber count (1e5 followers
          out of 30 M subscribers ≈ 0.0033). *)
  celebrity_dip : float;
      (** Mean-rate reduction factor applied beyond the knee. *)
  bot_fraction : float;  (** Topics with bot-level (×[bot_boost]) rates. *)
  bot_boost : float;
  target_mean_rate : float;  (** Mean events per topic per horizon. *)
  seed : int;
}

val full_scale : params
(** The published trace's dimensions: 8 M topics, 30 M subscribers. *)

val scaled : float -> params
(** Shrink topic and subscriber counts by the factor; distribution
    parameters are unchanged. *)

val default : params
(** [scaled 0.004] (≈32 k topics, 120 k subscribers, ≈2.7 M pairs) —
    the benchmark default. *)

val generate : params -> Mcss_workload.Workload.t
(** Deterministic for a fixed [params]. This is the
    materialise-everything reference path; {!Stream} builds the same
    workload (bit-for-bit, property-tested) while counting followers
    on the fly instead of from a finished edge list. *)

(**/**)

(* Internals shared with the streaming generator ({!Stream}); the draw
   sequence must match [generate] exactly. *)

val followings_count : Mcss_prng.Rng.t -> params -> int
val follower_multiplier : params -> knee:float -> int -> float
val check_dims : params -> unit
