module Rng = Mcss_prng.Rng
module Dist = Mcss_prng.Dist

type popularity = {
  zipf : Dist.Zipf.t;
  topic_of_rank : int array;  (* rank - 1 -> topic id *)
  rank_of_topic : int array;  (* topic id -> rank *)
}

let popularity rng ~num_topics ~exponent =
  if num_topics < 1 then invalid_arg "Gen.popularity: need at least one topic";
  let zipf = Dist.Zipf.create ~n:num_topics ~s:exponent in
  let topic_of_rank = Array.init num_topics (fun i -> i) in
  Rng.shuffle_in_place rng topic_of_rank;
  let rank_of_topic = Array.make num_topics 0 in
  Array.iteri (fun i t -> rank_of_topic.(t) <- i + 1) topic_of_rank;
  { zipf; topic_of_rank; rank_of_topic }

let rank_of_topic p t = p.rank_of_topic.(t)

module Stamp_set = Mcss_core.Arena.Stamp_set

let sample_distinct_interests ?scratch rng p ~count =
  let n = Array.length p.topic_of_rank in
  let count = min count n in
  if count = 0 then [||]
  else if 4 * count >= n then
    (* Dense case: rejection would thrash; take a uniform distinct sample
       (popularity hardly matters when most topics are taken anyway). *)
    Rng.sample_without_replacement rng count n
  else begin
    let out = Array.make count 0 in
    let filled = ref 0 in
    (* Both dedup paths implement exact set membership, so they make
       identical accept/reject decisions and consume the rng
       identically — the streamed and materialised generators stay
       bit-equal. *)
    (match scratch with
    | Some set ->
        Stamp_set.ensure set n;
        Stamp_set.clear set;
        while !filled < count do
          let t = p.topic_of_rank.(Dist.Zipf.sample p.zipf rng - 1) in
          if not (Stamp_set.mem set t) then begin
            Stamp_set.add set t;
            out.(!filled) <- t;
            incr filled
          end
        done
    | None ->
        let seen = Hashtbl.create (2 * count) in
        while !filled < count do
          let t = p.topic_of_rank.(Dist.Zipf.sample p.zipf rng - 1) in
          if not (Hashtbl.mem seen t) then begin
            Hashtbl.add seen t ();
            out.(!filled) <- t;
            incr filled
          end
        done);
    out
  end

let round_rate x = Float.max 1. (Float.round x)
