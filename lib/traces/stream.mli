(** Streaming trace generation.

    {!Spotify.generate} and {!Twitter.generate} materialise the full
    interest edge list and then hand it to [Workload.create], which
    copies it again — at full Spotify scale (~13.5 M pairs) that is two
    complete edge lists plus a [Hashtbl] per subscriber for interest
    dedup. This module produces the {e bit-identical} workload (same
    seed ⟹ same [Workload_io] digest; property-tested) by generating
    subscribers in fixed-size chunks and feeding each chunk straight
    into a {!Mcss_workload.Workload.Builder}, so only one copy of the
    edge list ever exists and dedup scratch is a reused
    {!Mcss_core.Arena.Stamp_set}.

    Bit-identity holds because the chunked folds consume the shared
    [Rng] stream in exactly the order the materialised generators do;
    the internals they share ([interest_count], [followings_count],
    [follower_multiplier]) are exposed for that purpose only. *)

type source =
  | Spotify of Spotify.params
  | Twitter of Twitter.params

val source_num_topics : source -> int
val source_num_subscribers : source -> int

val fold_chunks :
  ?chunk:int ->
  source ->
  init:'a ->
  f:('a -> first:int -> Mcss_workload.Workload.topic array array -> 'a) ->
  'a * float array
(** [fold_chunks src ~init ~f] generates subscribers [0 .. n-1] in
    chunks of [chunk] (default 65536) and folds [f acc ~first rows]
    over them, where [rows.(i)] is the interest list of subscriber
    [first + i] in generation order (not sorted; may contain no
    duplicates). Ownership of each row passes to [f] — the array is
    never touched again by the generator. Returns the final
    accumulator and the per-topic event rates.

    For [Twitter] sources the rates depend on the realised follower
    counts, so they are computed after the fold completes — exactly as
    {!Twitter.generate}'s two-pass structure does. *)

val workload : ?chunk:int -> source -> Mcss_workload.Workload.t
(** [workload src] is bit-identical to [Spotify.generate p] /
    [Twitter.generate p] for the corresponding source, built through
    {!Mcss_workload.Workload.Builder} without materialising a second
    copy of the edge list. *)
