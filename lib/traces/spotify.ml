module Rng = Mcss_prng.Rng
module Dist = Mcss_prng.Dist
module Workload = Mcss_workload.Workload

type params = {
  num_topics : int;
  num_subscribers : int;
  mean_interests : float;
  heavy_interest_fraction : float;
  popularity_exponent : float;
  rate_mu : float;
  rate_sigma : float;
  seed : int;
}

let full_scale =
  {
    num_topics = 1_100_000;
    num_subscribers = 4_900_000;
    mean_interests = 2.45;
    heavy_interest_fraction = 0.02;
    popularity_exponent = 0.85;
    rate_mu = 5.0;
    rate_sigma = 1.0;
    seed = 20130109;
  }

let scaled f =
  if not (f > 0.) then invalid_arg "Spotify.scaled: factor must be positive";
  {
    full_scale with
    num_topics = max 1 (int_of_float (Float.round (float_of_int full_scale.num_topics *. f)));
    num_subscribers =
      max 1 (int_of_float (Float.round (float_of_int full_scale.num_subscribers *. f)));
  }

let default = scaled 0.02

let interest_count rng params =
  let base = 1 + Dist.poisson rng ~mean:(params.mean_interests -. 1.) in
  if Rng.bernoulli rng params.heavy_interest_fraction then
    base + int_of_float (Dist.pareto rng ~scale:5. ~alpha:1.5)
  else base

let check_dims params =
  if params.num_topics < 1 || params.num_subscribers < 0 then
    invalid_arg "Spotify.generate: bad dimensions"

let generate params =
  check_dims params;
  let rng = Rng.create params.seed in
  let pop =
    Gen.popularity rng ~num_topics:params.num_topics
      ~exponent:params.popularity_exponent
  in
  let event_rates =
    Array.init params.num_topics (fun _ ->
        Gen.round_rate (Dist.log_normal rng ~mu:params.rate_mu ~sigma:params.rate_sigma))
  in
  let interests =
    Array.init params.num_subscribers (fun _ ->
        let k = interest_count rng params in
        Gen.sample_distinct_interests rng pop ~count:k)
  in
  Workload.create ~event_rates ~interests
