exception Parse_error of string

let emit add w =
  add (Printf.sprintf "mcss-workload 1\n");
  add (Printf.sprintf "topics %d\n" (Workload.num_topics w));
  add (Printf.sprintf "subscribers %d\n" (Workload.num_subscribers w));
  add "rates\n";
  Array.iter (fun ev -> add (Printf.sprintf "%.17g\n" ev)) (Workload.event_rates w);
  add "interests\n";
  for v = 0 to Workload.num_subscribers w - 1 do
    let tv = Workload.interests w v in
    add (string_of_int (Array.length tv));
    Array.iter (fun t -> add (Printf.sprintf " %d" t)) tv;
    add "\n"
  done

let output oc w = emit (output_string oc) w

let to_string w =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) w;
  Buffer.contents buf

let save w path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc w)

(* The reader pulls raw lines from a closure so channels and in-memory
   strings parse through the same code. *)
type reader = { next_raw : unit -> string option; mutable line_num : int }

let fail r msg = raise (Parse_error (Printf.sprintf "line %d: %s" r.line_num msg))

(* Next non-comment, non-blank line, or None at end of input. *)
let rec next_line r =
  match r.next_raw () with
  | None -> None
  | Some line ->
      r.line_num <- r.line_num + 1;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then next_line r else Some line

let expect_line r what =
  match next_line r with
  | Some line -> line
  | None -> fail r (Printf.sprintf "unexpected end of file, expected %s" what)

let expect_keyword_int r keyword =
  let line = expect_line r keyword in
  match String.split_on_char ' ' line with
  | [ k; n ] when k = keyword -> (
      match int_of_string_opt n with
      | Some n -> n
      | None -> fail r (Printf.sprintf "bad integer %S after %s" n keyword))
  | _ -> fail r (Printf.sprintf "expected %S <int>, got %S" keyword line)

let expect_exact r expected =
  let line = expect_line r expected in
  if line <> expected then fail r (Printf.sprintf "expected %S, got %S" expected line)

let lines_of_string s =
  let pos = ref 0 in
  let n = String.length s in
  fun () ->
    if !pos >= n then None
    else
      let stop =
        match String.index_from_opt s !pos '\n' with Some i -> i | None -> n
      in
      let line = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some line

let parse r =
  expect_exact r "mcss-workload 1";
  let num_topics = expect_keyword_int r "topics" in
  let num_subscribers = expect_keyword_int r "subscribers" in
  if num_topics < 0 || num_subscribers < 0 then fail r "negative count";
  expect_exact r "rates";
  let event_rates =
    Array.init num_topics (fun _ ->
        let line = expect_line r "an event rate" in
        match float_of_string_opt line with
        | Some ev -> ev
        | None -> fail r (Printf.sprintf "bad event rate %S" line))
  in
  expect_exact r "interests";
  let interests =
    Array.init num_subscribers (fun _ ->
        let line = expect_line r "an interest list" in
        let fields =
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        in
        match fields with
        | [] -> fail r "empty interest line"
        | k :: topics -> (
            match int_of_string_opt k with
            | None -> fail r (Printf.sprintf "bad interest count %S" k)
            | Some k ->
                if List.length topics <> k then
                  fail r (Printf.sprintf "interest count %d does not match %d topics"
                            k (List.length topics));
                Array.of_list
                  (List.map
                     (fun s ->
                       match int_of_string_opt s with
                       | Some t -> t
                       | None -> fail r (Printf.sprintf "bad topic id %S" s))
                     topics)))
  in
  match Workload.create ~event_rates ~interests with
  | w -> w
  | exception Invalid_argument msg -> fail r msg

let input ic =
  parse { next_raw = (fun () -> In_channel.input_line ic); line_num = 0 }

let of_string s = parse { next_raw = lines_of_string s; line_num = 0 }

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input ic)
