(** The pub/sub workload model of the paper (§II-B).

    A workload is the static description the resource allocator consumes:
    a set of topics [T] with per-topic event rates [ev_t], and a set of
    subscribers [V] with interests [T_v ⊆ T]. Users of social pub/sub
    systems are both topics and subscribers, but the model keeps the two id
    spaces separate: topic ids are [0 .. num_topics - 1] and subscriber ids
    are [0 .. num_subscribers - 1].

    Event rates are in events per time unit (the paper uses events/min for
    the worked example and events/10-days for the traces); conversion to
    bytes and money happens in [Mcss_pricing]. *)

type topic = int
type subscriber = int

type t
(** An immutable workload. Construction validates the representation; all
    accessors are O(1) or return shared arrays that must not be mutated. *)

val create : event_rates:float array -> interests:topic array array -> t
(** [create ~event_rates ~interests] builds a workload with
    [Array.length event_rates] topics and [Array.length interests]
    subscribers. Raises [Invalid_argument] if any event rate is not
    strictly positive (the paper assumes [ev_t > 0]), any interest refers
    to an out-of-range topic, or a subscriber lists the same topic twice.
    Interest arrays are sorted by topic id internally. *)

val unsafe_create :
  ?followers:subscriber array array ->
  event_rates:float array ->
  interests:topic array array ->
  unit ->
  t
(** Like {!create}, but adopts the arrays without copying, sorting, or
    validating them. The caller warrants that every rate is strictly
    positive and every interest array is id-sorted, duplicate-free, in
    range, and never mutated afterwards — sharing arrays from an
    existing workload satisfies this. When [followers] is given it
    seeds the {!followers} cache and must be the exact per-topic
    inverse of [interests], each array sorted by subscriber id. Used by
    the incremental engine's delta application, where re-deriving the
    whole workload per small batch would dominate the apply cost. *)

(** Incremental construction for streaming trace generation: add one
    subscriber at a time, then {!Builder.finish}. Equivalent to
    accumulating all interest arrays and calling {!create}, minus the
    full second copy of the edge list that [create] makes — the builder
    takes ownership of each row (sorting it in place), so peak memory is
    one edge list, not two. *)
module Builder : sig
  type workload := t
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] is the expected number of subscribers (the builder
      grows past it by doubling). *)

  val add : t -> topic array -> unit
  (** Append the next subscriber's interests. Takes ownership of the
      array: it is sorted in place and must not be mutated by the
      caller afterwards. Validation happens in {!finish}. *)

  val num_subscribers : t -> int

  val finish : t -> event_rates:float array -> workload
  (** Validate and seal, exactly like {!create} (same
      [Invalid_argument] conditions); [event_rates] is copied. The
      builder must not be reused afterwards (the finished workload
      shares its rows). *)
end

val cached_followers : t -> subscriber array array option
(** The followers index if it has been computed (or seeded) already,
    without forcing it. Lets {!unsafe_create} callers evolve the cache
    incrementally instead of discarding it. Do not mutate. *)

val num_topics : t -> int
val num_subscribers : t -> int

val num_pairs : t -> int
(** Total number of topic–subscriber pairs, [Σ_v |T_v|]. *)

val event_rate : t -> topic -> float
(** [ev_t]. *)

val event_rates : t -> float array
(** The full rate array, indexed by topic. Do not mutate. *)

val interests : t -> subscriber -> topic array
(** [T_v], sorted by topic id. Do not mutate. *)

val followers : t -> topic -> subscriber array
(** [V_t], the subscribers interested in [t], sorted by subscriber id.
    Derived from the interests on first use and cached. Do not mutate. *)

val num_followers : t -> topic -> int

val interest_rate : t -> subscriber -> float
(** [Σ_{t ∈ T_v} ev_t], the total rate a subscriber could ever receive. *)

val total_event_rate : t -> float
(** [Σ_t ev_t]. *)

val tau_v : t -> tau:float -> subscriber -> float
(** The subscriber-specific satisfaction threshold
    [τ_v = min τ (Σ_{t∈T_v} ev_t)] (§II-B). *)

val iter_pairs : t -> (topic -> subscriber -> unit) -> unit
(** Iterate over every (t, v) pair, grouped by subscriber. *)

val subscribers_with_interests : t -> subscriber list
(** Subscribers with at least one interest, ascending. *)

val sample_subscribers : Mcss_prng.Rng.t -> fraction:float -> t -> t
(** A sub-workload keeping each subscriber independently with the given
    probability (topics and rates untouched) — the paper evaluates on
    "about 10% / 1% samples" of its traces, and scaling experiments need
    the same knob. Requires [0 <= fraction <= 1]. Subscriber ids are
    re-densified in the original order. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: topic/subscriber/pair counts and total rate. *)
