type topic = int
type subscriber = int

type t = {
  event_rates : float array;
  interests : topic array array;
  num_pairs : int;
  interest_rate : float array;
  total_event_rate : float;
  mutable followers : subscriber array array option;
}

let validate ~event_rates ~interests =
  let num_topics = Array.length event_rates in
  Array.iteri
    (fun t ev ->
      if not (ev > 0.) then
        invalid_arg
          (Printf.sprintf "Workload.create: event rate of topic %d is %g (must be > 0)" t ev))
    event_rates;
  Array.iteri
    (fun v tv ->
      Array.iter
        (fun t ->
          if t < 0 || t >= num_topics then
            invalid_arg
              (Printf.sprintf "Workload.create: subscriber %d references topic %d out of range"
                 v t))
        tv;
      for i = 1 to Array.length tv - 1 do
        if tv.(i) = tv.(i - 1) then
          invalid_arg
            (Printf.sprintf "Workload.create: subscriber %d lists topic %d twice" v tv.(i))
      done)
    interests

let build ~event_rates ~interests =
  let num_pairs = Array.fold_left (fun acc tv -> acc + Array.length tv) 0 interests in
  let interest_rate =
    Array.map (fun tv -> Array.fold_left (fun acc t -> acc +. event_rates.(t)) 0. tv) interests
  in
  let total_event_rate = Array.fold_left ( +. ) 0. event_rates in
  { event_rates; interests; num_pairs; interest_rate; total_event_rate; followers = None }

let create ~event_rates ~interests =
  let interests = Array.map (fun tv -> Array.copy tv) interests in
  Array.iter (fun tv -> Array.sort compare tv) interests;
  validate ~event_rates ~interests;
  build ~event_rates:(Array.copy event_rates) ~interests

let unsafe_create ?followers ~event_rates ~interests () =
  let w = build ~event_rates ~interests in
  w.followers <- followers;
  w

(* Incremental construction for streaming trace generation: subscribers
   arrive one at a time and the builder takes ownership of each interest
   array, so the workload is assembled without a second copy of the edge
   list ([create] copies every row; at full trace scale that copy is the
   peak-memory term). [finish] validates exactly like [create]. *)
module Builder = struct
  type workload = t
  type t = { mutable interests : topic array array; mutable len : int }

  let create ?(capacity = 1024) () = { interests = Array.make (max capacity 1) [||]; len = 0 }

  let add b tv =
    Array.sort compare tv;
    if b.len = Array.length b.interests then begin
      let fresh = Array.make (2 * Array.length b.interests) [||] in
      Array.blit b.interests 0 fresh 0 b.len;
      b.interests <- fresh
    end;
    b.interests.(b.len) <- tv;
    b.len <- b.len + 1

  let num_subscribers b = b.len

  let finish b ~event_rates : workload =
    let interests =
      if Array.length b.interests = b.len then b.interests
      else Array.sub b.interests 0 b.len
    in
    let event_rates = Array.copy event_rates in
    validate ~event_rates ~interests;
    build ~event_rates ~interests
end

let cached_followers w = w.followers

let num_topics w = Array.length w.event_rates
let num_subscribers w = Array.length w.interests
let num_pairs w = w.num_pairs
let event_rate w t = w.event_rates.(t)
let event_rates w = w.event_rates
let interests w v = w.interests.(v)
let interest_rate w v = w.interest_rate.(v)
let total_event_rate w = w.total_event_rate

let compute_followers w =
  let counts = Array.make (num_topics w) 0 in
  Array.iter (fun tv -> Array.iter (fun t -> counts.(t) <- counts.(t) + 1) tv) w.interests;
  let followers = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (num_topics w) 0 in
  Array.iteri
    (fun v tv ->
      Array.iter
        (fun t ->
          followers.(t).(fill.(t)) <- v;
          fill.(t) <- fill.(t) + 1)
        tv)
    w.interests;
  (* Subscribers were visited in ascending order, so each list is sorted. *)
  followers

let followers w t =
  match w.followers with
  | Some f -> f.(t)
  | None ->
      let f = compute_followers w in
      w.followers <- Some f;
      f.(t)

let num_followers w t = Array.length (followers w t)

let tau_v w ~tau v = Float.min tau w.interest_rate.(v)

let iter_pairs w f =
  Array.iteri (fun v tv -> Array.iter (fun t -> f t v) tv) w.interests

let subscribers_with_interests w =
  let out = ref [] in
  for v = num_subscribers w - 1 downto 0 do
    if Array.length w.interests.(v) > 0 then out := v :: !out
  done;
  !out

let sample_subscribers rng ~fraction w =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Workload.sample_subscribers: fraction outside [0,1]";
  let kept = ref [] in
  for v = num_subscribers w - 1 downto 0 do
    if Mcss_prng.Rng.bernoulli rng fraction then kept := v :: !kept
  done;
  let interests =
    Array.of_list (List.map (fun v -> Array.copy w.interests.(v)) !kept)
  in
  create ~event_rates:w.event_rates ~interests

let pp_summary ppf w =
  Format.fprintf ppf "workload: %d topics, %d subscribers, %d pairs, total rate %.1f"
    (num_topics w) (num_subscribers w) w.num_pairs w.total_event_rate
