(** Plain-text (de)serialisation of workloads, so generated traces can be
    saved once and replayed by the CLI, benches, and examples.

    Format (line-oriented, ['#'] comments allowed anywhere):
    {v
    mcss-workload 1
    topics <l>
    subscribers <n>
    rates
    <l lines: one float per line, topic 0 first>
    interests
    <n lines: k t_1 ... t_k, subscriber 0 first>
    v} *)

exception Parse_error of string
(** Raised with a human-readable message (including line number) when the
    input does not conform to the format. *)

val save : Workload.t -> string -> unit
(** [save w path] writes [w] to [path], replacing any existing file. *)

val load : string -> Workload.t
(** [load path] reads a workload back. Raises {!Parse_error} on malformed
    input and [Sys_error] on I/O failure. *)

val output : out_channel -> Workload.t -> unit
val input : in_channel -> Workload.t

val to_string : Workload.t -> string
(** The canonical rendering {!save} writes — what the planning service
    journals and digests. *)

val of_string : string -> Workload.t
(** Parse an in-memory rendering; raises {!Parse_error} like {!load}. *)
